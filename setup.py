"""Setuptools shim: this environment has no `wheel` package, so PEP-660
editable installs (`pip install -e .`) fall back to this legacy path."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
