"""The Table I / Fig. 4 harness itself (fast profile, both backends)."""

from __future__ import annotations

import pytest

from repro.analysis.fig4 import run_fig4
from repro.analysis.table1 import PAPER_WORKER_COUNTS, render_table, run_table1


@pytest.fixture(scope="module")
def mock_rows():
    return run_table1(profile="test", backend_name="mock",
                      worker_counts=(3, 5, 7))


def test_table1_row_structure(mock_rows) -> None:
    assert len(mock_rows) == 4  # auth + three majority sizes
    assert mock_rows[0].label == "Anonymous authentication"
    assert mock_rows[1].label == "Majority (3-Worker)"


def test_table1_proof_size_constant(mock_rows) -> None:
    sizes = {row.proof_bytes for row in mock_rows}
    assert len(sizes) == 1  # succinctness: constant across circuits


def test_table1_key_and_input_sizes_grow_with_n(mock_rows) -> None:
    majority = mock_rows[1:]
    keys = [row.key_bytes for row in majority]
    inputs = [row.input_bytes for row in majority]
    assert keys == sorted(keys) and len(set(keys)) == len(keys)
    assert inputs == sorted(inputs) and len(set(inputs)) == len(inputs)


def test_table1_constraints_grow_with_n(mock_rows) -> None:
    constraints = [row.constraints for row in mock_rows[1:]]
    assert constraints == sorted(constraints)


def test_table1_full_counts_and_render() -> None:
    rows = run_table1(profile="test", backend_name="mock")
    assert len(rows) == 1 + len(PAPER_WORKER_COUNTS)
    text = render_table(rows)
    assert "TABLE I" in text
    assert "paper:" in text
    assert "Majority (11-Worker)" in text


def test_fig4_runs_and_summarizes() -> None:
    result = run_fig4(profile="test", backend_name="mock", runs=5)
    assert result.stats.count == 5
    assert result.stats.minimum <= result.stats.median <= result.stats.maximum
    text = result.render()
    assert "FIG. 4" in text and "paper:" in text


@pytest.mark.slow
def test_fig4_groth16_single_run() -> None:
    """One real-proof sample to keep the pairing path covered."""
    result = run_fig4(profile="test", backend_name="groth16", runs=1)
    assert result.stats.count == 1
    assert result.stats.median > 0
