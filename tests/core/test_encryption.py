"""Hybrid answer encryption: RSA-OAEP KEM + MiMC-CTR + commitment."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecryptionError
from repro.core.encryption import (
    AnswerCiphertext,
    TaskKeyPair,
    decrypt_answer,
    decrypt_with_key,
    encrypt_answer,
    recover_answer_key,
)
from repro.zksnark.field import BN128_SCALAR_FIELD
from repro.zksnark.gadgets.mimc import MiMCParameters

MIMC = MiMCParameters.for_rounds(7)


@pytest.fixture(scope="module")
def task_keys() -> TaskKeyPair:
    return TaskKeyPair.generate(bits=1024, rng=random.Random(0))


def test_roundtrip(task_keys) -> None:
    ciphertext = encrypt_answer(task_keys.public_key, [3], MIMC, random.Random(1))
    assert decrypt_answer(task_keys, ciphertext, MIMC) == [3]


def test_multi_element_roundtrip(task_keys) -> None:
    fields = [1, 0, 2, 99]
    ciphertext = encrypt_answer(task_keys.public_key, fields, MIMC, random.Random(2))
    assert decrypt_answer(task_keys, ciphertext, MIMC) == fields


@given(st.lists(st.integers(min_value=0, max_value=BN128_SCALAR_FIELD - 1),
                min_size=1, max_size=4))
@settings(max_examples=15, deadline=None)
def test_roundtrip_property(fields) -> None:
    keys = _KEYS[0]
    ciphertext = encrypt_answer(keys.public_key, fields, MIMC,
                                random.Random(sum(fields) % 1000))
    assert decrypt_answer(keys, ciphertext, MIMC) == fields


_KEYS = [TaskKeyPair.generate(bits=1024, rng=random.Random(77))]


def test_semantic_security_shape(task_keys) -> None:
    """Same answer twice → unrelated ciphertexts (fresh key + nonce)."""
    c1 = encrypt_answer(task_keys.public_key, [1], MIMC, random.Random(3))
    c2 = encrypt_answer(task_keys.public_key, [1], MIMC, random.Random(4))
    assert c1.body != c2.body
    assert c1.key_commitment != c2.key_commitment
    assert c1.key_blob != c2.key_blob


def test_ciphertext_hides_answer_value(task_keys) -> None:
    c_zero = encrypt_answer(task_keys.public_key, [0], MIMC, random.Random(5))
    # Even answer 0 yields a full-size random-looking body element.
    assert c_zero.body[0] != 0
    assert c_zero.body[0].bit_length() > 200


def test_wrong_key_fails(task_keys) -> None:
    other = TaskKeyPair.generate(bits=1024, rng=random.Random(6))
    ciphertext = encrypt_answer(task_keys.public_key, [2], MIMC, random.Random(7))
    with pytest.raises(DecryptionError):
        decrypt_answer(other, ciphertext, MIMC)


def test_tampered_commitment_detected(task_keys) -> None:
    ciphertext = encrypt_answer(task_keys.public_key, [2], MIMC, random.Random(8))
    tampered = AnswerCiphertext(
        key_commitment=ciphertext.key_commitment + 1,
        nonce=ciphertext.nonce,
        body=ciphertext.body,
        key_blob=ciphertext.key_blob,
    )
    with pytest.raises(DecryptionError):
        recover_answer_key(task_keys, tampered, MIMC)


def test_tampered_blob_detected(task_keys) -> None:
    ciphertext = encrypt_answer(task_keys.public_key, [2], MIMC, random.Random(9))
    blob = bytearray(ciphertext.key_blob)
    blob[4] ^= 1
    tampered = AnswerCiphertext(
        key_commitment=ciphertext.key_commitment,
        nonce=ciphertext.nonce,
        body=ciphertext.body,
        key_blob=bytes(blob),
    )
    with pytest.raises(DecryptionError):
        recover_answer_key(task_keys, tampered, MIMC)


def test_wire_roundtrip(task_keys) -> None:
    ciphertext = encrypt_answer(task_keys.public_key, [2, 3], MIMC, random.Random(10))
    assert AnswerCiphertext.from_wire(ciphertext.to_wire()) == ciphertext
    assert ciphertext.size_bytes() == len(ciphertext.to_wire())


def test_decrypt_with_key_matches_full_decrypt(task_keys) -> None:
    ciphertext = encrypt_answer(task_keys.public_key, [2], MIMC, random.Random(11))
    key = recover_answer_key(task_keys, ciphertext, MIMC)
    assert decrypt_with_key(key, ciphertext, MIMC) == [2]


def test_empty_answer_rejected(task_keys) -> None:
    with pytest.raises(ValueError):
        encrypt_answer(task_keys.public_key, [], MIMC, random.Random(12))


def test_system_rng_path(task_keys) -> None:
    ciphertext = encrypt_answer(task_keys.public_key, [5], MIMC, rng=None)
    assert decrypt_answer(task_keys, ciphertext, MIMC) == [5]
