"""TaskContract lifecycle on-chain (Algorithm 1, every branch)."""

from __future__ import annotations

import pytest

from repro.chain.address import ZERO_ADDRESS
from repro.chain.transaction import Transaction, encode_call
from repro.core import MajorityVotePolicy, Requester, Worker
from repro.core.anonymity import derive_one_task_account

POLICY = MajorityVotePolicy(num_choices=4)


def _poke_finalize(system, worker, task_address):
    """Any participant calls finalize_timeout (here: a worker account)."""
    account = derive_one_task_account(worker._seed, f"task:{task_address.hex()}")
    tx = Transaction(
        nonce=system.node.nonce_of(account.address), gas_price=1,
        gas_limit=10_000_000, to=task_address, value=0,
        data=encode_call("finalize_timeout", []),
    )
    return system.send_and_confirm(tx.sign(account.keypair))


def test_deployment_escrows_budget(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=2_000)
    assert zebra_system.node.balance_of(task.address) == 2_000
    assert task.phase() == "collecting"
    params = zebra_system.node.call(task.address, "get_params")
    assert params["budget"] == 2_000
    assert params["num_answers"] == 2


def test_happy_path_completes_and_refunds(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=1_000)
    for worker, vote in zip(workers, [0, 0, 1]):
        assert worker.submit_answer(task, [vote]).receipt.success
    assert task.is_collection_closed()
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    assert task.phase() == "completed"
    assert task.rewards() == [333, 333, 0]
    # Contract fully drained: winners paid, remainder refunded to α_R.
    assert task.balance() == 0
    requester_account = derive_one_task_account(requester._seed, "r1/task-0")
    # refund = 1000 - 666 = 334 on top of leftover funding gas budget
    assert zebra_system.node.balance_of(requester_account.address) > 0


def test_rewards_reach_worker_accounts(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    workers = [Worker(zebra_system, f"w{i}") for i in range(2)]
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=600)
    before = {}
    for worker in workers:
        worker.submit_answer(task, [2])
        before[worker.identity] = worker.reward_received(task.address)
    requester.evaluate_and_reward(task)
    for worker in workers:
        assert worker.reward_received(task.address) - before[worker.identity] == 300


def test_submission_after_capacity_rejected(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    assert Worker(zebra_system, "w0").submit_answer(task, [1]).receipt.success
    late = Worker(zebra_system, "w1")
    record = late.submit_answer(task, [1], validate=False)
    assert not record.receipt.success
    assert "full" in record.receipt.error or "collecting" in record.receipt.error


def test_submission_after_deadline_rejected(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    task = requester.publish_task(
        POLICY, "t", num_answers=3, budget=300, answer_window=2
    )
    zebra_system.mine(3)  # blow past T_A
    worker = Worker(zebra_system, "w0")
    record = worker.submit_answer(task, [1], validate=False)
    assert not record.receipt.success
    assert "deadline" in record.receipt.error


def test_partial_collection_still_rewardable(zebra_system) -> None:
    """Fewer than n answers by T_A: remaining slots are ⊥-padded and the
    same n-slot verification key still verifies the instruction."""
    requester = Requester(zebra_system, "r1")
    task = requester.publish_task(
        POLICY, "t", num_answers=4, budget=400, answer_window=8
    )
    workers = [Worker(zebra_system, f"w{i}") for i in range(2)]
    for worker in workers:
        assert worker.submit_answer(task, [1]).receipt.success
    deadline = zebra_system.node.call(task.address, "answer_deadline")
    while zebra_system.testnet.height <= deadline:
        zebra_system.mine()
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    # Each present winner gets τ/n = 100 (unit is over n, not count).
    assert task.rewards() == [100, 100]
    assert task.phase() == "completed"


def test_timeout_even_split(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    workers = [Worker(zebra_system, f"w{i}") for i in range(2)]
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=900,
                                  instruction_window=3)
    for worker in workers:
        worker.submit_answer(task, [1])
    # Requester stonewalls; pass the instruction deadline.
    zebra_system.mine(6)
    receipt = _poke_finalize(zebra_system, workers[0], task.address)
    assert receipt.success, receipt.error
    assert task.phase() == "defaulted"
    assert task.rewards() == [450, 450]


def test_timeout_before_deadline_rejected(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    worker = Worker(zebra_system, "w0")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100,
                                  instruction_window=50)
    worker.submit_answer(task, [1])
    receipt = _poke_finalize(zebra_system, worker, task.address)
    assert not receipt.success
    assert "window still open" in receipt.error


def test_zero_answers_aborts_with_refund(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    worker = Worker(zebra_system, "w0")  # only used to poke finalize
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=500,
                                  answer_window=1)
    zebra_system.mine(3)
    zebra_system.fund_anonymous(
        derive_one_task_account(worker._seed, f"task:{task.address.hex()}").address
    )
    receipt = _poke_finalize(zebra_system, worker, task.address)
    assert receipt.success, receipt.error
    assert task.phase() == "aborted"
    assert task.balance() == 0


def test_instruction_from_non_requester_rejected(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    worker = Worker(zebra_system, "w0")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    worker.submit_answer(task, [1])
    account = derive_one_task_account(worker._seed, f"task:{task.address.hex()}")
    tx = Transaction(
        nonce=zebra_system.node.nonce_of(account.address), gas_price=1,
        gas_limit=10_000_000, to=task.address, value=0,
        data=encode_call("submit_reward_instruction",
                         [[100], [1], "mock", b"\x00" * 256]),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(account.keypair))
    assert not receipt.success
    assert "only the requester" in receipt.error


def test_double_settlement_rejected(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    worker = Worker(zebra_system, "w0")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    worker.submit_answer(task, [1])
    assert requester.evaluate_and_reward(task).success
    second = requester.evaluate_and_reward(task)
    assert not second.success


def test_flagged_share_burned(zebra_system) -> None:
    """A requester flagging a (actually honest) slot burns its share."""
    requester = Requester(zebra_system, "r1")
    workers = [Worker(zebra_system, f"w{i}") for i in range(2)]
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=600)
    for worker in workers:
        worker.submit_answer(task, [1])

    # Interfere with the requester's view: force flag slot 1 by patching
    # decrypt_answers output path — simplest honest simulation is a worker
    # with an undecryptable blob, so craft one directly on-chain instead.
    # Here we exercise the burn accounting through the honest path with a
    # genuinely malformed submission in test_malicious_worker; this test
    # verifies the ZERO_ADDRESS sink exists and starts empty.
    burned_before = zebra_system.node.balance_of(ZERO_ADDRESS)
    assert requester.evaluate_and_reward(task).success
    assert zebra_system.node.balance_of(ZERO_ADDRESS) == burned_before


def test_tags_include_requester_first(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    worker = Worker(zebra_system, "w0")
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=100)
    worker.submit_answer(task, [1])
    tags = zebra_system.node.call(task.address, "get_tags")
    assert len(tags) == 2  # requester's tag + one submission tag


def test_all_nodes_agree_after_lifecycle(zebra_system) -> None:
    requester = Requester(zebra_system, "r1")
    worker = Worker(zebra_system, "w0")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    worker.submit_answer(task, [2])
    requester.evaluate_and_reward(task)
    zebra_system.testnet.assert_consensus()
