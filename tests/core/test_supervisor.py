"""Per-task supervision: backoff, circuit breaking, quarantine isolation."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.core.engine import (
    ProtocolEngine,
    engine_system,
    make_chaos_specs,
)
from repro.core.supervisor import (
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
    TaskSupervisor,
)

from repro.core.accounting import assert_exactly_once_payouts


# ----- RetryPolicy ------------------------------------------------------------


def test_retry_delay_is_capped_exponential() -> None:
    policy = RetryPolicy(base_delay=2, max_delay=16, jitter=0)
    delays = [policy.delay(attempt, b"seed") for attempt in range(1, 8)]
    assert delays == [2, 4, 8, 16, 16, 16, 16]


def test_retry_jitter_is_deterministic_and_bounded() -> None:
    policy = RetryPolicy(base_delay=1, max_delay=8, jitter=3)
    for attempt in range(1, 10):
        first = policy.delay(attempt, b"task-7")
        assert first == policy.delay(attempt, b"task-7")  # replayable
        base = min(8, 1 << (attempt - 1))
        assert base <= first <= base + 3


def test_retry_jitter_desynchronizes_tasks() -> None:
    policy = RetryPolicy(base_delay=1, max_delay=1, jitter=7)
    delays = {policy.delay(1, bytes([i])) for i in range(32)}
    assert len(delays) > 1  # not a lockstep wave


def test_retry_policy_rejects_bad_shapes() -> None:
    with pytest.raises(ProtocolError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ProtocolError):
        RetryPolicy(base_delay=4, max_delay=2)
    with pytest.raises(ProtocolError):
        RetryPolicy(jitter=-1)


# ----- CircuitBreaker ---------------------------------------------------------


def test_breaker_opens_at_threshold_only() -> None:
    breaker = CircuitBreaker(threshold=3)
    assert breaker.record_failure() is False
    assert breaker.record_failure() is False
    assert breaker.record_failure() is True
    assert breaker.open
    assert breaker.record_failure() is False  # already open


def test_breaker_success_closes_and_resets() -> None:
    breaker = CircuitBreaker(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    assert breaker.failures == 0 and not breaker.open
    breaker.record_failure()
    assert not breaker.open  # the count restarted


# ----- TaskSupervisor over a scripted runner ----------------------------------


class _ScriptedRunner:
    """A fake runner whose steps fail until told otherwise."""

    def __init__(self, failures: int, recover_works: bool = False) -> None:
        self.index = 0
        self.state = "working"
        self.remaining_failures = failures
        self.recover_works = recover_works
        self.steps = 0
        self.quarantined_reason = None

    @property
    def done(self) -> bool:
        return self.state == "done"

    def step(self) -> None:
        self.steps += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise ProtocolError("scripted failure")
        self.state = "done"

    def recover(self, exc) -> bool:
        return self.recover_works

    def quarantine(self, reason: str) -> None:
        self.quarantined_reason = reason
        self.state = "done"


def _drive(supervisor: TaskSupervisor, rounds: int) -> None:
    for round_index in range(rounds):
        supervisor.step(round_index)


def test_supervisor_backs_off_between_retries() -> None:
    runner = _ScriptedRunner(failures=2)
    supervisor = TaskSupervisor(
        runner, policy=RetryPolicy(base_delay=2, max_delay=8, jitter=0),
        breaker_threshold=5,
    )
    _drive(supervisor, 12)
    assert runner.done and runner.quarantined_reason is None
    # 2 failures + 1 success, separated by the 2- and 4-round backoffs.
    assert runner.steps == 3
    assert supervisor.retries == 2


def test_supervisor_recovery_resets_the_breaker() -> None:
    runner = _ScriptedRunner(failures=10, recover_works=True)
    supervisor = TaskSupervisor(runner, breaker_threshold=2)
    _drive(supervisor, 10)
    # Every failure recovers, so the breaker never opens.
    assert runner.quarantined_reason is None
    assert supervisor.recoveries == 10
    assert supervisor.retries == 0


def test_supervisor_quarantines_on_persistent_failure() -> None:
    runner = _ScriptedRunner(failures=100)
    supervisor = TaskSupervisor(
        runner, policy=RetryPolicy(base_delay=1, max_delay=1, jitter=0),
        breaker_threshold=3,
    )
    _drive(supervisor, 10)
    assert runner.quarantined_reason is not None
    assert "scripted failure" in runner.quarantined_reason
    assert supervisor.retries == 3  # no more steps after quarantine


def test_supervisor_restore_failures_reopens_breaker() -> None:
    runner = _ScriptedRunner(failures=0)
    supervisor = TaskSupervisor(runner, breaker_threshold=3)
    supervisor.restore_failures(3)
    assert supervisor.breaker.state == BREAKER_OPEN
    assert supervisor.failures == 3


# ----- quarantine isolation at engine scale -----------------------------------


def test_quarantined_task_never_stalls_siblings() -> None:
    system = engine_system(3, 3, seed=b"quarantine-isolation")
    specs = make_chaos_specs(
        system, 3, 3, seed=21, stonewall=[0], instruction_window=8
    )
    engine = ProtocolEngine(system, specs, breaker_threshold=2)
    report = engine.run()

    byzantine, healthy = report.outcomes[0], report.outcomes[1:]
    assert byzantine.quarantined
    assert byzantine.status == "defaulted"
    # Even split of the stonewalled budget over its three submitters.
    assert byzantine.rewards == [400, 400, 400]
    for outcome in healthy:
        assert not outcome.quarantined
        assert outcome.status == "completed"
        # Healthy tasks settle on the normal schedule: well before the
        # byzantine sibling's instruction window even expires.
        assert outcome.phase_blocks["rewarding"] < byzantine.phase_blocks["settled"]
    assert report.resilience["quarantined"] == 1
    assert_exactly_once_payouts(system, specs, report.outcomes)


def test_zero_answer_task_auto_settles_into_abort() -> None:
    system = engine_system(2, 3, seed=b"zero-answer-abort")
    specs = make_chaos_specs(
        system, 2, 3, seed=4, empty=[0], answer_window=6
    )
    engine = ProtocolEngine(system, specs)
    report = engine.run()

    aborted, healthy = report.outcomes
    # The zero-answer task settled through finalize_timeout WITHOUT
    # tripping the breaker: it is routed, not quarantined.
    assert aborted.status == "aborted"
    assert not aborted.quarantined
    assert aborted.rewards == []
    # Full refund: the whole budget came back to the requester's
    # task account, and the contract kept nothing.
    assert system.node.balance_of(aborted.address) == 0
    assert healthy.status == "completed"
    assert_exactly_once_payouts(system, specs, report.outcomes)
