"""Cross-task attacks while several tasks are in flight at once.

The engine runs many Algorithm-1 instances concurrently against one
chain, which opens attack surface the serial tests never see: a
credential/attestation minted for task A replayed into concurrently
open task B, and mempool-level front-running of a submission from one
task into another.  The defenses under test are the ones DESIGN.md
derives from the paper: every attestation message starts with the
task's *common prefix* (α_C ‖ task address), so tags link double
submissions within a task but verification fails for any other task.
"""

from __future__ import annotations

import pytest

from repro.anonauth.scheme import task_prefix
from repro.chain.transaction import Transaction, encode_call
from repro.core import MajorityVotePolicy, Requester, Worker
from repro.core.anonymity import derive_one_task_account
from repro.serialization import decode

POLICY = MajorityVotePolicy(num_choices=4)


def _publish_pair(zebra_system):
    """Two tasks from different requesters, both open at once."""
    task_a = Requester(zebra_system, "req-a").publish_task(
        POLICY, "task-a", num_answers=2, budget=200, answer_window=60
    )
    task_b = Requester(zebra_system, "req-b").publish_task(
        POLICY, "task-b", num_answers=2, budget=200, answer_window=60
    )
    return task_a, task_b


def _submission_calldata(zebra_system, task_address):
    """The (ciphertext, attestation) wires of a mined submission."""
    for stx in zebra_system.testnet.network.transaction_log:
        if stx.transaction.to == task_address and stx.transaction.data:
            _, method, args = decode(stx.transaction.data)
            if method == "submit_answer":
                return args
    raise AssertionError("no submission found in the ledger")


def test_attestation_replay_across_concurrent_tasks_rejected(zebra_system) -> None:
    """A (ciphertext, attestation) pair minted for task A fails on task B.

    The attestation's message is prefixed with task A's common prefix,
    so task B's Verify recomputes a different statement and the proof
    cannot check out — even though both tasks are live, share the
    registry commitment, and accept the same answer format.
    """
    task_a, task_b = _publish_pair(zebra_system)
    victim = Worker(zebra_system, "victim")
    assert victim.submit_answer(task_a, [1]).receipt.success

    ciphertext_wire, attestation_wire = _submission_calldata(
        zebra_system, task_a.address
    )
    attacker = derive_one_task_account(b"replayer", f"task:{task_b.address.hex()}")
    zebra_system.fund_anonymous(attacker.address)
    tx = Transaction(
        nonce=0, gas_price=1, gas_limit=10_000_000, to=task_b.address, value=0,
        data=encode_call("submit_answer", [ciphertext_wire, attestation_wire]),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(attacker.keypair))
    assert not receipt.success
    assert "not authenticated" in receipt.error
    assert task_b.answer_count() == 0
    # Task A's original stands untouched.
    assert task_a.answer_count() == 1


def test_double_submission_linked_even_with_other_tasks_open(zebra_system) -> None:
    """Common-prefix linkability is per task and survives concurrency.

    The same worker may serve two concurrent tasks (different prefixes
    → unlinkable tags, by design), but a second submission to the SAME
    task links via t1 no matter how much unrelated traffic interleaves.
    """
    task_a, task_b = _publish_pair(zebra_system)
    worker = Worker(zebra_system, "moonlighter")
    assert worker.submit_answer(task_a, [2]).receipt.success
    # Serving the concurrent task B with the same credential is fine …
    assert worker.submit_answer(task_b, [3]).receipt.success

    # … but a second answer to task A (fresh address, fresh ciphertext,
    # fresh proof — everything a rational cheater would randomize) still
    # carries the same t1 = H(prefix_A, sk) and is rejected.
    prepared = worker.prepare_submission(task_a, [1])
    fresh = derive_one_task_account(b"second-try", f"task:{task_a.address.hex()}")
    zebra_system.fund_anonymous(fresh.address)
    _, _, args = decode(prepared.transaction.data)
    tx = Transaction(
        nonce=0, gas_price=1, gas_limit=10_000_000, to=task_a.address, value=0,
        data=encode_call("submit_answer", args),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(fresh.keypair))
    assert not receipt.success
    assert "double submission" in receipt.error
    assert task_a.answer_count() == 1
    assert task_b.answer_count() == 1


def test_submission_cannot_be_front_run_into_other_task(zebra_system) -> None:
    """A mempool observer cannot divert a pending submission to task B.

    The victim's transaction is broadcast but NOT yet mined; the
    attacker lifts its calldata from the open mempool, outbids it on
    gas price, and targets concurrently open task B.  When the block is
    mined the attacker's copy executes first and fails Verify (wrong
    prefix), while the victim's original lands in task A untouched.
    """
    task_a, task_b = _publish_pair(zebra_system)
    worker = Worker(zebra_system, "victim")
    prepared = worker.prepare_submission(task_a, [1])
    # Fund both parties BEFORE anything is broadcast: funding mines a
    # block, which would otherwise consume the victim's pending tx.
    attacker = derive_one_task_account(b"front", f"task:{task_b.address.hex()}")
    zebra_system.fund_anonymous(prepared.account.address)
    zebra_system.fund_anonymous(
        attacker.address, amount=10 * 10_000_000 * 10  # 10x gas price upfront
    )

    sender = zebra_system.testnet.tx_sender
    pending = sender.broadcast(prepared.transaction, prepared.account.keypair)

    # The attacker watches the mempool of any node.
    observed = None
    for stx in zebra_system.node.mempool.pending():
        if stx.transaction.to == task_a.address and stx.transaction.data:
            _, method, args = decode(stx.transaction.data)
            if method == "submit_answer":
                observed = args
    assert observed is not None, "victim's submission should be pending"

    front_run = Transaction(
        nonce=0, gas_price=prepared.transaction.gas_price * 10,
        gas_limit=10_000_000, to=task_b.address, value=0,
        data=encode_call("submit_answer", observed),
    )
    front_pending = sender.broadcast(front_run, attacker.keypair)

    zebra_system.mine(2)
    victim_receipt = sender.poll(pending)
    attacker_receipt = sender.poll(front_pending)
    assert victim_receipt is not None and victim_receipt.success
    assert attacker_receipt is not None and not attacker_receipt.success
    assert task_a.answer_count() == 1
    assert task_b.answer_count() == 0


def test_engine_tasks_stay_isolated(zebra_system) -> None:
    """Belt and braces: the same cohort run through the engine yields
    one reward vector per task with no cross-task leakage of answers."""
    from repro.core.engine import ProtocolEngine, TaskSpec

    requesters = [Requester(zebra_system, f"eng-r{i}") for i in range(2)]
    workers = [[Worker(zebra_system, f"eng-w{i}{j}") for j in range(2)] for i in range(2)]
    specs = [
        TaskSpec(
            requester=requesters[i],
            workers=workers[i],
            answers=[[i], [i]],  # task i's workers all answer i
            policy=POLICY,
            description=f"iso-{i}",
            budget=200,
        )
        for i in range(2)
    ]
    report = ProtocolEngine(zebra_system, specs).run()
    assert [o.rewards for o in report.outcomes] == [[100, 100], [100, 100]]
    addresses = {o.address for o in report.outcomes}
    assert len(addresses) == 2
