"""Protocol-level anonymity: the on-chain view cannot link participants."""

from __future__ import annotations

from repro.core import MajorityVotePolicy, Requester, Worker

POLICY = MajorityVotePolicy(num_choices=4)


def test_same_workers_two_tasks_share_nothing_onchain(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task_a = requester.publish_task(POLICY, "task A", num_answers=3, budget=300)
    for worker in workers:
        worker.submit_answer(task_a, [1])
    task_b = requester.publish_task(POLICY, "task B", num_answers=3, budget=300)
    for worker in workers:
        worker.submit_answer(task_b, [2])
    node = zebra_system.node
    addresses_a = set(node.call(task_a.address, "get_submitters"))
    addresses_b = set(node.call(task_b.address, "get_submitters"))
    tags_a = set(node.call(task_a.address, "get_tags"))
    tags_b = set(node.call(task_b.address, "get_tags"))
    assert not (addresses_a & addresses_b)
    assert not (tags_a & tags_b)


def test_requester_uses_fresh_address_per_task(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    task_a = requester.publish_task(POLICY, "A", num_answers=1, budget=100)
    task_b = requester.publish_task(POLICY, "B", num_answers=1, budget=100)
    node = zebra_system.node
    requester_a = node.call(task_a.address, "get_requester")
    requester_b = node.call(task_b.address, "get_requester")
    assert requester_a != requester_b


def test_submitter_addresses_not_registered_identities(zebra_system) -> None:
    """One-task addresses are unrelated to any identity the RA knows."""
    requester = Requester(zebra_system, "r")
    worker = Worker(zebra_system, "w")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    worker.submit_answer(task, [0])
    submitter = zebra_system.node.call(task.address, "get_submitters")[0]
    # The address derives from the worker's private seed — nothing in the
    # registry (which holds field-element identity commitments) matches.
    assert submitter != worker.keys.public_key.to_bytes(32, "big")[:20]


def test_tags_unique_per_task_participant(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300)
    for worker in workers:
        worker.submit_answer(task, [1])
    tags = zebra_system.node.call(task.address, "get_tags")
    assert len(tags) == len(set(tags)) == 4  # requester + 3 workers
