"""Reward circuits: R1CS ↔ native policy agreement, soundness probes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolicyError, ProofError, UnsatisfiedConstraintError
from repro.core.policy import MajorityVotePolicy, ProportionalAgreementPolicy
from repro.core.reward_circuit import (
    MajorityRewardCircuit,
    OraclePolicyCircuit,
    build_reward_instance,
    decrypt_instance_answers,
    make_reward_circuit,
    padding_entry,
    reward_statement,
)
from repro.zksnark import MockBackend
from repro.zksnark.gadgets.mimc import MiMCParameters

MIMC = MiMCParameters.for_rounds(7)
POLICY = MajorityVotePolicy(num_choices=4)


def _instance(votes, budget=120, policy=POLICY):
    answers = [None if v is None else [v] for v in votes]
    keys = [0 if v is None else 100 + i for i, v in enumerate(votes)]
    return build_reward_instance(policy, budget, keys, answers, MIMC)


@given(st.lists(st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
                min_size=1, max_size=6),
       st.integers(min_value=6, max_value=10**5))
@settings(max_examples=25, deadline=None)
def test_circuit_satisfied_iff_policy_followed(votes, budget) -> None:
    instance = _instance(votes, budget)
    circuit = MajorityRewardCircuit(len(votes), POLICY, MIMC)
    cs = circuit.build(instance)
    cs.check_satisfied()  # honest instance always satisfies
    # Public values must equal the canonical statement the contract builds.
    assert cs.public_values() == reward_statement(
        instance.budget, instance.reward_unit, instance.entries, instance.rewards
    )


@pytest.mark.parametrize(
    "votes,cheat",
    [
        ([1, 1, 2], [0, 0, 40]),     # pay the minority
        ([1, 1, 2], [40, 40, 40]),   # pay everyone
        ([1, 1, 2], [0, 0, 0]),      # pay nobody
        ([1, 1, 2], [41, 40, 0]),    # overpay one winner
    ],
)
def test_cheating_reward_vectors_unsatisfiable(votes, cheat) -> None:
    answers = [[v] for v in votes]
    keys = [100 + i for i in range(len(votes))]
    instance = build_reward_instance(
        POLICY, 120, keys, answers, MIMC, rewards=cheat
    )
    circuit = MajorityRewardCircuit(len(votes), POLICY, MIMC)
    with pytest.raises(UnsatisfiedConstraintError):
        circuit.build(instance).check_satisfied()


def test_wrong_reward_unit_unsatisfiable() -> None:
    """A requester shrinking u = ⌊τ/n⌋ to underpay is caught by the
    remainder range check."""
    instance = _instance([1, 1, 1], budget=120)
    cheat = type(instance)(
        budget=instance.budget,
        reward_unit=instance.reward_unit - 10,
        entries=instance.entries,
        rewards=(30, 30, 30),
        keys=instance.keys,
    )
    circuit = MajorityRewardCircuit(3, POLICY, MIMC)
    with pytest.raises((UnsatisfiedConstraintError, Exception)):
        cs = circuit.build(cheat)
        cs.check_satisfied()


def test_flagged_slot_semantics() -> None:
    instance = _instance([1, None, 1], budget=90)
    assert instance.rewards == (30, 0, 30)
    circuit = MajorityRewardCircuit(3, POLICY, MIMC)
    circuit.build(instance).check_satisfied()


def test_false_flagging_an_honest_slot_is_provable_but_costly() -> None:
    """Flagging is *allowed* by the circuit (the burn is the contract's
    deterrent) — the flagged slot simply becomes ⊥."""
    answers = [[1], [1], None]  # requester pretends slot 2 was malformed
    keys = [100, 101, 0]
    instance = build_reward_instance(POLICY, 90, keys, answers, MIMC)
    MajorityRewardCircuit(3, POLICY, MIMC).build(instance).check_satisfied()


def test_out_of_range_answer_gets_nothing() -> None:
    instance = _instance([1, 1, 99])
    assert instance.rewards[2] == 0
    MajorityRewardCircuit(3, POLICY, MIMC).build(instance).check_satisfied()


def test_padding_entry_is_canonical() -> None:
    entry = padding_entry(2)
    assert entry.ok == 0 and entry.body == (0, 0) and entry.key_commitment == 0


def test_statement_layout() -> None:
    instance = _instance([2, 0])
    statement = reward_statement(
        instance.budget, instance.reward_unit, instance.entries, instance.rewards
    )
    # [τ, u] + 2 slots × [h, nonce, c, ok] + 2 rewards
    assert len(statement) == 2 + 2 * 4 + 2
    assert statement[0] == instance.budget
    assert statement[1] == instance.reward_unit


def test_decrypt_instance_answers_roundtrip() -> None:
    instance = _instance([3, None, 1])
    assert decrypt_instance_answers(instance, MIMC) == [[3], None, [1]]


def test_instance_alignment_validated() -> None:
    with pytest.raises(PolicyError):
        build_reward_instance(POLICY, 10, [1], [[1], [2]], MIMC)


def test_make_reward_circuit_dispatch() -> None:
    assert isinstance(make_reward_circuit(POLICY, 3, MIMC), MajorityRewardCircuit)
    oracle = make_reward_circuit(ProportionalAgreementPolicy(3), 3, MIMC)
    assert isinstance(oracle, OraclePolicyCircuit)
    assert oracle.requires_ideal_backend


def test_oracle_circuit_native_check_blocks_cheating() -> None:
    policy = ProportionalAgreementPolicy(3)
    circuit = OraclePolicyCircuit(3, policy, MIMC)
    backend = MockBackend()
    keys = backend.setup(circuit, seed=b"oracle")
    honest = build_reward_instance(policy, 90, [1, 2, 3], [[1], [1], [2]], MIMC)
    proof = backend.prove(keys.proving_key, circuit, honest)
    statement = reward_statement(honest.budget, honest.reward_unit,
                                 honest.entries, honest.rewards)
    assert backend.verify(keys.verifying_key, statement, proof)
    cheat = build_reward_instance(
        policy, 90, [1, 2, 3], [[1], [1], [2]], MIMC, rewards=[90, 0, 0]
    )
    with pytest.raises(ProofError):
        backend.prove(keys.proving_key, circuit, cheat)


def test_oracle_digests_separate_policies() -> None:
    backend = MockBackend()
    c3 = OraclePolicyCircuit(3, ProportionalAgreementPolicy(3), MIMC)
    c4 = OraclePolicyCircuit(3, ProportionalAgreementPolicy(4), MIMC)
    k3 = backend.setup(c3, seed=b"d")
    k4 = backend.setup(c4, seed=b"d")
    assert (
        k3.verifying_key.circuit_digest != k4.verifying_key.circuit_digest
    )


def test_extra_digest_binds_shape() -> None:
    a = MajorityRewardCircuit(3, POLICY, MIMC)
    b = MajorityRewardCircuit(3, MajorityVotePolicy(num_choices=4), MIMC)
    assert a.extra_digest() == b.extra_digest()
    c = MajorityRewardCircuit(5, POLICY, MIMC)
    assert a.extra_digest() != c.extra_digest()


def test_public_inputs_shortcut_matches_build() -> None:
    instance = _instance([0, 1, 1, 2])
    circuit = MajorityRewardCircuit(4, POLICY, MIMC)
    assert circuit.public_inputs(instance) == circuit.build(instance).public_values()
