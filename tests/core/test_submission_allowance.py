"""The k-submission allowance (footnote 11): counting linked tags."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.core import MajorityVotePolicy, Requester
from repro.core.attacks import MultiSubmissionWorker
from repro.core.params import TaskParameters

POLICY = MajorityVotePolicy(num_choices=4)


def test_allowance_two_permits_exactly_two(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(
        POLICY, "k=2 task", num_answers=4, budget=400,
        answer_window=60, submissions_per_worker=2,
    )
    worker = MultiSubmissionWorker(zebra_system, "prolific")
    receipts = worker.submit_many(task, [[1], [2], [3]])
    outcomes = [r.success for r in receipts]
    assert outcomes == [True, True, False]
    assert task.answer_count() == 2


def test_default_allowance_is_one(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "k=1 task", num_answers=3,
                                  budget=300, answer_window=60)
    worker = MultiSubmissionWorker(zebra_system, "greedy")
    receipts = worker.submit_many(task, [[1], [1]])
    assert [r.success for r in receipts] == [True, False]


def test_allowance_task_settles_normally(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(
        POLICY, "k=2 settle", num_answers=2, budget=200,
        answer_window=60, submissions_per_worker=2,
    )
    worker = MultiSubmissionWorker(zebra_system, "solo")
    receipts = worker.submit_many(task, [[1], [1]])
    assert all(r.success for r in receipts)
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    assert task.rewards() == [100, 100]


def test_requester_still_blocked_regardless_of_allowance(zebra_system) -> None:
    from repro.core.attacks import SelfColludingRequester

    colluder = SelfColludingRequester(zebra_system, "colluder")
    task = colluder.publish_task(
        POLICY, "k=3 collusion", num_answers=3, budget=300,
        answer_window=60, submissions_per_worker=3,
    )
    receipt = colluder.attempt_colluding_answer(task, [0])
    assert not receipt.success
    assert "double submission" in receipt.error


def test_allowance_validation() -> None:
    with pytest.raises(ProtocolError):
        TaskParameters(
            description="d", num_answers=2, budget=10, answer_window=1,
            instruction_window=1, policy_descriptor={}, answer_arity=1,
            encryption_key_fingerprint=b"\x00" * 32,
            submissions_per_worker=0,
        )
    with pytest.raises(ProtocolError):
        TaskParameters(
            description="d", num_answers=2, budget=10, answer_window=1,
            instruction_window=1, policy_descriptor={}, answer_arity=1,
            encryption_key_fingerprint=b"\x00" * 32,
            submissions_per_worker=3,  # > num_answers
        )


def test_legacy_storage_defaults_to_one() -> None:
    raw = TaskParameters(
        description="d", num_answers=2, budget=10, answer_window=1,
        instruction_window=1, policy_descriptor={}, answer_arity=1,
        encryption_key_fingerprint=b"\x00" * 32,
    ).to_storage()
    del raw["submissions_per_worker"]
    assert TaskParameters.from_storage(raw).submissions_per_worker == 1
