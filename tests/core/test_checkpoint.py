"""Checkpoint codec and engine crash/restart convergence.

The acceptance sweep crashes one engine per scheduler round across a
16-task cohort — every Algorithm-1 phase boundary (funding, publishing,
worker funding, submission, collection, proving/rewarding) gets a kill
— and requires the resumed engine to converge to the *same* per-task
outcomes as an uninterrupted reference run, with every payment made
exactly once.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import CheckpointError
from repro.core.checkpoint import (
    CheckpointStore,
    EngineCheckpoint,
    FileCheckpointStore,
    PendingTxSnapshot,
    TaskSnapshot,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.core.engine import (
    ProtocolEngine,
    SimulatedEngineCrash,
    engine_system,
    make_uniform_specs,
)

from repro.core.accounting import assert_exactly_once_payouts

SWEEP_TASKS = 16
SWEEP_SEED = 77


def _sample_checkpoint() -> EngineCheckpoint:
    wave = [
        PendingTxSnapshot(
            nonce=0, gas_price=1, gas_limit=21_000, to=b"\x11" * 20,
            value=5, data=b"", chain_id=1, private_key=1234,
            sender=b"\x22" * 20, tx_hashes=[b"\xaa" * 32],
            broadcast_height=3, attempts=2,
        )
    ]
    task = TaskSnapshot(
        index=0, state="submitting", requester_identity="requester-0",
        worker_identities=["worker-0-0", "worker-0-1"],
        answers=[[1], None], policy_descriptor={"name": "majority-vote",
        "num_choices": 4}, description="t", budget=1_200, answer_window=32,
        instruction_window=32, rsa_bits=1024, audit=False,
        requester_mode="honest", equivocators=[], task_index=0,
        address=b"\x33" * 20, account_nonce=1,
        phase_blocks={"funding": 1}, phase_times={"funding": 15},
        rewards=[], status="", quarantined=False, quarantine_reason="",
        wave=wave, byzantine_wave=[], failures=1,
    )
    return EngineCheckpoint(
        round=4, head_height=5, head_hash=b"\x44" * 32,
        nonce_reservations={b"\x22" * 20: 1}, janitor_key=0, tasks=[task],
    )


def test_checkpoint_roundtrip_preserves_everything() -> None:
    checkpoint = _sample_checkpoint()
    decoded = decode_checkpoint(encode_checkpoint(checkpoint))
    assert decoded == checkpoint
    pending = decoded.tasks[0].wave[0].to_pending()
    assert pending.transaction.nonce == 0
    assert pending.keypair is not None
    assert pending.attempts == 2


def test_checkpoint_rejects_truncation_everywhere() -> None:
    wire = encode_checkpoint(_sample_checkpoint())
    for cut in (0, 1, 4, len(wire) // 2, len(wire) - 1):
        with pytest.raises(CheckpointError):
            decode_checkpoint(wire[:cut])


def test_checkpoint_rejects_corruption_and_bad_version() -> None:
    wire = encode_checkpoint(_sample_checkpoint())
    flipped = bytearray(wire)
    flipped[len(wire) // 2] ^= 0x01
    with pytest.raises(CheckpointError):
        decode_checkpoint(bytes(flipped))
    with pytest.raises(CheckpointError):
        decode_checkpoint(b"NOPE" + wire[4:])
    # A future version must be refused, not misparsed — re-checksum a
    # body whose version byte was bumped.
    from repro.crypto.hashing import sha256

    body = bytearray(wire[:-32])
    body[4] = 99
    with pytest.raises(CheckpointError):
        decode_checkpoint(bytes(body) + sha256(bytes(body)))


def test_checkpoint_store_keeps_a_bounded_ring() -> None:
    store = CheckpointStore(keep=2)
    for i in range(5):
        store.save(bytes([i]))
    assert store.saves == 5
    assert len(store) == 2
    assert store.latest() == bytes([4])


def test_file_checkpoint_store_survives_process_death(tmp_path) -> None:
    path = tmp_path / "engine.ckpt"
    store = FileCheckpointStore(path)
    wire = encode_checkpoint(_sample_checkpoint())
    store.save(wire)
    # A fresh store (a restarted process) reads the file back.
    reborn = FileCheckpointStore(path)
    assert reborn.latest() == wire
    assert decode_checkpoint(reborn.latest()) == _sample_checkpoint()


# ----- the crash/restart acceptance sweep -------------------------------------


def _fresh(num_tasks: int = SWEEP_TASKS):
    system = engine_system(num_tasks, 3, seed=b"crash-sweep")
    specs = make_uniform_specs(system, num_tasks, 3, seed=SWEEP_SEED)
    return system, specs


@pytest.fixture(scope="module")
def reference_lines():
    system, specs = _fresh()
    report = ProtocolEngine(system, specs).run()
    assert all(o.status == "completed" for o in report.outcomes)
    return report.outcome_lines()


def test_crash_restart_converges_at_every_phase_boundary(
    reference_lines,
) -> None:
    phases_crashed_in = set()
    for crash_round in range(1, 7):
        system, specs = _fresh()
        store = CheckpointStore()

        def crash_hook(engine, rounds, at=crash_round):
            if rounds == at:
                raise SimulatedEngineCrash(f"killed at round {at}")

        engine = ProtocolEngine(
            system, specs,
            checkpoint_store=store, checkpoint_every=1, crash_hook=crash_hook,
        )
        with pytest.raises(SimulatedEngineCrash):
            engine.run()

        latest = store.latest()
        assert latest is not None
        checkpoint = decode_checkpoint(latest)
        phases_crashed_in.update(t.state for t in checkpoint.tasks)

        resumed = ProtocolEngine.resume(system, latest)
        report = resumed.run()
        assert report.outcome_lines() == reference_lines, (
            f"crash at round {crash_round} diverged"
        )
        assert_exactly_once_payouts(system, specs, report.outcomes)

    # The sweep must genuinely exercise distinct phase boundaries.
    assert len(phases_crashed_in) >= 6, phases_crashed_in


def test_resume_rejects_checkpoint_from_the_future() -> None:
    system, specs = _fresh(2)
    store = CheckpointStore()
    engine = ProtocolEngine(
        system, specs, checkpoint_store=store, checkpoint_every=1
    )
    engine.run()
    checkpoint = decode_checkpoint(store.latest())
    checkpoint.head_height = system.testnet.height + 100
    fresh_system, _ = _fresh(2)
    with pytest.raises(CheckpointError):
        ProtocolEngine.resume(fresh_system, encode_checkpoint(checkpoint))


def test_double_resume_is_idempotent(reference_lines) -> None:
    """Resuming, crashing again, and resuming again still converges."""
    system, specs = _fresh()
    store = CheckpointStore()

    def first_crash(engine, rounds):
        if rounds == 2:
            raise SimulatedEngineCrash("first death")

    engine = ProtocolEngine(
        system, specs,
        checkpoint_store=store, checkpoint_every=1, crash_hook=first_crash,
    )
    with pytest.raises(SimulatedEngineCrash):
        engine.run()

    def second_crash(engine, rounds):
        if rounds == 2:
            raise SimulatedEngineCrash("second death")

    resumed = ProtocolEngine.resume(
        system, store.latest(),
        checkpoint_store=store, checkpoint_every=1, crash_hook=second_crash,
    )
    with pytest.raises(SimulatedEngineCrash):
        resumed.run()

    final = ProtocolEngine.resume(system, store.latest())
    report = final.run()
    assert report.outcome_lines() == reference_lines
    assert_exactly_once_payouts(system, specs, report.outcomes)
