"""Requester / Worker client behaviours not covered by the e2e flows."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.core import MajorityVotePolicy, Requester, Worker

POLICY = MajorityVotePolicy(num_choices=4)


def test_clients_register_on_construction(zebra_system) -> None:
    before = zebra_system.authority.registered_count
    Requester(zebra_system, "reg-r")
    Worker(zebra_system, "reg-w")
    assert zebra_system.authority.registered_count == before + 2


def test_duplicate_identity_rejected(zebra_system) -> None:
    from repro.errors import RegistrationError

    Requester(zebra_system, "dup-identity")
    with pytest.raises(RegistrationError):
        Worker(zebra_system, "dup-identity")


def test_task_handle_views(zebra_system) -> None:
    requester = Requester(zebra_system, "views-r")
    task = requester.publish_task(POLICY, "views", num_answers=2, budget=200)
    assert task.phase() == "collecting"
    assert task.answer_count() == 0
    assert task.rewards() == []
    assert task.submitters() == []
    assert task.balance() == 200
    assert not task.is_collection_closed()


def test_worker_validates_budget_actually_deposited(zebra_system) -> None:
    requester = Requester(zebra_system, "honest-looking")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    worker = Worker(zebra_system, "careful")
    params = worker.validate_task(task.address)
    assert params.budget == 100


def test_worker_epk_fingerprint_check(zebra_system) -> None:
    requester = Requester(zebra_system, "fp-r")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    worker = Worker(zebra_system, "fp-w")
    epk = worker.read_task_epk(task.address)
    assert epk.fingerprint() == task.params.encryption_key_fingerprint


def test_decrypt_answers_before_any_submission(zebra_system) -> None:
    requester = Requester(zebra_system, "empty-r")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    answers, keys, flags = requester.decrypt_answers(task)
    assert answers == [] and keys == [] and flags == []
    with pytest.raises(ProtocolError):
        requester.evaluate_and_reward(task)


def test_worker_keeps_submission_records(zebra_system) -> None:
    requester = Requester(zebra_system, "rec-r")
    worker = Worker(zebra_system, "rec-w")
    task_a = requester.publish_task(POLICY, "a", num_answers=1, budget=100)
    task_b = requester.publish_task(POLICY, "b", num_answers=1, budget=100)
    worker.submit_answer(task_a, [1])
    worker.submit_answer(task_b, [2])
    assert len(worker.submissions) == 2
    assert worker.submissions[0].task_address == task_a.address
    assert worker.submissions[1].task_address == task_b.address
    assert (
        worker.submissions[0].account_address
        != worker.submissions[1].account_address
    )


def test_requester_task_counter_gives_distinct_accounts(zebra_system) -> None:
    requester = Requester(zebra_system, "ctr-r")
    task_a = requester.publish_task(POLICY, "a", num_answers=1, budget=100)
    task_b = requester.publish_task(POLICY, "b", num_answers=1, budget=100)
    node = zebra_system.node
    assert node.call(task_a.address, "get_requester") != node.call(
        task_b.address, "get_requester"
    )


def test_reward_material_cached(zebra_system) -> None:
    circuit_a, keys_a = zebra_system.reward_material(POLICY, 3)
    circuit_b, keys_b = zebra_system.reward_material(POLICY, 3)
    assert circuit_a is circuit_b and keys_a is keys_b
    circuit_c, _ = zebra_system.reward_material(POLICY, 4)
    assert circuit_c is not circuit_a
    other_policy = MajorityVotePolicy(num_choices=3)
    circuit_d, _ = zebra_system.reward_material(other_policy, 3)
    assert circuit_d is not circuit_a


def test_submit_answer_accepts_raw_address(zebra_system) -> None:
    requester = Requester(zebra_system, "addr-r")
    worker = Worker(zebra_system, "addr-w")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    record = worker.submit_answer(task.address, [0])  # bytes, not handle
    assert record.receipt.success
