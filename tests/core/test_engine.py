"""The concurrent engine: determinism, batching, and serial parity.

The scheduler's contract is bit-determinism: two runs from the same
seeds must produce identical block/receipt/reward transcripts, because
everything that orders work — runner stepping, mempool arrival, nonce
reservation, the proving queue — iterates in insertion order and no
wall clock ever reaches consensus data (block timestamps come from the
SimClock).
"""

from __future__ import annotations

import pytest

from repro.core.engine import (
    EngineReport,
    ProtocolEngine,
    engine_system,
    make_uniform_specs,
    run_serial,
)

N_TASKS = 8
WORKERS = 3


def _engine_run(
    system_seed: bytes, spec_seed: int, execution_lanes: int = 1
) -> EngineReport:
    system = engine_system(
        N_TASKS, WORKERS, backend_name="mock", seed=system_seed,
        execution_lanes=execution_lanes,
    )
    specs = make_uniform_specs(system, N_TASKS, WORKERS, seed=spec_seed)
    return ProtocolEngine(system, specs).run()


def test_same_seed_runs_are_bit_identical() -> None:
    """Two fresh N=8 runs from identical seeds: one transcript."""
    first = _engine_run(b"determinism", 11)
    second = _engine_run(b"determinism", 11)
    assert first.transcript() == second.transcript()
    assert first.transcript_digest() == second.transcript_digest()
    # The transcript covers blocks, txs, rewards and phase heights; spot
    # check the pieces anyway so a transcript() regression can't hide one.
    assert first.blocks == second.blocks
    assert [o.rewards for o in first.outcomes] == [o.rewards for o in second.outcomes]
    assert [o.phase_blocks for o in first.outcomes] == [
        o.phase_blocks for o in second.outcomes
    ]
    assert first.transactions == second.transactions


def test_lane_count_does_not_leak_into_transcripts() -> None:
    """Parallel execution is a node-local implementation detail: the
    same seeds with 4 optimistic lanes must produce the same blocks,
    receipts and rewards, bit for bit, as the serial scheduler."""
    serial = _engine_run(b"determinism", 11, execution_lanes=1)
    parallel = _engine_run(b"determinism", 11, execution_lanes=4)
    assert serial.transcript() == parallel.transcript()
    assert serial.transcript_digest() == parallel.transcript_digest()
    assert serial.blocks == parallel.blocks


def test_different_seeds_change_the_transcript() -> None:
    """Different system seed (keys, registry) → different transcript,
    and different spec seed (answers) → different transcript."""
    base = _engine_run(b"determinism", 11)
    other_system = _engine_run(b"determinism-2", 11)
    other_specs = _engine_run(b"determinism", 12)
    assert base.transcript_digest() != other_system.transcript_digest()
    assert base.transcript_digest() != other_specs.transcript_digest()


def test_engine_matches_serial_rewards_and_batches_blocks() -> None:
    """Same specs through both drivers: identical reward vectors, and
    the engine amortizes far fewer blocks than the serial baseline."""
    system = engine_system(4, WORKERS, backend_name="mock", seed=b"parity")
    specs = make_uniform_specs(system, 4, WORKERS, seed=3)
    serial = run_serial(system, specs)

    system = engine_system(4, WORKERS, backend_name="mock", seed=b"parity")
    specs = make_uniform_specs(system, 4, WORKERS, seed=3)
    engine = ProtocolEngine(system, specs).run()

    assert [o.rewards for o in engine.outcomes] == [
        o.rewards for o in serial.outcomes
    ]
    assert engine.blocks_mined * 4 <= serial.blocks_mined
    # Every task funded, published, collected, proved and rewarded.
    for outcome in engine.outcomes:
        assert set(outcome.phase_blocks) == {
            "funding", "publishing", "funding-workers", "submitting",
            "collecting", "proving", "rewarding",
        }


def test_absent_workers_close_at_deadline() -> None:
    """⊥ answers: the task closes on the answer window, not on n."""
    system = engine_system(2, 3, backend_name="mock", seed=b"absent")
    specs = make_uniform_specs(
        system, 2, 3, seed=5, absent_probability=0.5
    )
    report = ProtocolEngine(system, specs).run()
    assert all(o.rewards for o in report.outcomes)
    absent = sum(
        1 for spec in specs for answer in spec.answers if answer is None
    )
    present = sum(
        1 for spec in specs for answer in spec.answers if answer is not None
    )
    assert absent >= 1, "seed must produce at least one absent worker"
    assert sum(len(o.rewards) for o in report.outcomes) == present
