"""TaskParameters validation + the on-chain registry contract."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.chain.transaction import Transaction, encode_call
from repro.core.params import TaskParameters


def _params(**overrides) -> TaskParameters:
    fields = dict(
        description="d", num_answers=3, budget=300, answer_window=5,
        instruction_window=5, policy_descriptor={"name": "majority-vote"},
        answer_arity=1, encryption_key_fingerprint=b"\x00" * 32,
    )
    fields.update(overrides)
    return TaskParameters(**fields)


def test_params_roundtrip_storage() -> None:
    params = _params()
    assert TaskParameters.from_storage(params.to_storage()) == params


def test_params_validation() -> None:
    with pytest.raises(ProtocolError):
        _params(num_answers=0)
    with pytest.raises(ProtocolError):
        _params(budget=1)  # below one unit per answer
    with pytest.raises(ProtocolError):
        _params(answer_window=0)
    with pytest.raises(ProtocolError):
        _params(instruction_window=0)


def test_registry_initial_state(zebra_system) -> None:
    node = zebra_system.node
    registry = zebra_system.registry_address
    assert node.call(registry, "get_cert_mode") == "merkle"
    assert node.call(registry, "get_commitment") == (
        zebra_system.authority.registry_commitment()
    )
    assert node.call(registry, "get_auth_vk") is not None


def test_registration_pushes_commitment_history(zebra_system) -> None:
    from repro.anonauth.keys import UserKeyPair

    node = zebra_system.node
    registry = zebra_system.registry_address
    old = node.call(registry, "get_commitment")
    user = UserKeyPair.generate(zebra_system.mimc, seed=b"new-user")
    zebra_system.register_participant("new-user", user.public_key)
    new = node.call(registry, "get_commitment")
    assert new != old
    assert node.call(registry, "is_known_commitment", [old])
    assert node.call(registry, "is_known_commitment", [new])
    assert not node.call(registry, "is_known_commitment", [12345])


def test_only_authority_updates_commitment(zebra_system) -> None:
    from repro.crypto import ecdsa

    intruder = ecdsa.ECDSAKeyPair.from_seed(b"intruder")
    zebra_system.testnet.fund(intruder.address(), 10**9)
    tx = Transaction(
        nonce=0, gas_price=1, gas_limit=1_000_000,
        to=zebra_system.registry_address, value=0,
        data=encode_call("update_commitment", [999]),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(intruder))
    assert not receipt.success
    assert "only the registration authority" in receipt.error


def test_duplicate_commitment_update_is_noop(zebra_system) -> None:
    node = zebra_system.node
    registry = zebra_system.registry_address
    current = node.call(registry, "get_commitment")
    ra_nonce = zebra_system.testnet.tx_sender.nonces.reserve(
        zebra_system._ra_key.address()
    )
    tx = Transaction(
        nonce=ra_nonce, gas_price=1, gas_limit=1_000_000,
        to=registry, value=0,
        data=encode_call("update_commitment", [current]),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(zebra_system._ra_key))
    assert receipt.success
    state = node.head_state.account(registry).storage
    assert state["commitments"].count(current) == 1
