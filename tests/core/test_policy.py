"""Reward policies: math properties + budget feasibility."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolicyError
from repro.core.policy import (
    DawidSkeneEMPolicy,
    MajorityVotePolicy,
    ProportionalAgreementPolicy,
    ReverseAuctionPolicy,
)

# ----- majority vote ----------------------------------------------------------


def test_majority_basic() -> None:
    policy = MajorityVotePolicy(num_choices=3)
    rewards = policy.compute_rewards([[1], [1], [2]], budget=90)
    assert rewards == [30, 30, 0]


def test_majority_tie_breaks_low() -> None:
    policy = MajorityVotePolicy(num_choices=3)
    rewards = policy.compute_rewards([[2], [0]], budget=100)
    assert rewards == [0, 50]  # choice 0 wins the tie


def test_majority_missing_answers_are_bot() -> None:
    policy = MajorityVotePolicy(num_choices=3)
    rewards = policy.compute_rewards([[1], None, [1]], budget=90)
    assert rewards == [30, 0, 30]


def test_majority_out_of_range_never_rewarded() -> None:
    policy = MajorityVotePolicy(num_choices=3)
    rewards = policy.compute_rewards([[7], [7], [1]], budget=90)
    # 7 is not a valid choice: no votes for it, choice 1 wins.
    assert rewards == [0, 0, 30]


def test_majority_all_bot() -> None:
    policy = MajorityVotePolicy(num_choices=3)
    assert policy.compute_rewards([None, None], budget=10) == [0, 0]
    assert policy.majority_value([None, None]) is None


def test_majority_empty() -> None:
    policy = MajorityVotePolicy(num_choices=3)
    assert policy.compute_rewards([], budget=10) == []


@given(
    st.lists(st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
             min_size=1, max_size=12),
    st.integers(min_value=12, max_value=10**6),
)
@settings(max_examples=60)
def test_majority_budget_and_uniformity(votes, budget) -> None:
    policy = MajorityVotePolicy(num_choices=4)
    answers = [None if v is None else [v] for v in votes]
    rewards = policy.compute_rewards(answers, budget)
    assert sum(rewards) <= budget
    paid = {r for r in rewards if r > 0}
    assert len(paid) <= 1  # winners all receive the same τ/n
    if paid:
        assert paid == {budget // len(votes)}


def test_majority_requires_two_choices() -> None:
    with pytest.raises(PolicyError):
        MajorityVotePolicy(num_choices=1)


def test_arity_validated() -> None:
    policy = MajorityVotePolicy(num_choices=3)
    with pytest.raises(PolicyError):
        policy.compute_rewards([[1, 2]], budget=10)


# ----- proportional agreement ----------------------------------------------------


def test_proportional_agreement() -> None:
    policy = ProportionalAgreementPolicy(num_choices=3)
    rewards = policy.compute_rewards([[1], [1], [2]], budget=100)
    assert rewards[0] == rewards[1] > 0
    assert rewards[2] == 0
    assert sum(rewards) <= 100


def test_proportional_lone_answers_earn_nothing() -> None:
    policy = ProportionalAgreementPolicy(num_choices=4)
    assert policy.compute_rewards([[0], [1], [2]], budget=99) == [0, 0, 0]


@given(
    st.lists(st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
             min_size=1, max_size=10),
    st.integers(min_value=1, max_value=10**6),
)
@settings(max_examples=60)
def test_proportional_budget_feasible(votes, budget) -> None:
    policy = ProportionalAgreementPolicy(num_choices=3)
    answers = [None if v is None else [v] for v in votes]
    rewards = policy.compute_rewards(answers, budget)
    assert sum(rewards) <= budget
    assert all(r >= 0 for r in rewards)


# ----- Dawid–Skene EM ---------------------------------------------------------------


def test_em_recovers_truth_with_reliable_majority() -> None:
    policy = DawidSkeneEMPolicy(num_choices=3, num_items=5)
    truth = [0, 1, 2, 1, 0]
    answers = [list(truth), list(truth), [2, 2, 2, 2, 2]]
    inferred, accuracies = policy.infer(answers)
    assert inferred == truth
    assert accuracies[0] > accuracies[2]


def test_em_rewards_track_accuracy() -> None:
    policy = DawidSkeneEMPolicy(num_choices=3, num_items=4)
    good = [0, 1, 2, 0]
    answers = [list(good), list(good), [1, 0, 0, 2]]
    rewards = policy.compute_rewards(answers, budget=1_000)
    assert rewards[0] == rewards[1] > rewards[2]
    assert sum(rewards) <= 1_000


def test_em_handles_missing_workers() -> None:
    policy = DawidSkeneEMPolicy(num_choices=2, num_items=3)
    rewards = policy.compute_rewards([[0, 1, 0], None], budget=100)
    assert rewards[1] == 0
    assert rewards[0] > 0


def test_em_parameters_validated() -> None:
    with pytest.raises(PolicyError):
        DawidSkeneEMPolicy(num_choices=1, num_items=3)
    with pytest.raises(PolicyError):
        DawidSkeneEMPolicy(num_choices=2, num_items=0)


# ----- reverse auction ------------------------------------------------------------------


def test_auction_lowest_bids_win_uniform_price() -> None:
    policy = ReverseAuctionPolicy(winners=2)
    rewards = policy.compute_rewards(
        [[5, 100], [3, 101], [9, 102]], budget=300
    )
    # bids 3 and 5 win; clearing price = 3rd bid = 9.
    assert rewards == [9, 9, 0]


def test_auction_cap_by_budget() -> None:
    policy = ReverseAuctionPolicy(winners=2)
    rewards = policy.compute_rewards(
        [[5, 100], [3, 101], [1000, 102]], budget=20
    )
    assert all(r <= 10 for r in rewards)  # cap = 20 // 2
    assert sum(rewards) <= 20


def test_auction_fewer_bidders_than_slots() -> None:
    policy = ReverseAuctionPolicy(winners=3)
    rewards = policy.compute_rewards([[4, 100]], budget=30)
    assert rewards[0] >= 4
    assert sum(rewards) <= 30


def test_auction_ignores_missing() -> None:
    policy = ReverseAuctionPolicy(winners=1)
    rewards = policy.compute_rewards([None, [2, 100]], budget=50)
    assert rewards[0] == 0 and rewards[1] >= 2


@given(
    st.lists(st.one_of(st.none(),
                       st.tuples(st.integers(min_value=0, max_value=50),
                                 st.integers(min_value=0, max_value=100))),
             min_size=1, max_size=8),
    st.integers(min_value=1, max_value=10**4),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60)
def test_auction_budget_feasible(bids, budget, winners) -> None:
    policy = ReverseAuctionPolicy(winners=winners)
    answers = [None if b is None else [b[0], b[1]] for b in bids]
    rewards = policy.compute_rewards(answers, budget)
    assert sum(rewards) <= budget
    assert all(r >= 0 for r in rewards)


def test_policy_descriptors_stable() -> None:
    assert MajorityVotePolicy(4).describe() == {
        "name": "majority-vote", "num_choices": 4
    }
    assert ReverseAuctionPolicy(2).describe() == {
        "name": "reverse-auction", "winners": 2
    }
