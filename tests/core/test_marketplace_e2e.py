"""Open-market end-to-end: N listings through post → bid → match →
Algorithm 1 → claim → settle/dispute, with escrow conservation.

The acceptance shape: N=8 listings bid over one shared certified pool,
one listing takes the court path, and afterwards the accounting layer
re-derives from chain data alone that every token that entered the
board escrow left it exactly once (bonus, bond, validator-reward and
dispute-bond legs included), on top of the existing exactly-once task
payout check.  A merged ``BENCH_market.json`` records the run shape
for the CI artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.core.accounting import (
    assert_exactly_once_payouts,
    assert_market_conservation,
)
from repro.core.engine import engine_system, make_market_specs, run_open_market
from repro.core.reputation import ReputationRegistry

pytestmark = pytest.mark.market

_BENCH_PATH = pathlib.Path(__file__).resolve().parents[2] / "BENCH_market.json"


def _write_bench(key: str, record: dict) -> None:
    document = {}
    if _BENCH_PATH.exists():
        try:
            document = json.loads(_BENCH_PATH.read_text())
        except ValueError:
            document = {}
    document.setdefault("generated_with", "tests/core/test_marketplace_e2e.py")
    document.setdefault("measurements", {})[key] = record
    _BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def test_open_market_e2e_n8_with_conservation() -> None:
    num_listings, pool_size, slots = 8, 4, 3
    dispute_listings = (5,)
    system = engine_system(num_listings, slots, seed=b"market-e2e")
    specs = make_market_specs(
        system,
        num_listings,
        pool_size,
        slots_per_listing=slots,
        seed=7,
        dispute_listings=dispute_listings,
    )
    wall_start = time.perf_counter()
    report = run_open_market(system, specs, max_rounds=512)
    wall_seconds = time.perf_counter() - wall_start

    # Every listing reached a terminal settled state; exactly the
    # flagged one went through the court.
    assert len(report.listings) == num_listings
    assert all(listing.state == "settled" for listing in report.listings)
    assert [listing.disputed for listing in report.listings] == [
        i in dispute_listings for i in range(num_listings)
    ]
    # Every Algorithm-1 task under the market settled on-chain too.
    assert all(
        outcome.status in ("completed", "defaulted") for outcome in report.outcomes
    )

    # Matched slots were filled and claimed: each winner that submitted
    # linked its task tag back to its bid handle.
    for spec, listing in zip(specs, report.listings):
        assert len(listing.matched_tags) == slots
        assert len(listing.claims) == slots  # all winners submitted here

    # Conservation, both layers: task budgets (exactly-once payouts)
    # and board escrow (bonus + bonds + validator + dispute legs).
    assert_exactly_once_payouts(system, report.task_specs, report.outcomes)
    assert_market_conservation(system, report)

    # Reputation accrued on pseudonymous handles only: exactly one
    # record per pool worker, keyed by its board tag.
    registry = ReputationRegistry.from_board(system.node, report.board_address)
    pool_tags = {
        worker.handle_tag(report.board_address)
        for worker, _ in specs[0].bidders
    }
    assert set(registry.tags()) == pool_tags
    height = system.testnet.height
    assert any(registry.score(tag, height) > 0 for tag in registry.tags())

    _write_bench(
        f"mock-n{num_listings}-p{pool_size}-s{slots}",
        {
            "num_listings": num_listings,
            "pool_size": pool_size,
            "slots_per_listing": slots,
            "disputed": len(dispute_listings),
            "engine_rounds": report.engine.rounds,
            "blocks_mined": report.engine.blocks_mined,
            "wall_seconds": round(wall_seconds, 3),
            "total_disbursed": sum(l.disbursed for l in report.listings),
            "states": [l.state for l in report.listings],
        },
    )


def test_unattached_listing_unwinds_bonds() -> None:
    """A matched listing whose lister walks away refunds everyone."""
    from repro.core.market import Arbiter, board_config, deploy_marketplace
    from repro.core.requester import Requester
    from repro.core.worker import Worker

    system = engine_system(1, 2, seed=b"market-void")
    arbiter = Arbiter(system)
    board = deploy_marketplace(
        system, arbiter.address, board_config(bid_window=20, attach_window=6)
    )
    requester = Requester(system, "ghost-lister")
    workers = [Worker(system, f"void-worker-{j}") for j in range(2)]
    listing_id = requester.post_listing(
        board, "ghost", num_workers=2, budget=400, quality_bonus=200,
        validator_reward=40,
    )
    for worker in workers:
        assert worker.place_bid(board, listing_id, 100).success
    node = system.node
    deadline = node.call(board, "get_listing", [listing_id])["bid_deadline"]
    while system.testnet.height <= deadline:
        system.testnet.mine_blocks(1)
    requester.match_listing(board, listing_id)

    # The lister never attaches a task; once the attach window lapses
    # ANYONE may unwind (a worker does, here, via its board account).
    attach_deadline = node.call(board, "get_listing", [listing_id])[
        "attach_deadline"
    ]
    while system.testnet.height <= attach_deadline:
        system.testnet.mine_blocks(1)
    from repro.chain.transaction import Transaction, encode_call
    from repro.core.protocol import DEFAULT_GAS_LIMIT, DEFAULT_GAS_PRICE

    account = workers[0].board_account(board)
    system.fund_anonymous(account.address)
    tx = Transaction(
        nonce=node.nonce_of(account.address),
        gas_price=DEFAULT_GAS_PRICE,
        gas_limit=DEFAULT_GAS_LIMIT,
        to=board,
        value=0,
        data=encode_call("void_unattached", [listing_id]),
    )
    assert system.send_reliable(tx, account.keypair).success

    listing = node.call(board, "get_listing", [listing_id])
    assert listing["state"] == "void"
    assert listing["escrow"] == 0
    legs = sorted(leg for _, _, leg in listing["payouts"])
    assert legs.count("unattached-bond-return") == 2
    assert legs.count("unattached-refund") == 1
    # Workers hold their stakes again (net contract credit = stake).
    from repro.core.accounting import contract_payment

    for worker in workers:
        address = worker.board_account(board).address
        assert contract_payment(node, address) == 100
