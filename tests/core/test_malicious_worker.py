"""Security against malicious workers (event B2 must not happen)."""

from __future__ import annotations

import random

import pytest

from repro.chain.transaction import Transaction, encode_call
from repro.core import MajorityVotePolicy, Requester, Worker
from repro.core.anonymity import derive_one_task_account
from repro.core.attacks import FreeRiderWorker, MultiSubmissionWorker
from repro.core.encryption import AnswerCiphertext, encrypt_answer
from repro.anonauth.scheme import task_prefix

POLICY = MajorityVotePolicy(num_choices=4)


def test_multi_submission_blocked_by_link(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300,
                                  answer_window=40)
    sybil = MultiSubmissionWorker(zebra_system, "sybil")
    receipts = sybil.submit_many(task, [[1], [1], [1]])
    assert receipts[0].success
    assert not receipts[1].success and "double submission" in receipts[1].error
    assert not receipts[2].success
    assert task.answer_count() == 1


def test_multi_submission_caps_reward_at_single_share(zebra_system) -> None:
    """B2: the attacker never collects more than max_j R(A_j; τ)."""
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300,
                                  answer_window=40)
    sybil = MultiSubmissionWorker(zebra_system, "sybil")
    sybil.submit_many(task, [[1], [1]])
    honest = Worker(zebra_system, "honest")
    honest.submit_answer(task, [1])
    # Collection still open (2/3 filled); settle what's there at deadline.
    deadline = zebra_system.node.call(task.address, "answer_deadline")
    while zebra_system.testnet.height <= deadline:
        zebra_system.mine()
    assert requester.evaluate_and_reward(task).success
    rewards = task.rewards()
    assert len(rewards) == 2
    assert max(rewards) <= 300 // 3  # one share at most


def test_free_rider_cannot_copy_ciphertext(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300,
                                  answer_window=40)
    victim = Worker(zebra_system, "victim")
    assert victim.submit_answer(task, [2]).receipt.success
    rider = FreeRiderWorker(zebra_system, "rider")
    stolen_wire = zebra_system.node.call(task.address, "get_ciphertexts")[0]
    receipt = rider.submit_copied_ciphertext(task.address, stolen_wire)
    assert not receipt.success
    assert "duplicate ciphertext" in receipt.error


def test_free_rider_sees_pending_but_copy_still_fails(zebra_system) -> None:
    """Even copying straight from the mempool (before inclusion) fails:
    if his copy lands first, the victim's original is the 'duplicate',
    but the rider still can't earn more than one identical-answer share
    and his copy is rejected whenever the victim's tx is already in."""
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300,
                                  answer_window=40)
    victim = Worker(zebra_system, "victim")
    victim.submit_answer(task, [2])
    rider = FreeRiderWorker(zebra_system, "rider")
    # Nothing pending now (all mined); steal from chain instead:
    assert rider.steal_pending_ciphertext(task.address) is None
    stolen = zebra_system.node.call(task.address, "get_ciphertexts")[0]
    assert not rider.submit_copied_ciphertext(task.address, stolen).success


def test_raw_transaction_replay_is_inert(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=200,
                                  answer_window=40)
    victim = Worker(zebra_system, "victim")
    record = victim.submit_answer(task, [1])
    assert task.answer_count() == 1
    # Replay the exact signed transaction: stale nonce, zero effect.
    victim_tx = None
    for stx in zebra_system.testnet.network.transaction_log:
        if stx.transaction.to == task.address:
            victim_tx = stx
    rider = FreeRiderWorker(zebra_system, "rider")
    assert not rider.replay_raw_transaction(victim_tx)
    zebra_system.mine(2)
    assert task.answer_count() == 1


def test_unregistered_worker_rejected_on_chain(zebra_system) -> None:
    """A submission authenticated with a bogus certificate fails Verify."""
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=200,
                                  answer_window=40)
    # Build a submission by hand with a *forged* attestation (random tags
    # and proof bytes).
    from repro.anonauth.scheme import Attestation
    from repro.zksnark.backend import Proof

    account = derive_one_task_account(b"outsider", f"task:{task.address.hex()}")
    zebra_system.fund_anonymous(account.address)
    from repro.crypto.rsa import RSAPublicKey
    from repro.serialization import decode

    n_value, e_value = decode(zebra_system.node.call(task.address, "get_epk"))
    epk = RSAPublicKey(n=n_value, e=e_value)
    ciphertext = encrypt_answer(epk, [1], zebra_system.mimc, random.Random(1))
    forged = Attestation(
        t1=123, t2=456,
        proof=Proof(backend="mock", payload=b"\x00" * 256),
        registry_commitment=zebra_system.registry_commitment(),
    )
    tx = Transaction(
        nonce=0, gas_price=1, gas_limit=10_000_000, to=task.address, value=0,
        data=encode_call("submit_answer",
                         [ciphertext.to_wire(), forged.to_wire()]),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(account.keypair))
    assert not receipt.success
    assert "not authenticated" in receipt.error


def test_attestation_bound_to_sender_address(zebra_system) -> None:
    """Footnote 9: re-sending an authenticated (ciphertext, attestation)
    pair from a different address fails — the message includes α_i."""
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=200,
                                  answer_window=40)
    victim = Worker(zebra_system, "victim")
    victim.submit_answer(task, [1])
    # Recover the victim's calldata from the ledger and re-send it
    # verbatim from the attacker's own fresh address (fresh ciphertext
    # bytes would be required to dodge the duplicate check, but the point
    # here is the address binding, which fails first conceptually; use a
    # tweaked ciphertext to reach the Verify step).
    from repro.serialization import decode

    victim_tx = None
    for stx in zebra_system.testnet.network.transaction_log:
        if stx.transaction.to == task.address and stx.transaction.data:
            kind, method, args = decode(stx.transaction.data)
            if method == "submit_answer":
                victim_tx = args
    ciphertext_wire, attestation_wire = victim_tx
    # Attacker mutates one ciphertext byte to dodge the duplicate check…
    tweaked = bytearray(ciphertext_wire)
    tweaked[-1] ^= 1
    attacker = derive_one_task_account(b"attacker", f"task:{task.address.hex()}")
    zebra_system.fund_anonymous(attacker.address)
    tx = Transaction(
        nonce=0, gas_price=1, gas_limit=10_000_000, to=task.address, value=0,
        data=encode_call("submit_answer", [bytes(tweaked), attestation_wire]),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(attacker.keypair))
    # …but the attestation no longer matches α_C‖α_attacker‖C'.
    assert not receipt.success


def test_malformed_key_blob_forfeits_reward_and_burns(zebra_system) -> None:
    """A worker posting an undecryptable blob gets flagged: no reward,
    and the contract burns the slot's share."""
    from repro.chain.address import ZERO_ADDRESS
    from repro.anonauth.scheme import Attestation as _A  # noqa: F401

    requester = Requester(zebra_system, "r")
    task = requester.publish_task(POLICY, "t", num_answers=2, budget=600,
                                  answer_window=40)
    honest = Worker(zebra_system, "honest")
    honest.submit_answer(task, [1])

    # The cheat: a syntactically valid ciphertext whose commitment does
    # not match the OAEP'd key.
    cheater = Worker(zebra_system, "cheater")
    epk = cheater.read_task_epk(task.address)
    good = encrypt_answer(epk, [1], zebra_system.mimc, random.Random(5))
    bad = AnswerCiphertext(
        key_commitment=good.key_commitment + 1,  # breaks the opening
        nonce=good.nonce, body=good.body, key_blob=good.key_blob,
    )
    account = derive_one_task_account(cheater._seed, f"task:{task.address.hex()}")
    zebra_system.fund_anonymous(account.address)
    certificate = zebra_system.current_certificate(cheater.keys.public_key)
    commitment = zebra_system.registry_commitment()
    wire = bad.to_wire()
    attestation = zebra_system.scheme.auth(
        task_prefix(task.address) + account.address + wire,
        cheater.keys, certificate, commitment,
    )
    tx = Transaction(
        nonce=zebra_system.node.nonce_of(account.address), gas_price=1,
        gas_limit=10_000_000, to=task.address, value=0,
        data=encode_call("submit_answer", [wire, attestation.to_wire()]),
    )
    assert zebra_system.send_and_confirm(tx.sign(account.keypair)).success

    burned_before = zebra_system.node.balance_of(ZERO_ADDRESS)
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    rewards = task.rewards()
    assert rewards[0] == 300 and rewards[1] == 0
    assert zebra_system.node.balance_of(ZERO_ADDRESS) - burned_before == 300
