"""Monte-Carlo incentive experiments: the economics must point the right way."""

from __future__ import annotations

import random

import pytest

from repro.errors import PolicyError
from repro.core.policy import MajorityVotePolicy, ProportionalAgreementPolicy
from repro.core.simulation import (
    SimulationResult,
    WorkerProfile,
    render_result,
    simulate_tasks,
)

POLICY = MajorityVotePolicy(num_choices=4)


def _run(profiles, tasks=200, policy=POLICY, seed=1) -> SimulationResult:
    return simulate_tasks(
        policy, profiles, num_choices=4, tasks=tasks,
        budget_per_task=1_000, rng=random.Random(seed),
    )


def test_effort_outearns_guessing() -> None:
    """The core incentive claim of [10]: accuracy pays."""
    result = _run([
        WorkerProfile("diligent", count=5, accuracy=0.9),
        WorkerProfile("guesser", count=2, accuracy=0.25),
    ])
    assert result.expected_earning("diligent") > 2 * result.expected_earning("guesser")


def test_majority_aggregates_better_than_individuals() -> None:
    """Wisdom of the crowd: majority accuracy beats worker accuracy."""
    result = _run([WorkerProfile("ok", count=9, accuracy=0.6)], tasks=300)
    assert result.majority_accuracy > 0.6


def test_budget_never_exceeded() -> None:
    result = _run([
        WorkerProfile("a", count=4, accuracy=0.8),
        WorkerProfile("b", count=3, accuracy=0.4, absent_probability=0.2),
    ])
    assert result.total_paid <= result.tasks * result.budget_per_task


def test_absent_workers_earn_nothing() -> None:
    result = _run([
        WorkerProfile("ghost", count=2, accuracy=0.9, absent_probability=1.0),
        WorkerProfile("present", count=3, accuracy=0.9),
    ])
    assert result.earnings_by_profile.get("ghost", 0) == 0
    assert result.submissions_by_profile.get("ghost", 0) == 0
    assert result.earnings_by_profile["present"] > 0


def test_proportional_policy_also_rewards_agreement() -> None:
    result = _run(
        [
            WorkerProfile("diligent", count=5, accuracy=0.9),
            WorkerProfile("guesser", count=2, accuracy=0.25),
        ],
        policy=ProportionalAgreementPolicy(num_choices=4),
    )
    assert result.expected_earning("diligent") > result.expected_earning("guesser")


def test_deterministic_given_seed() -> None:
    profiles = [WorkerProfile("w", count=3, accuracy=0.7)]
    a = _run(profiles, seed=42)
    b = _run(profiles, seed=42)
    assert a.earnings_by_profile == b.earnings_by_profile


def test_render_result() -> None:
    result = _run([WorkerProfile("w", count=3, accuracy=0.7)], tasks=10)
    text = render_result(result)
    assert "10 tasks" in text and "w" in text


def test_profile_validation() -> None:
    with pytest.raises(PolicyError):
        WorkerProfile("bad", count=1, accuracy=1.5)
    with pytest.raises(PolicyError):
        WorkerProfile("bad", count=-1, accuracy=0.5)
    with pytest.raises(PolicyError):
        simulate_tasks(POLICY, [], num_choices=4)
    with pytest.raises(PolicyError):
        simulate_tasks(POLICY, [WorkerProfile("w", 1, 0.5)], num_choices=1)
