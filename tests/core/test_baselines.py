"""Baselines must exhibit exactly the failures ZebraLancer removes."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.core.baselines import CentralizedPlatform, NaiveDecentralizedPlatform
from repro.core.policy import MajorityVotePolicy

POLICY = MajorityVotePolicy(num_choices=3)


def test_centralized_false_reporting_succeeds() -> None:
    platform = CentralizedPlatform()
    platform.post_task("t", budget=300)
    for vote in ([1], [1], [2]):
        platform.submit("t", vote)
    owed = POLICY.compute_rewards(platform.answers("t"), 300)
    assert owed == [100, 100, 0]
    outcome = platform.settle("t", [0, 0, 0])  # requester stiffs everyone
    assert outcome.payments == [0, 0, 0]  # nothing stopped her


def test_centralized_platform_reads_all_plaintexts() -> None:
    platform = CentralizedPlatform()
    platform.post_task("t", budget=10)
    platform.submit("t", [7])
    assert platform.observed_plaintexts == [[7]]


def test_centralized_budget_cap_is_only_guard() -> None:
    platform = CentralizedPlatform()
    platform.post_task("t", budget=100)
    platform.submit("t", [1])
    with pytest.raises(ProtocolError):
        platform.settle("t", [101])
    with pytest.raises(ProtocolError):
        platform.settle("t", [1, 2])  # arity mismatch


def test_centralized_task_ids_unique() -> None:
    platform = CentralizedPlatform()
    platform.post_task("t", budget=1)
    with pytest.raises(ProtocolError):
        platform.post_task("t", budget=2)


def test_naive_chain_free_riding_succeeds() -> None:
    naive = NaiveDecentralizedPlatform(POLICY, budget=300, num_answers=3)
    naive.broadcast("honest-1", [1])
    naive.broadcast("honest-2", [1])
    stolen = naive.visible_pending_answers()[0]  # plaintext in the pool!
    naive.broadcast("rider", list(stolen))
    naive.mine()
    outcome = naive.settle()
    rider_pay = outcome.payments[naive.senders().index("rider")]
    assert rider_pay == 100  # full share for zero effort


def test_naive_chain_sybil_submissions_succeed() -> None:
    naive = NaiveDecentralizedPlatform(POLICY, budget=300, num_answers=3)
    for _ in range(3):
        naive.broadcast("sybil", [0])  # same "worker", three shares
    naive.mine()
    outcome = naive.settle()
    assert sum(outcome.payments) == 300
    assert naive.senders() == ["sybil"] * 3


def test_naive_chain_capacity_respected() -> None:
    naive = NaiveDecentralizedPlatform(POLICY, budget=300, num_answers=2)
    for index in range(4):
        naive.broadcast(f"w{index}", [1])
    naive.mine()
    assert len(naive.included) == 2


def test_naive_chain_exposes_all_data() -> None:
    naive = NaiveDecentralizedPlatform(POLICY, budget=300, num_answers=2)
    naive.broadcast("w", [2])
    naive.mine()
    outcome = naive.settle()
    assert outcome.data_visible_to_platform == [[2]]
