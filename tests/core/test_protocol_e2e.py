"""Whole-protocol end-to-end runs across configurations."""

from __future__ import annotations

import pytest

from repro.core import (
    DawidSkeneEMPolicy,
    MajorityVotePolicy,
    ProportionalAgreementPolicy,
    Requester,
    ReverseAuctionPolicy,
    Worker,
    ZebraLancerSystem,
)


def _run_round(system, policy, answers, budget=1_000, num_answers=None):
    requester = Requester(system, "req")
    workers = [Worker(system, f"w{i}") for i in range(len(answers))]
    task = requester.publish_task(
        policy, "task", num_answers=num_answers or len(answers), budget=budget,
        answer_window=6 * len(answers),
    )
    for worker, answer in zip(workers, answers):
        record = worker.submit_answer(task, answer)
        assert record.receipt.success, record.receipt.error
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    system.testnet.assert_consensus()
    return task, workers


def test_majority_end_to_end(zebra_system) -> None:
    task, _ = _run_round(
        zebra_system, MajorityVotePolicy(4), [[1], [1], [2]], budget=900
    )
    assert task.rewards() == [300, 300, 0]
    assert task.phase() == "completed"


def test_proportional_policy_end_to_end(zebra_system) -> None:
    task, _ = _run_round(
        zebra_system, ProportionalAgreementPolicy(3), [[0], [0], [0], [1]],
        budget=600,
    )
    rewards = task.rewards()
    assert rewards[0] == rewards[1] == rewards[2] > 0
    assert rewards[3] == 0


def test_em_policy_end_to_end(zebra_system) -> None:
    policy = DawidSkeneEMPolicy(num_choices=2, num_items=4)
    task, _ = _run_round(
        zebra_system, policy,
        [[0, 1, 1, 0], [0, 1, 1, 0], [1, 0, 0, 1]], budget=600,
    )
    rewards = task.rewards()
    assert rewards[0] == rewards[1] > rewards[2]


def test_auction_policy_end_to_end(zebra_system) -> None:
    policy = ReverseAuctionPolicy(winners=2)
    task, _ = _run_round(
        zebra_system, policy, [[5, 111], [3, 222], [9, 333]], budget=600,
    )
    rewards = task.rewards()
    assert rewards[2] == 0
    assert rewards[0] == rewards[1] > 0


def test_workers_paid_exactly_once(zebra_system) -> None:
    policy = MajorityVotePolicy(2)
    requester = Requester(zebra_system, "req")
    workers = [Worker(zebra_system, f"w{i}") for i in range(2)]
    task = requester.publish_task(policy, "t", num_answers=2, budget=500)
    balances = {}
    for worker in workers:
        worker.submit_answer(task, [0])
        balances[worker.identity] = worker.reward_received(task.address)
    requester.evaluate_and_reward(task)
    for worker in workers:
        assert worker.reward_received(task.address) - balances[worker.identity] == 250


def test_budget_conservation_across_settlement(zebra_system) -> None:
    """budget = paid + burned + refunded, to the wei."""
    policy = MajorityVotePolicy(4)
    requester = Requester(zebra_system, "req")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task = requester.publish_task(policy, "t", num_answers=3, budget=1_000)
    for worker, vote in zip(workers, [0, 0, 1]):
        worker.submit_answer(task, [vote])
    from repro.core.anonymity import derive_one_task_account

    requester_account = derive_one_task_account(requester._seed, "req/task-0")
    refund_before = zebra_system.node.balance_of(requester_account.address)
    receipt = requester.evaluate_and_reward(task)
    gas_paid = receipt.gas_used  # gas_price == 1
    refund_after = zebra_system.node.balance_of(requester_account.address)
    paid = sum(task.rewards())
    refunded = refund_after - refund_before + gas_paid
    assert paid + refunded == 1_000
    assert task.balance() == 0


def test_multiple_tasks_interleaved(zebra_system) -> None:
    policy = MajorityVotePolicy(3)
    requester_a = Requester(zebra_system, "ra")
    requester_b = Requester(zebra_system, "rb")
    workers = [Worker(zebra_system, f"w{i}") for i in range(2)]
    task_a = requester_a.publish_task(policy, "A", num_answers=2, budget=200)
    task_b = requester_b.publish_task(policy, "B", num_answers=2, budget=400)
    for worker in workers:
        worker.submit_answer(task_a, [0])
        worker.submit_answer(task_b, [1])
    assert requester_a.evaluate_and_reward(task_a).success
    assert requester_b.evaluate_and_reward(task_b).success
    assert task_a.rewards() == [100, 100]
    assert task_b.rewards() == [200, 200]


@pytest.mark.slow
def test_groth16_system_end_to_end() -> None:
    """The full protocol over the REAL Groth16 backend (slow; 1 worker)."""
    system = ZebraLancerSystem(
        profile="test", cert_mode="merkle", backend_name="groth16"
    )
    policy = MajorityVotePolicy(2)
    requester = Requester(system, "req")
    worker = Worker(system, "w0")
    task = requester.publish_task(policy, "t", num_answers=1, budget=100)
    assert worker.submit_answer(task, [1]).receipt.success
    # batched re-audit of the collection phase over the real verifier
    assert task.audit_submissions()
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    assert task.rewards() == [100]
    system.testnet.assert_consensus()


def test_audit_submissions_batch_reverifies(zebra_system) -> None:
    """audit_submissions batch-checks every stored attestation (mock)."""
    requester = Requester(zebra_system, "req")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task = requester.publish_task(
        MajorityVotePolicy(3), "t", num_answers=3, budget=300
    )
    assert task.audit_submissions()  # no submissions yet: vacuously true
    for worker, answer in zip(workers, ([1], [1], [2])):
        assert worker.submit_answer(task, answer).receipt.success
    assert task.audit_submissions()
    assert requester.evaluate_and_reward(task).success
    # the audit is a view — still works after settlement
    assert task.audit_submissions()


def test_schnorr_cert_mode_end_to_end() -> None:
    """The paper-faithful signature-certificate mode (mock backend)."""
    system = ZebraLancerSystem(
        profile="test", cert_mode="schnorr", backend_name="mock"
    )
    policy = MajorityVotePolicy(3)
    requester = Requester(system, "req")
    workers = [Worker(system, f"w{i}") for i in range(2)]
    task = requester.publish_task(policy, "t", num_answers=2, budget=200)
    for worker in workers:
        assert worker.submit_answer(task, [2]).receipt.success
    assert requester.evaluate_and_reward(task).success
    assert task.rewards() == [100, 100]


def test_requester_cannot_reward_foreign_task(zebra_system) -> None:
    from repro.errors import ProtocolError

    requester_a = Requester(zebra_system, "ra")
    requester_b = Requester(zebra_system, "rb")
    task = requester_a.publish_task(MajorityVotePolicy(2), "t",
                                    num_answers=1, budget=100)
    with pytest.raises(ProtocolError):
        requester_b.evaluate_and_reward(task)


def test_worker_validation_guards(zebra_system) -> None:
    from repro.errors import ProtocolError

    requester = Requester(zebra_system, "req")
    worker = Worker(zebra_system, "w")
    task = requester.publish_task(MajorityVotePolicy(2), "t",
                                  num_answers=1, budget=100)
    with pytest.raises(ProtocolError):
        worker.submit_answer(task, [1, 2])  # wrong arity
    assert worker.submit_answer(task, [1]).receipt.success
    with pytest.raises(ProtocolError):
        worker.validate_task(task.address)  # full now → not collecting
