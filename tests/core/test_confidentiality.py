"""Data confidentiality: the chain reveals nothing about the answers."""

from __future__ import annotations

from collections import Counter

from repro.core import MajorityVotePolicy, Requester, Worker

POLICY = MajorityVotePolicy(num_choices=4)


def _all_chain_bytes(system) -> bytes:
    """Everything a chain observer ever sees: every tx of every block."""
    blobs = []
    for block in system.node.chain_to_genesis():
        for stx in block.transactions:
            blobs.append(stx.transaction.data)
            blobs.append(stx.transaction.signing_hash())
    return b"".join(blobs)


def test_plaintext_answers_never_touch_the_chain(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300)
    secret_marker = 0xDEADBEEF  # a recognizable answer value
    for worker in workers:
        worker.submit_answer(task, [secret_marker])
    transcript = _all_chain_bytes(zebra_system)
    # The 32-byte field encoding of the answer never appears on-chain.
    assert secret_marker.to_bytes(32, "big") not in transcript


def test_identical_answers_produce_unrelated_ciphertexts(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300)
    for worker in workers:
        worker.submit_answer(task, [1])  # all submit the same answer
    wires = zebra_system.node.call(task.address, "get_ciphertexts")
    assert len(set(wires)) == 3  # no equality leakage
    from repro.core.encryption import AnswerCiphertext

    bodies = [AnswerCiphertext.from_wire(w).body for w in wires]
    assert len(set(bodies)) == 3


def test_ciphertext_bytes_look_uniform(zebra_system) -> None:
    """Crude distinguisher: byte histogram of ciphertext bodies should
    not be degenerate (no long runs/repeats leaking structure)."""
    requester = Requester(zebra_system, "r")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300)
    for worker in workers:
        worker.submit_answer(task, [0])
    from repro.core.encryption import AnswerCiphertext

    wires = zebra_system.node.call(task.address, "get_ciphertexts")
    body_bytes = b"".join(
        AnswerCiphertext.from_wire(w).body[0].to_bytes(32, "big") for w in wires
    )
    histogram = Counter(body_bytes)
    assert histogram.most_common(1)[0][1] <= len(body_bytes) // 4


def test_rewards_are_public_but_answers_stay_private(zebra_system) -> None:
    """After settlement the instruction (rewards) is public — and still
    nothing about the losing answer's value is derivable from the chain
    beyond what the policy output itself implies."""
    requester = Requester(zebra_system, "r")
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    task = requester.publish_task(POLICY, "t", num_answers=3, budget=300)
    votes = [2, 2, 3]
    for worker, vote in zip(workers, votes):
        worker.submit_answer(task, [vote])
    assert requester.evaluate_and_reward(task).success
    assert task.rewards() == [100, 100, 0]
    transcript = _all_chain_bytes(zebra_system)
    for vote in votes:
        assert vote.to_bytes(32, "big") not in transcript


def test_requester_sees_answers_only_after_decryption(zebra_system) -> None:
    requester = Requester(zebra_system, "r")
    worker = Worker(zebra_system, "w")
    task = requester.publish_task(POLICY, "t", num_answers=1, budget=100)
    worker.submit_answer(task, [3])
    answers, keys, flags = requester.decrypt_answers(task)
    assert answers == [[3]]
    assert flags == [1]
    assert keys[0] != 0
