"""Security against a malicious requester (event B1 must not happen)."""

from __future__ import annotations

import pytest

from repro.core import MajorityVotePolicy, Worker
from repro.core.attacks import FalseReportingRequester, SelfColludingRequester

POLICY = MajorityVotePolicy(num_choices=4)


@pytest.fixture
def attacked_world(zebra_system):
    cheater = FalseReportingRequester(zebra_system, "cheater")
    task = cheater.publish_task(POLICY, "t", num_answers=3, budget=900,
                                answer_window=40, instruction_window=4)
    workers = [Worker(zebra_system, f"w{i}") for i in range(3)]
    for worker, vote in zip(workers, [1, 1, 0]):
        worker.submit_answer(task, [vote])
    return zebra_system, cheater, task, workers


def test_cheating_instruction_cannot_be_proved(attacked_world) -> None:
    _, cheater, task, _ = attacked_world
    assert cheater.attempt_cheating_instruction(task, [0, 0, 0]) == "prover-refused"
    assert cheater.attempt_cheating_instruction(task, [300, 300, 300]) == "prover-refused"
    assert cheater.attempt_cheating_instruction(task, [0, 0, 300]) == "prover-refused"


def test_forged_proof_rejected_on_chain(attacked_world) -> None:
    _, cheater, task, _ = attacked_world
    receipt = cheater.attempt_forged_proof(task, [0, 0, 0])
    assert not receipt.success
    assert "invalid reward proof" in receipt.error
    assert task.phase() == "collecting"  # nothing settled


def test_honest_instruction_still_accepted_after_failed_cheats(attacked_world) -> None:
    _, cheater, task, workers = attacked_world
    cheater.attempt_forged_proof(task, [0, 0, 0])
    receipt = cheater.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    assert task.rewards() == [300, 300, 0]


def test_stonewalling_triggers_even_split(attacked_world) -> None:
    system, cheater, task, workers = attacked_world
    cheater.stonewall(task)
    deadline = system.node.call(task.address, "answer_deadline")
    while system.testnet.height <= deadline + task.params.instruction_window:
        system.mine()
    # Any worker forces settlement.
    from repro.chain.transaction import Transaction, encode_call
    from repro.core.anonymity import derive_one_task_account

    account = derive_one_task_account(
        workers[0]._seed, f"task:{task.address.hex()}"
    )
    tx = Transaction(
        nonce=system.node.nonce_of(account.address), gas_price=1,
        gas_limit=10_000_000, to=task.address, value=0,
        data=encode_call("finalize_timeout", []),
    )
    receipt = system.send_and_confirm(tx.sign(account.keypair))
    assert receipt.success, receipt.error
    assert task.phase() == "defaulted"
    assert task.rewards() == [300, 300, 300]  # τ/‖W‖ each — B1 prevented


def test_late_instruction_rejected(attacked_world) -> None:
    system, cheater, task, _ = attacked_world
    deadline = system.node.call(task.address, "answer_deadline")
    while system.testnet.height <= deadline + task.params.instruction_window:
        system.mine()
    receipt = cheater.evaluate_and_reward(task)
    assert not receipt.success
    assert "instruction deadline passed" in receipt.error


def test_self_collusion_linked_and_dropped(zebra_system) -> None:
    colluder = SelfColludingRequester(zebra_system, "colluder")
    task = colluder.publish_task(POLICY, "t", num_answers=3, budget=300,
                                 answer_window=40)
    honest = Worker(zebra_system, "honest")
    honest.submit_answer(task, [1])
    receipt = colluder.attempt_colluding_answer(task, [3])
    assert not receipt.success
    assert "double submission" in receipt.error
    assert task.answer_count() == 1


def test_unfunded_deployment_reverts(zebra_system) -> None:
    """Line 3 of Algorithm 1: no deposit, no task."""
    from repro.chain.transaction import Transaction
    from repro.core.requester import Requester

    requester = Requester(zebra_system, "underfunded")
    # Monkey-approach: replay a publish with value < budget by driving
    # the raw deployment path.
    from repro.chain.transaction import encode_create
    from repro.core.anonymity import derive_one_task_account
    from repro.anonauth.scheme import task_prefix
    from repro.chain.address import contract_address
    from repro.core.params import TaskParameters
    from repro.core.encryption import TaskKeyPair
    import random as _random

    account = derive_one_task_account(b"underfunded-seed", "cheap-task")
    zebra_system.fund_anonymous(account.address)
    predicted = contract_address(account.address, 0)
    certificate = zebra_system.current_certificate(requester.keys.public_key)
    attestation = zebra_system.scheme.auth(
        task_prefix(predicted) + account.address, requester.keys,
        certificate, zebra_system.registry_commitment(),
    )
    encryption_keys = TaskKeyPair.generate(1024, _random.Random(0))
    circuit, reward_keys = zebra_system.reward_material(POLICY, 2)
    params = TaskParameters(
        description="d", num_answers=2, budget=1_000, answer_window=5,
        instruction_window=5, policy_descriptor=dict(POLICY.describe()),
        answer_arity=1,
        encryption_key_fingerprint=encryption_keys.public_key.fingerprint(),
    )
    from repro.serialization import encode

    tx = Transaction(
        nonce=0, gas_price=1, gas_limit=20_000_000, to=None,
        value=10,  # << budget of 1000
        data=encode_create("ZebraLancerTask", [
            zebra_system.registry_address, account.address,
            attestation.to_wire(), params.to_storage(),
            encode([encryption_keys.public_key.n, encryption_keys.public_key.e]),
            reward_keys.verifying_key,
        ]),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(account.keypair))
    assert not receipt.success
    assert "budget not deposited" in receipt.error


def test_foreign_attestation_cannot_authorize_task(zebra_system) -> None:
    """A malicious requester cannot 'authenticate' a task by replaying
    someone else's attestation — it authenticates a different α_R."""
    from repro.chain.transaction import Transaction, encode_create
    from repro.core.anonymity import derive_one_task_account
    from repro.core.params import TaskParameters
    from repro.core.encryption import TaskKeyPair
    from repro.core.requester import Requester
    from repro.anonauth.scheme import task_prefix
    from repro.chain.address import contract_address
    from repro.serialization import encode
    import random as _random

    honest = Requester(zebra_system, "honest-r")
    # The honest requester's attestation for HER one-task address:
    her_account = derive_one_task_account(honest._seed, "honest-r/task-0")
    her_predicted = contract_address(her_account.address, 0)
    her_cert = zebra_system.current_certificate(honest.keys.public_key)
    her_attestation = zebra_system.scheme.auth(
        task_prefix(her_predicted) + her_account.address, honest.keys,
        her_cert, zebra_system.registry_commitment(),
    )
    # Mallory deploys from her own address carrying the copied attestation.
    mallory = derive_one_task_account(b"mallory", "copy-task")
    zebra_system.fund_anonymous(mallory.address)
    zebra_system.fund_anonymous(mallory.address, 10_000)
    encryption_keys = TaskKeyPair.generate(1024, _random.Random(1))
    circuit, reward_keys = zebra_system.reward_material(POLICY, 2)
    params = TaskParameters(
        description="d", num_answers=2, budget=1_000, answer_window=5,
        instruction_window=5, policy_descriptor=dict(POLICY.describe()),
        answer_arity=1,
        encryption_key_fingerprint=encryption_keys.public_key.fingerprint(),
    )
    tx = Transaction(
        nonce=0, gas_price=1, gas_limit=20_000_000, to=None, value=1_000,
        data=encode_create("ZebraLancerTask", [
            zebra_system.registry_address, mallory.address,
            her_attestation.to_wire(), params.to_storage(),
            encode([encryption_keys.public_key.n, encryption_keys.public_key.e]),
            reward_keys.verifying_key,
        ]),
    )
    receipt = zebra_system.send_and_confirm(tx.sign(mallory.keypair))
    assert not receipt.success
    assert "requester not identified" in receipt.error
