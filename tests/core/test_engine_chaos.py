"""Engine-scale chaos: network faults × byzantine actors × crashes.

PR 1's fault plans exercised the *chain* under adversity; these tests
compose them with byzantine protocol actors (stonewalling and
vanishing requesters, equivocating workers, empty cohorts) inside
multi-task engine runs.  The acceptance bar: healthy tasks complete,
every honest worker ends paid or refunded exactly once, and no healthy
task is ever stalled behind a quarantined sibling.
"""

from __future__ import annotations

import pytest

from repro.chain.faults import chaos_plan
from repro.core.engine import (
    ProtocolEngine,
    SimulatedEngineCrash,
    engine_system,
    make_chaos_specs,
)
from repro.core.checkpoint import CheckpointStore

from repro.core.accounting import assert_exactly_once_payouts

BYZANTINE = {"stonewall": [1], "vanish": [2], "equivocate": [3], "empty": [4]}


def _chaos_engine(seed: int, num_tasks: int = 8, **engine_kwargs):
    system = engine_system(
        num_tasks, 3,
        seed=b"engine-chaos-%d" % seed,
        fault_plan=chaos_plan(seed, horizon=80),
    )
    specs = make_chaos_specs(
        system, num_tasks, 3, seed=seed, instruction_window=8, **BYZANTINE
    )
    engine = ProtocolEngine(
        system, specs, max_rounds=1024, breaker_threshold=3, **engine_kwargs
    )
    return system, specs, engine


def _assert_chaos_invariants(system, specs, report) -> None:
    by_status = {o.index: o.status for o in report.outcomes}
    # Byzantine requesters: quarantined, budget even-split over the
    # submitters through the contract's timeout path.
    for index in BYZANTINE["stonewall"] + BYZANTINE["vanish"]:
        assert by_status[index] == "defaulted", by_status
        assert report.outcomes[index].quarantined
        assert report.outcomes[index].rewards == [400, 400, 400]
    # Zero-answer cohort: aborted with a full refund, no quarantine.
    for index in BYZANTINE["empty"]:
        assert by_status[index] == "aborted"
        assert report.outcomes[index].rewards == []
    # Everyone else (including the equivocation target) completes.
    unhealthy = {i for ids in BYZANTINE.values() for i in ids}
    for outcome in report.outcomes:
        if outcome.index not in unhealthy:
            assert outcome.status == "completed", outcome
            assert not outcome.quarantined
    for index in BYZANTINE["equivocate"]:
        assert by_status[index] == "completed"
    # The Link check must have rejected every equivocating sybil.
    assert report.resilience["byzantine_accepted"] == 0
    assert report.resilience["byzantine_rejections"] >= len(
        BYZANTINE["equivocate"]
    )
    assert_exactly_once_payouts(system, specs, report.outcomes)


def test_faults_and_byzantine_mix_settles_every_task() -> None:
    system, specs, engine = _chaos_engine(seed=5)
    report = engine.run()
    _assert_chaos_invariants(system, specs, report)
    assert report.resilience["quarantined"] == 2


def test_chaos_runs_are_deterministic() -> None:
    digests = set()
    for _ in range(2):
        _, _, engine = _chaos_engine(seed=11)
        digests.add(engine.run().transcript_digest())
    assert len(digests) == 1


def test_crash_mid_chaos_still_settles_exactly_once() -> None:
    """An engine death on top of faults + byzantine actors converges."""
    system, specs, engine = _chaos_engine(seed=5)
    store = CheckpointStore()
    engine.checkpoint_store = store
    engine.checkpoint_every = 5

    def crash_hook(eng, rounds):
        if rounds == 12:
            raise SimulatedEngineCrash("mid-chaos death")

    engine.crash_hook = crash_hook
    with pytest.raises(SimulatedEngineCrash):
        engine.run()

    resumed = ProtocolEngine.resume(
        system, store.latest(), max_rounds=1024, breaker_threshold=3
    )
    report = resumed.run()
    _assert_chaos_invariants(system, specs, report)


def test_backpressure_keeps_oversized_cohorts_alive() -> None:
    """A bounded mempool + admission gate degrades gracefully."""
    system = engine_system(
        12, 3, seed=b"backpressure", mempool_capacity=20
    )
    specs = make_chaos_specs(system, 12, 3, seed=9)
    engine = ProtocolEngine(system, specs, pause_above=4, max_rounds=1024)
    report = engine.run()
    assert all(o.status == "completed" for o in report.outcomes)
    assert_exactly_once_payouts(system, specs, report.outcomes)
    # The gate actually engaged: later tasks waited for capacity.
    assert report.resilience["pauses"] >= 1
    gated = engine.node.mempool
    assert gated.admission_rejections == 0  # nothing was ever dropped


def test_backpressure_pauses_are_deterministic() -> None:
    runs = set()
    for _ in range(2):
        system = engine_system(
            10, 3, seed=b"backpressure-det", mempool_capacity=18
        )
        specs = make_chaos_specs(system, 10, 3, seed=13)
        engine = ProtocolEngine(system, specs, pause_above=5, max_rounds=1024)
        report = engine.run()
        runs.add((report.transcript_digest(), report.resilience["pauses"]))
    assert len(runs) == 1
