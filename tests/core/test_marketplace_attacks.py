"""Adversarial suite for the open marketplace.

Three economic attacks, each modeled as an actor in
:mod:`repro.core.attacks` and asserted foiled on-chain:

- **bid sniping** — observe the full pool, underbid after the close:
  the deadline check reverts it and the observed pool settles as-is;
- **reputation farming** — split stake over fresh sybil credentials:
  fresh handles carry fresh tags, start at score zero, and lose the
  slot to an established handle at equal total stake;
- **dispute griefing** — contest flawless work: the verdict follows
  the SNARK-committed reward vector, so the dispute is ruled frivolous
  and the griefer's bond lands with the workers it tried to stiff.
"""

from __future__ import annotations

import pytest

from repro.core.accounting import contract_payment
from repro.core.attacks import BidSniper, DisputeGriefer, ReputationFarmer
from repro.core.engine import (
    MarketSpec,
    engine_system,
    run_open_market,
)
from repro.core.market import Arbiter, board_config, deploy_marketplace
from repro.core.policy import MajorityVotePolicy
from repro.core.requester import Requester
from repro.core.reputation import REP_SCALE, bid_score
from repro.core.worker import Worker

pytestmark = pytest.mark.market

SEEDS = [0, 1]
POLICY = MajorityVotePolicy(num_choices=4)


def _market_system(tag: str, seed: int):
    return engine_system(2, 3, seed=f"attack-{tag}-{seed}".encode())


@pytest.mark.parametrize("seed", SEEDS)
def test_bid_sniping_foiled_by_deadline(seed: int) -> None:
    system = _market_system("snipe", seed)
    arbiter = Arbiter(system)
    board = deploy_marketplace(
        system, arbiter.address, board_config(bid_window=30)
    )
    requester = Requester(system, f"lister-{seed}")
    honest = [Worker(system, f"honest-{seed}-{j}") for j in range(2)]
    sniper = BidSniper(system, f"sniper-{seed}")
    listing_id = requester.post_listing(
        board, "snipe-target", num_workers=1, budget=600,
        quality_bonus=300, validator_reward=60,
    )
    stakes = [120 + 10 * seed, 100]
    for worker, stake in zip(honest, stakes):
        assert worker.place_bid(board, listing_id, stake).success

    # The pool is public — the sniper reads every (tag, stake) pair and
    # knows exactly what would win...
    pool = sniper.observe_pool(board, listing_id)
    assert len(pool) == 2
    winning_stake = max(stake for _, stake in pool) + 500

    # ...but only after the deadline has passed.
    deadline = system.node.call(board, "get_listing", [listing_id])["bid_deadline"]
    while system.testnet.height <= deadline:
        system.testnet.mine_blocks(1)
    receipt = sniper.attempt_snipe(board, listing_id, winning_stake)
    assert not receipt.success
    assert "bidding closed" in receipt.error

    # The observed pool settles untouched: the snipe neither entered
    # the pool nor its value the escrow.
    matched = requester.match_listing(board, listing_id)
    listing = system.node.call(board, "get_listing", [listing_id])
    matched_tags = {listing["bids"][i]["tag"] for i in matched}
    assert matched_tags == {honest[0].handle_tag(board)}
    assert sniper.handle_tag(board) not in {b["tag"] for b in listing["bids"]}
    assert listing["escrow"] == 300 + 60 + stakes[0]  # winner's bond only


@pytest.mark.parametrize("seed", SEEDS)
def test_reputation_farming_starts_at_zero(seed: int) -> None:
    system = _market_system("farm", seed)
    arbiter = Arbiter(system)
    # Long half-life: the veteran's accrual must survive wave 1's blocks.
    board = deploy_marketplace(
        system,
        arbiter.address,
        board_config(bid_window=60, attach_window=1024, rep_half_life=4096),
    )
    veteran = Worker(system, f"veteran-{seed}")
    requester = Requester(system, f"farm-lister-{seed}")

    # Wave 1: the veteran completes one solo listing and earns standing.
    spec = MarketSpec(
        requester=requester,
        bidders=[(veteran, 100)],
        answers={veteran.identity: [1 + seed % 3]},
        policy=POLICY,
        description="rep-builder",
        num_workers=1,
        budget=400,
        quality_bonus=200,
        validator_reward=40,
    )
    report = run_open_market(
        system, [spec], board_address=board, arbiter=arbiter, max_rounds=256
    )
    assert report.listings[0].state == "settled"
    veteran_tag = veteran.handle_tag(board)
    veteran_score = system.node.call(board, "get_reputation", [veteran_tag])[0]
    assert veteran_score > 0

    # Wave 2: a farmer splits the veteran's total stake over fresh
    # sybil credentials (all legitimately certified, all fresh tags).
    farmer = ReputationFarmer(system, identity=f"farmer-{seed}", count=3)
    listing_id = requester.post_listing(
        board, "farm-target", num_workers=1, budget=400,
        quality_bonus=200, validator_reward=40,
    )
    total_stake = 300
    assert veteran.place_bid(board, listing_id, total_stake).success
    receipts = farmer.flood_bids(board, listing_id, total_stake)
    assert all(receipt.success for receipt in receipts)  # sybils ARE admitted

    # Fresh credentials ⇒ fresh tags ⇒ zero on-board reputation.
    for tag in farmer.handle_tags(board):
        assert tag != veteran_tag
        assert system.node.call(board, "get_reputation", [tag]) == [0] * 5
        assert bid_score(total_stake // 3, 0) == total_stake // 3  # 1.0x

    deadline = system.node.call(board, "get_listing", [listing_id])["bid_deadline"]
    while system.testnet.height <= deadline:
        system.testnet.mine_blocks(1)
    matched = requester.match_listing(board, listing_id)
    listing = system.node.call(board, "get_listing", [listing_id])
    matched_tags = {listing["bids"][i]["tag"] for i in matched}
    # The established handle takes the slot: its multiplier beats every
    # split bid AND a hypothetical full-stake fresh bid.
    assert matched_tags == {veteran_tag}
    assert bid_score(total_stake, veteran_score) > bid_score(total_stake, 0)
    assert veteran_score * total_stake // REP_SCALE > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_dispute_griefing_loses_the_bond(seed: int) -> None:
    system = _market_system("grief", seed)
    griefer = DisputeGriefer(system, f"griefer-{seed}")
    workers = [Worker(system, f"grief-worker-{seed}-{j}") for j in range(3)]
    answer = [seed % 4]
    spec = MarketSpec(
        requester=griefer,
        bidders=[(worker, 100 + 10 * j) for j, worker in enumerate(workers)],
        # Unanimous correct answers: every claimed slot earns a reward.
        answers={worker.identity: list(answer) for worker in workers},
        policy=POLICY,
        description="griefed-listing",
        num_workers=3,
        budget=600,
        quality_bonus=300,
        validator_reward=60,
        dispute=True,  # the griefer contests the flawless delivery
    )
    report = run_open_market(system, [spec], max_rounds=256)
    listing = report.listings[0]
    assert listing.state == "settled"
    assert listing.disputed

    legs = {}
    for recipient, amount, leg in listing.payouts:
        legs.setdefault(leg, 0)
        legs[leg] += amount
    bond = system.node.call(report.board_address, "get_config")["dispute_bond"]
    # The bond went to the claimed workers, not back to the disputer.
    assert "dispute-bond-return" not in legs
    assert legs["griefing-bond-award"] == bond
    # The workers kept the full bonus (up to flooring dust).
    assert legs["quality-bonus"] + legs.get("bonus-remainder", 0) == 300
    award_recipients = {
        bytes(recipient)
        for recipient, _, leg in listing.payouts
        if leg == "griefing-bond-award"
    }
    worker_accounts = {
        worker.board_account(report.board_address).address for worker in workers
    }
    assert award_recipients <= worker_accounts
    # Net: the griefer's board account got back strictly less than the
    # bond it posted on top of its other deposits.
    griefer_account = griefer.board_account(report.board_address).address
    assert contract_payment(system.node, griefer_account) < bond
