"""Boolean gadgets: decomposition, comparisons, logic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CircuitError
from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.field import FR
from repro.zksnark.gadgets.boolean import (
    assert_bit_length,
    assert_less_than_constant,
    bits_to_number,
    is_equal,
    is_zero,
    less_than,
    logical_and,
    logical_not,
    logical_or,
    number_to_bits,
    number_to_bits_strict,
)


@given(st.integers(min_value=0, max_value=1023))
@settings(max_examples=40)
def test_bit_decomposition_roundtrip(value: int) -> None:
    cs = ConstraintSystem()
    wire = cs.alloc(value)
    bits = number_to_bits(cs, wire, 10)
    assert [b.value for b in bits] == [(value >> i) & 1 for i in range(10)]
    assert bits_to_number(cs, bits).value == value
    cs.check_satisfied()


def test_decomposition_rejects_oversized_value() -> None:
    cs = ConstraintSystem()
    wire = cs.alloc(1024)
    with pytest.raises(CircuitError):
        number_to_bits(cs, wire, 10)


def test_forged_bits_fail_satisfaction() -> None:
    cs = ConstraintSystem()
    wire = cs.alloc(5)
    bits = number_to_bits(cs, wire, 4)
    # Tamper with a bit wire after the fact.
    cs.assignment[bits[0].index] = 0
    assert not cs.to_r1cs().is_satisfied(cs.assignment)


@pytest.mark.parametrize("value,expected", [(0, 1), (1, 0), (999, 0)])
def test_is_zero(value: int, expected: int) -> None:
    cs = ConstraintSystem()
    flag = is_zero(cs, cs.alloc(value))
    assert flag.value == expected
    cs.check_satisfied()


@given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100))
@settings(max_examples=40)
def test_is_equal(a: int, b: int) -> None:
    cs = ConstraintSystem()
    flag = is_equal(cs, cs.alloc(a), cs.alloc(b))
    assert flag.value == (1 if a == b else 0)
    cs.check_satisfied()


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
@settings(max_examples=40)
def test_less_than(a: int, b: int) -> None:
    cs = ConstraintSystem()
    flag = less_than(cs, cs.alloc(a), cs.alloc(b), bits=8)
    assert flag.value == (1 if a < b else 0)
    cs.check_satisfied()


def test_logic_gates() -> None:
    for a in (0, 1):
        for b in (0, 1):
            cs = ConstraintSystem()
            wa, wb = cs.alloc(a), cs.alloc(b)
            assert logical_and(cs, wa, wb).value == (a & b)
            assert logical_or(cs, wa, wb).value == (a | b)
            assert logical_not(cs, wa).value == (1 - a)
            cs.check_satisfied()


def test_assert_bit_length() -> None:
    cs = ConstraintSystem()
    assert_bit_length(cs, cs.alloc(255), 8)
    cs.check_satisfied()
    with pytest.raises(CircuitError):
        assert_bit_length(cs, cs.alloc(256), 8)


@given(st.integers(min_value=0, max_value=999))
@settings(max_examples=40)
def test_less_than_constant(value: int) -> None:
    cs = ConstraintSystem()
    bits = number_to_bits(cs, cs.alloc(value), 10)
    assert_less_than_constant(cs, bits, 500)
    if value < 500:
        cs.check_satisfied()
    else:
        assert not cs.to_r1cs().is_satisfied(cs.assignment)


def test_less_than_constant_wide_constant_noop() -> None:
    cs = ConstraintSystem()
    bits = number_to_bits(cs, cs.alloc(3), 2)
    before = cs.num_constraints
    assert_less_than_constant(cs, bits, 8)  # 8 needs 4 bits > len(bits)
    assert cs.num_constraints == before  # trivially true, no constraints
    cs.check_satisfied()


def test_strict_decomposition_canonical() -> None:
    cs = ConstraintSystem()
    value = FR.modulus - 1
    bits = number_to_bits_strict(cs, cs.alloc(value))
    cs.check_satisfied()
    packed = sum(b.value << i for i, b in enumerate(bits))
    assert packed == value


def test_strict_decomposition_rejects_aliased_bits() -> None:
    """Bits encoding value + r (the aliasing attack) must not satisfy."""
    cs = ConstraintSystem()
    value = 5
    bits = number_to_bits_strict(cs, cs.alloc(value))
    aliased = value + FR.modulus  # same residue, different bit pattern
    assert aliased < (1 << len(bits))
    for i, bit in enumerate(bits):
        cs.assignment[bit.index] = (aliased >> i) & 1
    assert not cs.to_r1cs().is_satisfied(cs.assignment)
