"""R1CS → QAP reduction correctness."""

from __future__ import annotations

import pytest

from repro.errors import UnsatisfiedConstraintError
from repro.zksnark import polynomial as poly
from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.field import FR
from repro.zksnark.qap import QAP


def _cube_system(x: int, out: int) -> ConstraintSystem:
    cs = ConstraintSystem()
    out_wire = cs.alloc_public(out)
    x_wire = cs.alloc(x)
    x2 = cs.mul(x_wire, x_wire)
    x3 = cs.mul(x2, x_wire)
    cs.enforce_equal(x3 + x_wire + 5, out_wire)
    return cs


def test_witness_quotient_exists_for_satisfying_assignment() -> None:
    cs = _cube_system(3, 35)
    qap = QAP(cs.to_r1cs())
    h = qap.witness_quotient(cs.assignment)
    assert len(h) <= qap.degree - 1


def test_witness_quotient_rejects_bad_assignment() -> None:
    cs = _cube_system(3, 36)  # 3^3+3+5 = 35, not 36
    qap = QAP(cs.to_r1cs())
    with pytest.raises(UnsatisfiedConstraintError):
        qap.witness_quotient(cs.assignment)


def test_divisibility_identity() -> None:
    """Σ w_i A_i(x) · Σ w_i B_i(x) − Σ w_i C_i(x) == H(x)·Z(x) (as polynomials)."""
    cs = _cube_system(4, 73)
    r1cs = cs.to_r1cs()
    qap = QAP(r1cs)
    h = qap.witness_quotient(cs.assignment)
    a_evals, b_evals, c_evals = qap._aggregate_evaluations(cs.assignment)
    a_poly = poly.lagrange_interpolate(FR, qap.domain, a_evals)
    b_poly = poly.lagrange_interpolate(FR, qap.domain, b_evals)
    c_poly = poly.lagrange_interpolate(FR, qap.domain, c_evals)
    z = poly.vanishing_polynomial(FR, qap.domain)
    lhs = poly.poly_sub(FR, poly.poly_mul(FR, a_poly, b_poly), c_poly)
    rhs = poly.poly_mul(FR, h, z)
    assert lhs == rhs


def test_evaluate_at_consistency() -> None:
    """Column evaluation at τ must agree with interpolating then evaluating."""
    cs = _cube_system(2, 15)
    r1cs = cs.to_r1cs()
    qap = QAP(r1cs)
    tau = 987654321
    evaluation = qap.evaluate_at(tau)
    # Cross-check wire 0's A-column directly.
    wire = 0
    column_values = [cons.a.get(wire, 0) for cons in r1cs.constraints]
    column_poly = poly.lagrange_interpolate(FR, qap.domain, column_values)
    assert evaluation.a_at[wire] == poly.poly_eval(FR, column_poly, tau)
    # And Z(τ).
    z = poly.vanishing_polynomial(FR, qap.domain)
    assert evaluation.z_at == poly.poly_eval(FR, z, tau)


def test_empty_system_rejected() -> None:
    cs = ConstraintSystem()
    cs.alloc(1)
    with pytest.raises(ValueError):
        QAP(cs.to_r1cs())
