"""BN128 group and pairing laws (the expensive checks run once)."""

from __future__ import annotations

import pytest

from repro.zksnark.bn128 import (
    CURVE_ORDER,
    FQ2,
    FQ12,
    G1,
    G2,
    g1_add,
    g1_mul,
    g1_neg,
    g2_add,
    g2_mul,
    g2_neg,
    is_on_g1,
    is_on_g2,
    pairing,
)
from repro.zksnark.bn128.curve import (
    g1_from_bytes,
    g1_msm,
    g1_to_bytes,
    g2_from_bytes,
    g2_to_bytes,
)
from repro.zksnark.bn128.pairing import miller_loop, multi_pairing


def test_generators_on_curve() -> None:
    assert is_on_g1(G1)
    assert is_on_g2(G2)


def test_group_orders() -> None:
    assert g1_mul(G1, CURVE_ORDER) is None
    assert g2_mul(G2, CURVE_ORDER) is None


def test_g1_addition_law() -> None:
    assert g1_add(g1_mul(G1, 5), g1_mul(G1, 7)) == g1_mul(G1, 12)
    assert g1_add(G1, None) == G1
    assert g1_add(None, G1) == G1
    assert g1_add(G1, g1_neg(G1)) is None


def test_g1_doubling_consistency() -> None:
    assert g1_add(G1, G1) == g1_mul(G1, 2)


def test_g2_addition_law() -> None:
    assert g2_add(g2_mul(G2, 5), g2_mul(G2, 7)) == g2_mul(G2, 12)
    assert g2_add(G2, g2_neg(G2)) is None


def test_g1_msm_matches_naive() -> None:
    points = [g1_mul(G1, k) for k in (2, 3, 5)]
    scalars = [7, 11, 13]
    expected = g1_mul(G1, 2 * 7 + 3 * 11 + 5 * 13)
    assert g1_msm(points, scalars) == expected


def test_g1_serialization_roundtrip() -> None:
    point = g1_mul(G1, 987654321)
    assert g1_from_bytes(g1_to_bytes(point)) == point
    assert g1_from_bytes(g1_to_bytes(None)) is None
    with pytest.raises(ValueError):
        g1_from_bytes(b"\x01" * 64)  # not on curve


def test_g2_serialization_roundtrip() -> None:
    point = g2_mul(G2, 123456789)
    assert g2_from_bytes(g2_to_bytes(point)) == point
    assert g2_from_bytes(g2_to_bytes(None)) is None
    with pytest.raises(ValueError):
        g2_from_bytes(b"\x01" * 128)


def test_fq2_field_laws() -> None:
    a = FQ2(3, 4)
    b = FQ2(5, 6)
    assert a * b == b * a
    assert a * a.inverse() == FQ2.one()
    assert (a + b) - b == a
    assert a.square() == a * a
    # i^2 = -1
    i = FQ2(0, 1)
    assert i * i == -FQ2.one()


def test_fq12_field_laws() -> None:
    a = FQ12([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
    b = FQ12([12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1])
    assert a * b == b * a
    assert a * a.inverse() == FQ12.one()
    assert (a + b) - b == a
    assert a ** 3 == a * a * a
    with pytest.raises(ZeroDivisionError):
        FQ12.zero().inverse()


def test_fq12_modulus_relation() -> None:
    # w^12 = 18 w^6 - 82 by construction.
    w = FQ12([0, 1] + [0] * 10)
    assert w ** 12 == FQ12([-82, 0, 0, 0, 0, 0, 18, 0, 0, 0, 0, 0])


def test_pairing_bilinearity() -> None:
    base = pairing(G2, G1)
    assert pairing(G2, g1_mul(G1, 3)) == base ** 3
    assert pairing(g2_mul(G2, 3), G1) == base ** 3


def test_pairing_non_degenerate() -> None:
    assert not pairing(G2, G1).is_one()


def test_pairing_identity_inputs() -> None:
    assert miller_loop(None, G1).is_one()
    assert miller_loop(G2, None).is_one()


def test_multi_pairing_cancellation() -> None:
    # e(2·G1, G2) · e(−G1, 2·G2) = e(G1,G2)^2 · e(G1,G2)^-2 = 1.
    product = multi_pairing(
        [(G2, g1_mul(G1, 2)), (g2_mul(G2, 2), g1_neg(G1))]
    )
    assert product.is_one()
