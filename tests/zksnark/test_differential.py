"""Differential sweep: optimized Groth16/BN128 paths vs naive references.

~100 seeded cases asserting the optimized implementations (Pippenger
MSMs, prepared-pairing multi-pairing, random-linear-combination
``batch_verify``) agree bit-for-bit with the retained naive reference
paths — including on corrupted proofs, where BOTH must reject.

All randomness comes from seeded :class:`random.Random` instances, so a
disagreement is reproducible from the failing case index alone.
"""

from __future__ import annotations

import random

import pytest

from repro.zksnark import (
    CircuitDefinition,
    ConstraintSystem,
    Groth16Backend,
    Proof,
)
from repro.zksnark.bn128.curve import (
    G1,
    G2,
    g1_msm,
    g1_msm_naive,
    g1_mul,
    g2_msm,
    g2_msm_naive,
    g2_mul,
)
from repro.zksnark.bn128.fq import CURVE_ORDER
from repro.zksnark.bn128.pairing import (
    multi_pairing,
    multi_pairing_naive,
    pairing,
    pairing_naive,
    prepare_g2,
)


class ProductCircuit(CircuitDefinition):
    """a * b == out with two public inputs (out, a)."""

    name = "diff-product"

    def example_instance(self):
        return {"out": 6, "a": 2, "b": 3}

    def synthesize(self, cs: ConstraintSystem, instance) -> None:
        out = cs.alloc_public(instance["out"])
        a = cs.alloc_public(instance["a"])
        b = cs.alloc(instance["b"])
        cs.enforce(a, b, out)


@pytest.fixture(scope="module")
def optimized() -> Groth16Backend:
    return Groth16Backend(optimized=True)


@pytest.fixture(scope="module")
def naive() -> Groth16Backend:
    return Groth16Backend(optimized=False)


@pytest.fixture(scope="module")
def keys(optimized):
    return optimized.setup(ProductCircuit(), seed=b"differential-keys")


def _instance(rng: random.Random) -> dict:
    a = rng.randrange(1, CURVE_ORDER)
    b = rng.randrange(1, CURVE_ORDER)
    return {"a": a, "b": b, "out": a * b % CURVE_ORDER}


# ----- MSM: Pippenger vs double-and-add (60 cases) -------------------------------


def _g1_points(rng: random.Random, count: int):
    return [g1_mul(G1, rng.randrange(1, 2**64)) for _ in range(count)]


@pytest.mark.parametrize("case", range(30))
def test_g1_msm_matches_naive(case: int) -> None:
    rng = random.Random(1000 + case)
    size = rng.randrange(0, 12)
    points = _g1_points(rng, size)
    scalars = [rng.randrange(0, CURVE_ORDER) for _ in range(size)]
    if case % 5 == 0 and size:
        scalars[rng.randrange(size)] = 0  # exercise zero-scalar skipping
    if case % 7 == 0 and size:
        points[rng.randrange(size)] = None  # and identity points
    assert g1_msm(points, scalars) == g1_msm_naive(points, scalars)


@pytest.mark.parametrize("case", range(15))
def test_g2_msm_matches_naive(case: int) -> None:
    rng = random.Random(2000 + case)
    size = rng.randrange(0, 6)
    # 64-bit scalars keep the naive per-point G2 ladder affordable.
    points = [g2_mul(G2, rng.randrange(1, 2**32)) for _ in range(size)]
    scalars = [rng.randrange(0, 2**64) for _ in range(size)]
    assert g2_msm(points, scalars) == g2_msm_naive(points, scalars)


@pytest.mark.parametrize("group", ["g1", "g2"])
def test_msm_length_mismatch_raises_on_both_paths(group: str) -> None:
    point = G1 if group == "g1" else G2
    fast = g1_msm if group == "g1" else g2_msm
    slow = g1_msm_naive if group == "g1" else g2_msm_naive
    for fn in (fast, slow):
        with pytest.raises(ValueError):
            fn([point], [1, 2])


# ----- pairing: prepared/decomposed vs all-FQ12 reference (10 cases) --------------


@pytest.mark.parametrize("case", range(6))
def test_pairing_matches_naive(case: int) -> None:
    rng = random.Random(3000 + case)
    p = g1_mul(G1, rng.randrange(1, 2**64))
    q = g2_mul(G2, rng.randrange(1, 2**32))
    assert pairing(q, p) == pairing_naive(q, p)


@pytest.mark.parametrize("case", range(3))
def test_multi_pairing_matches_naive(case: int) -> None:
    rng = random.Random(4000 + case)
    pairs = [
        (
            g2_mul(G2, rng.randrange(1, 2**32)),
            g1_mul(G1, rng.randrange(1, 2**64)),
        )
        for _ in range(case + 2)
    ]
    assert multi_pairing(pairs) == multi_pairing_naive(pairs)


def test_multi_pairing_accepts_prepared_points() -> None:
    rng = random.Random(4100)
    q = g2_mul(G2, rng.randrange(1, 2**32))
    p = g1_mul(G1, rng.randrange(1, 2**64))
    assert multi_pairing([(prepare_g2(q), p)]) == multi_pairing_naive([(q, p)])


# ----- full verify: optimized vs naive verifier (24 cases) ------------------------


@pytest.mark.parametrize("case", range(8))
def test_valid_proofs_verify_on_both_paths(optimized, naive, keys, case: int) -> None:
    rng = random.Random(5000 + case)
    instance = _instance(rng)
    proof = optimized.prove(keys.proving_key, ProductCircuit(), instance)
    statement = [instance["out"], instance["a"]]
    assert optimized.verify(keys.verifying_key, statement, proof) is True
    assert naive.verify(keys.verifying_key, statement, proof) is True


@pytest.mark.parametrize("case", range(8))
def test_corrupted_proofs_rejected_on_both_paths(
    optimized, naive, keys, case: int
) -> None:
    rng = random.Random(6000 + case)
    instance = _instance(rng)
    proof = optimized.prove(keys.proving_key, ProductCircuit(), instance)
    statement = [instance["out"], instance["a"]]
    corrupted = bytearray(proof.payload)
    corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
    bad = Proof(backend=proof.backend, payload=bytes(corrupted))
    # A flipped bit either falls off the curve (decode failure) or
    # yields a valid encoding of the wrong element; both paths must
    # reject either way, and must AGREE.
    assert optimized.verify(keys.verifying_key, statement, bad) is False
    assert naive.verify(keys.verifying_key, statement, bad) is False


@pytest.mark.parametrize("case", range(4))
def test_wrong_statement_rejected_on_both_paths(
    optimized, naive, keys, case: int
) -> None:
    rng = random.Random(7000 + case)
    instance = _instance(rng)
    proof = optimized.prove(keys.proving_key, ProductCircuit(), instance)
    wrong = [
        (instance["out"] + rng.randrange(1, CURVE_ORDER)) % CURVE_ORDER,
        instance["a"],
    ]
    assert optimized.verify(keys.verifying_key, wrong, proof) is False
    assert naive.verify(keys.verifying_key, wrong, proof) is False


@pytest.mark.parametrize("case", range(2))
def test_naive_prover_output_verifies_on_optimized_path(
    optimized, naive, keys, case: int
) -> None:
    rng = random.Random(8000 + case)
    instance = _instance(rng)
    proof = naive.prove(keys.proving_key, ProductCircuit(), instance)
    statement = [instance["out"], instance["a"]]
    assert optimized.verify(keys.verifying_key, statement, proof) is True


# ----- batch_verify vs a verify loop (3 cases) ------------------------------------


def test_batch_verify_agrees_with_loop_on_valid_batch(optimized, keys) -> None:
    rng = random.Random(9000)
    instances = [_instance(rng) for _ in range(4)]
    statements = [[inst["out"], inst["a"]] for inst in instances]
    proofs = [
        optimized.prove(keys.proving_key, ProductCircuit(), inst)
        for inst in instances
    ]
    loop = all(
        optimized.verify(keys.verifying_key, stmt, proof)
        for stmt, proof in zip(statements, proofs)
    )
    assert optimized.batch_verify(keys.verifying_key, statements, proofs) is loop
    assert loop is True


def test_batch_verify_agrees_with_loop_on_poisoned_batch(optimized, keys) -> None:
    rng = random.Random(9100)
    instances = [_instance(rng) for _ in range(3)]
    statements = [[inst["out"], inst["a"]] for inst in instances]
    proofs = [
        optimized.prove(keys.proving_key, ProductCircuit(), inst)
        for inst in instances
    ]
    poisoned = bytearray(proofs[1].payload)
    poisoned[17] ^= 0x40
    proofs[1] = Proof(backend=proofs[1].backend, payload=bytes(poisoned))
    loop = all(
        optimized.verify(keys.verifying_key, stmt, proof)
        for stmt, proof in zip(statements, proofs)
    )
    assert loop is False
    assert optimized.batch_verify(keys.verifying_key, statements, proofs) is False


def test_batch_verify_rejects_one_wrong_statement(optimized, keys) -> None:
    rng = random.Random(9200)
    instances = [_instance(rng) for _ in range(3)]
    statements = [[inst["out"], inst["a"]] for inst in instances]
    proofs = [
        optimized.prove(keys.proving_key, ProductCircuit(), inst)
        for inst in instances
    ]
    statements[2] = [(statements[2][0] + 1) % CURVE_ORDER, statements[2][1]]
    assert optimized.batch_verify(keys.verifying_key, statements, proofs) is False


# ----- representation toggles: Montgomery x GLV axes (24 + 4 cases) ---------------
#
# The Montgomery-domain G1 core and the GLV decomposition are runtime
# toggles; every combination must agree with the naive oracle (which
# always runs the plain %-q double-and-add core, independent of the
# toggles).


_TOGGLE_AXES = [(False, False), (False, True), (True, False), (True, True)]


@pytest.mark.parametrize("montgomery,glv", _TOGGLE_AXES)
@pytest.mark.parametrize("case", range(6))
def test_g1_paths_match_naive_under_toggles(
    case: int, montgomery: bool, glv: bool
) -> None:
    from repro.zksnark.bn128.curve import set_fast_opts

    prior = set_fast_opts(montgomery=montgomery, glv=glv)
    try:
        rng = random.Random(11000 + case)
        size = rng.randrange(1, 10)
        points = _g1_points(rng, size)
        # Full-width scalars so the GLV split actually engages.
        scalars = [rng.randrange(0, CURVE_ORDER) for _ in range(size)]
        assert g1_msm(points, scalars) == g1_msm_naive(points, scalars)
        k = rng.randrange(1, CURVE_ORDER)
        point = points[0]
        set_fast_opts(montgomery=False, glv=False)
        reference = g1_mul(point, k)
        set_fast_opts(montgomery=montgomery, glv=glv)
        assert g1_mul(point, k) == reference
    finally:
        set_fast_opts(*prior)


@pytest.mark.parametrize("montgomery,glv", _TOGGLE_AXES)
def test_verify_accepts_proof_under_every_toggle_combo(
    optimized, keys, montgomery: bool, glv: bool
) -> None:
    """Proof produced under one toggle combo verifies under every other."""
    from repro.zksnark.bn128.curve import set_fast_opts

    rng = random.Random(12000)
    instance = _instance(rng)
    statement = [instance["out"], instance["a"]]
    prior = set_fast_opts(montgomery=montgomery, glv=glv)
    try:
        proof = optimized.prove(keys.proving_key, ProductCircuit(), instance)
        assert optimized.verify(keys.verifying_key, statement, proof) is True
    finally:
        set_fast_opts(*prior)
    # Cross-check: the proof from this combo verifies with defaults too.
    assert optimized.verify(keys.verifying_key, statement, proof) is True
