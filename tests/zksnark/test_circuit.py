"""ConstraintSystem builder semantics and R1CS satisfaction."""

from __future__ import annotations

import pytest

from repro.errors import CircuitError, UnsatisfiedConstraintError
from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.field import FR


def test_wire_zero_is_one() -> None:
    cs = ConstraintSystem()
    assert cs.assignment[0] == 1
    assert cs.one.value == 1


def test_alloc_order_public_then_private() -> None:
    cs = ConstraintSystem()
    p = cs.alloc_public(5)
    a = cs.alloc(7)
    assert p.index == 1 and a.index == 2
    assert cs.num_public == 1
    assert cs.public_values() == [5]
    with pytest.raises(CircuitError):
        cs.alloc_public(9)  # too late


def test_linear_combination_arithmetic() -> None:
    cs = ConstraintSystem()
    x = cs.alloc(3)
    y = cs.alloc(4)
    lc = 2 * x + y - 1
    assert lc.value == 9
    assert (-lc).value == FR.modulus - 9
    assert (lc * 3).value == 27
    assert (10 - x).value == 7


def test_mul_and_enforce() -> None:
    cs = ConstraintSystem()
    x = cs.alloc(3)
    y = cs.alloc(5)
    product = cs.mul(x, y)
    assert product.value == 15
    cs.enforce_equal(product, cs.constant(15))
    cs.check_satisfied()


def test_unsatisfied_detected() -> None:
    cs = ConstraintSystem()
    x = cs.alloc(3)
    cs.enforce(x, x, cs.constant(10), annotation="bogus square")
    with pytest.raises(UnsatisfiedConstraintError, match="bogus square"):
        cs.check_satisfied()


def test_boolean_constraint() -> None:
    cs = ConstraintSystem()
    good = cs.alloc(1)
    cs.enforce_boolean(good)
    cs.check_satisfied()
    bad = cs.alloc(2)
    cs.enforce_boolean(bad)
    assert not cs.to_r1cs().is_satisfied(cs.assignment)


def test_inverse_and_div_helpers() -> None:
    cs = ConstraintSystem()
    x = cs.alloc(6)
    inv = cs.inverse(x)
    assert (inv.value * 6) % FR.modulus == 1
    q = cs.div(cs.constant(12), x)
    assert q.value == 2
    cs.check_satisfied()


def test_inverse_of_zero_raises() -> None:
    cs = ConstraintSystem()
    zero = cs.alloc(0)
    with pytest.raises(ZeroDivisionError):
        cs.inverse(zero)


def test_cross_system_variables_rejected() -> None:
    cs1 = ConstraintSystem()
    cs2 = ConstraintSystem()
    x = cs1.alloc(1)
    with pytest.raises(CircuitError):
        cs2.coerce(x)


def test_lc_scale_by_non_int_rejected() -> None:
    cs = ConstraintSystem()
    x = cs.alloc(2)
    with pytest.raises(TypeError):
        _ = x.lc() * 1.5  # type: ignore[operator]


def test_r1cs_digest_independent_of_witness_values() -> None:
    def build(a: int, b: int):
        cs = ConstraintSystem()
        out = cs.alloc_public(a * b % FR.modulus)
        x = cs.alloc(a)
        y = cs.alloc(b)
        cs.enforce(x, y, out)
        return cs.to_r1cs()

    assert build(3, 5).structure_digest() == build(7, 11).structure_digest()


def test_r1cs_digest_changes_with_structure() -> None:
    cs1 = ConstraintSystem()
    x = cs1.alloc(2)
    cs1.enforce(x, x, cs1.constant(4))
    cs2 = ConstraintSystem()
    y = cs2.alloc(2)
    cs2.enforce(y, cs2.one, y)
    assert cs1.to_r1cs().structure_digest() != cs2.to_r1cs().structure_digest()


def test_assignment_length_checked() -> None:
    cs = ConstraintSystem()
    cs.alloc(1)
    r1cs = cs.to_r1cs()
    with pytest.raises(UnsatisfiedConstraintError):
        r1cs.check_satisfied([1])  # wrong width


def test_wire_zero_must_be_one() -> None:
    cs = ConstraintSystem()
    cs.alloc(1)
    r1cs = cs.to_r1cs()
    with pytest.raises(UnsatisfiedConstraintError):
        r1cs.check_satisfied([2, 1])
