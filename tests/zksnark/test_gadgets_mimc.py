"""MiMC-7: native/circuit agreement and permutation properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.field import FR
from repro.zksnark.gadgets.mimc import (
    MiMCParameters,
    mimc_encrypt,
    mimc_encrypt_native,
    mimc_hash,
    mimc_hash_native,
)

PARAMS = MiMCParameters.for_rounds(7)

field_values = st.integers(min_value=0, max_value=FR.modulus - 1)


def test_parameters_cached_and_derived() -> None:
    again = MiMCParameters.for_rounds(7)
    assert again is PARAMS  # lru_cache
    assert PARAMS.constants[0] == 0
    assert len(set(PARAMS.constants)) == len(PARAMS.constants)
    with pytest.raises(ValueError):
        from repro.profiles import SecurityProfile

        SecurityProfile(name="bad", mimc_rounds=1, merkle_depth=2, scalar_bits=8)


def test_exponent_seven_is_permutation_exponent() -> None:
    import math

    assert math.gcd(7, FR.modulus - 1) == 1


@given(field_values, field_values)
@settings(max_examples=30)
def test_encrypt_native_vs_circuit(key: int, message: int) -> None:
    cs = ConstraintSystem()
    out = mimc_encrypt(cs, cs.alloc(key), cs.alloc(message), PARAMS)
    assert out.value == mimc_encrypt_native(key, message, PARAMS)
    cs.check_satisfied()


@given(st.lists(field_values, min_size=1, max_size=4))
@settings(max_examples=20)
def test_hash_native_vs_circuit(inputs) -> None:
    cs = ConstraintSystem()
    wires = [cs.alloc(v) for v in inputs]
    out = mimc_hash(cs, wires, PARAMS)
    assert out.value == mimc_hash_native(inputs, PARAMS)
    cs.check_satisfied()


def test_encryption_is_injective_sample() -> None:
    outputs = {mimc_encrypt_native(1, m, PARAMS) for m in range(200)}
    assert len(outputs) == 200


def test_key_sensitivity() -> None:
    assert mimc_encrypt_native(1, 42, PARAMS) != mimc_encrypt_native(2, 42, PARAMS)


def test_hash_length_extension_resistance_shape() -> None:
    assert mimc_hash_native([1, 2], PARAMS) != mimc_hash_native([1], PARAMS)
    assert mimc_hash_native([1, 2], PARAMS) != mimc_hash_native([2, 1], PARAMS)


def test_round_count_changes_output() -> None:
    other = MiMCParameters.for_rounds(11)
    assert mimc_hash_native([7], PARAMS) != mimc_hash_native([7], other)


def test_constraint_count() -> None:
    cs = ConstraintSystem()
    mimc_encrypt(cs, cs.alloc(1), cs.alloc(2), PARAMS)
    # 4 constraints (x^2, x^4, x^6, x^7) per round.
    assert cs.num_constraints == 4 * PARAMS.rounds


def test_circuit_tamper_detected() -> None:
    cs = ConstraintSystem()
    out = mimc_encrypt(cs, cs.alloc(1), cs.alloc(2), PARAMS)
    # Flip an internal round wire.
    cs.assignment[-1] = (cs.assignment[-1] + 1) % FR.modulus
    assert not cs.to_r1cs().is_satisfied(cs.assignment)
