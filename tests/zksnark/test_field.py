"""Prime-field axioms and the FieldElement wrapper."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.zksnark.field import FR, FieldElement, PrimeField

elements = st.integers(min_value=0, max_value=FR.modulus - 1)
nonzero = st.integers(min_value=1, max_value=FR.modulus - 1)


@given(elements, elements, elements)
def test_ring_axioms(a: int, b: int, c: int) -> None:
    assert FR.add(a, b) == FR.add(b, a)
    assert FR.mul(a, b) == FR.mul(b, a)
    assert FR.mul(a, FR.add(b, c)) == FR.add(FR.mul(a, b), FR.mul(a, c))
    assert FR.add(FR.add(a, b), c) == FR.add(a, FR.add(b, c))


@given(nonzero)
def test_inverse(a: int) -> None:
    assert FR.mul(a, FR.inv(a)) == 1


@given(elements)
def test_neg_sub(a: int) -> None:
    assert FR.add(a, FR.neg(a)) == 0
    assert FR.sub(0, a) == FR.neg(a)


def test_zero_inverse_raises() -> None:
    with pytest.raises(ZeroDivisionError):
        FR.inv(0)


@given(nonzero)
def test_fermat(a: int) -> None:
    assert FR.exp(a, FR.modulus - 1) == 1


def test_byte_roundtrip() -> None:
    value = 123456789
    assert FR.from_bytes(FR.to_bytes(value)) == value
    assert len(FR.to_bytes(value)) == FR.byte_length()


def test_field_element_operators() -> None:
    a = FR.element(5)
    b = FR.element(7)
    assert (a + b).value == 12
    assert (a * b).value == 35
    assert (a - b).value == FR.modulus - 2
    assert (b / a).value == FR.div(7, 5)
    assert (-a).value == FR.modulus - 5
    assert (a ** 3).value == 125
    assert a.inverse() * a == FR.one()
    assert a + 1 == FR.element(6)
    assert 1 + a == FR.element(6)
    assert 10 - a == FR.element(5)
    assert a == 5
    assert int(a) == 5


def test_field_mismatch_rejected() -> None:
    other = PrimeField(97)
    with pytest.raises(ValueError):
        _ = FR.element(1) + other.element(1)


def test_tiny_field_sanity() -> None:
    f = PrimeField(7)
    assert f.add(5, 5) == 3
    assert f.inv(3) == 5  # 3*5 = 15 = 1 mod 7
    with pytest.raises(ValueError):
        PrimeField(1)
