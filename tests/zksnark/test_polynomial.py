"""Dense polynomial arithmetic over FR."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.zksnark import polynomial as poly
from repro.zksnark.field import FR

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=FR.modulus - 1), min_size=0, max_size=8
)


@given(coeff_lists, coeff_lists)
def test_add_commutes(a, b) -> None:
    assert poly.poly_add(FR, a, b) == poly.poly_add(FR, b, a)


@given(coeff_lists, coeff_lists)
@settings(max_examples=50)
def test_mul_matches_evaluation(a, b) -> None:
    product = poly.poly_mul(FR, a, b)
    for x in (0, 1, 2, 12345):
        expected = poly.poly_eval(FR, a, x) * poly.poly_eval(FR, b, x) % FR.modulus
        assert poly.poly_eval(FR, product, x) == expected


@given(coeff_lists, coeff_lists)
@settings(max_examples=50)
def test_divmod_invariant(a, b) -> None:
    if not poly.trim(b):
        return
    quotient, remainder = poly.poly_divmod(FR, a, b)
    recombined = poly.poly_add(FR, poly.poly_mul(FR, quotient, b), remainder)
    assert recombined == poly.trim(a)
    assert len(remainder) < len(poly.trim(b)) or not remainder


def test_divmod_by_zero_raises() -> None:
    with pytest.raises(ZeroDivisionError):
        poly.poly_divmod(FR, [1, 2], [0])


def test_vanishing_polynomial_roots() -> None:
    points = [1, 2, 3, 4]
    z = poly.vanishing_polynomial(FR, points)
    assert len(z) == 5
    for point in points:
        assert poly.poly_eval(FR, z, point) == 0
    assert poly.poly_eval(FR, z, 5) != 0


def test_lagrange_interpolation_exact() -> None:
    points = [1, 2, 3, 5]
    values = [10, 20, 99, 7]
    interpolated = poly.lagrange_interpolate(FR, points, values)
    assert len(interpolated) <= 4
    for point, value in zip(points, values):
        assert poly.poly_eval(FR, interpolated, point) == value


@given(st.lists(st.integers(min_value=0, max_value=FR.modulus - 1),
                min_size=1, max_size=6, unique=True))
@settings(max_examples=30)
def test_lagrange_roundtrip(values) -> None:
    points = list(range(1, len(values) + 1))
    interpolated = poly.lagrange_interpolate(FR, points, values)
    for point, value in zip(points, values):
        assert poly.poly_eval(FR, interpolated, point) == value


def test_lagrange_duplicate_points_rejected() -> None:
    with pytest.raises(ValueError):
        poly.lagrange_interpolate(FR, [1, 1], [2, 3])


def test_lagrange_basis_at_matches_interpolation() -> None:
    points = [1, 2, 3]
    x = 777
    basis = poly.lagrange_basis_at(FR, points, x)
    # Σ v_j L_j(x) must equal interpolate(v)(x).
    values = [5, 9, 13]
    direct = sum(v * l for v, l in zip(values, basis)) % FR.modulus
    interpolated = poly.lagrange_interpolate(FR, points, values)
    assert direct == poly.poly_eval(FR, interpolated, x)


def test_basis_partition_of_unity() -> None:
    points = [1, 2, 3, 4, 5]
    basis = poly.lagrange_basis_at(FR, points, 424242)
    assert sum(basis) % FR.modulus == 1


def test_trim() -> None:
    assert poly.trim([1, 2, 0, 0]) == [1, 2]
    assert poly.trim([0, 0]) == []


def _schoolbook_mul(a, b):
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        for j, cb in enumerate(b):
            out[i + j] += ca * cb
    return poly.trim([c % FR.modulus for c in out])


@given(
    st.lists(st.integers(min_value=0, max_value=FR.modulus - 1), max_size=80),
    st.lists(st.integers(min_value=0, max_value=FR.modulus - 1), max_size=80),
)
@settings(max_examples=60, deadline=None)
def test_karatsuba_matches_schoolbook(a, b) -> None:
    assert poly.poly_mul(FR, a, b) == _schoolbook_mul(a, b)


def test_karatsuba_above_threshold_unbalanced_shapes() -> None:
    import random

    rng = random.Random(11)
    for la, lb in [(65, 33), (200, 40), (40, 200), (128, 128), (129, 127)]:
        a = [rng.randrange(FR.modulus) for _ in range(la)]
        b = [rng.randrange(FR.modulus) for _ in range(lb)]
        assert poly.poly_mul(FR, a, b) == _schoolbook_mul(a, b)


def test_vanishing_product_tree_has_all_roots() -> None:
    import random

    rng = random.Random(12)
    points = [rng.randrange(FR.modulus) for _ in range(37)]
    z = poly.vanishing_polynomial(FR, points)
    assert len(z) == len(points) + 1  # monic, degree n
    assert z[-1] == 1
    for point in points:
        assert poly.poly_eval(FR, z, point) == 0
    assert poly.vanishing_polynomial(FR, []) == [1]
