"""Groth16 end-to-end: completeness, tamper-resistance, zero-knowledge shape."""

from __future__ import annotations

import pytest

from repro.errors import ProofError, UnsatisfiedConstraintError
from repro.zksnark import CircuitDefinition, ConstraintSystem, Groth16Backend, Proof


class CubeCircuit(CircuitDefinition):
    """x^3 + x + 5 == out."""

    name = "cube"

    def example_instance(self):
        return {"x": 3, "out": 35}

    def synthesize(self, cs: ConstraintSystem, instance) -> None:
        out = cs.alloc_public(instance["out"])
        x = cs.alloc(instance["x"])
        x2 = cs.mul(x, x)
        x3 = cs.mul(x2, x)
        cs.enforce_equal(x3 + x + 5, out)


class ProductCircuit(CircuitDefinition):
    """a * b == out with two public inputs (out, a)."""

    name = "product"

    def example_instance(self):
        return {"out": 6, "a": 2, "b": 3}

    def synthesize(self, cs: ConstraintSystem, instance) -> None:
        out = cs.alloc_public(instance["out"])
        a = cs.alloc_public(instance["a"])
        b = cs.alloc(instance["b"])
        cs.enforce(a, b, out)


@pytest.fixture(scope="module")
def backend() -> Groth16Backend:
    return Groth16Backend()


@pytest.fixture(scope="module")
def cube_keys(backend):
    return backend.setup(CubeCircuit(), seed=b"cube-test")


def test_completeness(backend, cube_keys) -> None:
    proof = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    assert backend.verify(cube_keys.verifying_key, [35], proof)


def test_rejects_wrong_statement(backend, cube_keys) -> None:
    proof = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    assert not backend.verify(cube_keys.verifying_key, [36], proof)


def test_rejects_tampered_proof(backend, cube_keys) -> None:
    proof = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    flipped = bytearray(proof.payload)
    flipped[5] ^= 0x01
    bad = Proof(backend=proof.backend, payload=bytes(flipped))
    assert not backend.verify(cube_keys.verifying_key, [35], bad)


def test_rejects_wrong_length_payload(backend, cube_keys) -> None:
    bad = Proof(backend="groth16", payload=b"\x00" * 10)
    assert not backend.verify(cube_keys.verifying_key, [35], bad)


def test_rejects_statement_arity_mismatch(backend, cube_keys) -> None:
    proof = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    assert not backend.verify(cube_keys.verifying_key, [35, 1], proof)


def test_prover_refuses_false_witness(backend, cube_keys) -> None:
    with pytest.raises(UnsatisfiedConstraintError):
        backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 2, "out": 35})


def test_proof_is_randomized_but_both_verify(backend, cube_keys) -> None:
    p1 = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    p2 = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    assert p1.payload != p2.payload  # fresh (r, s) blinding each time
    assert backend.verify(cube_keys.verifying_key, [35], p1)
    assert backend.verify(cube_keys.verifying_key, [35], p2)


def test_multiple_instances_same_keys(backend, cube_keys) -> None:
    for x in (1, 2, 5):
        out = (x**3 + x + 5)
        proof = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": x, "out": out})
        assert backend.verify(cube_keys.verifying_key, [out], proof)


def test_keys_bound_to_circuit(backend, cube_keys) -> None:
    with pytest.raises(ProofError):
        backend.prove(cube_keys.proving_key, ProductCircuit(), {"out": 6, "a": 2, "b": 3})


def test_proof_size_constant(backend, cube_keys) -> None:
    product_keys = backend.setup(ProductCircuit(), seed=b"product-test")
    p1 = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    p2 = backend.prove(
        product_keys.proving_key, ProductCircuit(), {"out": 6, "a": 2, "b": 3}
    )
    assert p1.size_bytes() == p2.size_bytes() == 256


def test_vk_size_grows_with_publics(backend, cube_keys) -> None:
    product_keys = backend.setup(ProductCircuit(), seed=b"product-test2")
    # 2 public inputs > 1 public input → one more IC point (64 bytes).
    assert (
        product_keys.verifying_key.size_bytes()
        == cube_keys.verifying_key.size_bytes() + 64
    )


def test_deterministic_setup_with_seed(backend) -> None:
    k1 = backend.setup(CubeCircuit(), seed=b"same-seed")
    k2 = backend.setup(CubeCircuit(), seed=b"same-seed")
    assert k1.verifying_key.to_bytes() == k2.verifying_key.to_bytes()


def test_proof_from_other_setup_rejected(backend, cube_keys) -> None:
    other = backend.setup(CubeCircuit(), seed=b"other-ceremony")
    proof = backend.prove(other.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    assert backend.verify(other.verifying_key, [35], proof)
    assert not backend.verify(cube_keys.verifying_key, [35], proof)


def test_backend_tag_enforced(backend, cube_keys) -> None:
    proof = backend.prove(cube_keys.proving_key, CubeCircuit(), {"x": 3, "out": 35})
    alien = Proof(backend="mock", payload=proof.payload)
    with pytest.raises(ProofError):
        backend.verify(cube_keys.verifying_key, [35], alien)
