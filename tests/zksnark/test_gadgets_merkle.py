"""MiMC Merkle trees: native accumulator + membership gadget."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RegistrationError
from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.gadgets.merkle import (
    MerklePath,
    MerkleTree,
    compute_root_native,
    merkle_root_gadget,
)
from repro.zksnark.gadgets.mimc import MiMCParameters

PARAMS = MiMCParameters.for_rounds(7)


def test_empty_tree_root_stable() -> None:
    assert MerkleTree(3, PARAMS).root == MerkleTree(3, PARAMS).root


def test_append_changes_root() -> None:
    tree = MerkleTree(3, PARAMS)
    empty_root = tree.root
    tree.append(42)
    assert tree.root != empty_root


def test_paths_verify_for_all_leaves() -> None:
    tree = MerkleTree(3, PARAMS)
    leaves = [101, 202, 303, 404, 505]
    for leaf in leaves:
        tree.append(leaf)
    for index, leaf in enumerate(leaves):
        path = tree.path(index)
        assert tree.verify_path(leaf, path)
        assert not tree.verify_path(leaf + 1, path)


def test_path_against_stale_root_fails() -> None:
    tree = MerkleTree(3, PARAMS)
    index = tree.append(7)
    stale_path = tree.path(index)
    stale_root = tree.root
    tree.append(8)  # root moves
    assert compute_root_native(7, stale_path, PARAMS) == stale_root
    assert compute_root_native(7, stale_path, PARAMS) != tree.root


def test_capacity_enforced() -> None:
    tree = MerkleTree(2, PARAMS)
    for i in range(4):
        tree.append(i + 1)
    with pytest.raises(RegistrationError):
        tree.append(99)


def test_path_index_bounds() -> None:
    tree = MerkleTree(2, PARAMS)
    with pytest.raises(IndexError):
        tree.path(4)


@given(st.lists(st.integers(min_value=1, max_value=10**9),
                min_size=1, max_size=8, unique=True),
       st.integers(min_value=0, max_value=7))
@settings(max_examples=15, deadline=None)
def test_gadget_matches_native(leaves, which) -> None:
    tree = MerkleTree(3, PARAMS)
    for leaf in leaves:
        tree.append(leaf)
    index = which % len(leaves)
    path = tree.path(index)
    cs = ConstraintSystem()
    root = merkle_root_gadget(cs, cs.alloc(leaves[index]).lc(), path, PARAMS)
    assert root.value == tree.root
    cs.check_satisfied()


def test_gadget_wrong_leaf_unsatisfiable_via_public_binding() -> None:
    tree = MerkleTree(3, PARAMS)
    tree.append(111)
    path = tree.path(0)
    cs = ConstraintSystem()
    expected = cs.alloc_public(tree.root)
    root = merkle_root_gadget(cs, cs.alloc(112).lc(), path, PARAMS)
    cs.enforce_equal(root, expected)
    assert not cs.to_r1cs().is_satisfied(cs.assignment)


def test_sibling_order_depends_on_index_bit() -> None:
    tree = MerkleTree(2, PARAMS)
    tree.append(5)
    tree.append(6)
    # Leaf 1 sits on the right: swapped order must change the root.
    path = tree.path(1)
    assert compute_root_native(6, path, PARAMS) == tree.root
    flipped = MerklePath(leaf_index=0, siblings=path.siblings)
    assert compute_root_native(6, flipped, PARAMS) != tree.root
