"""The BN128 performance layer against the naive reference oracles.

Every optimized path (Pippenger MSM, fixed-base tables, prepared Miller
loops, decomposed final exponentiation) has a slow counterpart that was
the original implementation; these tests pin them to each other, plus
the hardening added alongside (subgroup membership on deserialization,
strict MSM length checks).
"""

from __future__ import annotations

import random

import pytest

from repro.zksnark.bn128 import (
    CURVE_ORDER,
    FQ2,
    G1,
    G2,
    g1_mul,
    g1_neg,
    g2_mul,
    is_in_g2_subgroup,
    is_on_g2,
    pairing,
)
from repro.zksnark.bn128.curve import (
    g1_fixed_base,
    g1_generator_table,
    g1_msm,
    g1_msm_naive,
    g2_fixed_base,
    g2_from_bytes,
    g2_generator_table,
    g2_msm,
    g2_msm_naive,
    g2_mul_naive,
    g2_to_bytes,
)
from repro.zksnark.bn128.fq12 import FQ12
from repro.zksnark.bn128.pairing import (
    final_exponentiate,
    final_exponentiate_naive,
    miller_loop,
    miller_loop_naive,
    multi_pairing,
    multi_pairing_naive,
    pairing_naive,
    prepare_g2,
)

# A point on the twist curve y^2 = x^3 + 3/(9+i) that is NOT in the
# r-order subgroup (found by taking the FQ2 square root of x^3 + b2 at
# x = 2 + i; the twist's cofactor is huge, so a random curve point is
# essentially never in the subgroup).
_OFF_SUBGROUP_X = FQ2(2, 1)
_OFF_SUBGROUP_Y = FQ2(
    7292567877523311580221095596750716176434782432868683424513645834767876293070,
    19659275751359636165940301690575149581329631496732780143538578556285923319774,
)
OFF_SUBGROUP_POINT = (_OFF_SUBGROUP_X, _OFF_SUBGROUP_Y)


# ----- MSM ---------------------------------------------------------------------------


def test_g1_msm_matches_naive_random() -> None:
    rng = random.Random(1234)
    for n in (0, 1, 2, 3, 17, 65):
        points = [g1_mul(G1, rng.randrange(1, CURVE_ORDER)) for _ in range(n)]
        scalars = [rng.randrange(CURVE_ORDER) for _ in range(n)]
        assert g1_msm(points, scalars) == g1_msm_naive(points, scalars)


def test_g1_msm_handles_zero_scalars_and_infinity_points() -> None:
    points = [G1, None, g1_mul(G1, 7)]
    scalars = [0, 5, 3]
    assert g1_msm(points, scalars) == g1_mul(G1, 21)


def test_g2_msm_matches_naive_random() -> None:
    rng = random.Random(99)
    for n in (1, 2, 9, 33):
        points = [g2_mul(G2, rng.randrange(1, CURVE_ORDER)) for _ in range(n)]
        scalars = [rng.randrange(CURVE_ORDER) for _ in range(n)]
        assert g2_msm(points, scalars) == g2_msm_naive(points, scalars)


def test_msm_rejects_length_mismatch() -> None:
    with pytest.raises(ValueError):
        g1_msm([G1, G1], [1])
    with pytest.raises(ValueError):
        g1_msm_naive([G1], [1, 2])
    with pytest.raises(ValueError):
        g2_msm([G2], [])
    with pytest.raises(ValueError):
        g2_msm_naive([], [3])


# ----- fixed-base tables ---------------------------------------------------------------


def test_fixed_base_table_matches_variable_base() -> None:
    rng = random.Random(5)
    table = g1_fixed_base(G1, window=4)
    for _ in range(20):
        k = rng.randrange(CURVE_ORDER)
        assert table.mul(k) == g1_mul(G1, k)
    assert table.mul(0) is None
    assert table.mul(CURVE_ORDER) is None


def test_g2_fixed_base_matches_variable_base() -> None:
    rng = random.Random(6)
    table = g2_fixed_base(G2)
    for _ in range(8):
        k = rng.randrange(CURVE_ORDER)
        assert table.mul(k) == g2_mul(G2, k)


def test_generator_table_singletons_cached() -> None:
    assert g1_generator_table() is g1_generator_table()
    assert g2_generator_table() is g2_generator_table()
    assert g1_generator_table().mul(12345) == g1_mul(G1, 12345)


def test_fixed_base_table_on_non_generator() -> None:
    base = g1_mul(G1, 424242)
    table = g1_fixed_base(base, window=5)
    assert table.mul(17) == g1_mul(base, 17)


# ----- G2 scalar mul (Jacobian vs affine) ---------------------------------------------


def test_g2_mul_jacobian_matches_affine() -> None:
    rng = random.Random(21)
    for _ in range(5):
        k = rng.randrange(CURVE_ORDER)
        assert g2_mul(G2, k) == g2_mul_naive(G2, k)
    assert g2_mul(G2, 0) is None
    assert g2_mul(None, 5) is None


# ----- pairing fast path --------------------------------------------------------------


def test_prepared_miller_matches_naive() -> None:
    p_point = g1_mul(G1, 777)
    q_point = g2_mul(G2, 333)
    prepared = prepare_g2(q_point)
    assert miller_loop(prepared, p_point) == miller_loop_naive(q_point, p_point)
    # raw G2 argument routes through preparation transparently
    assert miller_loop(q_point, p_point) == miller_loop_naive(q_point, p_point)


def test_final_exponentiation_decomposition_matches_naive() -> None:
    value = miller_loop_naive(G2, G1)
    assert final_exponentiate(value) == final_exponentiate_naive(value)


def test_pairing_fast_matches_naive() -> None:
    assert pairing(G2, G1) == pairing_naive(G2, G1)


def test_bilinearity_through_prepared_path() -> None:
    base = pairing(G2, G1)
    prepared = prepare_g2(G2)
    assert multi_pairing([(prepared, g1_mul(G1, 5))]) == base ** 5
    assert multi_pairing([(prepare_g2(g2_mul(G2, 5)), G1)]) == base ** 5


def test_multi_pairing_prepared_cancellation() -> None:
    product = multi_pairing(
        [(prepare_g2(G2), g1_mul(G1, 2)), (prepare_g2(g2_mul(G2, 2)), g1_neg(G1))]
    )
    assert product.is_one()
    naive = multi_pairing_naive(
        [(G2, g1_mul(G1, 2)), (g2_mul(G2, 2), g1_neg(G1))]
    )
    assert naive.is_one()


def test_fq12_frobenius_matches_pow() -> None:
    a = FQ12([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8])
    q = 21888242871839275222246405745257275088696311157297823662689037894645226208583
    assert a.frobenius(1) == a ** q
    assert a.frobenius(2) == a ** (q * q)


def test_fq12_mul_sparse_matches_dense() -> None:
    a = FQ12([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8])
    items = ((0, 11), (1, 22), (3, 33), (7, 44), (9, 55))
    dense = [0] * 12
    for pos, coeff in items:
        dense[pos] = coeff
    assert a.mul_sparse(items) == a * FQ12(dense)


# ----- G2 subgroup hardening -----------------------------------------------------------


def test_off_subgroup_point_is_on_curve_but_not_subgroup() -> None:
    assert is_on_g2(OFF_SUBGROUP_POINT)
    assert not is_in_g2_subgroup(OFF_SUBGROUP_POINT)
    assert is_in_g2_subgroup(G2)
    assert is_in_g2_subgroup(g2_mul(G2, 987654321))
    assert is_in_g2_subgroup(None)  # infinity is in every subgroup


def test_g2_from_bytes_rejects_off_subgroup_point() -> None:
    wire = _OFF_SUBGROUP_X.to_bytes() + _OFF_SUBGROUP_Y.to_bytes()
    with pytest.raises(ValueError, match="subgroup"):
        g2_from_bytes(wire)


def test_g2_serialization_still_roundtrips_subgroup_points() -> None:
    point = g2_mul(G2, 31337)
    assert g2_from_bytes(g2_to_bytes(point)) == point
