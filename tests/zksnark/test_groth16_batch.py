"""Groth16 hardening (malformed proofs) and batched verification."""

from __future__ import annotations

import pytest

from repro.errors import ProofError
from repro.zksnark import CircuitDefinition, ConstraintSystem, Groth16Backend, Proof
from repro.zksnark.mock import MockBackend


class CubeCircuit(CircuitDefinition):
    """x^3 + x + 5 == out."""

    name = "cube-batch"

    def example_instance(self):
        return {"x": 3, "out": 35}

    def synthesize(self, cs: ConstraintSystem, instance) -> None:
        out = cs.alloc_public(instance["out"])
        x = cs.alloc(instance["x"])
        x2 = cs.mul(x, x)
        x3 = cs.mul(x2, x)
        cs.enforce_equal(x3 + x + 5, out)


def _instance(x: int) -> dict:
    return {"x": x, "out": x**3 + x + 5}


@pytest.fixture(scope="module")
def backend() -> Groth16Backend:
    return Groth16Backend()

@pytest.fixture(scope="module")
def keys(backend):
    return backend.setup(CubeCircuit(), seed=b"batch-test")


@pytest.fixture(scope="module")
def batch(backend, keys):
    """Five valid (statement, proof) pairs for distinct instances."""
    statements = []
    proofs = []
    for x in (1, 2, 3, 4, 5):
        inst = _instance(x)
        statements.append([inst["out"]])
        proofs.append(backend.prove(keys.proving_key, CubeCircuit(), inst))
    return statements, proofs


# ----- malformed-proof hardening ------------------------------------------------------


def test_rejects_infinity_proof_a(backend, keys, batch) -> None:
    statements, proofs = batch
    payload = proofs[0].payload
    forged = Proof(backend="groth16", payload=b"\x00" * 64 + payload[64:])
    assert not backend.verify(keys.verifying_key, statements[0], forged)


def test_rejects_infinity_proof_b(backend, keys, batch) -> None:
    statements, proofs = batch
    payload = proofs[0].payload
    forged = Proof(
        backend="groth16", payload=payload[:64] + b"\x00" * 128 + payload[192:]
    )
    assert not backend.verify(keys.verifying_key, statements[0], forged)


def test_rejects_infinity_proof_c(backend, keys, batch) -> None:
    statements, proofs = batch
    payload = proofs[0].payload
    forged = Proof(backend="groth16", payload=payload[:192] + b"\x00" * 64)
    assert not backend.verify(keys.verifying_key, statements[0], forged)


def test_rejects_off_curve_proof_points(backend, keys, batch) -> None:
    statements, proofs = batch
    payload = proofs[0].payload
    forged = Proof(backend="groth16", payload=b"\x01" * 64 + payload[64:])
    assert not backend.verify(keys.verifying_key, statements[0], forged)


def test_prove_rejects_mismatched_proving_key(backend, keys) -> None:
    """A truncated H-query raises instead of silently dropping terms."""
    from dataclasses import replace

    truncated = replace(keys.proving_key, h_query=keys.proving_key.h_query[:1])
    with pytest.raises(ProofError, match="H powers"):
        backend.prove(truncated, CubeCircuit(), _instance(3))


def test_prove_rejects_wire_count_mismatch(backend, keys) -> None:
    from dataclasses import replace

    clipped = replace(keys.proving_key, a_query=keys.proving_key.a_query[:-1])
    with pytest.raises(ProofError, match="wire count"):
        backend.prove(clipped, CubeCircuit(), _instance(3))


# ----- batch verification -------------------------------------------------------------


def test_batch_accepts_all_valid(backend, keys, batch) -> None:
    statements, proofs = batch
    assert backend.batch_verify(keys.verifying_key, statements, proofs)


def test_batch_rejects_one_forged_proof(backend, keys, batch) -> None:
    statements, proofs = batch
    # a proof valid for a DIFFERENT statement, substituted into slot 2
    swapped = list(proofs)
    swapped[2] = proofs[3]
    assert not backend.batch_verify(keys.verifying_key, statements, swapped)


def test_batch_rejects_one_tampered_proof(backend, keys, batch) -> None:
    statements, proofs = batch
    flipped = bytearray(proofs[4].payload)
    flipped[10] ^= 0x01
    tampered = list(proofs)
    tampered[4] = Proof(backend="groth16", payload=bytes(flipped))
    assert not backend.batch_verify(keys.verifying_key, statements, tampered)


def test_batch_rejects_wrong_statement(backend, keys, batch) -> None:
    statements, proofs = batch
    wrong = [list(s) for s in statements]
    wrong[1][0] += 1
    assert not backend.batch_verify(keys.verifying_key, wrong, proofs)


def test_batch_empty_is_vacuously_valid(backend, keys) -> None:
    assert backend.batch_verify(keys.verifying_key, [], [])


def test_batch_single_falls_back_to_verify(backend, keys, batch) -> None:
    statements, proofs = batch
    assert backend.batch_verify(keys.verifying_key, statements[:1], proofs[:1])


def test_batch_length_mismatch_raises(backend, keys, batch) -> None:
    statements, proofs = batch
    with pytest.raises(ProofError, match="length mismatch"):
        backend.batch_verify(keys.verifying_key, statements[:2], proofs[:3])


def test_batch_rejects_infinity_proof_in_batch(backend, keys, batch) -> None:
    statements, proofs = batch
    forged = list(proofs)
    forged[0] = Proof(
        backend="groth16", payload=b"\x00" * 64 + proofs[0].payload[64:]
    )
    assert not backend.batch_verify(keys.verifying_key, statements, forged)


def test_mock_backend_inherits_default_batch_verify() -> None:
    mock = MockBackend()
    keys = mock.setup(CubeCircuit(), seed=b"mock-batch")
    statements = []
    proofs = []
    for x in (1, 2, 3):
        inst = _instance(x)
        statements.append([inst["out"]])
        proofs.append(mock.prove(keys.proving_key, CubeCircuit(), inst))
    assert mock.batch_verify(keys.verifying_key, statements, proofs)
    bad = list(proofs)
    bad[1] = proofs[2]
    assert not mock.batch_verify(keys.verifying_key, statements, bad)


# ----- naive/optimized cross-compatibility --------------------------------------------


def test_naive_mode_interoperates_with_optimized(keys, backend, batch) -> None:
    statements, proofs = batch
    naive = Groth16Backend(optimized=False)
    assert naive.verify(keys.verifying_key, statements[0], proofs[0])
    naive_proof = naive.prove(keys.proving_key, CubeCircuit(), _instance(2))
    assert backend.verify(keys.verifying_key, statements[1], naive_proof)


def test_naive_and_optimized_setup_agree(backend) -> None:
    naive = Groth16Backend(optimized=False)
    fast_keys = backend.setup(CubeCircuit(), seed=b"agree")
    naive_keys = naive.setup(CubeCircuit(), seed=b"agree")
    assert fast_keys.verifying_key.to_bytes() == naive_keys.verifying_key.to_bytes()
