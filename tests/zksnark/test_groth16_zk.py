"""Structural zero-knowledge checks on Groth16 proofs.

A full simulation argument is out of scope for tests, but two measurable
consequences of zero-knowledge are checked: proofs are perfectly
re-randomized (independent (r, s) per proof), and proofs for different
witnesses of the same statement are indistinguishable in form.
"""

from __future__ import annotations

import pytest

from repro.zksnark import CircuitDefinition, ConstraintSystem, Groth16Backend
from repro.zksnark.bn128.curve import g1_from_bytes, g2_from_bytes


class TwoRootsCircuit(CircuitDefinition):
    """x² = out: every statement has two witnesses (±x)."""

    name = "two-roots"

    def example_instance(self):
        return {"x": 3, "out": 9}

    def synthesize(self, cs: ConstraintSystem, instance) -> None:
        out = cs.alloc_public(instance["out"])
        x = cs.alloc(instance["x"])
        cs.enforce(x, x, out)


@pytest.fixture(scope="module")
def setup_keys():
    backend = Groth16Backend()
    return backend, backend.setup(TwoRootsCircuit(), seed=b"zk")


def test_proofs_are_rerandomized(setup_keys) -> None:
    backend, keys = setup_keys
    payloads = {
        backend.prove(keys.proving_key, TwoRootsCircuit(), {"x": 3, "out": 9}).payload
        for _ in range(3)
    }
    assert len(payloads) == 3  # fresh blinding every time


def test_different_witnesses_same_statement_both_verify(setup_keys) -> None:
    """Witness indistinguishability: +x and −x both prove out = x²."""
    backend, keys = setup_keys
    from repro.zksnark.field import FR

    proof_pos = backend.prove(
        keys.proving_key, TwoRootsCircuit(), {"x": 3, "out": 9}
    )
    proof_neg = backend.prove(
        keys.proving_key, TwoRootsCircuit(), {"x": FR.modulus - 3, "out": 9}
    )
    assert backend.verify(keys.verifying_key, [9], proof_pos)
    assert backend.verify(keys.verifying_key, [9], proof_neg)
    # Same form: both parse into valid (G1, G2, G1) triples of equal size.
    assert len(proof_pos.payload) == len(proof_neg.payload)


def test_proof_elements_are_valid_group_points(setup_keys) -> None:
    backend, keys = setup_keys
    proof = backend.prove(keys.proving_key, TwoRootsCircuit(), {"x": 5, "out": 25})
    a = g1_from_bytes(proof.payload[:64])
    b = g2_from_bytes(proof.payload[64:192])
    c = g1_from_bytes(proof.payload[192:])
    assert a is not None and b is not None and c is not None


def test_proof_reveals_no_witness_bytes(setup_keys) -> None:
    backend, keys = setup_keys
    witness = 1234567890123456789
    proof = backend.prove(
        keys.proving_key, TwoRootsCircuit(),
        {"x": witness, "out": witness * witness},
    )
    assert witness.to_bytes(8, "big") not in proof.payload
