"""Schnorr over Baby-Jubjub: native scheme + in-circuit verifier."""

from __future__ import annotations

import pytest

from repro.errors import SignatureError
from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.gadgets import babyjubjub as bjj
from repro.zksnark.gadgets import schnorr
from repro.zksnark.gadgets.mimc import MiMCParameters

PARAMS = schnorr.SchnorrParameters(scalar_bits=16, mimc=MiMCParameters.for_rounds(7))


@pytest.fixture(scope="module")
def authority_keys():
    return schnorr.generate_keypair(PARAMS, seed=b"ra")


def test_keygen_in_range(authority_keys) -> None:
    sk, pk = authority_keys
    assert 0 < sk < (1 << PARAMS.scalar_bits)
    assert bjj.is_on_curve(pk)


def test_sign_verify(authority_keys) -> None:
    sk, pk = authority_keys
    signature = schnorr.sign(PARAMS, sk, [42, 43])
    assert schnorr.verify(PARAMS, pk, [42, 43], signature)


def test_verify_rejects_wrong_message(authority_keys) -> None:
    sk, pk = authority_keys
    signature = schnorr.sign(PARAMS, sk, [42])
    assert not schnorr.verify(PARAMS, pk, [43], signature)


def test_verify_rejects_wrong_key(authority_keys) -> None:
    sk, pk = authority_keys
    _, other_pk = schnorr.generate_keypair(PARAMS, seed=b"other")
    signature = schnorr.sign(PARAMS, sk, [42])
    assert not schnorr.verify(PARAMS, other_pk, [42], signature)


def test_verify_rejects_tampered_signature(authority_keys) -> None:
    sk, pk = authority_keys
    signature = schnorr.sign(PARAMS, sk, [42])
    bad = schnorr.SchnorrSignature(r_point=signature.r_point, s=signature.s + 1)
    assert not schnorr.verify(PARAMS, pk, [42], bad)


def test_verify_rejects_oversized_s(authority_keys) -> None:
    sk, pk = authority_keys
    signature = schnorr.sign(PARAMS, sk, [42])
    bad = schnorr.SchnorrSignature(
        r_point=signature.r_point, s=signature.s + (1 << PARAMS.s_bits)
    )
    assert not schnorr.verify(PARAMS, pk, [42], bad)


def test_verify_rejects_off_curve_r(authority_keys) -> None:
    sk, pk = authority_keys
    signature = schnorr.sign(PARAMS, sk, [42])
    bad = schnorr.SchnorrSignature(r_point=(1, 2), s=signature.s)
    assert not schnorr.verify(PARAMS, pk, [42], bad)


def test_sign_rejects_out_of_range_secret() -> None:
    with pytest.raises(SignatureError):
        schnorr.sign(PARAMS, 1 << PARAMS.scalar_bits, [1])


def test_deterministic_nonce(authority_keys) -> None:
    sk, _ = authority_keys
    assert schnorr.sign(PARAMS, sk, [7]) == schnorr.sign(PARAMS, sk, [7])
    assert schnorr.sign(PARAMS, sk, [7]) != schnorr.sign(PARAMS, sk, [8])


def test_verify_gadget_accepts_valid(authority_keys) -> None:
    sk, pk = authority_keys
    message = [1234]
    signature = schnorr.sign(PARAMS, sk, message)
    cs = ConstraintSystem()
    wires = [cs.alloc(m).lc() for m in message]
    schnorr.verify_gadget(cs, PARAMS, pk, wires, [], signature)
    cs.check_satisfied()


def test_verify_gadget_rejects_forgery(authority_keys) -> None:
    sk, pk = authority_keys
    signature = schnorr.sign(PARAMS, sk, [1234])
    cs = ConstraintSystem()
    wires = [cs.alloc(9999).lc()]  # different message than signed
    schnorr.verify_gadget(cs, PARAMS, pk, wires, [], signature)
    assert not cs.to_r1cs().is_satisfied(cs.assignment)


def test_verify_gadget_rejects_wrong_mpk(authority_keys) -> None:
    sk, pk = authority_keys
    _, other_pk = schnorr.generate_keypair(PARAMS, seed=b"imposter")
    signature = schnorr.sign(PARAMS, sk, [5])
    cs = ConstraintSystem()
    schnorr.verify_gadget(cs, PARAMS, other_pk, [cs.alloc(5).lc()], [], signature)
    assert not cs.to_r1cs().is_satisfied(cs.assignment)
