"""Baby-Jubjub: curve laws natively and in-circuit."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.gadgets import babyjubjub as bjj
from repro.zksnark.gadgets.boolean import number_to_bits

small_scalars = st.integers(min_value=0, max_value=1 << 16)


def test_base_point_on_curve_and_order() -> None:
    assert bjj.is_on_curve(bjj.BASE_POINT)
    assert bjj.point_mul(bjj.SUBGROUP_ORDER, bjj.BASE_POINT) == bjj.IDENTITY


def test_identity_element() -> None:
    assert bjj.is_on_curve(bjj.IDENTITY)
    p = bjj.point_mul(9, bjj.BASE_POINT)
    assert bjj.point_add(p, bjj.IDENTITY) == p
    assert bjj.point_add(bjj.IDENTITY, p) == p


@given(small_scalars, small_scalars)
@settings(max_examples=15, deadline=None)
def test_scalar_mul_homomorphic(a: int, b: int) -> None:
    left = bjj.point_add(
        bjj.point_mul(a, bjj.BASE_POINT), bjj.point_mul(b, bjj.BASE_POINT)
    )
    assert left == bjj.point_mul(a + b, bjj.BASE_POINT)


def test_negation() -> None:
    p = bjj.point_mul(5, bjj.BASE_POINT)
    assert bjj.point_add(p, bjj.point_neg(p)) == bjj.IDENTITY


def test_negative_scalar_rejected() -> None:
    with pytest.raises(ValueError):
        bjj.point_mul(-1, bjj.BASE_POINT)


def test_addition_stays_on_curve() -> None:
    p = bjj.point_mul(3, bjj.BASE_POINT)
    q = bjj.point_mul(11, bjj.BASE_POINT)
    assert bjj.is_on_curve(bjj.point_add(p, q))


def test_point_add_gadget_matches_native() -> None:
    cs = ConstraintSystem()
    p = bjj.point_mul(5, bjj.BASE_POINT)
    q = bjj.point_mul(9, bjj.BASE_POINT)
    out = bjj.point_add_gadget(cs, bjj.witness_point(cs, p), bjj.witness_point(cs, q))
    assert (out[0].value, out[1].value) == bjj.point_add(p, q)
    cs.check_satisfied()


def test_enforce_on_curve_accepts_and_rejects() -> None:
    cs = ConstraintSystem()
    bjj.enforce_on_curve(cs, bjj.witness_point(cs, bjj.point_mul(7, bjj.BASE_POINT)))
    cs.check_satisfied()

    cs_bad = ConstraintSystem()
    bjj.enforce_on_curve(cs_bad, bjj.witness_point(cs_bad, (1, 2)))
    assert not cs_bad.to_r1cs().is_satisfied(cs_bad.assignment)


@given(st.integers(min_value=0, max_value=255))
@settings(max_examples=10, deadline=None)
def test_fixed_base_mul_gadget(scalar: int) -> None:
    cs = ConstraintSystem()
    bits = number_to_bits(cs, cs.alloc(scalar), 8)
    out = bjj.fixed_base_mul(cs, bits, bjj.BASE_POINT)
    assert (out[0].value, out[1].value) == bjj.point_mul(scalar, bjj.BASE_POINT)
    cs.check_satisfied()


def test_derive_public_key() -> None:
    pk = bjj.derive_public_key(12345)
    assert bjj.is_on_curve(pk)
    assert pk == bjj.point_mul(12345, bjj.BASE_POINT)


def test_point_equal_gadget() -> None:
    cs = ConstraintSystem()
    p = bjj.point_mul(4, bjj.BASE_POINT)
    bjj.point_equal_gadget(cs, bjj.witness_point(cs, p), bjj.witness_point(cs, p))
    cs.check_satisfied()
    cs_bad = ConstraintSystem()
    q = bjj.point_mul(5, bjj.BASE_POINT)
    bjj.point_equal_gadget(
        cs_bad, bjj.witness_point(cs_bad, p), bjj.witness_point(cs_bad, q)
    )
    assert not cs_bad.to_r1cs().is_satisfied(cs_bad.assignment)
