"""Unit tests for the Montgomery context, GLV decomposition, and the
persistent proving service — plus the cheap 10-case representation
sweep that CI's fast lane runs (naive backend vs the full fast path
with every toggle enabled).
"""

from __future__ import annotations

import random

import pytest

from repro.zksnark import Groth16Backend
from repro.zksnark.backend import get_backend
from repro.zksnark.bn128.curve import (
    g1_mul,
    g1_msm,
    g1_msm_naive,
    get_fast_opts,
    set_fast_opts,
    G1,
)
from repro.zksnark.bn128.fq import CURVE_ORDER, FIELD_MODULUS
from repro.zksnark.bn128.glv import GLVParams, cube_root_of_unity
from repro.zksnark.bn128.mont import MontContext
from repro.zksnark.service import ProvingService

from tests.zksnark.test_differential import ProductCircuit

SECP256K1_ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141


def _g1_mul_naive(point, scalar):
    """Naive G1 oracle: single-pair naive MSM (plain double-and-add)."""
    return g1_msm_naive([point], [scalar])


# ----- MontContext ----------------------------------------------------------------


class TestMontContext:
    def setup_method(self) -> None:
        self.ctx = MontContext(FIELD_MODULUS, 256)

    def test_roundtrip(self) -> None:
        rng = random.Random(1)
        for _ in range(50):
            a = rng.randrange(FIELD_MODULUS)
            assert self.ctx.from_mont(self.ctx.to_mont(a)) == a

    def test_mul_matches_plain_modmul(self) -> None:
        rng = random.Random(2)
        for _ in range(50):
            a = rng.randrange(FIELD_MODULUS)
            b = rng.randrange(FIELD_MODULUS)
            got = self.ctx.from_mont(
                self.ctx.mul(self.ctx.to_mont(a), self.ctx.to_mont(b))
            )
            assert got == a * b % FIELD_MODULUS

    def test_mul_lazy_bound_and_congruence(self) -> None:
        """Lazy products stay below 2q and reduce to the canonical value."""
        rng = random.Random(3)
        q = FIELD_MODULUS
        for _ in range(50):
            # Feed lazy (possibly >= q) inputs back in, as chained
            # point-addition formulas do.
            a = rng.randrange(2 * q)
            b = rng.randrange(2 * q)
            lazy = self.ctx.mul_lazy(a, b)
            assert 0 <= lazy < 2 * q
            assert self.ctx.canon(lazy) == self.ctx.mul(a % q, b % q) % q
            assert lazy % q == self.ctx.mul(a % q, b % q) % q

    def test_redc_edge_values(self) -> None:
        assert self.ctx.redc(0) == 0
        # redc(a * R) == a for any canonical a (t = aR < qR is in range).
        assert self.ctx.redc((FIELD_MODULUS - 1) << 256) == FIELD_MODULUS - 1
        assert self.ctx.from_mont(self.ctx.r1) == 1

    def test_inv_and_pow(self) -> None:
        rng = random.Random(4)
        for _ in range(10):
            a = rng.randrange(1, FIELD_MODULUS)
            am = self.ctx.to_mont(a)
            assert self.ctx.mul(am, self.ctx.inv(am)) == self.ctx.r1
            e = rng.randrange(1, 1 << 64)
            assert self.ctx.from_mont(self.ctx.pow(am, e)) == pow(
                a, e, FIELD_MODULUS
            )
            assert self.ctx.from_mont(self.ctx.pow(am, -e)) == pow(
                a, -e, FIELD_MODULUS
            )

    def test_inv_zero_raises(self) -> None:
        with pytest.raises(ZeroDivisionError):
            self.ctx.inv(0)

    def test_rejects_even_or_tiny_modulus(self) -> None:
        with pytest.raises(ValueError):
            MontContext(16)
        with pytest.raises(ValueError):
            MontContext(1)
        with pytest.raises(ValueError):
            MontContext(FIELD_MODULUS, bits=128)  # R <= q

    def test_default_bits_round_up_to_limb(self) -> None:
        assert MontContext(FIELD_MODULUS).bits == 256


# ----- GLV decomposition ----------------------------------------------------------


class TestGLV:
    @pytest.mark.parametrize("order", [CURVE_ORDER, SECP256K1_ORDER])
    def test_decompose_congruence_exact(self, order: int) -> None:
        """k1 + k2*lam == k (mod n) — the soundness anchor — for seeded k."""
        params = GLVParams.for_order(order)
        bound_bits = params.max_component_bits()
        assert bound_bits <= order.bit_length() // 2 + 3
        rng = random.Random(order & 0xFFFF)
        cases = [0, 1, order - 1, params.lam, order // 2]
        cases += [rng.randrange(order) for _ in range(60)]
        for k in cases:
            k1, k2 = params.decompose(k)
            assert (k1 + k2 * params.lam) % order == k % order
            assert abs(k1).bit_length() <= bound_bits
            assert abs(k2).bit_length() <= bound_bits

    def test_cube_root_of_unity_properties(self) -> None:
        for modulus in (CURVE_ORDER, SECP256K1_ORDER, FIELD_MODULUS):
            root = cube_root_of_unity(modulus)
            assert root != 1
            assert pow(root, 3, modulus) == 1
        with pytest.raises(ValueError):
            cube_root_of_unity(5)  # 5 % 3 == 2: no primitive cube root

    def test_other_root_is_conjugate(self) -> None:
        params = GLVParams.for_order(CURVE_ORDER)
        other = params.other_root()
        assert other.lam == params.lam * params.lam % CURVE_ORDER
        k = 0xDEADBEEF << 200
        k1, k2 = other.decompose(k)
        assert (k1 + k2 * other.lam) % CURVE_ORDER == k % CURVE_ORDER

    def test_rejects_non_cube_root_lambda(self) -> None:
        with pytest.raises(ValueError):
            GLVParams(CURVE_ORDER, 2)

    def test_g1_glv_mul_matches_naive(self) -> None:
        prior = set_fast_opts(glv=True)
        try:
            rng = random.Random(99)
            for _ in range(8):
                k = rng.randrange(CURVE_ORDER)
                p = _g1_mul_naive(G1, rng.randrange(1, CURVE_ORDER))
                assert g1_mul(p, k) == _g1_mul_naive(p, k)
        finally:
            set_fast_opts(*prior)

    def test_set_fast_opts_returns_prior_state(self) -> None:
        before = get_fast_opts()
        prior = set_fast_opts(montgomery=True, glv=False)
        assert prior == before
        assert get_fast_opts() == (True, False)
        set_fast_opts(*prior)
        assert get_fast_opts() == before


# ----- secp256k1 ECDSA GLV --------------------------------------------------------


class TestEcdsaGLV:
    def test_point_mul_glv_matches_windowed(self) -> None:
        from repro.crypto import ecdsa

        rng = random.Random(7)
        base = ecdsa._windowed_mul(rng.randrange(1, ecdsa.N), ecdsa.GENERATOR)
        try:
            for _ in range(6):
                k = rng.randrange(ecdsa.N)
                ecdsa.set_glv(True)
                fast = ecdsa.point_mul(k, base)
                ecdsa.set_glv(False)
                slow = ecdsa.point_mul(k, base)
                assert fast == slow == ecdsa._windowed_mul(k, base)
        finally:
            ecdsa.set_glv(True)

    def test_sign_verify_roundtrip_under_both_modes(self) -> None:
        from repro.crypto import ecdsa
        from repro.crypto.hashing import sha256

        key = ecdsa.ECDSAKeyPair.from_seed(b"glv-roundtrip")
        digest = sha256(b"glv differential")
        try:
            ecdsa.set_glv(True)
            sig_fast = key.sign(digest)
            ecdsa.set_glv(False)
            sig_slow = key.sign(digest)
            # Deterministic nonces: both modes must produce the identical
            # signature, and each mode verifies the other's output.
            assert sig_fast == sig_slow
            assert ecdsa.verify(key.public_key, digest, sig_fast)
            ecdsa.set_glv(True)
            assert ecdsa.verify(key.public_key, digest, sig_slow)
        finally:
            ecdsa.set_glv(True)


# ----- persistent proving service -------------------------------------------------


class TestProvingService:
    def test_registered_as_backend(self) -> None:
        service = get_backend("groth16-service")
        assert isinstance(service, ProvingService)

    def test_setup_is_warm_cached_by_digest(self) -> None:
        service = ProvingService(Groth16Backend(optimized=True, jobs=1))
        first = service.setup(ProductCircuit(), seed=b"svc-test")
        # A *different* circuit object with the same structure hits the
        # same cache entry: keying is by digest, not object identity.
        second = service.setup(ProductCircuit(), seed=b"other-seed")
        assert first is second
        assert len(service.warmed_digests()) == 1

    def test_prove_verify_through_service(self) -> None:
        service = ProvingService(Groth16Backend(optimized=True, jobs=1))
        circuit = ProductCircuit()
        keys = service.warm(circuit, seed=b"svc-prove")
        instance = {"out": 35, "a": 5, "b": 7}
        proof = service.prove(keys.proving_key, circuit, instance)
        assert service.verify(keys.verifying_key, [35, 5], proof) is True
        assert service.verify(keys.verifying_key, [36, 5], proof) is False

    def test_prove_many_serial_path_and_key_adoption(self) -> None:
        service = ProvingService(Groth16Backend(optimized=True, jobs=1), jobs=1)
        circuit = ProductCircuit()
        # Keys set up OUTSIDE the service get adopted into the warm cache.
        external = Groth16Backend(optimized=True).setup(circuit, seed=b"ext")
        requests = [
            (external.proving_key, circuit, {"out": 6, "a": 2, "b": 3}),
            (external.proving_key, circuit, {"out": 35, "a": 5, "b": 7}),
        ]
        proofs = service.prove_many(requests)
        assert len(proofs) == 2
        assert service.verify(external.verifying_key, [6, 2], proofs[0])
        assert service.verify(external.verifying_key, [35, 5], proofs[1])
        assert len(service.warmed_digests()) == 1

    def test_prove_many_empty(self) -> None:
        service = ProvingService(Groth16Backend(optimized=True, jobs=1))
        assert service.prove_many([]) == []

    def test_batch_verify_delegates(self) -> None:
        service = ProvingService(Groth16Backend(optimized=True, jobs=1))
        circuit = ProductCircuit()
        keys = service.warm(circuit, seed=b"svc-batch")
        instances = [
            {"out": 6, "a": 2, "b": 3},
            {"out": 35, "a": 5, "b": 7},
        ]
        proofs = [
            service.prove(keys.proving_key, circuit, inst) for inst in instances
        ]
        statements = [[6, 2], [35, 5]]
        assert service.batch_verify(keys.verifying_key, statements, proofs) is True
        assert (
            service.batch_verify(keys.verifying_key, [[6, 2], [34, 5]], proofs)
            is False
        )

    def test_close_is_idempotent(self) -> None:
        with ProvingService(Groth16Backend(optimized=True, jobs=1)) as service:
            service.close()
        service.close()


# ----- cheap CI lane: 10-case naive-vs-full-fast-path sweep -----------------------


@pytest.mark.parametrize("case", range(10))
def test_cheap_lane_naive_vs_full_fast_path(case: int) -> None:
    """10 seeded MSM cases: all toggles ON vs the naive oracle.

    This is the sweep CI's cheap lane runs on every push (the full
    ~100-case differential suite runs in the main lane); it exercises
    the complete fast path — Montgomery representation, GLV split,
    Pippenger — against the plain double-and-add reference.
    """
    prior = set_fast_opts(montgomery=True, glv=True)
    try:
        rng = random.Random(31000 + case)
        size = rng.randrange(1, 8)
        points = [
            _g1_mul_naive(G1, rng.randrange(1, CURVE_ORDER)) for _ in range(size)
        ]
        scalars = [rng.randrange(CURVE_ORDER) for _ in range(size)]
        assert g1_msm(points, scalars) == g1_msm_naive(points, scalars)
    finally:
        set_fast_opts(*prior)
