"""Arithmetic helper gadgets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.field import FR
from repro.zksnark.gadgets.arithmetic import (
    conditional_select,
    enforce_one_hot,
    inner_product,
    linear_sum,
    scaled_sum,
)

small = st.integers(min_value=0, max_value=10**6)


@given(st.booleans(), small, small)
@settings(max_examples=30)
def test_conditional_select(condition, if_true, if_false) -> None:
    cs = ConstraintSystem()
    flag = cs.alloc(1 if condition else 0)
    cs.enforce_boolean(flag)
    out = conditional_select(cs, flag, cs.alloc(if_true), cs.alloc(if_false))
    assert out.value == (if_true if condition else if_false)
    cs.check_satisfied()


def test_select_tamper_detected() -> None:
    cs = ConstraintSystem()
    flag = cs.alloc(1)
    out = conditional_select(cs, flag, cs.alloc(5), cs.alloc(9))
    cs.assignment[out.index] = 9  # claim the wrong branch
    assert not cs.to_r1cs().is_satisfied(cs.assignment)


@given(st.lists(st.tuples(small, small), min_size=1, max_size=6))
@settings(max_examples=30)
def test_inner_product(pairs) -> None:
    cs = ConstraintSystem()
    left = [cs.alloc(a) for a, _ in pairs]
    right = [cs.alloc(b) for _, b in pairs]
    out = inner_product(cs, left, right)
    assert out.value == sum(a * b for a, b in pairs) % FR.modulus
    cs.check_satisfied()


def test_inner_product_length_mismatch() -> None:
    cs = ConstraintSystem()
    with pytest.raises(ValueError):
        inner_product(cs, [cs.alloc(1)], [])


def test_linear_sum_adds_no_constraints() -> None:
    cs = ConstraintSystem()
    wires = [cs.alloc(v) for v in (1, 2, 3)]
    before = cs.num_constraints
    out = linear_sum(cs, wires)
    assert out.value == 6
    assert cs.num_constraints == before


def test_scaled_sum() -> None:
    cs = ConstraintSystem()
    wires = [cs.alloc(v) for v in (2, 3)]
    out = scaled_sum(cs, wires, [10, 100])
    assert out.value == 320
    with pytest.raises(ValueError):
        scaled_sum(cs, wires, [1])


def test_one_hot_accepts_valid() -> None:
    cs = ConstraintSystem()
    flags = [cs.alloc(v) for v in (0, 1, 0)]
    enforce_one_hot(cs, flags)
    cs.check_satisfied()


@pytest.mark.parametrize("values", [(0, 0, 0), (1, 1, 0)])
def test_one_hot_rejects_invalid(values) -> None:
    cs = ConstraintSystem()
    flags = [cs.alloc(v) for v in values]
    enforce_one_hot(cs, flags)
    assert not cs.to_r1cs().is_satisfied(cs.assignment)
