"""The ideal-functionality backend must mirror Groth16's interface guarantees."""

from __future__ import annotations

import pytest

from repro.errors import ProofError, UnsatisfiedConstraintError
from repro.zksnark import CircuitDefinition, ConstraintSystem, MockBackend, Proof


class SquareCircuit(CircuitDefinition):
    name = "square"

    def example_instance(self):
        return {"x": 4, "out": 16}

    def synthesize(self, cs, instance) -> None:
        out = cs.alloc_public(instance["out"])
        x = cs.alloc(instance["x"])
        cs.enforce(x, x, out)


class NativeCircuit(CircuitDefinition):
    """A circuit with a native predicate (out must be even)."""

    name = "native-even"
    requires_ideal_backend = True

    def example_instance(self):
        return {"x": 4, "out": 16}

    def synthesize(self, cs, instance) -> None:
        out = cs.alloc_public(instance["out"])
        x = cs.alloc(instance["x"])
        cs.enforce(x, x, out)

    def extra_digest(self) -> bytes:
        return b"even-check"

    def native_checks(self, instance) -> None:
        if instance["out"] % 2 != 0:
            raise ProofError("out must be even")


@pytest.fixture(scope="module")
def backend() -> MockBackend:
    return MockBackend()


@pytest.fixture(scope="module")
def keys(backend):
    return backend.setup(SquareCircuit(), seed=b"mock")


def test_complete(backend, keys) -> None:
    proof = backend.prove(keys.proving_key, SquareCircuit(), {"x": 4, "out": 16})
    assert backend.verify(keys.verifying_key, [16], proof)


def test_sound_statement_binding(backend, keys) -> None:
    proof = backend.prove(keys.proving_key, SquareCircuit(), {"x": 4, "out": 16})
    assert not backend.verify(keys.verifying_key, [17], proof)


def test_refuses_false_witness(backend, keys) -> None:
    with pytest.raises(UnsatisfiedConstraintError):
        backend.prove(keys.proving_key, SquareCircuit(), {"x": 4, "out": 17})


def test_proof_size_matches_groth16(backend, keys) -> None:
    proof = backend.prove(keys.proving_key, SquareCircuit(), {"x": 4, "out": 16})
    assert proof.size_bytes() == 256


def test_tampered_proof_rejected(backend, keys) -> None:
    proof = backend.prove(keys.proving_key, SquareCircuit(), {"x": 4, "out": 16})
    flipped = bytearray(proof.payload)
    flipped[0] ^= 1
    assert not backend.verify(keys.verifying_key, [16], Proof("mock", bytes(flipped)))


def test_native_checks_enforced(backend) -> None:
    keys = backend.setup(NativeCircuit(), seed=b"native")
    proof = backend.prove(keys.proving_key, NativeCircuit(), {"x": 4, "out": 16})
    assert backend.verify(keys.verifying_key, [16], proof)
    # 25 = 5^2 satisfies the R1CS but violates the native predicate.
    with pytest.raises(ProofError):
        backend.prove(keys.proving_key, NativeCircuit(), {"x": 5, "out": 25})


def test_extra_digest_separates_keys(backend) -> None:
    plain = backend.setup(SquareCircuit(), seed=b"k")
    native = backend.setup(NativeCircuit(), seed=b"k")
    proof = backend.prove(plain.proving_key, SquareCircuit(), {"x": 4, "out": 16})
    # Same R1CS shell, different semantics: must not cross-verify.
    assert not backend.verify(native.verifying_key, [16], proof)


def test_groth16_refuses_native_circuits() -> None:
    from repro.zksnark import Groth16Backend

    with pytest.raises(ProofError):
        Groth16Backend().setup(NativeCircuit(), seed=b"x")


def test_backend_registry() -> None:
    from repro.zksnark import get_backend

    assert get_backend("mock").name == "mock"
    assert get_backend("groth16").name == "groth16"
    with pytest.raises(KeyError):
        get_backend("starks")
