"""Keccak-256 correctness against known Ethereum vectors + sponge laws."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.keccak import KeccakSponge, keccak_256
from repro.crypto.hashing import keccak256

# Known Keccak-256 vectors (original padding — the Ethereum variant).
KNOWN_VECTORS = {
    b"": "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470",
    b"abc": "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45",
    b"hello": "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8",
    b"The quick brown fox jumps over the lazy dog":
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
}


@pytest.mark.parametrize("message,expected", sorted(KNOWN_VECTORS.items()))
def test_known_vectors(message: bytes, expected: str) -> None:
    assert keccak_256(message).hex() == expected


def test_differs_from_sha3_256() -> None:
    # FIPS-202 SHA3-256("") starts a7ff...; Keccak-256("") starts c5d2.
    import hashlib

    assert keccak_256(b"") != hashlib.sha3_256(b"").digest()


def test_digest_is_32_bytes() -> None:
    assert len(keccak_256(b"x" * 1000)) == 32


@given(st.binary(max_size=512))
def test_deterministic(data: bytes) -> None:
    assert keccak_256(data) == keccak_256(data)


@given(st.binary(max_size=300), st.integers(min_value=1, max_value=299))
def test_incremental_equals_oneshot(data: bytes, split: int) -> None:
    split = min(split, len(data))
    sponge = KeccakSponge(rate_bytes=136, digest_bytes=32)
    sponge.update(data[:split]).update(data[split:])
    assert sponge.digest() == keccak_256(data)


@given(st.binary(max_size=200), st.binary(max_size=200))
def test_collision_resistance_smoke(a: bytes, b: bytes) -> None:
    if a != b:
        assert keccak_256(a) != keccak_256(b)


def test_boundary_lengths_cross_rate() -> None:
    # Exercise messages straddling the 136-byte rate boundary.
    digests = {keccak_256(b"q" * n) for n in (135, 136, 137, 271, 272, 273)}
    assert len(digests) == 6


def test_update_after_digest_rejected() -> None:
    sponge = KeccakSponge(rate_bytes=136, digest_bytes=32)
    sponge.update(b"abc")
    assert sponge.digest() == keccak_256(b"abc")
    # digest() is pure w.r.t. buffered state: calling twice agrees
    assert sponge.digest() == keccak_256(b"abc")


def test_invalid_rate_rejected() -> None:
    with pytest.raises(ValueError):
        KeccakSponge(rate_bytes=0, digest_bytes=32)
    with pytest.raises(ValueError):
        KeccakSponge(rate_bytes=133, digest_bytes=32)


def test_keccak256_helper_concatenates() -> None:
    assert keccak256(b"ab", b"cd") == keccak_256(b"abcd")
