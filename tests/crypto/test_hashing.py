"""hash_to_int / helper hash behaviour."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import hash_to_int, hmac_sha256, sha256
from repro.zksnark.field import BN128_SCALAR_FIELD


def test_sha256_matches_stdlib() -> None:
    assert sha256(b"abc") == hashlib.sha256(b"abc").digest()
    assert sha256(b"a", b"bc") == hashlib.sha256(b"abc").digest()


def test_hmac_matches_stdlib() -> None:
    import hmac

    assert hmac_sha256(b"k", b"m") == hmac.new(b"k", b"m", hashlib.sha256).digest()


@given(st.binary(max_size=64), st.integers(min_value=2, max_value=1 << 256))
def test_hash_to_int_in_range(data: bytes, modulus: int) -> None:
    value = hash_to_int(data, modulus)
    assert 0 <= value < modulus


def test_hash_to_int_domain_separation() -> None:
    a = hash_to_int(b"payload", BN128_SCALAR_FIELD, domain=b"one")
    b = hash_to_int(b"payload", BN128_SCALAR_FIELD, domain=b"two")
    assert a != b


def test_hash_to_int_deterministic() -> None:
    assert hash_to_int(b"x", 997) == hash_to_int(b"x", 997)


def test_hash_to_int_rejects_tiny_modulus() -> None:
    with pytest.raises(ValueError):
        hash_to_int(b"x", 1)


@given(st.binary(max_size=32))
def test_hash_to_int_spreads_over_field(data: bytes) -> None:
    # A 254-bit modulus output should essentially never be tiny.
    value = hash_to_int(data, BN128_SCALAR_FIELD)
    assert value.bit_length() > 200 or value == 0  # astronomically unlikely branch
