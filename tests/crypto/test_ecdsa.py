"""secp256k1 ECDSA: curve laws, signatures, recovery, addresses."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import SignatureError

scalars = st.integers(min_value=1, max_value=ecdsa.N - 1)


def test_generator_on_curve() -> None:
    assert ecdsa.is_on_curve(ecdsa.GENERATOR)


def test_group_order() -> None:
    assert ecdsa.point_mul(ecdsa.N, ecdsa.GENERATOR) is None


def test_known_address_for_private_key_one() -> None:
    # Widely known vector: privkey 1 → this Ethereum address.
    kp = ecdsa.ECDSAKeyPair(1)
    assert kp.address().hex() == "7e5f4552091a69125d5dfcb7b8c2659029395bdf"


def test_known_address_for_private_key_two() -> None:
    kp = ecdsa.ECDSAKeyPair(2)
    assert kp.address().hex() == "2b5ad5c4795c026514f8317c7a215e218dccd6cf"


@given(scalars, scalars)
@settings(max_examples=10, deadline=None)
def test_scalar_mul_homomorphic(a: int, b: int) -> None:
    left = ecdsa.point_add(
        ecdsa.point_mul(a, ecdsa.GENERATOR), ecdsa.point_mul(b, ecdsa.GENERATOR)
    )
    right = ecdsa.point_mul((a + b) % ecdsa.N, ecdsa.GENERATOR)
    assert left == right


def test_point_add_identity() -> None:
    p = ecdsa.point_mul(12345, ecdsa.GENERATOR)
    assert ecdsa.point_add(p, None) == p
    assert ecdsa.point_add(None, p) == p


def test_point_add_inverse_is_infinity() -> None:
    p = ecdsa.point_mul(7, ecdsa.GENERATOR)
    neg = (p[0], ecdsa.P - p[1])
    assert ecdsa.point_add(p, neg) is None


def test_sign_verify_roundtrip() -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    digest = sha256(b"message")
    signature = kp.sign(digest)
    assert ecdsa.verify(kp.public_key, digest, signature)


def test_verify_rejects_other_message() -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    signature = kp.sign(sha256(b"message"))
    assert not ecdsa.verify(kp.public_key, sha256(b"other"), signature)


def test_verify_rejects_tampered_signature() -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    digest = sha256(b"message")
    signature = kp.sign(digest)
    bad = ecdsa.ECDSASignature(r=signature.r, s=(signature.s + 1) % ecdsa.N,
                               v=signature.v)
    assert not ecdsa.verify(kp.public_key, digest, bad)


def test_deterministic_signatures_rfc6979() -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    digest = sha256(b"message")
    assert kp.sign(digest) == kp.sign(digest)


def test_low_s_normalization() -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    for i in range(8):
        signature = kp.sign(sha256(b"m%d" % i))
        assert signature.s <= ecdsa.N // 2


@given(st.binary(min_size=1, max_size=16))
@settings(max_examples=10, deadline=None)
def test_recovery_property(seed: bytes) -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(seed)
    digest = sha256(b"payload", seed)
    signature = kp.sign(digest)
    assert ecdsa.recover_public_key(digest, signature) == kp.public_key
    assert ecdsa.recover_address(digest, signature) == kp.address()


def test_recovery_wrong_digest_gives_other_key() -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    signature = kp.sign(sha256(b"message"))
    try:
        recovered = ecdsa.recover_public_key(sha256(b"other"), signature)
        assert recovered != kp.public_key
    except SignatureError:
        pass  # recovery may also simply fail


def test_signature_serialization_roundtrip() -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    signature = kp.sign(sha256(b"m"))
    assert ecdsa.ECDSASignature.from_bytes(signature.to_bytes()) == signature


def test_signature_from_bytes_length_checked() -> None:
    with pytest.raises(SignatureError):
        ecdsa.ECDSASignature.from_bytes(b"\x00" * 64)


def test_private_key_range_enforced() -> None:
    with pytest.raises(SignatureError):
        ecdsa.ECDSAKeyPair(0)
    with pytest.raises(SignatureError):
        ecdsa.ECDSAKeyPair(ecdsa.N)


def test_sign_requires_32_byte_hash() -> None:
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    with pytest.raises(SignatureError):
        kp.sign(b"short")


def test_verify_rejects_off_curve_key() -> None:
    digest = sha256(b"m")
    kp = ecdsa.ECDSAKeyPair.from_seed(b"signer")
    signature = kp.sign(digest)
    assert not ecdsa.verify((1, 1), digest, signature)
