"""MGF1 mask generation and XOR helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.mgf import mgf1, xor_bytes


def test_mgf1_deterministic() -> None:
    assert mgf1(b"seed", 64) == mgf1(b"seed", 64)


def test_mgf1_lengths() -> None:
    for length in (0, 1, 31, 32, 33, 100):
        assert len(mgf1(b"seed", length)) == length


def test_mgf1_prefix_property() -> None:
    """Shorter masks are prefixes of longer ones (counter-mode)."""
    long = mgf1(b"seed", 100)
    assert mgf1(b"seed", 40) == long[:40]


def test_mgf1_seed_sensitivity() -> None:
    assert mgf1(b"seed-a", 32) != mgf1(b"seed-b", 32)


def test_mgf1_negative_length_rejected() -> None:
    with pytest.raises(ValueError):
        mgf1(b"seed", -1)


@given(st.binary(min_size=0, max_size=64))
def test_xor_involution(data: bytes) -> None:
    mask = mgf1(b"m", len(data))
    assert xor_bytes(xor_bytes(data, mask), mask) == data


def test_xor_length_mismatch() -> None:
    with pytest.raises(ValueError):
        xor_bytes(b"ab", b"abc")
