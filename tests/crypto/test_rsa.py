"""RSA-OAEP and RSASSA-PSS (the paper's named DApp-layer primitives)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import oaep
from repro.crypto.rsa import RSAKeyPair
from repro.errors import CryptoError, DecryptionError


@pytest.fixture(scope="module")
def keypair() -> RSAKeyPair:
    return RSAKeyPair.generate(1024, random.Random(42))


@pytest.fixture(scope="module")
def other_keypair() -> RSAKeyPair:
    return RSAKeyPair.generate(1024, random.Random(43))


def test_oaep_roundtrip(keypair: RSAKeyPair) -> None:
    rng = random.Random(1)
    ciphertext = keypair.public_key.encrypt(b"the answer is zebra", rng)
    assert keypair.decrypt(ciphertext) == b"the answer is zebra"


def test_oaep_randomized(keypair: RSAKeyPair) -> None:
    rng = random.Random(2)
    c1 = keypair.public_key.encrypt(b"same message", rng)
    c2 = keypair.public_key.encrypt(b"same message", rng)
    assert c1 != c2  # fresh seed each call


def test_oaep_wrong_key_fails(keypair: RSAKeyPair, other_keypair: RSAKeyPair) -> None:
    ciphertext = keypair.public_key.encrypt(b"secret", random.Random(3))
    with pytest.raises(DecryptionError):
        other_keypair.decrypt(ciphertext)


def test_oaep_tampered_ciphertext_fails(keypair: RSAKeyPair) -> None:
    ciphertext = bytearray(keypair.public_key.encrypt(b"secret", random.Random(4)))
    ciphertext[10] ^= 0x01
    with pytest.raises(DecryptionError):
        keypair.decrypt(bytes(ciphertext))


def test_oaep_label_binding(keypair: RSAKeyPair) -> None:
    ciphertext = keypair.public_key.encrypt(b"m", random.Random(5), label=b"task-1")
    assert keypair.decrypt(ciphertext, label=b"task-1") == b"m"
    with pytest.raises(DecryptionError):
        keypair.decrypt(ciphertext, label=b"task-2")


def test_oaep_max_length_enforced(keypair: RSAKeyPair) -> None:
    limit = oaep.max_message_length(keypair.public_key.byte_size)
    keypair.public_key.encrypt(b"a" * limit, random.Random(6))  # fits
    with pytest.raises(ValueError):
        keypair.public_key.encrypt(b"a" * (limit + 1), random.Random(6))


def test_oaep_empty_message(keypair: RSAKeyPair) -> None:
    ciphertext = keypair.public_key.encrypt(b"", random.Random(7))
    assert keypair.decrypt(ciphertext) == b""


def test_ciphertext_length_validated(keypair: RSAKeyPair) -> None:
    with pytest.raises(CryptoError):
        keypair.decrypt(b"\x01" * 10)


@given(st.binary(min_size=0, max_size=60))
@settings(max_examples=20, deadline=None)
def test_oaep_roundtrip_property(message: bytes) -> None:
    keypair = _CACHED[0]
    ciphertext = keypair.public_key.encrypt(message, random.Random(len(message)))
    assert keypair.decrypt(ciphertext) == message


_CACHED = [RSAKeyPair.generate(1024, random.Random(99))]


def test_pss_sign_verify(keypair: RSAKeyPair) -> None:
    signature = keypair.sign(b"instruction", random.Random(8))
    assert keypair.public_key.verify(b"instruction", signature)


def test_pss_rejects_other_message(keypair: RSAKeyPair) -> None:
    signature = keypair.sign(b"instruction", random.Random(9))
    assert not keypair.public_key.verify(b"other", signature)


def test_pss_rejects_tampered_signature(keypair: RSAKeyPair) -> None:
    signature = bytearray(keypair.sign(b"m", random.Random(10)))
    signature[0] ^= 0x80
    assert not keypair.public_key.verify(b"m", bytes(signature))


def test_pss_rejects_wrong_key(keypair: RSAKeyPair, other_keypair: RSAKeyPair) -> None:
    signature = keypair.sign(b"m", random.Random(11))
    assert not other_keypair.public_key.verify(b"m", signature)


def test_pss_signatures_randomized(keypair: RSAKeyPair) -> None:
    s1 = keypair.sign(b"m", random.Random(12))
    s2 = keypair.sign(b"m", random.Random(13))
    assert s1 != s2
    assert keypair.public_key.verify(b"m", s1)
    assert keypair.public_key.verify(b"m", s2)


def test_equal_primes_rejected() -> None:
    with pytest.raises(CryptoError):
        RSAKeyPair(65537, 65537)  # p == q


def test_fingerprint_stable_and_distinct(
    keypair: RSAKeyPair, other_keypair: RSAKeyPair
) -> None:
    assert keypair.public_key.fingerprint() == keypair.public_key.fingerprint()
    assert keypair.public_key.fingerprint() != other_keypair.public_key.fingerprint()


def test_oaep_decode_rejects_wrong_size() -> None:
    with pytest.raises(DecryptionError):
        oaep.oaep_decode(b"\x00" * 10, 10)
