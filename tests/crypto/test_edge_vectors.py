"""Wycheproof-style edge vectors for the crypto stack.

Hostile-input cases the happy-path suites never exercise: ECDSA
signature malleability and malformed (r, s, v) components, RSA-OAEP
label binding and ciphertext framing faults, and Keccak inputs sitting
exactly on the sponge's rate boundary — cross-checked against an
independent minimal sponge built directly on ``keccak_f1600``.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto import ecdsa
from repro.crypto.ecdsa import (
    ECDSAKeyPair,
    ECDSASignature,
    N,
    recover_address,
    recover_public_key,
    verify,
)
from repro.crypto.keccak import KeccakSponge, keccak_256, keccak_f1600
from repro.crypto.oaep import max_message_length
from repro.crypto.rsa import RSAKeyPair
from repro.errors import CryptoError, DecryptionError, SignatureError

# ----- ECDSA: malleability and malformed components -------------------------------

HASH = bytes(range(32))


@pytest.fixture(scope="module")
def keypair() -> ECDSAKeyPair:
    return ECDSAKeyPair.from_seed(b"edge-vector-signer")


@pytest.fixture(scope="module")
def signature(keypair: ECDSAKeyPair) -> ECDSASignature:
    return keypair.sign(HASH)


def test_signer_always_emits_low_s(keypair: ECDSAKeyPair) -> None:
    for i in range(16):
        sig = keypair.sign(bytes([i]) * 32)
        assert 1 <= sig.s <= N // 2, "signature not low-s normalized"
        assert sig.v in (0, 1)


def test_high_s_twin_still_passes_raw_verify(
    keypair: ECDSAKeyPair, signature: ECDSASignature
) -> None:
    """(r, N-s) is the classic malleable twin: plain ECDSA verification
    accepts it, which is exactly why the chain relies on address
    recovery (below) rather than raw verify for sender binding."""
    twin = ECDSASignature(r=signature.r, s=N - signature.s, v=signature.v)
    assert twin.s > N // 2
    assert verify(keypair.public_key, HASH, twin) is True


def test_high_s_twin_recovers_a_different_address(
    keypair: ECDSAKeyPair, signature: ECDSASignature
) -> None:
    """Flipping s without flipping v must NOT recover the signer, so a
    malleated transaction cannot impersonate the original sender."""
    twin = ECDSASignature(r=signature.r, s=N - signature.s, v=signature.v)
    try:
        recovered = recover_address(HASH, twin)
    except SignatureError:
        return  # outright rejection is equally acceptable
    assert recovered != keypair.address()
    # The honest twin (s and v both flipped) recovers the signer again.
    honest = ECDSASignature(r=signature.r, s=N - signature.s, v=signature.v ^ 1)
    assert recover_address(HASH, honest) == keypair.address()


@pytest.mark.parametrize("r,s", [(0, 1), (1, 0), (0, 0)])
def test_zero_r_or_s_rejected(keypair: ECDSAKeyPair, r: int, s: int) -> None:
    bogus = ECDSASignature(r=r, s=s, v=0)
    assert verify(keypair.public_key, HASH, bogus) is False
    with pytest.raises(SignatureError):
        recover_public_key(HASH, bogus)


@pytest.mark.parametrize("which", ["r", "s"])
@pytest.mark.parametrize("value", [N, N + 1, 2**256 - 1])
def test_out_of_range_r_or_s_rejected(
    keypair: ECDSAKeyPair, signature: ECDSASignature, which: str, value: int
) -> None:
    bogus = ECDSASignature(
        r=value if which == "r" else signature.r,
        s=value if which == "s" else signature.s,
        v=signature.v,
    )
    assert verify(keypair.public_key, HASH, bogus) is False
    with pytest.raises(SignatureError):
        recover_public_key(HASH, bogus)


def test_wrong_recovery_id_recovers_a_stranger(
    keypair: ECDSAKeyPair, signature: ECDSASignature
) -> None:
    flipped = ECDSASignature(r=signature.r, s=signature.s, v=signature.v ^ 1)
    try:
        recovered = recover_public_key(HASH, flipped)
    except SignatureError:
        return
    assert recovered != keypair.public_key
    assert recover_address(HASH, flipped) != keypair.address()


def test_recovery_id_two_rejected_for_ordinary_r(signature: ECDSASignature) -> None:
    # v >= 2 means r came from an x-coordinate >= N; for any realistic r
    # that pushes x past the field prime, which must be rejected.
    assert signature.r + N >= ecdsa.P  # precondition for this vector
    bogus = ECDSASignature(r=signature.r, s=signature.s, v=signature.v + 2)
    with pytest.raises(SignatureError):
        recover_public_key(HASH, bogus)


def test_off_curve_public_key_rejected(signature: ECDSASignature) -> None:
    assert verify((1, 1), HASH, signature) is False


def test_signature_wire_format_is_strict(signature: ECDSASignature) -> None:
    wire = signature.to_bytes()
    assert len(wire) == 65
    assert ECDSASignature.from_bytes(wire) == signature
    for bad_length in (0, 64, 66):
        with pytest.raises(SignatureError):
            ECDSASignature.from_bytes(b"\x00" * bad_length)


# ----- RSA-OAEP: label binding and ciphertext framing -----------------------------


@pytest.fixture(scope="module")
def rsa_keypair() -> RSAKeyPair:
    return RSAKeyPair.generate(1024, random.Random(2024))


def test_oaep_label_mismatch_raises_decryption_error(rsa_keypair: RSAKeyPair) -> None:
    ciphertext = rsa_keypair.public_key.encrypt(
        b"bound to a label", rng=random.Random(1), label=b"task-42"
    )
    assert rsa_keypair.decrypt(ciphertext, label=b"task-42") == b"bound to a label"
    with pytest.raises(DecryptionError):
        rsa_keypair.decrypt(ciphertext, label=b"task-43")
    with pytest.raises(DecryptionError):
        rsa_keypair.decrypt(ciphertext)  # empty label is a different label


@pytest.mark.parametrize("delta", [-1, +1])
def test_oaep_ciphertext_length_off_by_one_raises(
    rsa_keypair: RSAKeyPair, delta: int
) -> None:
    ciphertext = rsa_keypair.public_key.encrypt(b"sized", rng=random.Random(2))
    resized = ciphertext[:delta] if delta < 0 else ciphertext + b"\x00"
    assert len(resized) == len(ciphertext) + delta
    with pytest.raises(CryptoError):
        rsa_keypair.decrypt(resized)


def test_oaep_every_single_byte_flip_is_rejected_somewhere(
    rsa_keypair: RSAKeyPair,
) -> None:
    ciphertext = rsa_keypair.public_key.encrypt(b"fragile", rng=random.Random(3))
    rng = random.Random(4)
    for _ in range(8):
        tampered = bytearray(ciphertext)
        tampered[rng.randrange(len(tampered))] ^= 1 << rng.randrange(8)
        with pytest.raises(CryptoError):  # DecryptionError or range check
            rsa_keypair.decrypt(bytes(tampered))


def test_oaep_message_length_boundary(rsa_keypair: RSAKeyPair) -> None:
    limit = max_message_length(rsa_keypair.public_key.byte_size)
    exactly = b"m" * limit
    ciphertext = rsa_keypair.public_key.encrypt(exactly, rng=random.Random(5))
    assert rsa_keypair.decrypt(ciphertext) == exactly
    with pytest.raises(ValueError):
        rsa_keypair.public_key.encrypt(b"m" * (limit + 1), rng=random.Random(6))


# ----- Keccak: known answers, rate boundary, independent sponge -------------------

_RATE = 136  # Keccak-256 rate in bytes


def _independent_keccak256(data: bytes) -> bytes:
    """A deliberately different formulation (single pass over padded
    input, no incremental buffering) sharing only ``keccak_f1600``."""
    padded = bytearray(data)
    pad_len = _RATE - (len(padded) % _RATE)
    padded.extend(bytes(pad_len))
    padded[len(data)] ^= 0x01
    padded[-1] ^= 0x80
    state = [0] * 25
    for offset in range(0, len(padded), _RATE):
        for i in range(0, _RATE, 8):
            state[i // 8] ^= int.from_bytes(
                padded[offset + i : offset + i + 8], "little"
            )
        state = keccak_f1600(state)
    return b"".join(lane.to_bytes(8, "little") for lane in state[:4])


@pytest.mark.parametrize(
    "message,digest_hex",
    [
        (b"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"),
        (b"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"),
        (
            b"The quick brown fox jumps over the lazy dog",
            "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
        ),
    ],
)
def test_keccak256_known_answers(message: bytes, digest_hex: str) -> None:
    assert keccak_256(message).hex() == digest_hex


@pytest.mark.parametrize("length", [_RATE - 1, _RATE, _RATE + 1, 2 * _RATE, 2 * _RATE + 1])
def test_keccak256_rate_boundary_matches_independent_sponge(length: int) -> None:
    """Inputs straddling the 136-byte rate hit the pad-to-fresh-block
    branch; the one-shot sponge must agree with an independent one."""
    data = bytes(i & 0xFF for i in range(length))
    assert keccak_256(data) == _independent_keccak256(data)


def test_keccak256_multi_block_incremental_absorption() -> None:
    data = random.Random(7).randbytes(5 * _RATE + 17)
    expected = _independent_keccak256(data)
    assert keccak_256(data) == expected
    # Incremental absorption in awkward chunk sizes must agree too.
    sponge = KeccakSponge(rate_bytes=_RATE, digest_bytes=32)
    for cut in range(0, len(data), 61):
        sponge.update(data[cut : cut + 61])
    assert sponge.digest() == expected


def test_keccak_sponge_rejects_invalid_rates() -> None:
    for rate in (0, -8, 7, 200, 208):
        with pytest.raises(ValueError):
            KeccakSponge(rate_bytes=rate, digest_bytes=32)
