"""Miller–Rabin and RSA prime generation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.primes import (
    generate_prime,
    generate_safe_rsa_primes,
    inverse_mod,
    is_probable_prime,
)

SMALL_PRIMES = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 997, 7919}
SMALL_COMPOSITES = {0, 1, 4, 6, 9, 15, 21, 25, 91, 561, 41041}  # incl. Carmichaels


@pytest.mark.parametrize("p", sorted(SMALL_PRIMES))
def test_small_primes_accepted(p: int) -> None:
    assert is_probable_prime(p)


@pytest.mark.parametrize("c", sorted(SMALL_COMPOSITES))
def test_composites_rejected(c: int) -> None:
    assert not is_probable_prime(c)


def test_known_large_prime() -> None:
    # 2^127 - 1 is a Mersenne prime.
    assert is_probable_prime((1 << 127) - 1)
    assert not is_probable_prime((1 << 127) - 3)


def test_generate_prime_width_and_primality() -> None:
    rng = random.Random(1)
    p = generate_prime(128, rng)
    assert p.bit_length() == 128
    assert is_probable_prime(p)


def test_generate_prime_deterministic_with_seed() -> None:
    assert generate_prime(64, random.Random(5)) == generate_prime(64, random.Random(5))


def test_rsa_primes_distinct_and_full_width() -> None:
    rng = random.Random(7)
    p, q = generate_safe_rsa_primes(128, rng)
    assert p != q
    assert (p * q).bit_length() == 256


def test_generate_prime_rejects_tiny_width() -> None:
    with pytest.raises(ValueError):
        generate_prime(4)


@given(st.integers(min_value=2, max_value=10**6))
@settings(max_examples=50)
def test_inverse_mod_property(a: int) -> None:
    modulus = 1_000_003  # prime
    inv = inverse_mod(a % modulus or 1, modulus)
    assert (a % modulus or 1) * inv % modulus == 1
