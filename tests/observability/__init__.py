"""Observability layer tests."""
