"""End-to-end trace of one protocol round: one span per Algorithm-1
phase, in protocol order, under the deterministic simulation clock."""

from __future__ import annotations

import io

import pytest

from repro import observability as obs
from repro.analysis.trace_report import (
    ALGORITHM1_PHASES,
    phase_rows,
    render_timeline,
)
from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem


@pytest.fixture()
def traced_round():
    """One full protocol round with tracing on the simulated clock.

    Yields the finished spans (as dicts) of: register (1 requester +
    2 workers) → publish → authenticate/submit ×2 → audit → reward.
    """
    from repro.chain.network import Testnet

    obs.reset()
    obs.enable()
    testnet = Testnet(miners=2, full_nodes=2)
    obs.TRACER.set_clock(testnet.clock)
    system = ZebraLancerSystem(profile="test", backend_name="mock", testnet=testnet)
    try:
        requester = Requester(system, "req")
        workers = [Worker(system, f"w{i}") for i in range(2)]
        task = requester.publish_task(
            MajorityVotePolicy(3), "traced", num_answers=2, budget=600
        )
        for worker in workers:
            assert worker.submit_answer(task, [1]).receipt.success
        assert task.audit_submissions()
        assert requester.evaluate_and_reward(task).success
        yield [span.to_dict() for span in obs.TRACER.finished_spans()]
    finally:
        obs.TRACER.set_clock(None)
        obs.reset()
        obs.disable()


def _first_start(spans, name):
    return min(s["start"] for s in spans if s["name"] == name)


def test_every_algorithm1_phase_has_a_span(traced_round) -> None:
    names = {span["name"] for span in traced_round}
    for phase in ALGORITHM1_PHASES:
        assert f"protocol.{phase}" in names, f"phase {phase} left no span"


def test_phases_appear_in_algorithm1_order(traced_round) -> None:
    starts = [
        _first_start(traced_round, f"protocol.{phase}")
        for phase in ALGORITHM1_PHASES
    ]
    assert starts == sorted(starts), (
        f"phase first-starts out of order: {dict(zip(ALGORITHM1_PHASES, starts))}"
    )
    # Ids increase in creation order, so the first span of each phase
    # must also be created in protocol order.
    first_ids = [
        min(s["span_id"] for s in traced_round if s["name"] == f"protocol.{phase}")
        for phase in ALGORITHM1_PHASES
    ]
    assert first_ids == sorted(first_ids)


def test_expected_phase_span_counts(traced_round) -> None:
    def count(name):
        return sum(1 for s in traced_round if s["name"] == name)

    assert count("protocol.register") == 3      # requester + 2 workers
    # publish + 2 submissions each carry one attestation
    assert count("protocol.authenticate") == 3
    assert count("protocol.submit") == 2
    assert count("protocol.audit") == 1
    assert count("protocol.reward") == 1
    assert count("requester.publish_task") == 1


def test_authenticate_nests_under_submit(traced_round) -> None:
    submits = {s["span_id"]: s for s in traced_round if s["name"] == "protocol.submit"}
    auths = [s for s in traced_round if s["name"] == "protocol.authenticate"]
    nested = [a for a in auths if a["parent_id"] in submits]
    assert len(nested) == 2  # one per worker submission
    for auth in nested:
        parent = submits[auth["parent_id"]]
        assert parent["start"] <= auth["start"]
        assert auth["end"] <= parent["end"]


def test_simulated_clock_makes_timestamps_deterministic(traced_round) -> None:
    # SimClock ticks in whole simulated seconds; every span timestamp
    # must be an integral number of seconds, which a wall clock would
    # essentially never produce.
    for span in traced_round:
        assert float(span["start"]).is_integer(), span
        assert float(span["end"]).is_integer(), span


def test_chain_spans_recorded_alongside_protocol(traced_round) -> None:
    names = {span["name"] for span in traced_round}
    assert "chain.import_block" in names
    assert "chain.create_block" in names
    assert "vm.execute_tx" in names
    assert "txsender.send" in names
    assert "snark.verify" in names
    assert "chain.verify_proof" in names
    assert "chain.batch_verify_proof" in names  # the audit's batched check


def test_metrics_registry_populated_by_the_round(traced_round) -> None:
    snap = obs.METRICS.snapshot()
    counters = snap["counters"]
    assert counters["protocol.registrations"] == 3
    assert counters["protocol.submissions"] == 2
    assert counters["protocol.audits"] == 1
    assert counters["protocol.rewards"] == 1
    # Contract-level counters tick once per EXECUTION: the miner runs
    # the tx in create_block and all 4 nodes (2 miners + 2 full nodes,
    # per the fixture) re-run it on import.
    executions = 1 + 4
    assert counters["task.published"] == executions
    assert counters["task.submissions"] == 2 * executions
    assert counters["chain.blocks_imported"] > 0
    assert counters["snark.verify.calls"] > 0
    assert counters["vm.transactions"] > 0
    assert snap["gauges"]["chain.height"] > 0
    assert snap["histograms"]["vm.gas_used_per_tx"]["count"] > 0
    # The whole registry renders without error.
    assert "protocol_registrations 3" in obs.METRICS.render_prometheus()


def test_phase_rows_and_timeline_rendering(traced_round) -> None:
    rows = phase_rows(traced_round)
    assert [row["phase"] for row in rows] == list(ALGORITHM1_PHASES)
    assert all(row["count"] > 0 for row in rows)
    assert rows[0]["start"] == 0.0  # origin-relative
    text = render_timeline(traced_round)
    for phase in ALGORITHM1_PHASES:
        assert phase in text
    assert "(missing)" not in text


def test_jsonl_export_round_trips_the_run(traced_round) -> None:
    buffer = io.StringIO()
    count = obs.write_spans_jsonl(traced_round, buffer)
    assert count == len(traced_round)
    parsed = obs.read_spans_jsonl(io.StringIO(buffer.getvalue()))
    assert parsed == traced_round
