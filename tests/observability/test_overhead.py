"""The no-op-default overhead guard (wired into CI's bench-smoke lane).

Two-part argument that disabled observability costs < 5% on the
auth-circuit verification hot path:

1. measure the per-call cost of every disabled-path primitive
   (``span`` open/close, ``count``, ``observe``) over many iterations;
2. count how many instrumentation events one real verification emits
   (by running it once with tracing enabled);

then assert events-per-verify × per-event-cost stays under 5% of the
measured verify latency.  This is far more stable in CI than comparing
two wall-clock runs of the verifier, whose natural jitter often exceeds
5% on a loaded runner — while still bounding exactly the quantity the
requirement names.  A direct same-result sanity check (enabled vs
disabled verification outcome) rides along.
"""

from __future__ import annotations

import time

from repro import observability as obs
from repro.anonauth.keys import UserKeyPair
from repro.anonauth.scheme import AnonymousAuthScheme

PREFIX = b"\xaa" * 32

#: The guarded budget: disabled instrumentation below 5% of a verify.
OVERHEAD_BUDGET = 0.05


def _timed(fn, repeat: int) -> float:
    started = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - started) / repeat


def _make_attestation(groth16_auth_system, identity: str):
    params, authority = groth16_auth_system
    scheme = AnonymousAuthScheme(params)
    user = UserKeyPair.generate(params.mimc, seed=identity.encode())
    certificate = authority.register(identity, user.public_key)
    commitment = authority.registry_commitment()
    message = PREFIX + b"overhead probe"
    attestation = scheme.auth(message, user, certificate, commitment)
    return scheme, message, attestation, commitment


def test_disabled_observability_overhead_under_budget(groth16_auth_system) -> None:
    scheme, message, attestation, commitment = _make_attestation(
        groth16_auth_system, "overhead-budget-user"
    )
    obs.reset()
    obs.disable()

    # --- the hot path itself, observability off -------------------------------
    runs = 3
    verify_seconds = min(
        _timed(lambda: scheme.verify(message, attestation, commitment), 1)
        for _ in range(runs)
    )

    # --- per-event cost of the disabled primitives ----------------------------
    iterations = 200_000

    def span_event() -> None:
        with obs.span("probe.span", attr=1):
            pass

    span_cost = _timed(span_event, iterations)
    count_cost = _timed(lambda: obs.count("probe.counter"), iterations)
    observe_cost = _timed(lambda: obs.observe("probe.histogram", 1.0), iterations)
    per_event = max(span_cost, count_cost, observe_cost)

    # --- how many events one verification emits -------------------------------
    obs.reset()
    obs.enable()
    try:
        assert scheme.verify(message, attestation, commitment)
        spans = len(obs.TRACER.finished_spans())
        snap = obs.METRICS.snapshot()
        counter_events = sum(snap["counters"].values())
        histogram_events = sum(
            h["count"] for h in snap["histograms"].values()
        )
    finally:
        obs.reset()
        obs.disable()

    events = spans + counter_events + histogram_events
    assert events > 0, "verification emitted no instrumentation at all"
    instrumented = events * per_event
    budget = OVERHEAD_BUDGET * verify_seconds
    assert instrumented < budget, (
        f"{events} events × {per_event * 1e9:.0f} ns = {instrumented * 1e6:.1f} µs "
        f"exceeds {OVERHEAD_BUDGET:.0%} of a {verify_seconds * 1e3:.1f} ms verify"
    )


def test_enabled_and_disabled_agree_on_the_verdict(groth16_auth_system) -> None:
    scheme, message, attestation, commitment = _make_attestation(
        groth16_auth_system, "overhead-verdict-user"
    )
    obs.reset()
    obs.disable()
    disabled_good = scheme.verify(message, attestation, commitment)
    disabled_bad = scheme.verify(PREFIX + b"wrong", attestation, commitment)
    obs.enable()
    try:
        assert scheme.verify(message, attestation, commitment) == disabled_good
        assert (
            scheme.verify(PREFIX + b"wrong", attestation, commitment)
            == disabled_bad
        )
        assert disabled_good is True and disabled_bad is False
    finally:
        obs.reset()
        obs.disable()


def test_disabled_layer_allocates_nothing_per_span() -> None:
    """The disabled fast path hands out ONE shared singleton."""
    obs.disable()
    spans = {id(obs.span(f"name-{i}", x=i)) for i in range(64)}
    assert len(spans) == 1
