"""Span tracer semantics: nesting, attrs, clocks, JSONL round-trip."""

from __future__ import annotations

import io
import threading

import pytest

from repro import observability as obs
from repro.observability import NULL_SPAN, NullSpan, Span, Tracer
from repro.observability.export import (
    read_spans_jsonl,
    spans_to_jsonl,
    write_spans_jsonl,
)


class FakeClock:
    """A deterministic, manually advanced clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def tick(self, seconds: float = 1.0) -> None:
        self.now += seconds


@pytest.fixture()
def tracer() -> Tracer:
    t = Tracer()
    t.enable()
    return t


def test_disabled_tracer_returns_shared_null_span() -> None:
    t = Tracer()
    assert t.enabled is False
    s1 = t.span("anything", attr=1)
    s2 = t.span("else")
    assert s1 is NULL_SPAN and s2 is NULL_SPAN
    assert isinstance(s1, NullSpan)
    with s1 as inner:
        inner.set_attrs(ignored=True)  # must be a silent no-op
    assert t.finished_spans() == []


def test_span_records_name_attrs_and_duration(tracer: Tracer) -> None:
    clock = FakeClock()
    tracer.set_clock(clock)
    with tracer.span("chain.verify_proof", inputs=5) as span:
        clock.tick(2.5)
        span.set_attrs(valid=True)
    (finished,) = tracer.finished_spans()
    assert finished.name == "chain.verify_proof"
    assert finished.attrs == {"inputs": 5, "valid": True}
    assert finished.start == 0.0
    assert finished.end == 2.5
    assert finished.duration == 2.5
    assert finished.status == "ok"


def test_nested_spans_record_parent_ids(tracer: Tracer) -> None:
    clock = FakeClock()
    tracer.set_clock(clock)
    with tracer.span("outer") as outer:
        clock.tick()
        with tracer.span("middle") as middle:
            clock.tick()
            with tracer.span("inner") as inner:
                clock.tick()
    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["outer"].parent_id is None
    assert spans["middle"].parent_id == spans["outer"].span_id
    assert spans["inner"].parent_id == spans["middle"].span_id
    # Completion order: innermost finishes first.
    assert [s.name for s in tracer.finished_spans()] == [
        "inner", "middle", "outer",
    ]
    # Sibling after the nest links back to the root, not to the nest.
    with tracer.span("outer2") as outer2:
        assert outer2.parent_id is None


def test_span_records_error_status_and_reraises(tracer: Tracer) -> None:
    with pytest.raises(ValueError):
        with tracer.span("explodes"):
            raise ValueError("boom")
    (finished,) = tracer.finished_spans()
    assert finished.status == "error:ValueError"


def test_current_span_tracks_the_open_span(tracer: Tracer) -> None:
    assert tracer.current_span() is None
    with tracer.span("a") as a:
        assert tracer.current_span() is a
        with tracer.span("b") as b:
            assert tracer.current_span() is b
        assert tracer.current_span() is a
    assert tracer.current_span() is None


def test_threads_get_independent_ancestry(tracer: Tracer) -> None:
    parents = {}

    def worker(label: str) -> None:
        with tracer.span(f"root-{label}") as root:
            parents[label] = root.parent_id
            with tracer.span(f"child-{label}") as child:
                parents[f"child-{label}"] = child.parent_id

    threads = [threading.Thread(target=worker, args=(str(i),)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for i in range(4):
        assert parents[str(i)] is None  # each thread roots its own tree
        assert parents[f"child-{i}"] is not None
    assert len(tracer.finished_spans()) == 8


def test_set_clock_accepts_callable_and_now_object() -> None:
    t = Tracer()
    t.enable()
    t.set_clock(lambda: 42.0)
    with t.span("x"):
        pass
    assert t.finished_spans()[0].start == 42.0
    t.set_clock(FakeClock())
    with t.span("y"):
        pass
    assert t.finished_spans()[1].start == 0.0
    with pytest.raises(TypeError):
        t.set_clock(object())
    t.set_clock(None)  # back to the wall clock without error


def test_reset_drops_finished_spans(tracer: Tracer) -> None:
    with tracer.span("gone"):
        pass
    tracer.reset()
    assert tracer.finished_spans() == []


def test_spans_named_filters(tracer: Tracer) -> None:
    for name in ("a", "b", "a"):
        with tracer.span(name):
            pass
    assert len(tracer.spans_named("a")) == 2
    assert len(tracer.spans_named("b")) == 1
    assert tracer.spans_named("zzz") == []


def test_jsonl_round_trip(tracer: Tracer) -> None:
    clock = FakeClock()
    tracer.set_clock(clock)
    with tracer.span("outer", kind="test"):
        clock.tick(3.0)
        with tracer.span("inner", depth=2):
            clock.tick(1.0)
    spans = tracer.finished_spans()
    buffer = io.StringIO()
    count = write_spans_jsonl(spans, buffer)
    assert count == 2
    parsed = read_spans_jsonl(io.StringIO(buffer.getvalue()))
    assert parsed == [span.to_dict() for span in spans]
    # A dict already round-tripped serializes identically.
    assert spans_to_jsonl(parsed) == buffer.getvalue()


def test_jsonl_round_trip_via_file(tracer: Tracer, tmp_path) -> None:
    with tracer.span("only"):
        pass
    path = str(tmp_path / "trace.jsonl")
    assert write_spans_jsonl(tracer.finished_spans(), path) == 1
    (record,) = read_spans_jsonl(path)
    assert record["name"] == "only"
    assert record["pid"] == tracer.finished_spans()[0].pid


def test_read_spans_jsonl_rejects_garbage(tmp_path) -> None:
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"name": "ok"}\nnot json\n', encoding="utf-8")
    with pytest.raises(ValueError, match="line 2"):
        read_spans_jsonl(str(bad))
    bad.write_text('["a", "list"]\n', encoding="utf-8")
    with pytest.raises(ValueError, match="not a span dict"):
        read_spans_jsonl(str(bad))


def test_global_helpers_respect_the_switch() -> None:
    obs.reset()
    obs.disable()
    with obs.span("ignored", x=1):
        pass
    obs.count("ignored.counter")
    obs.observe("ignored.histogram", 1.0)
    obs.gauge_set("ignored.gauge", 1.0)
    assert obs.TRACER.finished_spans() == []
    assert obs.METRICS.snapshot()["counters"] == {}
    try:
        obs.enable()
        with obs.span("seen", x=1):
            pass
        obs.count("seen.counter")
        assert len(obs.TRACER.finished_spans()) == 1
        assert obs.METRICS.snapshot()["counters"]["seen.counter"] == 1
    finally:
        obs.reset()
        obs.disable()
