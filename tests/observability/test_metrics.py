"""Metrics registry semantics: counters, gauges, histogram buckets,
Prometheus rendering."""

from __future__ import annotations

import math

import pytest

from repro.observability.export import render_to_string
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ----- counters / gauges ---------------------------------------------------------


def test_counter_accumulates_and_rejects_negative() -> None:
    counter = Counter("tx.count")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 42


def test_gauge_set_and_add() -> None:
    gauge = Gauge("mempool.depth")
    gauge.set(7)
    gauge.add(-2)
    assert gauge.value == 5


# ----- histogram bucket boundaries ----------------------------------------------


def test_histogram_boundary_values_land_in_their_bucket() -> None:
    """Prometheus ``le`` semantics: a value EQUAL to a boundary counts
    in that bucket (less-than-or-equal)."""
    h = Histogram("latency", buckets=(0.1, 1.0, 10.0))
    h.observe(0.1)   # == first boundary → le=0.1
    h.observe(1.0)   # == second boundary → le=1.0
    h.observe(10.0)  # == last boundary → le=10.0
    counts = h.bucket_counts()
    assert counts["0.1"] == 1
    assert counts["1.0"] == 2   # cumulative: 0.1 and 1.0
    assert counts["10.0"] == 3
    assert counts["+Inf"] == 3


def test_histogram_overflow_goes_to_inf_only() -> None:
    h = Histogram("latency", buckets=(1.0,))
    h.observe(5.0)
    counts = h.bucket_counts()
    assert counts["1.0"] == 0
    assert counts["+Inf"] == 1
    assert h.count == 1
    assert h.sum == 5.0


def test_histogram_counts_are_cumulative_and_sum_tracks() -> None:
    h = Histogram("gas", buckets=(10, 100, 1000))
    for value in (5, 50, 500, 5000):
        h.observe(value)
    assert h.counts == [1, 2, 3, 4]
    assert h.sum == 5555
    assert h.count == 4


def test_histogram_buckets_sorted_and_distinct() -> None:
    h = Histogram("x", buckets=(10, 1, 5))
    assert h.buckets == (1.0, 5.0, 10.0)
    with pytest.raises(ValueError):
        Histogram("dup", buckets=(1, 1, 2))
    with pytest.raises(ValueError):
        Histogram("empty", buckets=())


def test_histogram_quantile_upper_bounds() -> None:
    h = Histogram("q", buckets=(1, 2, 4, 8))
    for value in (0.5, 1.5, 3, 6):
        h.observe(value)
    assert h.quantile(0.25) == 1
    assert h.quantile(0.5) == 2
    assert h.quantile(1.0) == 8
    h.observe(100)  # beyond the last bucket
    assert h.quantile(1.0) == math.inf
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_quantile_of_empty_is_zero() -> None:
    assert Histogram("empty", buckets=(1,)).quantile(0.5) == 0.0


# ----- registry -----------------------------------------------------------------


def test_registry_get_or_create_returns_same_instrument() -> None:
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    first = registry.histogram("h", buckets=(1, 2))
    again = registry.histogram("h", buckets=(999,))  # ignored: first wins
    assert again is first
    assert again.buckets == (1.0, 2.0)


def test_registry_snapshot_shape() -> None:
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=(1,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 3}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["histograms"]["h"]["sum"] == 0.5
    assert snap["histograms"]["h"]["buckets"] == {"1.0": 1, "+Inf": 1}


def test_registry_reset_forgets_instruments() -> None:
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.reset()
    assert registry.snapshot()["counters"] == {}
    assert registry.counter("c").value == 0  # a fresh instrument


# ----- Prometheus text format ----------------------------------------------------


def test_prometheus_render_counter_and_gauge() -> None:
    registry = MetricsRegistry()
    registry.counter("chain.blocks_imported", help_text="imported blocks").inc(7)
    registry.gauge("chain.height").set(12)
    text = registry.render_prometheus()
    assert "# HELP chain_blocks_imported imported blocks" in text
    assert "# TYPE chain_blocks_imported counter" in text
    assert "chain_blocks_imported 7" in text
    assert "# TYPE chain_height gauge" in text
    assert "chain_height 12" in text
    assert text.endswith("\n")


def test_prometheus_render_histogram_le_labels() -> None:
    registry = MetricsRegistry()
    h = registry.histogram("snark.verify.seconds", buckets=(0.5, 2.0))
    h.observe(0.25)
    h.observe(1.0)
    h.observe(9.0)
    text = registry.render_prometheus()
    assert "# TYPE snark_verify_seconds histogram" in text
    assert 'snark_verify_seconds_bucket{le="0.5"} 1' in text
    assert 'snark_verify_seconds_bucket{le="2"} 2' in text
    assert 'snark_verify_seconds_bucket{le="+Inf"} 3' in text
    assert "snark_verify_seconds_sum 10.25" in text
    assert "snark_verify_seconds_count 3" in text


def test_prometheus_names_are_flattened() -> None:
    registry = MetricsRegistry()
    registry.counter("vm.gas.storage-io").inc()
    text = registry.render_prometheus()
    assert "vm_gas_storage_io 1" in text
    assert "." not in text.split("# TYPE ")[1].split(" ")[0]


def test_render_to_string_matches_registry_render() -> None:
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    assert render_to_string(registry) == registry.render_prometheus()
