"""Registration authority: CertGen, uniqueness, commitment evolution."""

from __future__ import annotations

import pytest

from repro.errors import RegistrationError
from repro.profiles import TEST
from repro.anonauth.authority import (
    CERT_MODE_MERKLE,
    CERT_MODE_SCHNORR,
    MerkleCertificate,
    RegistrationAuthority,
    SchnorrCertificate,
)
from repro.anonauth.keys import UserKeyPair
from repro.zksnark.gadgets import schnorr


@pytest.fixture
def merkle_ra() -> RegistrationAuthority:
    return RegistrationAuthority(TEST, cert_mode=CERT_MODE_MERKLE)


@pytest.fixture
def schnorr_ra() -> RegistrationAuthority:
    return RegistrationAuthority(TEST, cert_mode=CERT_MODE_SCHNORR, seed=b"ra")


def _user(ra: RegistrationAuthority, name: bytes) -> UserKeyPair:
    return UserKeyPair.generate(ra.mimc, seed=name)


def test_merkle_registration_issues_valid_path(merkle_ra) -> None:
    user = _user(merkle_ra, b"u1")
    cert = merkle_ra.register("u1@x", user.public_key)
    assert isinstance(cert, MerkleCertificate)
    assert merkle_ra._tree.verify_path(user.public_key, cert.path)


def test_one_identity_one_credential(merkle_ra) -> None:
    user = _user(merkle_ra, b"u1")
    merkle_ra.register("u1@x", user.public_key)
    with pytest.raises(RegistrationError):
        merkle_ra.register("u1@x", _user(merkle_ra, b"u2").public_key)


def test_one_key_one_credential(merkle_ra) -> None:
    user = _user(merkle_ra, b"u1")
    merkle_ra.register("u1@x", user.public_key)
    with pytest.raises(RegistrationError):
        merkle_ra.register("other@x", user.public_key)


def test_commitment_moves_on_registration(merkle_ra) -> None:
    first = merkle_ra.registry_commitment()
    merkle_ra.register("u1@x", _user(merkle_ra, b"u1").public_key)
    assert merkle_ra.registry_commitment() != first


def test_refresh_keeps_paths_current(merkle_ra) -> None:
    alice = _user(merkle_ra, b"alice")
    stale = merkle_ra.register("alice@x", alice.public_key)
    merkle_ra.register("bob@x", _user(merkle_ra, b"bob").public_key)
    fresh = merkle_ra.refresh_certificate(alice.public_key)
    assert merkle_ra._tree.verify_path(alice.public_key, fresh.path)
    assert not merkle_ra._tree.verify_path(alice.public_key, stale.path)


def test_refresh_unknown_key_rejected(merkle_ra) -> None:
    with pytest.raises(RegistrationError):
        merkle_ra.refresh_certificate(424242)


def test_is_certified(merkle_ra) -> None:
    user = _user(merkle_ra, b"u1")
    assert not merkle_ra.is_certified(user.public_key)
    merkle_ra.register("u1@x", user.public_key)
    assert merkle_ra.is_certified(user.public_key)


def test_registered_count(merkle_ra) -> None:
    assert merkle_ra.registered_count == 0
    merkle_ra.register("u1@x", _user(merkle_ra, b"u1").public_key)
    merkle_ra.register("u2@x", _user(merkle_ra, b"u2").public_key)
    assert merkle_ra.registered_count == 2


def test_schnorr_registration_signs_pk(schnorr_ra) -> None:
    user = _user(schnorr_ra, b"u1")
    cert = schnorr_ra.register("u1@x", user.public_key)
    assert isinstance(cert, SchnorrCertificate)
    assert schnorr.verify(
        schnorr_ra.schnorr_params,
        schnorr_ra.master_public_key,
        [user.public_key],
        cert.signature,
    )


def test_schnorr_commitment_fixed(schnorr_ra) -> None:
    before = schnorr_ra.registry_commitment()
    schnorr_ra.register("u1@x", _user(schnorr_ra, b"u1").public_key)
    assert schnorr_ra.registry_commitment() == before


def test_schnorr_refresh_is_stable_signature(schnorr_ra) -> None:
    user = _user(schnorr_ra, b"u1")
    cert = schnorr_ra.register("u1@x", user.public_key)
    refreshed = schnorr_ra.refresh_certificate(user.public_key)
    assert refreshed.signature == cert.signature


def test_unknown_mode_rejected() -> None:
    with pytest.raises(ValueError):
        RegistrationAuthority(TEST, cert_mode="x509")


def test_merkle_ra_has_no_master_secret(merkle_ra) -> None:
    assert merkle_ra.master_public_key is None
    assert merkle_ra._msk is None
