"""Common-prefix-linkability (Definition 1), played as the game.

The adversary holds q certificates and tries to produce q+1 valid,
pairwise-unlinked attestations on messages sharing one prefix.  With
tags t1 = PRF_sk(prefix), any two attestations from the same key and
prefix collide on t1 — so q keys can yield at most q unlinked tags.
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.anonauth import AnonymousAuthScheme, UserKeyPair, setup
from repro.anonauth.scheme import PREFIX_LENGTH

PREFIX = b"\x77" * PREFIX_LENGTH


@pytest.fixture(scope="module")
def world():
    params, authority = setup(
        profile="test", cert_mode="merkle", backend_name="mock", seed=b"linkgame"
    )
    scheme = AnonymousAuthScheme(params)
    return params, authority, scheme


def _corrupted_users(world, q: int):
    params, authority, _ = world
    users = []
    for index in range(q):
        user = UserKeyPair.generate(params.mimc, seed=b"corrupt-%d" % index)
        try:
            authority.register(f"corrupt-{index}", user.public_key)
        except Exception:
            pass  # already registered by a previous parametrization
        users.append(user)
    return users


@pytest.mark.parametrize("q", [1, 2, 3])
def test_q_keys_yield_at_most_q_unlinked_attestations(world, q: int) -> None:
    params, authority, scheme = world
    users = _corrupted_users(world, q)
    commitment = authority.registry_commitment()

    # Best adversarial strategy available: spread q+1 messages over the
    # q corrupted keys — some key must sign twice.
    attestations = []
    for index in range(q + 1):
        user = users[index % q]
        certificate = authority.refresh_certificate(user.public_key)
        attestations.append(
            scheme.auth(PREFIX + b"msg-%d" % index, user, certificate, commitment)
        )
    for index, attestation in enumerate(attestations):
        assert scheme.verify(PREFIX + b"msg-%d" % index, attestation, commitment)

    linked_pairs = [
        (i, j)
        for (i, a), (j, b) in combinations(enumerate(attestations), 2)
        if scheme.link(a, b)
    ]
    assert linked_pairs, "q+1 attestations from q keys must contain a linked pair"


def test_q_attestations_from_q_keys_are_unlinked(world) -> None:
    params, authority, scheme = world
    users = _corrupted_users(world, 3)
    commitment = authority.registry_commitment()
    attestations = [
        scheme.auth(
            PREFIX + b"one-each-%d" % index,
            user,
            authority.refresh_certificate(user.public_key),
            commitment,
        )
        for index, user in enumerate(users)
    ]
    for a, b in combinations(attestations, 2):
        assert not scheme.link(a, b)


def test_tag_determinism_is_what_links(world) -> None:
    params, authority, scheme = world
    (user,) = _corrupted_users(world, 1)
    commitment = authority.registry_commitment()
    certificate = authority.refresh_certificate(user.public_key)
    a1 = scheme.auth(PREFIX + b"alpha", user, certificate, commitment)
    a2 = scheme.auth(PREFIX + b"beta", user, certificate, commitment)
    assert a1.t1 == a2.t1          # prefix tag is a PRF of (prefix, sk)
    assert a1.t2 != a2.t2          # message tag differs per message


def test_submission_counting_with_k_allowance(world) -> None:
    """The paper's footnote 11: counting linked attestations lets a
    contract enforce any per-task allowance k, not just k = 1."""
    params, authority, scheme = world
    (user,) = _corrupted_users(world, 1)
    commitment = authority.registry_commitment()
    certificate = authority.refresh_certificate(user.public_key)
    pool = []
    k = 3
    accepted = 0
    for index in range(5):
        attestation = scheme.auth(
            PREFIX + b"count-%d" % index, user, certificate, commitment
        )
        linked = sum(1 for seen in pool if scheme.link(seen, attestation))
        if linked < k:
            pool.append(attestation)
            accepted += 1
    assert accepted == k
