"""Common-prefix-linkability (Definition 1), played as the game.

The adversary holds q certificates and tries to produce q+1 valid,
pairwise-unlinked attestations on messages sharing one prefix.  With
tags t1 = PRF_sk(prefix), any two attestations from the same key and
prefix collide on t1 — so q keys can yield at most q unlinked tags.
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.anonauth import AnonymousAuthScheme, UserKeyPair, setup
from repro.anonauth.scheme import PREFIX_LENGTH

PREFIX = b"\x77" * PREFIX_LENGTH


@pytest.fixture(scope="module")
def world():
    params, authority = setup(
        profile="test", cert_mode="merkle", backend_name="mock", seed=b"linkgame"
    )
    scheme = AnonymousAuthScheme(params)
    return params, authority, scheme


def _corrupted_users(world, q: int):
    params, authority, _ = world
    users = []
    for index in range(q):
        user = UserKeyPair.generate(params.mimc, seed=b"corrupt-%d" % index)
        try:
            authority.register(f"corrupt-{index}", user.public_key)
        except Exception:
            pass  # already registered by a previous parametrization
        users.append(user)
    return users


@pytest.mark.parametrize("q", [1, 2, 3])
def test_q_keys_yield_at_most_q_unlinked_attestations(world, q: int) -> None:
    params, authority, scheme = world
    users = _corrupted_users(world, q)
    commitment = authority.registry_commitment()

    # Best adversarial strategy available: spread q+1 messages over the
    # q corrupted keys — some key must sign twice.
    attestations = []
    for index in range(q + 1):
        user = users[index % q]
        certificate = authority.refresh_certificate(user.public_key)
        attestations.append(
            scheme.auth(PREFIX + b"msg-%d" % index, user, certificate, commitment)
        )
    for index, attestation in enumerate(attestations):
        assert scheme.verify(PREFIX + b"msg-%d" % index, attestation, commitment)

    linked_pairs = [
        (i, j)
        for (i, a), (j, b) in combinations(enumerate(attestations), 2)
        if scheme.link(a, b)
    ]
    assert linked_pairs, "q+1 attestations from q keys must contain a linked pair"


def test_q_attestations_from_q_keys_are_unlinked(world) -> None:
    params, authority, scheme = world
    users = _corrupted_users(world, 3)
    commitment = authority.registry_commitment()
    attestations = [
        scheme.auth(
            PREFIX + b"one-each-%d" % index,
            user,
            authority.refresh_certificate(user.public_key),
            commitment,
        )
        for index, user in enumerate(users)
    ]
    for a, b in combinations(attestations, 2):
        assert not scheme.link(a, b)


def test_tag_determinism_is_what_links(world) -> None:
    params, authority, scheme = world
    (user,) = _corrupted_users(world, 1)
    commitment = authority.registry_commitment()
    certificate = authority.refresh_certificate(user.public_key)
    a1 = scheme.auth(PREFIX + b"alpha", user, certificate, commitment)
    a2 = scheme.auth(PREFIX + b"beta", user, certificate, commitment)
    assert a1.t1 == a2.t1          # prefix tag is a PRF of (prefix, sk)
    assert a1.t2 != a2.t2          # message tag differs per message


def test_submission_counting_with_k_allowance(world) -> None:
    """The paper's footnote 11: counting linked attestations lets a
    contract enforce any per-task allowance k, not just k = 1."""
    params, authority, scheme = world
    (user,) = _corrupted_users(world, 1)
    commitment = authority.registry_commitment()
    certificate = authority.refresh_certificate(user.public_key)
    pool = []
    k = 3
    accepted = 0
    for index in range(5):
        attestation = scheme.auth(
            PREFIX + b"count-%d" % index, user, certificate, commitment
        )
        linked = sum(1 for seen in pool if scheme.link(seen, attestation))
        if linked < k:
            pool.append(attestation)
            accepted += 1
    assert accepted == k


# ----- pseudonymous reputation: cross-task unlinkability (property) -----------------
#
# The marketplace accrues reputation on the BOARD-prefix tag (the
# handle) while submissions ride TASK-prefix tags.  The property: an
# observer holding the complete reputation registry plus every tag on
# chain learns nothing about which per-task address belongs to which
# worker beyond what the tags already reveal — formalized here as
# invariance under address reassignment, swept over seeds.

import random as _random

from repro.anonauth.scheme import prefix_digest
from repro.core.reputation import (
    OUTCOME_COMPLETED,
    OUTCOME_DEFAULTED,
    ReputationRegistry,
)

_REP_SEEDS = pytest.mark.parametrize(
    "seed", [0, 1, 2], ids=["seed0", "seed1", "seed2"]
)


def _rep_world(world, seed: int, count: int):
    """``count`` registered workers plus board/task prefixes for one seed."""
    params, authority, scheme = world
    users = []
    for index in range(count):
        user = UserKeyPair.generate(
            params.mimc, seed=b"rep-%d-%d" % (seed, index)
        )
        try:
            authority.register(f"rep-{seed}-{index}", user.public_key)
        except Exception:
            pass  # already registered by a previous parametrization
        users.append(user)
    board_prefix = bytes([0x42 + seed]) * PREFIX_LENGTH
    task_prefixes = [
        bytes([0x90 + seed, task_index]) * (PREFIX_LENGTH // 2)
        for task_index in range(4)
    ]
    return users, board_prefix, task_prefixes


def _transcript(world, users, task_prefixes, assignment, commitment):
    """Authenticate every (task, worker) pair from its assigned address."""
    _, authority, scheme = world
    rows = []
    for task_index, task_prefix_bytes in enumerate(task_prefixes):
        row = []
        for worker_index, user in enumerate(users):
            address = assignment[task_index][worker_index]
            message = task_prefix_bytes + address + b"answer-%d" % task_index
            attestation = scheme.auth(
                message,
                user,
                authority.refresh_certificate(user.public_key),
                commitment,
            )
            row.append(attestation)
        rows.append(row)
    return rows


@_REP_SEEDS
@pytest.mark.market
def test_reputation_accrual_never_links_per_task_addresses(world, seed) -> None:
    params, authority, scheme = world
    users, board_prefix, task_prefixes = _rep_world(world, seed, 3)
    commitment = authority.registry_commitment()
    rng = _random.Random(seed)

    addresses = [
        [rng.randbytes(20) for _ in users] for _ in task_prefixes
    ]
    # World B reassigns every per-task address to a DIFFERENT worker
    # (rotation); if tags or registry depended on addresses, the two
    # worlds would diverge somewhere observable.
    rotated = [row[1:] + row[:1] for row in addresses]

    world_a = _transcript(world, users, task_prefixes, addresses, commitment)
    world_b = _transcript(world, users, task_prefixes, rotated, commitment)

    # Per-task tags are address-INVARIANT: both worlds show the exact
    # same t1 transcript, so the observer's view cannot separate them.
    for row_a, row_b in zip(world_a, world_b):
        assert [a.t1 for a in row_a] == [b.t1 for b in row_b]

    # No per-task tag repeats anywhere: not across this worker's other
    # tasks, not across other workers — there is nothing to link on.
    flat_a = [attestation.t1 for row in world_a for attestation in row]
    assert len(set(flat_a)) == len(flat_a)
    for row in world_a:
        for a, b in combinations(row, 2):
            assert not scheme.link(a, b)
    for worker_index in range(len(users)):
        per_worker = [row[worker_index] for row in world_a]
        for a, b in combinations(per_worker, 2):
            assert not scheme.link(a, b)

    # The ONLY deliberate cross-context repetition is the board handle:
    # the same key under the board prefix always lands on its handle tag.
    handles = [scheme.prefix_tag(board_prefix, user) for user in users]
    assert len(set(handles)) == len(handles)
    for user, handle in zip(users, handles):
        bid_a = scheme.auth(
            board_prefix + b"bid-a", user,
            authority.refresh_certificate(user.public_key), commitment,
        )
        bid_b = scheme.auth(
            board_prefix + b"bid-b", user,
            authority.refresh_certificate(user.public_key), commitment,
        )
        assert bid_a.t1 == handle == bid_b.t1
        assert scheme.link(bid_a, bid_b)
        assert handle not in flat_a  # the handle never appears task-side

    # Reputation accrual over K tasks is a function of (handle, outcome)
    # ONLY: fed the same outcomes, both worlds produce byte-identical
    # registries — the registry adds zero address information.
    registry_a = ReputationRegistry(half_life=64)
    registry_b = ReputationRegistry(half_life=64)
    for task_index in range(len(task_prefixes)):
        for handle in handles:
            outcome = (
                OUTCOME_COMPLETED if rng.random() < 0.8 else OUTCOME_DEFAULTED
            )
            block = 10 * task_index
            registry_a.record_outcome(handle, outcome, block)
            registry_b.record_outcome(handle, outcome, block)
    assert registry_a.to_wire() == registry_b.to_wire()
    assert set(registry_a.tags()) == set(handles)


@_REP_SEEDS
@pytest.mark.market
def test_tag_link_claims_are_sound_and_domain_separated(world, seed) -> None:
    """The bridge between a handle and a task tag cannot be forged.

    A tag-link attestation proves ONE certified key owns both tags; an
    attacker with its own (valid) credential can neither claim a
    victim's task tag nor replay a normal attestation as a tag link
    (prefix and message digests live in different hash domains).
    """
    params, authority, scheme = world
    users, board_prefix, task_prefixes = _rep_world(world, seed, 2)
    victim, attacker = users
    commitment = authority.registry_commitment()
    task_prefix_bytes = task_prefixes[0]

    link = scheme.auth_tag_link(
        board_prefix, task_prefix_bytes, victim,
        authority.refresh_certificate(victim.public_key), commitment,
    )
    assert scheme.verify_tag_link(
        board_prefix, task_prefix_bytes, link, commitment
    )
    assert link.t1 == scheme.prefix_tag(board_prefix, victim)
    assert link.t2 == scheme.prefix_tag(task_prefix_bytes, victim)

    # Soundness: the attacker's own honest link lands on ITS tags, and
    # tampering the claim toward the victim's tags kills the proof.
    forged = scheme.auth_tag_link(
        board_prefix, task_prefix_bytes, attacker,
        authority.refresh_certificate(attacker.public_key), commitment,
    )
    assert forged.t2 != link.t2
    from repro.anonauth.scheme import Attestation as _Attestation

    grafted = _Attestation(
        t1=forged.t1, t2=link.t2, proof=forged.proof,
        registry_commitment=forged.registry_commitment,
    )
    assert not scheme.verify_tag_link(
        board_prefix, task_prefix_bytes, grafted, commitment
    )

    # Domain separation: a normal attestation whose MESSAGE happens to
    # be the other prefix does not verify as a tag link (and the link
    # does not verify as a normal attestation on that message).
    normal = scheme.auth(
        board_prefix + task_prefix_bytes, victim,
        authority.refresh_certificate(victim.public_key), commitment,
    )
    assert not scheme.verify_tag_link(
        board_prefix, task_prefix_bytes, normal, commitment
    )
    assert not scheme.verify(board_prefix + task_prefix_bytes, link, commitment)
