"""Auth / Verify / Link — the full algorithm matrix on the ideal backend,
plus one real-Groth16 pass."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, RegistrationError
from repro.anonauth import AnonymousAuthScheme, UserKeyPair, setup
from repro.anonauth.scheme import (
    Attestation,
    PREFIX_LENGTH,
    attestation_statement,
    message_digest,
    prefix_digest,
    task_prefix,
)

PREFIX_A = b"\xaa" * PREFIX_LENGTH
PREFIX_B = b"\xbb" * PREFIX_LENGTH


@pytest.fixture(scope="module")
def world():
    params, authority = setup(
        profile="test", cert_mode="merkle", backend_name="mock", seed=b"scheme"
    )
    scheme = AnonymousAuthScheme(params)
    alice = UserKeyPair.generate(params.mimc, seed=b"alice")
    bob = UserKeyPair.generate(params.mimc, seed=b"bob")
    authority.register("alice", alice.public_key)
    authority.register("bob", bob.public_key)
    return params, authority, scheme, alice, bob


def _auth(world, user, message: bytes) -> Attestation:
    params, authority, scheme, *_ = world
    certificate = authority.refresh_certificate(user.public_key)
    return scheme.auth(
        message, user, certificate, authority.registry_commitment()
    )


def test_auth_verify_roundtrip(world) -> None:
    _, authority, scheme, alice, _ = world
    message = PREFIX_A + b"submission"
    attestation = _auth(world, alice, message)
    assert scheme.verify(message, attestation, authority.registry_commitment())


def test_verify_rejects_different_message(world) -> None:
    _, authority, scheme, alice, _ = world
    attestation = _auth(world, alice, PREFIX_A + b"submission")
    assert not scheme.verify(
        PREFIX_A + b"other", attestation, authority.registry_commitment()
    )


def test_verify_rejects_wrong_commitment(world) -> None:
    _, authority, scheme, alice, _ = world
    message = PREFIX_A + b"submission"
    attestation = _auth(world, alice, message)
    assert not scheme.verify(message, attestation, 12345)


def test_verify_rejects_swapped_tags(world) -> None:
    _, authority, scheme, alice, _ = world
    message = PREFIX_A + b"submission"
    attestation = _auth(world, alice, message)
    forged = Attestation(
        t1=attestation.t2,
        t2=attestation.t1,
        proof=attestation.proof,
        registry_commitment=attestation.registry_commitment,
    )
    assert not scheme.verify(message, forged, authority.registry_commitment())


def test_uncertified_user_cannot_authenticate(world) -> None:
    params, authority, scheme, alice, _ = world
    mallory = UserKeyPair.generate(params.mimc, seed=b"mallory")
    certificate = authority.refresh_certificate(alice.public_key)  # not hers
    with pytest.raises(Exception):
        scheme.auth(
            PREFIX_A + b"m", mallory, certificate, authority.registry_commitment()
        )


def test_link_same_user_same_prefix(world) -> None:
    _, _, scheme, alice, _ = world
    a1 = _auth(world, alice, PREFIX_A + b"first")
    a2 = _auth(world, alice, PREFIX_A + b"second")
    assert scheme.link(a1, a2)


def test_no_link_across_prefixes(world) -> None:
    _, _, scheme, alice, _ = world
    a1 = _auth(world, alice, PREFIX_A + b"first")
    a2 = _auth(world, alice, PREFIX_B + b"first")
    assert not scheme.link(a1, a2)


def test_no_link_between_users(world) -> None:
    _, _, scheme, alice, bob = world
    a1 = _auth(world, alice, PREFIX_A + b"first")
    a2 = _auth(world, bob, PREFIX_A + b"second")
    assert not scheme.link(a1, a2)


def test_link_symmetric(world) -> None:
    _, _, scheme, alice, _ = world
    a1 = _auth(world, alice, PREFIX_A + b"first")
    a2 = _auth(world, alice, PREFIX_A + b"second")
    assert scheme.link(a1, a2) == scheme.link(a2, a1)


def test_message_must_exceed_prefix(world) -> None:
    _, authority, scheme, alice, _ = world
    certificate = authority.refresh_certificate(alice.public_key)
    with pytest.raises(AuthenticationError):
        scheme.auth(
            PREFIX_A, alice, certificate, authority.registry_commitment()
        )
    assert not scheme.verify(PREFIX_A, _auth(world, alice, PREFIX_A + b"x"),
                             authority.registry_commitment())


def test_attestation_wire_roundtrip(world) -> None:
    _, _, _, alice, _ = world
    attestation = _auth(world, alice, PREFIX_A + b"payload")
    decoded = Attestation.from_wire(attestation.to_wire())
    assert decoded == attestation


def test_attestation_statement_layout(world) -> None:
    _, _, _, alice, _ = world
    message = PREFIX_A + b"payload"
    attestation = _auth(world, alice, message)
    statement = attestation_statement(message, attestation)
    assert statement == [
        prefix_digest(PREFIX_A),
        message_digest(message),
        attestation.registry_commitment,
        attestation.t1,
        attestation.t2,
    ]


def test_task_prefix_pads_addresses() -> None:
    address = b"\x01" * 20
    padded = task_prefix(address)
    assert len(padded) == PREFIX_LENGTH
    assert padded.startswith(address)
    with pytest.raises(AuthenticationError):
        task_prefix(b"\x01" * 40)


def test_stale_certificate_fails_against_new_commitment(world) -> None:
    params, authority, scheme, alice, _ = world
    stale_cert = authority.refresh_certificate(alice.public_key)
    stale_commitment = authority.registry_commitment()
    extra = UserKeyPair.generate(params.mimc, seed=b"late-joiner")
    try:
        authority.register("late-joiner", extra.public_key)
    except RegistrationError:
        pass
    message = PREFIX_A + b"m"
    attestation = scheme.auth(message, alice, stale_cert, stale_commitment)
    # Valid against the commitment it was proved under...
    assert scheme.verify(message, attestation, stale_commitment)
    # ...but not against the moved registry root.
    assert not scheme.verify(message, attestation, authority.registry_commitment())


@pytest.mark.slow
def test_groth16_end_to_end(groth16_auth_system) -> None:
    """The real pairing-based pipeline (one pass; slow)."""
    params, authority = groth16_auth_system
    scheme = AnonymousAuthScheme(params)
    user = UserKeyPair.generate(params.mimc, seed=b"g16-user")
    certificate = authority.register("g16-user", user.public_key)
    commitment = authority.registry_commitment()
    message = PREFIX_A + b"groth16 submission"
    attestation = scheme.auth(message, user, certificate, commitment)
    assert scheme.verify(message, attestation, commitment)
    assert not scheme.verify(PREFIX_A + b"other", attestation, commitment)
    # Attestation size: 2 tags + 3 group elements.
    assert attestation.size_bytes() == 32 + 32 + 256
