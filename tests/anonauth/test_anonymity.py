"""Anonymity (Definition 2): transcripts reveal nothing about identities.

The formal game lets the adversary *be* the RA and the platform.  These
tests check the structural facts the proof rests on: the public
transcript is (t1, t2, proof) where the tags are PRF outputs of sk and
the proof is zero-knowledge (under the mock backend, a MAC over public
values only — bitwise independent of the witness).
"""

from __future__ import annotations

import pytest

from repro.anonauth import AnonymousAuthScheme, UserKeyPair, setup
from repro.anonauth.keys import derive_public_key
from repro.anonauth.scheme import PREFIX_LENGTH

PREFIX_A = b"\x01" * PREFIX_LENGTH
PREFIX_B = b"\x02" * PREFIX_LENGTH


@pytest.fixture(scope="module")
def world():
    params, authority = setup(
        profile="test", cert_mode="merkle", backend_name="mock", seed=b"anon"
    )
    scheme = AnonymousAuthScheme(params)
    w0 = UserKeyPair.generate(params.mimc, seed=b"w0")
    w1 = UserKeyPair.generate(params.mimc, seed=b"w1")
    authority.register("w0", w0.public_key)
    authority.register("w1", w1.public_key)
    return params, authority, scheme, w0, w1


def _auth(world, user, message):
    params, authority, scheme, *_ = world
    return scheme.auth(
        message,
        user,
        authority.refresh_certificate(user.public_key),
        authority.registry_commitment(),
    )


def test_transcript_contains_no_identity_material(world) -> None:
    params, authority, scheme, w0, _ = world
    attestation = _auth(world, w0, PREFIX_A + b"data")
    wire = attestation.to_wire()
    for secret in (
        w0.secret_key.to_bytes(32, "big"),
        w0.public_key.to_bytes(32, "big"),
    ):
        assert secret not in wire


def test_tags_do_not_equal_key_material(world) -> None:
    _, _, _, w0, _ = world
    attestation = _auth(world, w0, PREFIX_A + b"data")
    assert attestation.t1 != w0.secret_key
    assert attestation.t1 != w0.public_key
    assert attestation.t2 != w0.secret_key


def test_cross_prefix_tags_are_unrelated(world) -> None:
    """W0's transcripts for two prefixes share no tag — the adversary's
    task in the game (deciding whether two task transcripts intersect)
    gets no signal from the tags."""
    _, _, scheme, w0, w1 = world
    t_a0 = _auth(world, w0, PREFIX_A + b"x")
    t_b0 = _auth(world, w0, PREFIX_B + b"x")
    t_a1 = _auth(world, w1, PREFIX_A + b"x")
    t_b1 = _auth(world, w1, PREFIX_B + b"x")
    tags = {t_a0.t1, t_b0.t1, t_a1.t1, t_b1.t1, t_a0.t2, t_b0.t2, t_a1.t2, t_b1.t2}
    assert len(tags) == 8  # all pairwise distinct: nothing to correlate


def test_ra_cannot_match_tags_to_registered_keys(world) -> None:
    """The RA knows every registered pk; tags must not let it test
    membership (pk = H(sk) while t1 = H(p̂, sk) — different domains)."""
    params, authority, scheme, w0, w1 = world
    attestation = _auth(world, w0, PREFIX_A + b"x")
    registered = {w0.public_key, w1.public_key}
    assert attestation.t1 not in registered
    assert attestation.t2 not in registered


def test_proofs_for_same_statement_by_different_users_same_size(world) -> None:
    _, _, _, w0, w1 = world
    a0 = _auth(world, w0, PREFIX_A + b"payload")
    a1 = _auth(world, w1, PREFIX_A + b"payload")
    assert a0.size_bytes() == a1.size_bytes()


def test_mock_proof_depends_only_on_public_statement(world) -> None:
    """Under the ideal functionality the proof bytes are a function of
    the public statement alone — perfect zero-knowledge, literally."""
    params, authority, scheme, w0, w1 = world
    # Different witnesses (users), same public statement is impossible
    # (t1 differs); but re-proving the SAME witness yields identical
    # bytes, and the bytes are a deterministic MAC of publics:
    a1 = _auth(world, w0, PREFIX_A + b"payload")
    a2 = _auth(world, w0, PREFIX_A + b"payload")
    assert a1.proof.payload == a2.proof.payload


def test_identity_commitment_is_preimage_resistant_shape() -> None:
    """pk = MiMC(sk) — deriving pk is easy, nothing maps back."""
    from repro.zksnark.gadgets.mimc import MiMCParameters

    mimc = MiMCParameters.for_rounds(7)
    pk = derive_public_key(123456789, mimc)
    assert pk != 123456789
    assert derive_public_key(123456789, mimc) == pk
    assert derive_public_key(123456790, mimc) != pk


def test_one_task_addresses_unlinkable() -> None:
    from repro.core.anonymity import derive_one_task_account

    account_a = derive_one_task_account(b"seed", "task-a")
    account_b = derive_one_task_account(b"seed", "task-b")
    other = derive_one_task_account(b"other-seed", "task-a")
    assert account_a.address != account_b.address
    assert account_a.address != other.address
    # Deterministic re-derivation for the owner.
    assert derive_one_task_account(b"seed", "task-a").address == account_a.address
