"""The non-anonymous mode: cheap, fully linkable authentication."""

from __future__ import annotations

import random

import pytest

from repro.crypto.rsa import RSAKeyPair
from repro.errors import RegistrationError
from repro.anonauth.plain import (
    PlainAttestation,
    PlainAuthority,
    PlainAuthScheme,
)


@pytest.fixture(scope="module")
def world():
    rng = random.Random(0)
    authority = PlainAuthority(bits=1024, rng=rng)
    scheme = PlainAuthScheme(authority.master_public_key)
    user_keys = RSAKeyPair.generate(1024, random.Random(1))
    certificate = authority.register("plain-user", user_keys.public_key,
                                     random.Random(2))
    return authority, scheme, user_keys, certificate


def test_auth_verify(world) -> None:
    authority, scheme, keys, certificate = world
    attestation = scheme.auth(b"message", keys, certificate, random.Random(3))
    assert scheme.verify(b"message", attestation)


def test_verify_rejects_other_message(world) -> None:
    authority, scheme, keys, certificate = world
    attestation = scheme.auth(b"message", keys, certificate, random.Random(4))
    assert not scheme.verify(b"other", attestation)


def test_uncertified_key_rejected(world) -> None:
    authority, scheme, keys, certificate = world
    rogue = RSAKeyPair.generate(1024, random.Random(5))
    from repro.anonauth.plain import PlainCertificate

    forged = PlainCertificate(
        public_key=rogue.public_key, signature=certificate.signature
    )
    attestation = scheme.auth(b"m", rogue, forged, random.Random(6))
    assert not scheme.verify(b"m", attestation)


def test_wrong_authority_rejected(world) -> None:
    authority, scheme, keys, certificate = world
    other_authority = PlainAuthority(bits=1024, rng=random.Random(7))
    other_scheme = PlainAuthScheme(other_authority.master_public_key)
    attestation = scheme.auth(b"m", keys, certificate, random.Random(8))
    assert not other_scheme.verify(b"m", attestation)


def test_link_is_total(world) -> None:
    """No anonymity: everything by one user links, across any message."""
    authority, scheme, keys, certificate = world
    a = scheme.auth(b"task-1 payload", keys, certificate, random.Random(9))
    b = scheme.auth(b"task-2 payload", keys, certificate, random.Random(10))
    assert scheme.link(a, b)
    other = RSAKeyPair.generate(1024, random.Random(11))
    other_cert = authority.register("other-user", other.public_key,
                                    random.Random(12))
    c = scheme.auth(b"task-1 payload", other, other_cert, random.Random(13))
    assert not scheme.link(a, c)


def test_identity_exposed_in_transcript(world) -> None:
    """The contrast with the anonymous mode: pk is right there."""
    authority, scheme, keys, certificate = world
    attestation = scheme.auth(b"m", keys, certificate, random.Random(14))
    assert attestation.certificate.public_key == keys.public_key


def test_one_identity_one_certificate(world) -> None:
    authority, scheme, keys, certificate = world
    with pytest.raises(RegistrationError):
        authority.register("plain-user", keys.public_key)


def test_wire_roundtrip(world) -> None:
    authority, scheme, keys, certificate = world
    attestation = scheme.auth(b"m", keys, certificate, random.Random(15))
    decoded = PlainAttestation.from_wire(attestation.to_wire())
    assert decoded == attestation
    assert scheme.verify(b"m", decoded)


def test_cheaper_than_anonymous_mode(world, mock_auth_system) -> None:
    """'Costs nearly nothing': plain auth must be far below even the
    ideal-functionality anonymous auth's *real* Groth16 cousin; here we
    just sanity-check it completes in well under a millisecond-scale
    budget relative to proof generation, via operation counting."""
    import time

    authority, scheme, keys, certificate = world
    started = time.perf_counter()
    attestation = scheme.auth(b"m", keys, certificate, random.Random(16))
    assert scheme.verify(b"m", attestation)
    elapsed = time.perf_counter() - started
    assert elapsed < 1.0  # RSA ops only; no SNARK proving anywhere
