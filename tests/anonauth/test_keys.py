"""Identity keypairs."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.anonauth.keys import UserKeyPair, derive_public_key
from repro.zksnark.field import BN128_SCALAR_FIELD
from repro.zksnark.gadgets.mimc import MiMCParameters

MIMC = MiMCParameters.for_rounds(7)


def test_seeded_generation_deterministic() -> None:
    a = UserKeyPair.generate(MIMC, seed=b"same")
    b = UserKeyPair.generate(MIMC, seed=b"same")
    assert a == b


def test_different_seeds_different_keys() -> None:
    a = UserKeyPair.generate(MIMC, seed=b"one")
    b = UserKeyPair.generate(MIMC, seed=b"two")
    assert a.secret_key != b.secret_key
    assert a.public_key != b.public_key


def test_public_key_is_commitment_of_secret() -> None:
    keypair = UserKeyPair.generate(MIMC, seed=b"x")
    assert keypair.public_key == derive_public_key(keypair.secret_key, MIMC)


def test_random_generation_in_field() -> None:
    keypair = UserKeyPair.generate(MIMC)
    assert 0 < keypair.secret_key < BN128_SCALAR_FIELD
    assert 0 <= keypair.public_key < BN128_SCALAR_FIELD


@given(st.binary(min_size=1, max_size=16))
@settings(max_examples=20)
def test_seed_avalanche(seed: bytes) -> None:
    base = UserKeyPair.generate(MIMC, seed=seed)
    tweaked = UserKeyPair.generate(MIMC, seed=seed + b"\x00")
    assert base.public_key != tweaked.public_key
