"""The Auth circuit itself: statement layout, satisfiability boundaries."""

from __future__ import annotations

import pytest

from repro.errors import CircuitError, UnsatisfiedConstraintError
from repro.profiles import TEST
from repro.anonauth.authority import (
    CERT_MODE_MERKLE,
    CERT_MODE_SCHNORR,
    MerkleCertificate,
    RegistrationAuthority,
)
from repro.anonauth.circuit import AuthCircuit, AuthInstance
from repro.anonauth.keys import UserKeyPair
from repro.anonauth.scheme import message_digest, prefix_digest
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_hash_native

MIMC = MiMCParameters.for_rounds(TEST.mimc_rounds)


def _world():
    authority = RegistrationAuthority(TEST, cert_mode=CERT_MODE_MERKLE)
    user = UserKeyPair.generate(MIMC, seed=b"circuit-user")
    certificate = authority.register("circuit-user", user.public_key)
    return authority, user, certificate


def _instance(authority, user, certificate, message=b"\x10" * 32 + b"m") -> AuthInstance:
    p_digest = prefix_digest(message[:32])
    m_digest = message_digest(message)
    return AuthInstance(
        prefix_digest=p_digest,
        message_digest=m_digest,
        registry_commitment=authority.registry_commitment(),
        t1=mimc_hash_native([p_digest, user.secret_key], MIMC),
        t2=mimc_hash_native([m_digest, user.secret_key], MIMC),
        secret_key=user.secret_key,
        certificate=certificate,
    )


def test_honest_instance_satisfies() -> None:
    authority, user, certificate = _world()
    instance = _instance(authority, user, certificate)
    circuit = AuthCircuit(TEST, CERT_MODE_MERKLE)
    cs = circuit.build(instance)
    cs.check_satisfied()
    assert cs.num_public == 5
    assert cs.public_values() == instance.public_inputs()


def test_wrong_t1_unsatisfiable() -> None:
    authority, user, certificate = _world()
    base = _instance(authority, user, certificate)
    forged = AuthInstance(**{**base.__dict__, "t1": base.t1 + 1})
    with pytest.raises(UnsatisfiedConstraintError):
        AuthCircuit(TEST, CERT_MODE_MERKLE).build(forged).check_satisfied()


def test_wrong_secret_key_unsatisfiable() -> None:
    authority, user, certificate = _world()
    base = _instance(authority, user, certificate)
    forged = AuthInstance(**{**base.__dict__, "secret_key": user.secret_key + 1})
    with pytest.raises(UnsatisfiedConstraintError):
        AuthCircuit(TEST, CERT_MODE_MERKLE).build(forged).check_satisfied()


def test_foreign_certificate_unsatisfiable() -> None:
    """Using another member's Merkle path with your own sk: the leaf is
    pk = H(sk) which doesn't sit at that path."""
    authority, user, certificate = _world()
    stranger = UserKeyPair.generate(MIMC, seed=b"stranger")
    authority.register("stranger", stranger.public_key)
    stranger_cert = authority.refresh_certificate(stranger.public_key)
    base = _instance(authority, user, stranger_cert)
    with pytest.raises(UnsatisfiedConstraintError):
        AuthCircuit(TEST, CERT_MODE_MERKLE).build(base).check_satisfied()


def test_wrong_commitment_unsatisfiable() -> None:
    authority, user, certificate = _world()
    base = _instance(authority, user, certificate)
    forged = AuthInstance(**{**base.__dict__, "registry_commitment": 424242})
    with pytest.raises(UnsatisfiedConstraintError):
        AuthCircuit(TEST, CERT_MODE_MERKLE).build(forged).check_satisfied()


def test_structure_independent_of_instance() -> None:
    authority, user, certificate = _world()
    other = UserKeyPair.generate(MIMC, seed=b"another")
    authority.register("another", other.public_key)
    other_cert = authority.refresh_certificate(other.public_key)
    circuit = AuthCircuit(TEST, CERT_MODE_MERKLE)
    digest_a = circuit.build(
        _instance(authority, user, authority.refresh_certificate(user.public_key))
    ).to_r1cs().structure_digest()
    digest_b = circuit.build(
        _instance(authority, other, other_cert, message=b"\x22" * 32 + b"x")
    ).to_r1cs().structure_digest()
    assert digest_a == digest_b


def test_schnorr_mode_requires_mpk() -> None:
    with pytest.raises(CircuitError):
        AuthCircuit(TEST, CERT_MODE_SCHNORR, master_public_key=None)


def test_example_required_for_setup_side_only() -> None:
    circuit = AuthCircuit(TEST, CERT_MODE_MERKLE)
    with pytest.raises(CircuitError):
        circuit.example_instance()


def test_mode_certificate_type_checked() -> None:
    authority, user, certificate = _world()
    schnorr_authority = RegistrationAuthority(
        TEST, cert_mode=CERT_MODE_SCHNORR, seed=b"ra"
    )
    schnorr_user = UserKeyPair.generate(MIMC, seed=b"s-user")
    schnorr_cert = schnorr_authority.register("s-user", schnorr_user.public_key)
    wrong = _instance(authority, user, schnorr_cert)  # schnorr cert, merkle mode
    from repro.errors import AuthenticationError

    with pytest.raises(AuthenticationError):
        AuthCircuit(TEST, CERT_MODE_MERKLE).build(wrong)


def test_schnorr_mode_satisfies_and_binds_mpk() -> None:
    authority = RegistrationAuthority(TEST, cert_mode=CERT_MODE_SCHNORR, seed=b"ra2")
    user = UserKeyPair.generate(MIMC, seed=b"s-user-2")
    certificate = authority.register("s-user-2", user.public_key)
    instance = _instance(authority, user, certificate)
    circuit = AuthCircuit(
        TEST, CERT_MODE_SCHNORR, master_public_key=authority.master_public_key
    )
    circuit.build(instance).check_satisfied()
    # A circuit pinned to a different RA's mpk rejects the same instance.
    other_authority = RegistrationAuthority(
        TEST, cert_mode=CERT_MODE_SCHNORR, seed=b"ra3"
    )
    imposter_circuit = AuthCircuit(
        TEST, CERT_MODE_SCHNORR, master_public_key=other_authority.master_public_key
    )
    with pytest.raises(UnsatisfiedConstraintError):
        imposter_circuit.build(instance).check_satisfied()
