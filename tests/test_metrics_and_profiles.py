"""Measurement utilities and security profiles."""

from __future__ import annotations

import time

import pytest
from hypothesis import example, given, strategies as st

from repro.core.metrics import (
    BoxStats,
    Timer,
    humanize_bytes,
    measure,
    peak_memory,
    time_call,
)
from repro.profiles import BENCH, PRODUCTION, TEST, SecurityProfile, get_profile


def test_measure_records_elapsed() -> None:
    with measure() as timer:
        time.sleep(0.01)
    assert timer.seconds >= 0.009
    assert timer.millis == timer.seconds * 1000


def test_time_call_repeats() -> None:
    samples = time_call(lambda: None, repeats=5)
    assert len(samples) == 5
    assert all(s >= 0 for s in samples)


def test_box_stats_known_values() -> None:
    stats = BoxStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats.minimum == 1.0
    assert stats.median == 3.0
    assert stats.maximum == 5.0
    assert stats.q1 == 2.0
    assert stats.q3 == 4.0
    assert stats.mean == 3.0
    assert stats.count == 5


@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=40))
# Regressions: sums of identical samples whose mean rounds one ulp
# below the minimum, and an interpolation-heavy odd-length list.
@example(samples=[174763.09620499396, 174763.09620499396, 174763.09620499396])
@example(samples=[0.1] * 3)
@example(samples=[0.001, 0.001, 0.001, 0.001, 0.001, 0.001, 0.001])
def test_box_stats_ordering_invariant(samples) -> None:
    stats = BoxStats.from_samples(samples)
    assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
    assert stats.minimum <= stats.mean <= stats.maximum


def test_box_stats_singleton() -> None:
    stats = BoxStats.from_samples([2.5])
    assert stats.minimum == stats.median == stats.maximum == 2.5


def test_box_stats_empty_rejected() -> None:
    with pytest.raises(ValueError):
        BoxStats.from_samples([])


def test_box_stats_render() -> None:
    text = BoxStats.from_samples([1.0, 2.0]).render()
    assert "median" in text and "n=2" in text


def test_peak_memory_tracks_allocation() -> None:
    with peak_memory() as holder:
        _ = bytearray(4_000_000)
    assert holder["peak_bytes"] >= 4_000_000


def test_humanize_bytes() -> None:
    assert humanize_bytes(512) == "512B"
    assert humanize_bytes(1536) == "1.5KB"
    assert humanize_bytes(2 * 1024 * 1024) == "2.0MB"


def test_profiles_lookup() -> None:
    assert get_profile("test") is TEST
    assert get_profile("bench") is BENCH
    assert get_profile("production") is PRODUCTION
    with pytest.raises(KeyError):
        get_profile("ludicrous")


def test_profile_ordering_makes_sense() -> None:
    assert TEST.mimc_rounds < BENCH.mimc_rounds < PRODUCTION.mimc_rounds
    assert TEST.merkle_depth < PRODUCTION.merkle_depth
    assert PRODUCTION.mimc_rounds == 91  # the standard MiMC-7 round count
    assert PRODUCTION.merkle_depth == 16


def test_profile_validation() -> None:
    with pytest.raises(ValueError):
        SecurityProfile(name="x", mimc_rounds=1, merkle_depth=4, scalar_bits=16)
    with pytest.raises(ValueError):
        SecurityProfile(name="x", mimc_rounds=7, merkle_depth=0, scalar_bits=16)
    with pytest.raises(ValueError):
        SecurityProfile(name="x", mimc_rounds=7, merkle_depth=4, scalar_bits=2)
