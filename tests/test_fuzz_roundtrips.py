"""Seeded fuzz sweeps over every wire codec in the stack.

Each codec gets ~200 deterministic random cases in two shapes:

* round-trip: ``decode(encode(x)) == x`` for structurally random ``x``;
* mutation: flipping, truncating or extending encoded bytes either
  raises the codec's declared error type or decodes to a *different*
  value — never crashes with an undeclared exception and never decodes
  back to the original.

Covered codecs: the canonical serializer (``repro.serialization``),
``SignedTransaction`` wire, ``BlockHeader``/``Block`` wire, BN128
G1/G2 point encodings, and Groth16 proof payloads / verifying-key
bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto import ecdsa
from repro.errors import InvalidBlockError, InvalidTransactionError
from repro.serialization import decode, encode
from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import SignedTransaction, Transaction
from repro.zksnark import Groth16Backend, Proof
from repro.zksnark.bn128.curve import (
    G1,
    G2,
    g1_from_bytes,
    g1_mul,
    g1_to_bytes,
    g2_from_bytes,
    g2_mul,
    g2_to_bytes,
)

CASES = 200


# ----- helpers ----------------------------------------------------------------


def _mutate(rng: random.Random, wire: bytes) -> bytes:
    """One random structural mutation: bit flip, truncation, or insertion."""
    kind = rng.randrange(3)
    if kind == 0 or not wire:
        position = rng.randrange(len(wire)) if wire else 0
        flipped = bytearray(wire or b"\x00")
        flipped[position] ^= 1 << rng.randrange(8)
        return bytes(flipped)
    if kind == 1:
        return wire[: rng.randrange(len(wire))]
    position = rng.randrange(len(wire) + 1)
    return wire[:position] + bytes([rng.randrange(256)]) + wire[position:]


def _random_value(rng: random.Random, depth: int = 0):
    """A random encodable value (no pickle-fallback objects)."""
    choices = ["int", "negint", "bytes", "str", "none", "bool"]
    if depth < 3:
        choices += ["list", "dict"]
    kind = rng.choice(choices)
    if kind == "int":
        return rng.getrandbits(rng.randrange(1, 256))
    if kind == "negint":
        return -rng.getrandbits(rng.randrange(1, 64)) - 1
    if kind == "bytes":
        return rng.randbytes(rng.randrange(64))
    if kind == "str":
        alphabet = "abcdef é中\U0001f600"
        return "".join(rng.choice(alphabet) for _ in range(rng.randrange(24)))
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "list":
        return [_random_value(rng, depth + 1) for _ in range(rng.randrange(5))]
    keys = [rng.randrange(1 << 32), rng.randbytes(8).hex(), rng.randbytes(4)]
    return {
        rng.choice(keys): _random_value(rng, depth + 1)
        for _ in range(rng.randrange(4))
    }


def _normalize(value):
    """Map a value to its decoded shape (tuples decode as lists, bools as ints)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (list, tuple)):
        return [_normalize(item) for item in value]
    if isinstance(value, dict):
        return {_normalize(k): _normalize(v) for k, v in value.items()}
    return value


_KEYPAIRS = [ecdsa.ECDSAKeyPair.from_seed(b"fuzz-key-%d" % i) for i in range(4)]


def _random_signed_tx(rng: random.Random) -> SignedTransaction:
    to = None if rng.random() < 0.2 else rng.randbytes(20)
    tx = Transaction(
        nonce=rng.randrange(1 << 16),
        gas_price=rng.randrange(1 << 32),
        gas_limit=rng.randrange(21_000, 1 << 32),
        to=to,
        value=rng.randrange(1 << 48),
        data=rng.randbytes(rng.randrange(128)),
        chain_id=1337,
    )
    return tx.sign(rng.choice(_KEYPAIRS))


def _random_header(rng: random.Random) -> BlockHeader:
    return BlockHeader(
        number=rng.randrange(1 << 32),
        parent_hash=rng.randbytes(32),
        timestamp=rng.randrange(1 << 40),
        miner=rng.randbytes(20),
        state_root=rng.randbytes(32),
        tx_root=rng.randbytes(32),
        receipts_root=rng.randbytes(32),
        gas_used=rng.randrange(1 << 40),
        gas_limit=rng.randrange(1 << 40),
        extra=rng.randbytes(rng.randrange(16)),
        seal=rng.randbytes(rng.randrange(80)),
    )


# ----- canonical serializer ---------------------------------------------------


def test_serialization_roundtrip_fuzz() -> None:
    rng = random.Random(0xC0DEC)
    for _ in range(CASES):
        value = _random_value(rng)
        assert decode(encode(value)) == _normalize(value)


def test_serialization_mutation_fuzz() -> None:
    rng = random.Random(0xBADC0DE)
    survived = 0
    for _ in range(CASES):
        value = _random_value(rng)
        wire = encode(value)
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        try:
            result = decode(mutated)
        except (ValueError, TypeError):
            continue  # clean rejection (UnicodeDecodeError is a ValueError)
        assert result != _normalize(value)
        survived += 1
    # Sanity: mutations must not be rejected 100% of the time, or the
    # "decodes to a different value" arm is untested.
    assert survived > 0


def test_serialization_rejects_empty_and_unknown_tag() -> None:
    with pytest.raises(ValueError):
        decode(b"")
    with pytest.raises(ValueError):
        decode(bytes([0xFE]) + (0).to_bytes(4, "big"))


# ----- transaction wire -------------------------------------------------------


def test_transaction_wire_roundtrip_fuzz() -> None:
    rng = random.Random(0x7A5C)
    for _ in range(CASES):
        stx = _random_signed_tx(rng)
        again = SignedTransaction.from_wire(stx.to_wire())
        assert again == stx
        assert again.tx_hash == stx.tx_hash
        assert again.sender == stx.sender


def test_transaction_wire_mutation_fuzz() -> None:
    rng = random.Random(0x7A5D)
    pool = [_random_signed_tx(rng) for _ in range(20)]
    for _ in range(CASES):
        stx = rng.choice(pool)
        wire = stx.to_wire()
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        try:
            result = SignedTransaction.from_wire(mutated)
        except InvalidTransactionError:
            continue
        # A surviving decode must not impersonate the original payload:
        # any field difference changes the signing hash, hence tx_hash.
        assert result != stx
        assert result.tx_hash != stx.tx_hash


# ----- block wire -------------------------------------------------------------


def test_header_wire_roundtrip_fuzz() -> None:
    rng = random.Random(0xB10C)
    for _ in range(CASES):
        header = _random_header(rng)
        again = BlockHeader.from_wire(header.to_wire())
        assert again == header
        assert again.block_hash() == header.block_hash()


def test_header_wire_mutation_fuzz() -> None:
    rng = random.Random(0xB10D)
    for _ in range(CASES):
        header = _random_header(rng)
        wire = header.to_wire()
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        try:
            result = BlockHeader.from_wire(mutated)
        except InvalidBlockError:
            continue
        assert result != header


def test_block_wire_roundtrip_fuzz() -> None:
    rng = random.Random(0x5EED)
    pool = [_random_signed_tx(rng) for _ in range(12)]
    for _ in range(60):
        transactions = tuple(
            rng.choice(pool) for _ in range(rng.randrange(4))
        )
        block = Block(header=_random_header(rng), transactions=transactions)
        again = Block.from_wire(block.to_wire())
        assert again == block
        assert again.block_hash == block.block_hash


def test_block_wire_mutation_fuzz() -> None:
    rng = random.Random(0x5EEE)
    pool = [_random_signed_tx(rng) for _ in range(8)]
    block = Block(
        header=_random_header(rng), transactions=tuple(pool[:3])
    )
    wire = block.to_wire()
    for _ in range(CASES):
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        try:
            result = Block.from_wire(mutated)
        except InvalidBlockError:
            continue
        assert result != block


# ----- BN128 point encodings --------------------------------------------------


def test_g1_point_roundtrip_fuzz() -> None:
    rng = random.Random(0x6001)
    for _ in range(CASES):
        point = g1_mul(G1, rng.getrandbits(64) + 1)
        assert g1_from_bytes(g1_to_bytes(point)) == point
    assert g1_from_bytes(b"\x00" * 64) is None  # infinity
    assert g1_to_bytes(None) == b"\x00" * 64


def test_g1_point_mutation_fuzz() -> None:
    rng = random.Random(0x6002)
    point = g1_mul(G1, 0xDEADBEEF)
    wire = g1_to_bytes(point)
    for _ in range(CASES):
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        try:
            result = g1_from_bytes(mutated)
        except ValueError:
            continue  # off-curve, over-field, or wrong length
        assert result != point


def test_g2_point_roundtrip_fuzz() -> None:
    rng = random.Random(0x6003)
    for _ in range(40):  # G2 arithmetic is ~4x G1 cost
        point = g2_mul(G2, rng.getrandbits(64) + 1)
        assert g2_from_bytes(g2_to_bytes(point)) == point
    assert g2_from_bytes(b"\x00" * 128) is None


def test_g2_point_mutation_fuzz() -> None:
    rng = random.Random(0x6004)
    point = g2_mul(G2, 0xCAFEF00D)
    wire = g2_to_bytes(point)
    for _ in range(CASES):
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        try:
            result = g2_from_bytes(mutated)
        except ValueError:
            continue
        assert result != point


# ----- Groth16 proof and verifying-key encodings ------------------------------


class _SquareCircuit:
    """x * x == out; the smallest useful Groth16 statement."""

    name = "fuzz-square"

    def example_instance(self):
        return {"x": 4, "out": 16}

    def synthesize(self, cs, instance) -> None:
        out = cs.alloc_public(instance["out"])
        x = cs.alloc(instance["x"])
        cs.enforce(x, x, out)


@pytest.fixture(scope="module")
def groth16_material():
    from repro.zksnark import CircuitDefinition

    class SquareCircuit(_SquareCircuit, CircuitDefinition):
        pass

    backend = Groth16Backend()
    circuit = SquareCircuit()
    keys = backend.setup(circuit, seed=b"fuzz-roundtrip")
    proof = backend.prove(keys.proving_key, circuit, {"x": 4, "out": 16})
    return backend, keys, proof


def test_groth16_proof_roundtrip(groth16_material) -> None:
    backend, keys, proof = groth16_material
    assert len(proof.payload) == 64 + 128 + 64
    # The payload is three canonical point encodings; re-encoding the
    # parsed points must reproduce it bit-for-bit.
    proof_a = g1_from_bytes(proof.payload[:64])
    proof_b = g2_from_bytes(proof.payload[64:192])
    proof_c = g1_from_bytes(proof.payload[192:])
    rebuilt = g1_to_bytes(proof_a) + g2_to_bytes(proof_b) + g1_to_bytes(proof_c)
    assert rebuilt == proof.payload
    assert backend.verify(keys.verifying_key, [16], proof)


def test_groth16_proof_mutation_fuzz(groth16_material) -> None:
    backend, keys, proof = groth16_material
    rng = random.Random(0x9407)
    for _ in range(CASES):
        mutated = _mutate(rng, proof.payload)
        if mutated == proof.payload:
            continue
        bad = Proof(backend=proof.backend, payload=mutated)
        # Mutations must never verify and never escape as exceptions.
        assert backend.verify(keys.verifying_key, [16], bad) is False


def test_groth16_vk_bytes_roundtrip(groth16_material) -> None:
    _, keys, _ = groth16_material
    vk = keys.verifying_key
    wire = vk.to_bytes()
    assert wire == vk.to_bytes()  # deterministic
    assert vk.size_bytes() == len(wire)
    # Layout: alpha G1 | beta, gamma, delta G2 | one G1 IC point per input.
    assert len(wire) == 64 + 3 * 128 + 64 * len(vk.ic)
    offset = 0
    assert g1_from_bytes(wire[offset : offset + 64]) == vk.alpha_g1
    offset += 64
    for expected in (vk.beta_g2, vk.gamma_g2, vk.delta_g2):
        assert g2_from_bytes(wire[offset : offset + 128]) == expected
        offset += 128
    for expected_ic in vk.ic:
        assert g1_from_bytes(wire[offset : offset + 64]) == expected_ic
        offset += 64
    assert offset == len(wire)


def test_groth16_vk_bytes_mutation_fuzz(groth16_material) -> None:
    _, keys, _ = groth16_material
    vk = keys.verifying_key
    wire = vk.to_bytes()
    rng = random.Random(0x9408)
    rejected = 0
    for _ in range(CASES):
        position = rng.randrange(len(wire))
        flipped = bytearray(wire)
        flipped[position] ^= 1 << rng.randrange(8)
        chunk_start = min(position - position % 64, len(wire) - 64)
        # Re-parse the 64-byte-aligned chunk containing the flip with
        # the matching point codec; it must reject or differ.
        if 64 <= position < 64 + 3 * 128:
            start = 64 + ((position - 64) // 128) * 128
            try:
                parsed = g2_from_bytes(bytes(flipped[start : start + 128]))
            except ValueError:
                rejected += 1
                continue
            assert parsed != g2_from_bytes(wire[start : start + 128])
        else:
            start = chunk_start if position >= 64 + 3 * 128 or position < 64 else 0
            try:
                parsed = g1_from_bytes(bytes(flipped[start : start + 64]))
            except ValueError:
                rejected += 1
                continue
            assert parsed != g1_from_bytes(wire[start : start + 64])
    assert rejected > 0


# ----- engine checkpoint codec ------------------------------------------------

from repro.errors import CheckpointError
from repro.core.checkpoint import (
    EngineCheckpoint,
    PendingTxSnapshot,
    TaskSnapshot,
    decode_checkpoint,
    encode_checkpoint,
)

#: Every state a runner can be snapshotted in (PROVING maps to
#: collecting at snapshot time, so it is not a wire state).
_CHECKPOINT_STATES = (
    "funding", "publishing", "funding-workers", "submitting",
    "collecting", "rewarding", "settling", "quarantined", "done",
)
_CHECKPOINT_MODES = ("honest", "stonewall", "vanish")
_CHECKPOINT_STATUSES = ("", "completed", "defaulted", "aborted", "failed")


def _random_pending_snapshot(rng: random.Random) -> PendingTxSnapshot:
    return PendingTxSnapshot(
        nonce=rng.randrange(32),
        gas_price=rng.randrange(1, 200),
        gas_limit=rng.randrange(21_000, 30_000_000),
        to=rng.randbytes(20) if rng.random() < 0.8 else None,
        value=rng.randrange(10**9),
        data=rng.randbytes(rng.randrange(64)),
        chain_id=rng.randrange(1, 4),
        private_key=rng.randrange(1, 2**250) if rng.random() < 0.9 else 0,
        sender=rng.randbytes(20),
        tx_hashes=[rng.randbytes(32) for _ in range(rng.randrange(4))],
        broadcast_height=rng.randrange(64),
        attempts=rng.randrange(1, 6),
    )


def _random_task_snapshot(rng: random.Random, state: str) -> TaskSnapshot:
    workers = rng.randrange(1, 5)
    answers = [
        [rng.randrange(4)] if rng.random() < 0.8 else None
        for _ in range(workers)
    ]
    present = [i for i, a in enumerate(answers) if a is not None]
    return TaskSnapshot(
        index=rng.randrange(64),
        state=state,
        requester_identity=f"requester-{rng.randrange(16)}",
        worker_identities=[f"worker-{i}" for i in range(workers)],
        answers=answers,
        policy_descriptor={"name": "majority-vote",
                           "num_choices": rng.randrange(2, 8)},
        description=f"fuzz-task-{rng.randrange(100)}",
        budget=rng.randrange(100, 10_000),
        answer_window=rng.randrange(4, 64),
        instruction_window=rng.randrange(4, 64),
        rsa_bits=rng.choice((512, 1024)),
        audit=rng.random() < 0.3,
        requester_mode=rng.choice(_CHECKPOINT_MODES),
        equivocators=[rng.choice(present)] if present and rng.random() < 0.3
        else [],
        task_index=rng.randrange(8),
        address=rng.randbytes(20) if state != "funding" else b"",
        account_nonce=rng.randrange(8),
        phase_blocks={s: rng.randrange(64) for s in
                      _CHECKPOINT_STATES[: rng.randrange(5)]},
        phase_times={s: rng.randrange(10**6) for s in
                     _CHECKPOINT_STATES[: rng.randrange(5)]},
        rewards=[rng.randrange(1_000) for _ in range(rng.randrange(4))],
        status=rng.choice(_CHECKPOINT_STATUSES),
        quarantined=state == "quarantined",
        quarantine_reason="circuit breaker open" if state == "quarantined"
        else "",
        wave=[_random_pending_snapshot(rng) for _ in range(rng.randrange(3))],
        byzantine_wave=[_random_pending_snapshot(rng)
                        for _ in range(rng.randrange(2))],
        failures=rng.randrange(5),
        settling=state in ("settling", "quarantined") and rng.random() < 0.5,
    )


def _random_checkpoint(rng: random.Random) -> EngineCheckpoint:
    # Cycle through the state list so every phase appears across the
    # sweep regardless of task-count draws.
    base = rng.randrange(len(_CHECKPOINT_STATES))
    tasks = [
        _random_task_snapshot(
            rng, _CHECKPOINT_STATES[(base + i) % len(_CHECKPOINT_STATES)]
        )
        for i in range(rng.randrange(1, 6))
    ]
    return EngineCheckpoint(
        round=rng.randrange(512),
        head_height=rng.randrange(512),
        head_hash=rng.randbytes(32),
        nonce_reservations={rng.randbytes(20): rng.randrange(16)
                            for _ in range(rng.randrange(6))},
        janitor_key=rng.randrange(1, 2**250) if rng.random() < 0.5 else 0,
        tasks=tasks,
    )


def test_checkpoint_roundtrip_fuzz() -> None:
    rng = random.Random(0xC4E7)
    states_seen = set()
    for _ in range(50):
        checkpoint = _random_checkpoint(rng)
        states_seen.update(t.state for t in checkpoint.tasks)
        assert decode_checkpoint(encode_checkpoint(checkpoint)) == checkpoint
    # The sweep must have covered every snapshottable task state.
    assert states_seen == set(_CHECKPOINT_STATES)


def test_checkpoint_mutation_fuzz() -> None:
    """Any damage — flip, truncation, insertion — is rejected loudly.

    Unlike the structural codecs above, a checkpoint is checksummed
    end to end, so there is no 'decodes to a different value' branch:
    every mutation must raise CheckpointError, never a stray exception
    and never a silent wrong restore.
    """
    rng = random.Random(0xF00D)
    wire = encode_checkpoint(_random_checkpoint(rng))
    for _ in range(50):
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        with pytest.raises(CheckpointError):
            decode_checkpoint(mutated)


def test_checkpoint_truncation_fuzz() -> None:
    rng = random.Random(0xCAFE)
    wire = encode_checkpoint(_random_checkpoint(rng))
    for cut in sorted(rng.sample(range(len(wire)), 50)):
        with pytest.raises(CheckpointError):
            decode_checkpoint(wire[:cut])


# ----- canonical field/point encodings (malleability regression) --------------
#
# Every 32-byte limb in the G1/G2/proof/vk codecs must have exactly one
# accepted encoding.  Before the fix, limbs >= q were silently reduced,
# so x and x+q decoded to the SAME element from DIFFERENT bytes — an
# encoding-malleability hole wherever proof bytes are hashed, signed,
# or deduplicated.  These vectors pin the strict behaviour.


def _noncanonical_limbs(value: int):
    """The classic over-field encodings of ``value``: +q, and all-0xFF."""
    from repro.zksnark.bn128.fq import FIELD_MODULUS

    vectors = [b"\xff" * 32]
    if value + FIELD_MODULUS < 1 << 256:
        vectors.append((value + FIELD_MODULUS).to_bytes(32, "big"))
    return vectors


def test_fq_from_bytes_rejects_noncanonical() -> None:
    from repro.zksnark.bn128.fq import FIELD_MODULUS, fq_from_bytes

    assert fq_from_bytes((FIELD_MODULUS - 1).to_bytes(32, "big")) == FIELD_MODULUS - 1
    for bad in (FIELD_MODULUS, FIELD_MODULUS + 1, (1 << 256) - 1):
        with pytest.raises(ValueError):
            fq_from_bytes(bad.to_bytes(32, "big"))
    with pytest.raises(ValueError):
        fq_from_bytes(b"\x00" * 31)  # wrong length


def test_fq2_from_bytes_rejects_noncanonical_limbs() -> None:
    from repro.zksnark.bn128.fq import FIELD_MODULUS
    from repro.zksnark.bn128.fq2 import FQ2

    element = FQ2(5, 7)
    wire = element.to_bytes()
    assert FQ2.from_bytes(wire) == element
    for limb_start in (0, 32):
        value = int.from_bytes(wire[limb_start : limb_start + 32], "big")
        for bad_limb in [
            FIELD_MODULUS.to_bytes(32, "big"),
            (FIELD_MODULUS + 1).to_bytes(32, "big"),
            *_noncanonical_limbs(value),
        ]:
            mutated = wire[:limb_start] + bad_limb + wire[limb_start + 32 :]
            with pytest.raises(ValueError):
                FQ2.from_bytes(mutated)


def test_g1_from_bytes_rejects_noncanonical_limbs() -> None:
    point = g1_mul(G1, 0xA11CE)
    wire = g1_to_bytes(point)
    assert g1_from_bytes(wire) == point
    # x+q (resp. y+q) encodes the same curve point in non-canonical
    # bytes — exactly the malleability vector; must now be rejected.
    for limb_start in (0, 32):
        value = int.from_bytes(wire[limb_start : limb_start + 32], "big")
        for bad_limb in _noncanonical_limbs(value):
            mutated = wire[:limb_start] + bad_limb + wire[limb_start + 32 :]
            with pytest.raises(ValueError):
                g1_from_bytes(mutated)


def test_g2_from_bytes_rejects_noncanonical_limbs() -> None:
    point = g2_mul(G2, 0xB0B)
    wire = g2_to_bytes(point)
    assert g2_from_bytes(wire) == point
    for limb_start in (0, 32, 64, 96):
        value = int.from_bytes(wire[limb_start : limb_start + 32], "big")
        for bad_limb in _noncanonical_limbs(value):
            mutated = wire[:limb_start] + bad_limb + wire[limb_start + 32 :]
            with pytest.raises(ValueError):
                g2_from_bytes(mutated)


def test_groth16_proof_rejects_noncanonical_encoding(groth16_material) -> None:
    """A proof re-encoded with a +q limb must not verify.

    This is the end-to-end consequence of limb canonicality: without
    it, one valid proof has many byte representations that all verify,
    so any dedup/replay protection keyed on proof bytes is bypassable.
    """
    backend, keys, proof = groth16_material
    from repro.zksnark.bn128.fq import FIELD_MODULUS

    for limb_start in range(0, len(proof.payload), 32):
        value = int.from_bytes(proof.payload[limb_start : limb_start + 32], "big")
        if value + FIELD_MODULUS >= 1 << 256:
            continue
        mutated = (
            proof.payload[:limb_start]
            + (value + FIELD_MODULUS).to_bytes(32, "big")
            + proof.payload[limb_start + 32 :]
        )
        bad = Proof(backend=proof.backend, payload=mutated)
        assert backend.verify(keys.verifying_key, [16], bad) is False


def test_groth16_vk_bytes_reject_noncanonical_limbs(groth16_material) -> None:
    from repro.zksnark.bn128.fq import FIELD_MODULUS

    _, keys, _ = groth16_material
    wire = keys.verifying_key.to_bytes()
    # alpha G1 occupies the first 64 bytes; beta G2 the next 128.
    for limb_start, codec, width in ((0, g1_from_bytes, 64), (64, g2_from_bytes, 128)):
        chunk = wire[limb_start : limb_start + width]
        value = int.from_bytes(chunk[:32], "big")
        if value + FIELD_MODULUS >= 1 << 256:
            continue
        mutated = (value + FIELD_MODULUS).to_bytes(32, "big") + chunk[32:]
        with pytest.raises(ValueError):
            codec(mutated)


# ----- marketplace wire formats (bid / escrow / verdict / reputation) ----------------
#
# All four ride the ZLCP-style checksummed frame, so ANY mutation —
# bit flip, truncation, insertion — must surface as ValueError; a
# mutated frame never silently decodes (the sha256 trailer would have
# to collide).

from repro.contracts.marketplace import Bid, DisputeVerdict, EscrowState
from repro.core.reputation import MAX_SCORE, ReputationRecord, ReputationRegistry


def _random_bid(rng: random.Random) -> Bid:
    return Bid(
        listing_id=rng.randrange(1 << 32),
        bidder=rng.randbytes(20),
        tag=rng.getrandbits(rng.randrange(1, 254)),
        stake=rng.randrange(1, 1 << 48),
        block=rng.randrange(1 << 32),
    )


def _random_escrow(rng: random.Random) -> EscrowState:
    return EscrowState(
        listing_id=rng.randrange(1 << 32),
        bonus=rng.randrange(1 << 32),
        validator_reward=rng.randrange(1 << 24),
        stakes=rng.randrange(1 << 40),
        dispute_bond=rng.randrange(1 << 24),
        disbursed=rng.randrange(1 << 40),
        settled=rng.random() < 0.5,
    )


def _random_verdict(rng: random.Random) -> DisputeVerdict:
    alphabet = "abcdef .-é中"
    return DisputeVerdict(
        listing_id=rng.randrange(1 << 32),
        upheld=rng.random() < 0.5,
        worker_share_ppm=rng.randrange(1_000_001),
        rationale="".join(rng.choice(alphabet) for _ in range(rng.randrange(48))),
    )


def _random_record(rng: random.Random) -> ReputationRecord:
    return ReputationRecord(
        tag=rng.getrandbits(rng.randrange(1, 254)),
        score=rng.randrange(MAX_SCORE + 1),
        completed=rng.randrange(1 << 16),
        defaulted=rng.randrange(1 << 16),
        disputes_lost=rng.randrange(1 << 16),
        last_block=rng.randrange(1 << 32),
    )


_MARKET_CODECS = [
    ("bid", _random_bid, Bid.from_wire),
    ("escrow", _random_escrow, EscrowState.from_wire),
    ("verdict", _random_verdict, DisputeVerdict.from_wire),
    ("reputation", _random_record, ReputationRecord.from_wire),
]


@pytest.mark.parametrize(
    "sampler,parser", [(s, p) for _, s, p in _MARKET_CODECS],
    ids=[name for name, _, _ in _MARKET_CODECS],
)
def test_market_wire_roundtrip_fuzz(sampler, parser) -> None:
    rng = random.Random(0xB1D)
    for _ in range(CASES):
        value = sampler(rng)
        assert parser(value.to_wire()) == value


@pytest.mark.parametrize(
    "sampler,parser", [(s, p) for _, s, p in _MARKET_CODECS],
    ids=[name for name, _, _ in _MARKET_CODECS],
)
def test_market_wire_mutation_fuzz(sampler, parser) -> None:
    rng = random.Random(0xD15)
    for _ in range(CASES):
        wire = sampler(rng).to_wire()
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        with pytest.raises(ValueError):
            parser(mutated)


def test_market_wire_rejects_truncation_prefixes() -> None:
    """Every proper prefix of a valid frame is rejected (no partial reads)."""
    rng = random.Random(0x7A9)
    for sampler, parser in [
        (_random_bid, Bid.from_wire),
        (_random_verdict, DisputeVerdict.from_wire),
    ]:
        wire = sampler(rng).to_wire()
        for cut in range(len(wire)):
            with pytest.raises(ValueError):
                parser(wire[:cut])


def test_market_wire_rejects_cross_codec_frames() -> None:
    """A frame of one type never decodes as another (magic mismatch)."""
    rng = random.Random(0xC0DE)
    wires = {name: sampler(rng).to_wire() for name, sampler, _ in _MARKET_CODECS}
    for name, _, parser in _MARKET_CODECS:
        for other, wire in wires.items():
            if other == name:
                continue
            with pytest.raises(ValueError):
                parser(wire)


def test_reputation_registry_wire_roundtrip_and_mutation() -> None:
    rng = random.Random(0x12E9)
    for _ in range(CASES // 4):
        registry = ReputationRegistry(half_life=rng.randrange(1, 512))
        for _ in range(rng.randrange(6)):
            record = _random_record(rng)
            registry._records[record.tag] = record.to_storage()
        wire = registry.to_wire()
        rebuilt = ReputationRegistry.from_wire(wire)
        assert rebuilt.half_life == registry.half_life
        assert rebuilt.tags() == registry.tags()
        assert rebuilt.to_wire() == wire
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        with pytest.raises(ValueError):
            ReputationRegistry.from_wire(mutated)


# ----- cross-shard bridge wire formats (message / anchor / beacon block) --------------
#
# The sharding bridge codecs ride the same checksummed frame, with the
# extra property that a forged or bit-flipped frame failing open would
# mint value out of thin air on the destination shard — so every
# mutation must raise ValueError, and no frame may parse as a sibling
# codec.

from repro.chain.sharding import BeaconBlock, ShardAnchor, XShardMessage


def _random_xshard_message(rng: random.Random) -> XShardMessage:
    shards = rng.randrange(2, 16)
    source = rng.randrange(shards)
    dest = (source + rng.randrange(1, shards)) % shards
    return XShardMessage(
        source_shard=source,
        dest_shard=dest,
        seq=rng.randrange(1 << 32),
        source_block=rng.randrange(1 << 32),
        sender=rng.randbytes(20),
        recipient=rng.randbytes(20),
        amount=rng.randrange(1, 1 << 64),
    )


def _random_shard_anchor(rng: random.Random) -> ShardAnchor:
    return ShardAnchor(
        shard=rng.randrange(16),
        number=rng.randrange(1 << 32),
        block_hash=rng.randbytes(32),
        receipts_root=rng.randbytes(32),
        state_root=rng.randbytes(32),
    )


def _random_beacon_block(rng: random.Random) -> BeaconBlock:
    anchors = tuple(
        (_random_shard_anchor(rng).to_wire(), rng.randbytes(65))
        for _ in range(rng.randrange(1, 5))
    )
    return BeaconBlock(
        number=rng.randrange(1 << 32),
        parent=rng.randbytes(32),
        anchors=anchors,
    )


_XSHARD_CODECS = [
    ("xshard-message", _random_xshard_message, XShardMessage.from_wire),
    ("shard-anchor", _random_shard_anchor, ShardAnchor.from_wire),
    ("beacon-block", _random_beacon_block, BeaconBlock.from_wire),
]


@pytest.mark.parametrize(
    "sampler,parser", [(s, p) for _, s, p in _XSHARD_CODECS],
    ids=[name for name, _, _ in _XSHARD_CODECS],
)
def test_xshard_wire_roundtrip_fuzz(sampler, parser) -> None:
    rng = random.Random(0x5A4D)
    for _ in range(CASES):
        value = sampler(rng)
        assert parser(value.to_wire()) == value


@pytest.mark.parametrize(
    "sampler,parser", [(s, p) for _, s, p in _XSHARD_CODECS],
    ids=[name for name, _, _ in _XSHARD_CODECS],
)
def test_xshard_wire_mutation_fuzz(sampler, parser) -> None:
    rng = random.Random(0xF0E5)
    for _ in range(CASES):
        wire = sampler(rng).to_wire()
        mutated = _mutate(rng, wire)
        if mutated == wire:
            continue
        with pytest.raises(ValueError):
            parser(mutated)


def test_xshard_wire_rejects_truncation_prefixes() -> None:
    rng = random.Random(0x7C21)
    for _, sampler, parser in _XSHARD_CODECS:
        wire = sampler(rng).to_wire()
        for cut in range(len(wire)):
            with pytest.raises(ValueError):
                parser(wire[:cut])


def test_xshard_wire_rejects_cross_codec_frames() -> None:
    """No bridge frame parses as a sibling codec, nor as a market frame."""
    rng = random.Random(0xAB1E)
    wires = {name: sampler(rng).to_wire() for name, sampler, _ in _XSHARD_CODECS}
    wires["bid"] = _random_bid(rng).to_wire()
    for name, _, parser in _XSHARD_CODECS:
        for other, wire in wires.items():
            if other == name:
                continue
            with pytest.raises(ValueError):
                parser(wire)


def test_xshard_message_rejects_semantic_junk() -> None:
    """Structurally valid frames with illegal field values are refused."""
    good = XShardMessage(0, 1, 5, 9, b"\x01" * 20, b"\x02" * 20, 77)

    def reframe(fields):
        from repro.serialization import framed_encode

        return framed_encode(b"ZLXM", 1, fields)

    base = [0, 1, 5, 9, b"\x01" * 20, b"\x02" * 20, 77]
    assert XShardMessage.from_wire(reframe(base)) == good
    bad_variants = [
        base[:6],                                  # missing field
        base + [0],                                # extra field
        [1, 1, 5, 9, base[4], base[5], 77],        # source == dest
        [0, 1, 5, 9, b"\x01" * 19, base[5], 77],   # short address
        [0, 1, 5, 9, base[4], base[5], 0],         # zero amount
        [0, 1, 5, 9, base[4], base[5], -3],        # negative amount
        [0, 1, -1, 9, base[4], base[5], 77],       # negative seq
        ["0", 1, 5, 9, base[4], base[5], 77],      # stringly shard
    ]
    for fields in bad_variants:
        with pytest.raises(ValueError):
            XShardMessage.from_wire(reframe(fields))
