"""Shared fixtures.

Expensive artifacts (SNARK setups, bootstrapped systems) are
session-scoped where tests only read them; anything tests mutate is
function-scoped.
"""

from __future__ import annotations

import pytest

import repro.contracts  # noqa: F401  (side effect: registers contract classes)
from repro.profiles import TEST
from repro.zksnark.gadgets.mimc import MiMCParameters


@pytest.fixture(scope="session")
def mimc7() -> MiMCParameters:
    """The TEST-profile MiMC parameters (7 rounds)."""
    return MiMCParameters.for_rounds(TEST.mimc_rounds)


@pytest.fixture(scope="session")
def mock_auth_system():
    """A merkle-mode anonymous-auth setup on the ideal backend.

    Session-scoped and shared: tests must not register identities here
    (use ``fresh_auth_system`` for that); they may freely create users,
    attestations, and verify.
    """
    from repro.anonauth import setup

    params, authority = setup(
        profile="test", cert_mode="merkle", backend_name="mock", seed=b"conftest"
    )
    return params, authority


@pytest.fixture
def fresh_auth_system():
    """A private merkle-mode auth setup (mock backend) per test."""
    from repro.anonauth import setup

    return setup(
        profile="test", cert_mode="merkle", backend_name="mock", seed=b"fresh"
    )


@pytest.fixture(scope="session")
def groth16_auth_system():
    """A merkle-mode auth setup on the REAL Groth16 backend (slow-ish)."""
    from repro.anonauth import setup

    return setup(
        profile="test", cert_mode="merkle", backend_name="groth16", seed=b"g16"
    )


@pytest.fixture
def zebra_system():
    """A freshly bootstrapped ZebraLancer deployment (mock backend)."""
    from repro.core import ZebraLancerSystem

    return ZebraLancerSystem(profile="test", cert_mode="merkle", backend_name="mock")


@pytest.fixture
def testnet():
    """A bare 2-miner + 2-full-node test net."""
    from repro.chain import Testnet

    return Testnet()
