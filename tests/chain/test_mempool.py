"""Mempool: visibility, ordering policy, per-sender nonce repair."""

from __future__ import annotations

import pytest

from repro.crypto import ecdsa
from repro.errors import InvalidTransactionError
from repro.chain.mempool import Mempool, default_ordering
from repro.chain.transaction import SignedTransaction, Transaction

ALICE = ecdsa.ECDSAKeyPair.from_seed(b"mp-alice")
BOB = ecdsa.ECDSAKeyPair.from_seed(b"mp-bob")


def _tx(key, nonce: int, gas_price: int = 1) -> SignedTransaction:
    return Transaction(
        nonce=nonce, gas_price=gas_price, gas_limit=30_000,
        to=b"\x01" * 20, value=nonce + 1,
    ).sign(key)


def test_add_and_pending_visibility() -> None:
    pool = Mempool()
    tx = _tx(ALICE, 0)
    assert pool.add(tx)
    assert pool.contains(tx.tx_hash)
    assert pool.pending() == [tx]  # public: anyone can read it


def test_duplicates_ignored() -> None:
    pool = Mempool()
    tx = _tx(ALICE, 0)
    assert pool.add(tx)
    assert not pool.add(tx)
    assert len(pool) == 1


def test_remove_and_drop_included() -> None:
    pool = Mempool()
    txs = [_tx(ALICE, n) for n in range(3)]
    for tx in txs:
        pool.add(tx)
    pool.drop_included(txs[:2])
    assert pool.pending() == [txs[2]]


def test_default_ordering_prefers_gas_price() -> None:
    cheap = _tx(ALICE, 0, gas_price=1)
    rich = _tx(BOB, 0, gas_price=9)
    assert default_ordering([cheap, rich])[0] is rich


def test_select_respects_sender_nonce_order() -> None:
    pool = Mempool()
    # Alice's nonce-1 tx pays more than her nonce-0 tx; selection must
    # still deliver nonce 0 first.
    first = _tx(ALICE, 0, gas_price=1)
    second = _tx(ALICE, 1, gas_price=50)
    pool.add(second)
    pool.add(first)
    selected = pool.select_for_block(gas_limit=10**6)
    positions = {stx.transaction.nonce: i for i, stx in enumerate(selected)}
    assert positions[0] < positions[1]


def test_select_respects_block_gas_limit() -> None:
    pool = Mempool()
    for n in range(5):
        pool.add(_tx(ALICE, n))
    selected = pool.select_for_block(gas_limit=65_000)  # fits two 30k txs
    assert len(selected) == 2


def test_custom_ordering_hook() -> None:
    """The adversarial reordering surface: a miner (or the network
    adversary) may impose any order over not-yet-mined transactions."""
    pool = Mempool()
    txs = [_tx(ALICE, 0), _tx(BOB, 0, gas_price=100)]
    for tx in txs:
        pool.add(tx)
    pool.ordering = lambda pending: sorted(
        pending, key=lambda stx: stx.sender  # arbitrary adversarial order
    )
    selected = pool.select_for_block(gas_limit=10**6)
    assert [stx.sender for stx in selected] == sorted(stx.sender for stx in txs)


def test_unsigned_rejected() -> None:
    pool = Mempool()
    tx = _tx(ALICE, 0)
    forged = SignedTransaction(
        transaction=Transaction(nonce=9, gas_price=1, gas_limit=30_000,
                                to=b"\x02" * 20, value=5),
        signature=tx.signature,
    )
    # forged recovers to a different sender but is structurally "signed";
    # a truly broken signature must raise.
    import dataclasses

    broken = dataclasses.replace(
        tx, signature=type(tx.signature)(r=0, s=0, v=0)
    )
    with pytest.raises(InvalidTransactionError):
        pool.add(broken)


def test_arrival_list_stays_bounded_under_churn() -> None:
    """Soak: removed/included hashes must be compacted, not retained.

    The arrival list may temporarily hold removed hashes, but it can
    never exceed twice the live pool (plus a small constant).
    """
    pool = Mempool()
    for round_number in range(50):
        txs = [_tx(ALICE, round_number * 20 + i) for i in range(20)]
        for tx in txs:
            pool.add(tx)
        for tx in txs:
            pool.remove(tx.tx_hash)
        assert pool.arrival_backlog <= 2 * len(pool) + 33
    assert len(pool) == 0
    assert pool.arrival_backlog <= 33


def test_prune_stale_drops_passed_nonces() -> None:
    from repro.chain.state import WorldState

    pool = Mempool()
    stale = _tx(ALICE, 0)
    live = _tx(ALICE, 2)
    pool.add(stale)
    pool.add(live)
    state = WorldState()
    state.credit(ALICE.address(), 10**9)
    state.account(ALICE.address()).nonce = 2
    assert pool.prune_stale(state) == 1
    assert not pool.contains(stale.tx_hash)
    assert pool.contains(live.tx_hash)


# ----- replace-by-fee slots and nonce-gap anchoring (engine regressions) -------------


def test_same_nonce_slot_replaced_only_by_higher_gas_price() -> None:
    """(sender, nonce) is one slot: equal-or-lower price is rejected,
    a strictly higher price evicts the incumbent (the gas-bumped retry)."""
    pool = Mempool()
    original = _tx(ALICE, 0, gas_price=5)
    assert pool.add(original)
    assert not pool.add(_tx(ALICE, 0, gas_price=5))  # same price: rejected
    assert not pool.add(_tx(ALICE, 0, gas_price=4))  # lower: rejected
    assert pool.contains(original.tx_hash)
    bumped = _tx(ALICE, 0, gas_price=6)
    assert pool.add(bumped)
    assert not pool.contains(original.tx_hash)  # incumbent evicted
    assert pool.contains(bumped.tx_hash)
    assert len(pool) == 1
    # Selection never returns two txs for one slot.
    selected = pool.select_for_block(gas_limit=10**6)
    assert [stx.tx_hash for stx in selected] == [bumped.tx_hash]


def test_remove_frees_the_slot() -> None:
    pool = Mempool()
    first = _tx(ALICE, 0, gas_price=5)
    pool.add(first)
    pool.remove(first.tx_hash)
    # Same nonce, same price: admissible again — the slot is free.
    assert pool.add(_tx(ALICE, 0, gas_price=5))


def test_select_with_state_stops_at_nonce_gap() -> None:
    """Given the head state, selection anchors each sender's queue at
    the state nonce and cuts at the first gap: nonces 1 and 3 while the
    account sits at 0 yield an empty block instead of doomed picks."""
    from repro.chain.state import WorldState

    pool = Mempool()
    pool.add(_tx(ALICE, 1))
    pool.add(_tx(ALICE, 3))
    state = WorldState()
    state.credit(ALICE.address(), 10**9)
    assert pool.select_for_block(gas_limit=10**6, state=state) == []
    # Filling the gap unlocks the contiguous prefix (0, 1) but not 3.
    pool.add(_tx(ALICE, 0))
    nonces = [
        stx.transaction.nonce
        for stx in pool.select_for_block(gas_limit=10**6, state=state)
    ]
    assert nonces == [0, 1]


def test_select_with_state_skips_stale_nonces() -> None:
    from repro.chain.state import WorldState

    pool = Mempool()
    pool.add(_tx(ALICE, 0))
    pool.add(_tx(ALICE, 1))
    state = WorldState()
    state.credit(ALICE.address(), 10**9)
    state.account(ALICE.address()).nonce = 1  # nonce 0 already included
    nonces = [
        stx.transaction.nonce
        for stx in pool.select_for_block(gas_limit=10**6, state=state)
    ]
    assert nonces == [1]


# ----- bounded capacity / fee-aware admission ---------------------------------


def test_capacity_rejects_cheap_newcomer_when_full() -> None:
    pool = Mempool(capacity=2)
    assert pool.add(_tx(ALICE, 0, gas_price=5))
    assert pool.add(_tx(ALICE, 1, gas_price=5))
    # Equal price does not displace an incumbent: the newcomer is the
    # marginal traffic and is turned away at the door.
    assert not pool.add(_tx(BOB, 0, gas_price=5))
    assert len(pool) == 2
    assert pool.admission_rejections == 1
    assert pool.fee_evictions == 0


def test_capacity_evicts_cheapest_for_a_better_payer() -> None:
    pool = Mempool(capacity=2)
    cheap = _tx(ALICE, 0, gas_price=1)
    mid = _tx(ALICE, 1, gas_price=5)
    pool.add(cheap)
    pool.add(mid)
    rich = _tx(BOB, 0, gas_price=9)
    assert pool.add(rich)
    assert len(pool) == 2
    assert not pool.contains(cheap.tx_hash)
    assert pool.contains(rich.tx_hash)
    assert pool.fee_evictions == 1


def test_capacity_eviction_prefers_newest_of_equal_price() -> None:
    pool = Mempool(capacity=2)
    older = _tx(ALICE, 0, gas_price=1)
    newer = _tx(BOB, 0, gas_price=1)
    pool.add(older)
    pool.add(newer)
    assert pool.add(_tx(ALICE, 1, gas_price=3))
    # The older copy of equal-priced traffic survives the squeeze.
    assert pool.contains(older.tx_hash)
    assert not pool.contains(newer.tx_hash)


def test_capacity_does_not_break_rbf_replacement() -> None:
    pool = Mempool(capacity=1)
    first = _tx(ALICE, 0, gas_price=2)
    pool.add(first)
    # Same slot, higher fee: replace-by-fee frees the slot before the
    # capacity check, so a full pool still accepts the bump.
    bumped = _tx(ALICE, 0, gas_price=4)
    assert pool.add(bumped)
    assert len(pool) == 1
    assert pool.contains(bumped.tx_hash)
    assert pool.fee_evictions == 0


def test_capacity_must_be_positive() -> None:
    with pytest.raises(ValueError):
        Mempool(capacity=0)
