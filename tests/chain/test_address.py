"""Address derivation rules."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.chain.address import (
    ADDRESS_LENGTH,
    ZERO_ADDRESS,
    contract_address,
    format_address,
    is_address,
)


def test_contract_address_shape() -> None:
    address = contract_address(b"\x01" * 20, 0)
    assert len(address) == ADDRESS_LENGTH
    assert is_address(address)


def test_contract_address_deterministic_and_predictable() -> None:
    """Footnote 10: α_C is computable before deployment."""
    assert contract_address(b"\x01" * 20, 0) == contract_address(b"\x01" * 20, 0)


@given(st.binary(min_size=20, max_size=20),
       st.integers(min_value=0, max_value=10))
def test_contract_address_injective_in_nonce(sender: bytes, nonce: int) -> None:
    assert contract_address(sender, nonce) != contract_address(sender, nonce + 1)


@given(st.binary(min_size=20, max_size=20), st.binary(min_size=20, max_size=20))
def test_contract_address_sender_sensitivity(a: bytes, b: bytes) -> None:
    if a != b:
        assert contract_address(a, 0) != contract_address(b, 0)


def test_is_address() -> None:
    assert is_address(ZERO_ADDRESS)
    assert not is_address(b"\x00" * 19)
    assert not is_address("0x" + "00" * 20)  # strings are not addresses


def test_format_address() -> None:
    assert format_address(b"\xab" * 20) == "0x" + "ab" * 20
