"""VM execution semantics: transfers, contracts, reverts, gas settlement."""

from __future__ import annotations

import pytest

from repro.crypto import ecdsa
from repro.errors import InvalidTransactionError
from repro.chain.address import contract_address
from repro.chain.contract import BlockContext, Contract, ContractRegistry, external, view
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction, encode_call, encode_create
from repro.chain.vm import VM

SENDER = ecdsa.ECDSAKeyPair.from_seed(b"vm-sender")
OTHER = ecdsa.ECDSAKeyPair.from_seed(b"vm-other")
COINBASE = b"\xcc" * 20
BLOCK = BlockContext(number=1, timestamp=1_500_000_100, coinbase=COINBASE)


@ContractRegistry.register
class VaultForTests(Contract):
    contract_name = "VaultForTests"

    def init(self, owner: bytes) -> None:
        self.storage["owner"] = owner
        self.storage["notes"] = []

    @external
    def deposit_note(self, note: str) -> int:
        notes = self.storage["notes"]
        notes.append(note)
        self.storage["notes"] = notes
        self.emit("NoteAdded", note=note)
        return len(notes)

    @external
    def withdraw(self, to: bytes, amount: int) -> None:
        self.require(self.msg_sender == self.storage["owner"], "not owner")
        self.require(self.transfer(to, amount), "underfunded")

    @external
    def always_reverts(self) -> None:
        self.storage["poison"] = True  # must be rolled back
        self.require(False, "nope")

    @external
    def chained(self, target: bytes) -> int:
        return self.call_contract(target, "deposit_note", ["from-peer"])

    @view
    def note_count(self) -> int:
        return len(self.storage["notes"])


def _fresh() -> tuple[VM, WorldState]:
    vm = VM()
    state = WorldState()
    state.credit(SENDER.address(), 10**15)
    state.credit(OTHER.address(), 10**15)
    return vm, state


def _run(vm, state, tx, key=SENDER):
    return vm.execute_transaction(state, tx.sign(key), BLOCK)


def _deploy(vm, state, value=0, nonce=0):
    tx = Transaction(
        nonce=nonce, gas_price=1, gas_limit=1_000_000, to=None, value=value,
        data=encode_create("VaultForTests", [SENDER.address()]),
    )
    receipt = _run(vm, state, tx)
    assert receipt.success, receipt.error
    return receipt.contract_address


def test_plain_transfer() -> None:
    vm, state = _fresh()
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=OTHER.address(), value=1_234)
    receipt = _run(vm, state, tx)
    assert receipt.success
    assert state.balance_of(OTHER.address()) == 10**15 + 1_234


def test_gas_fee_settlement() -> None:
    vm, state = _fresh()
    before = state.balance_of(SENDER.address())
    tx = Transaction(nonce=0, gas_price=3, gas_limit=50_000,
                     to=OTHER.address(), value=0)
    receipt = _run(vm, state, tx)
    fee = 3 * receipt.gas_used
    assert state.balance_of(SENDER.address()) == before - fee
    assert state.balance_of(COINBASE) == fee


def test_nonce_increments_even_on_revert() -> None:
    vm, state = _fresh()
    address = _deploy(vm, state)
    tx = Transaction(nonce=1, gas_price=1, gas_limit=500_000, to=address,
                     value=0, data=encode_call("always_reverts", []))
    receipt = _run(vm, state, tx)
    assert not receipt.success
    assert state.nonce_of(SENDER.address()) == 2


def test_wrong_nonce_rejected() -> None:
    vm, state = _fresh()
    tx = Transaction(nonce=5, gas_price=1, gas_limit=21_000,
                     to=OTHER.address(), value=1)
    with pytest.raises(InvalidTransactionError):
        _run(vm, state, tx)


def test_insufficient_balance_rejected() -> None:
    vm, state = _fresh()
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=OTHER.address(), value=10**18)
    with pytest.raises(InvalidTransactionError):
        _run(vm, state, tx)


def test_gas_limit_below_intrinsic_rejected() -> None:
    vm, state = _fresh()
    tx = Transaction(nonce=0, gas_price=1, gas_limit=20_000,
                     to=OTHER.address(), value=1)
    with pytest.raises(InvalidTransactionError):
        _run(vm, state, tx)


def test_wrong_chain_id_rejected() -> None:
    vm, state = _fresh()
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=OTHER.address(), value=1, chain_id=999)
    with pytest.raises(InvalidTransactionError):
        _run(vm, state, tx)


def test_contract_deployment_address_rule() -> None:
    vm, state = _fresh()
    address = _deploy(vm, state, value=777)
    assert address == contract_address(SENDER.address(), 0)
    assert state.balance_of(address) == 777
    assert state.account(address).contract_name == "VaultForTests"


def test_method_call_and_events() -> None:
    vm, state = _fresh()
    address = _deploy(vm, state)
    tx = Transaction(nonce=1, gas_price=1, gas_limit=500_000, to=address,
                     value=0, data=encode_call("deposit_note", ["hello"]))
    receipt = _run(vm, state, tx)
    assert receipt.success
    assert receipt.return_value == 1
    assert receipt.logs[0].event == "NoteAdded"
    assert receipt.logs[0].fields == {"note": "hello"}


def test_revert_rolls_back_storage_and_logs() -> None:
    vm, state = _fresh()
    address = _deploy(vm, state)
    tx = Transaction(nonce=1, gas_price=1, gas_limit=500_000, to=address,
                     value=0, data=encode_call("always_reverts", []))
    receipt = _run(vm, state, tx)
    assert not receipt.success
    assert "nope" in receipt.error
    assert receipt.logs == []
    assert "poison" not in state.account(address).storage


def test_access_control() -> None:
    vm, state = _fresh()
    address = _deploy(vm, state, value=500)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=500_000, to=address,
                     value=0, data=encode_call("withdraw", [OTHER.address(), 100]))
    receipt = _run(vm, state, tx, key=OTHER)
    assert not receipt.success and "not owner" in receipt.error


def test_nested_contract_call() -> None:
    vm, state = _fresh()
    first = _deploy(vm, state)
    second_tx = Transaction(
        nonce=1, gas_price=1, gas_limit=1_000_000, to=None, value=0,
        data=encode_create("VaultForTests", [SENDER.address()]),
    )
    second = _run(vm, state, second_tx).contract_address
    tx = Transaction(nonce=2, gas_price=1, gas_limit=1_000_000, to=first,
                     value=0, data=encode_call("chained", [second]))
    receipt = _run(vm, state, tx)
    assert receipt.success, receipt.error
    assert receipt.return_value == 1
    assert state.account(second).storage["notes"] == ["from-peer"]


def test_view_execution_is_free_and_isolated() -> None:
    vm, state = _fresh()
    address = _deploy(vm, state)
    root_before = state.state_root()
    assert vm.run_view(state, address, "note_count", [], BLOCK) == 0
    assert state.state_root() == root_before


def test_view_cannot_be_called_with_mutation_intent() -> None:
    vm, state = _fresh()
    address = _deploy(vm, state)
    from repro.errors import ContractError

    with pytest.raises(ContractError):
        vm.run_view(state, address, "deposit_note", ["x"], BLOCK)


def test_calldata_to_non_contract_reverts() -> None:
    vm, state = _fresh()
    tx = Transaction(nonce=0, gas_price=1, gas_limit=100_000, to=OTHER.address(),
                     value=0, data=encode_call("anything", []))
    receipt = _run(vm, state, tx)
    assert not receipt.success


def test_unknown_method_reverts() -> None:
    vm, state = _fresh()
    address = _deploy(vm, state)
    tx = Transaction(nonce=1, gas_price=1, gas_limit=500_000, to=address,
                     value=0, data=encode_call("missing_method", []))
    receipt = _run(vm, state, tx)
    assert not receipt.success and "missing_method" in receipt.error


def test_value_conservation_across_execution() -> None:
    vm, state = _fresh()
    supply_before = state.total_supply()
    address = _deploy(vm, state, value=1_000)
    tx = Transaction(nonce=1, gas_price=1, gas_limit=500_000, to=address,
                     value=0, data=encode_call("withdraw", [OTHER.address(), 400]))
    assert _run(vm, state, tx).success
    assert state.total_supply() == supply_before
