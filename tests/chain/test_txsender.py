"""TxSender timeout/retry semantics: at-most-once under loss."""

from __future__ import annotations

from typing import List

import pytest

from repro.crypto import ecdsa
from repro.chain.network import Testnet
from repro.chain.transaction import SignedTransaction, Transaction
from repro.chain.txsender import TxAbandonedError, TxSender

USER = ecdsa.ECDSAKeyPair.from_seed(b"txs-user")
SINK = b"\x42" * 20


class _DropFirstN:
    """An adversary censoring the first ``n`` broadcasts it sees."""

    def __init__(self, n: int) -> None:
        self.remaining = n
        self.dropped: List[bytes] = []

    def on_transaction(self, stx: SignedTransaction):
        if self.remaining > 0:
            self.remaining -= 1
            self.dropped.append(stx.tx_hash)
            return []
        return [stx]


def _funded_net() -> Testnet:
    net = Testnet()
    net.fund(USER.address(), 10**9)
    return net


def test_clean_send_confirms_in_one_attempt() -> None:
    net = _funded_net()
    sender = TxSender(net)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=3)
    report = sender.send_with_report(tx, USER)
    assert report.receipt.success
    assert report.attempts == 1
    assert report.final_gas_price == 1
    assert net.any_node.balance_of(SINK) == 3


def test_dropped_tx_is_resubmitted_with_gas_bump() -> None:
    net = _funded_net()
    net.network.adversary = _DropFirstN(1)
    sender = TxSender(net, timeout_blocks=2)
    tx = Transaction(nonce=0, gas_price=100, gas_limit=21_000, to=SINK, value=7)
    report = sender.send_with_report(tx, USER)
    assert report.receipt.success
    assert report.attempts == 2
    assert report.final_gas_price == 125  # +25% bump on the retry
    assert net.any_node.balance_of(SINK) == 7


def test_duplicate_resubmission_is_idempotent() -> None:
    """Both the original and the bumped replacement float around; the
    shared nonce guarantees exactly one inclusion."""
    net = _funded_net()

    class _DelayingAdversary:
        """Holds the first broadcast, re-releasing it alongside later ones."""

        def __init__(self) -> None:
            self.held: List[SignedTransaction] = []
            self.calls = 0

        def on_transaction(self, stx: SignedTransaction):
            self.calls += 1
            if self.calls == 1:
                self.held.append(stx)
                return []
            return [stx] + self.held  # duplicate the withheld original

    net.network.adversary = _DelayingAdversary()
    sender = TxSender(net, timeout_blocks=2)
    tx = Transaction(nonce=0, gas_price=10, gas_limit=21_000, to=SINK, value=9)
    report = sender.send_with_report(tx, USER)
    assert report.receipt.success
    assert len(report.tx_hashes) == 2  # two distinct attempts existed
    assert net.any_node.balance_of(SINK) == 9  # paid exactly once
    net.mine_blocks(3)  # give the stale duplicate every chance to apply
    assert net.any_node.balance_of(SINK) == 9
    assert net.any_node.nonce_of(USER.address()) == 1


def test_superseded_nonce_is_reported_not_retried_forever() -> None:
    net = _funded_net()

    class _Substituting:
        """Censors the victim and spends its nonce on something else."""

        def __init__(self) -> None:
            other = Transaction(
                nonce=0, gas_price=999, gas_limit=21_000,
                to=b"\x43" * 20, value=1,
            )
            self.replacement = other.sign(USER)

        def on_transaction(self, stx: SignedTransaction):
            if stx.transaction.to == SINK:
                return [self.replacement]
            return [stx]

    net.network.adversary = _Substituting()
    sender = TxSender(net, timeout_blocks=2, max_attempts=2)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=5)
    with pytest.raises(TxAbandonedError):
        sender.send(tx, USER)
    assert net.any_node.balance_of(SINK) == 0
    assert net.any_node.balance_of(b"\x43" * 20) == 1


def test_send_signed_rebroadcasts_without_bump() -> None:
    net = _funded_net()
    net.network.adversary = _DropFirstN(1)
    sender = TxSender(net, timeout_blocks=2)
    stx = Transaction(
        nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=2
    ).sign(USER)
    receipt = sender.send_signed(stx)
    assert receipt.success
    assert receipt.tx_hash == stx.tx_hash
    assert sender.total_resubmissions == 1


def test_abandons_after_max_attempts_of_total_loss() -> None:
    net = _funded_net()
    net.network.adversary = _DropFirstN(10**6)  # black hole
    sender = TxSender(net, timeout_blocks=1, max_attempts=3)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=1)
    with pytest.raises(TxAbandonedError):
        sender.send(tx, USER)
    assert sender.total_attempts == 3


def test_gas_bump_clamped_to_sender_balance() -> None:
    net = Testnet()
    poor = ecdsa.ECDSAKeyPair.from_seed(b"txs-poor")
    net.fund(poor.address(), 30_000)  # covers gas_limit at price 1 only
    net.network.adversary = _DropFirstN(1)
    sender = TxSender(net, timeout_blocks=2)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=100)
    report = sender.send_with_report(tx, poor)
    assert report.receipt.success
    # (30_000 - 100) // 21_000 == 1: no affordable bump, same price resent.
    assert report.final_gas_price == 1


# ----- concurrent-sender additions: NonceManager + the async broadcast path ----------


def test_nonce_manager_reserves_consecutively() -> None:
    """Two reservations before anything lands must not collide."""
    net = _funded_net()
    sender = TxSender(net)
    a = sender.nonces.reserve(USER.address())
    b = sender.nonces.reserve(USER.address())
    assert (a, b) == (0, 1)
    assert sender.nonces.next_nonce(USER.address()) == 2


def test_nonce_manager_follows_chain_after_inclusion() -> None:
    net = _funded_net()
    sender = TxSender(net)
    nonce = sender.nonces.reserve(USER.address())
    tx = Transaction(nonce=nonce, gas_price=1, gas_limit=21_000, to=SINK, value=1)
    assert sender.send(tx, USER).success
    # Chain nonce (1) now dominates the local reservation.
    assert sender.nonces.reserve(USER.address()) == 1
    sender.nonces.forget(USER.address())
    assert sender.nonces.next_nonce(USER.address()) == 1


def test_broadcast_batch_lands_in_one_block() -> None:
    """The engine's path: sign + gossip a wave without mining, then one
    block confirms every pending transaction."""
    net = _funded_net()
    sender = TxSender(net)
    pendings = [
        sender.broadcast(
            Transaction(
                nonce=sender.nonces.reserve(USER.address()),
                gas_price=1, gas_limit=21_000, to=SINK, value=1,
            ),
            USER,
        )
        for _ in range(3)
    ]
    assert all(p.receipt is None for p in pendings)
    net.mine_block()
    remaining = sender.service(pendings)
    assert remaining == []
    blocks = {p.receipt.block_number for p in pendings}
    assert len(blocks) == 1
    assert all(p.receipt.success for p in pendings)
    assert net.any_node.balance_of(SINK) == 3


def test_service_retries_dropped_broadcast() -> None:
    """A censored broadcast is rebroadcast with a gas bump by service()
    once the timeout passes, reusing the reserved nonce (no gap)."""
    net = _funded_net()
    adversary = _DropFirstN(1)
    net.network.adversary = adversary
    sender = TxSender(net, timeout_blocks=1, max_attempts=4)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=2)
    pending = sender.broadcast(tx, USER)
    assert len(adversary.dropped) == 1
    remaining = [pending]
    for _ in range(4):
        net.mine_block()
        remaining = sender.service(remaining)
        if not remaining:
            break
    assert remaining == []
    assert pending.receipt is not None and pending.receipt.success
    assert pending.attempts >= 2
    assert pending.transaction.nonce == 0
    assert net.any_node.balance_of(SINK) == 2


# ----- capped exponential backoff with seeded jitter --------------------------


def test_retry_interval_first_attempt_is_the_plain_timeout() -> None:
    net = _funded_net()
    sender = TxSender(net, timeout_blocks=2)
    assert sender.retry_interval(USER.address(), 0, 1) == 2


def test_retry_interval_backs_off_exponentially_with_cap() -> None:
    net = _funded_net()
    sender = TxSender(
        net, timeout_blocks=2, max_retry_interval=16, jitter_blocks=0
    )
    intervals = [
        sender.retry_interval(USER.address(), 0, attempt)
        for attempt in range(1, 7)
    ]
    assert intervals == [2, 4, 8, 16, 16, 16]


def test_retry_interval_jitter_is_deterministic_and_bounded() -> None:
    net = _funded_net()
    sender = TxSender(net, timeout_blocks=2, jitter_blocks=3)
    for attempt in range(2, 6):
        first = sender.retry_interval(USER.address(), 7, attempt)
        again = sender.retry_interval(USER.address(), 7, attempt)
        assert first == again  # replayable chaos runs
        base = min(sender.max_retry_interval, 2 << (attempt - 1))
        assert base <= first <= base + 3


def test_retry_interval_jitter_varies_across_senders() -> None:
    net = _funded_net()
    sender = TxSender(net, timeout_blocks=1, jitter_blocks=7)
    draws = {
        sender.retry_interval(bytes([i]) * 20, 0, 3) for i in range(16)
    }
    assert len(draws) > 1  # concurrent senders do not retry in lockstep


def test_backoff_slows_later_resubmissions() -> None:
    """Under total censorship the gaps between attempts must widen."""
    net = _funded_net()
    adversary = _DropFirstN(100)
    net.network.adversary = adversary
    sender = TxSender(
        net, timeout_blocks=1, max_attempts=4, jitter_blocks=0
    )
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=1)
    pending = sender.broadcast(tx, USER)
    attempt_heights = [net.height]
    remaining = [pending]
    for _ in range(12):
        net.mine_block()
        before = pending.attempts
        try:
            remaining = sender.service(remaining)
        except TxAbandonedError:
            break
        if pending.attempts > before:
            attempt_heights.append(net.height)
    gaps = [b - a for a, b in zip(attempt_heights, attempt_heights[1:])]
    # Attempt 1 -> 2 after 1 block, 2 -> 3 after 2, 3 -> 4 after 4.
    assert gaps == [1, 2, 4]
