"""TxSender timeout/retry semantics: at-most-once under loss."""

from __future__ import annotations

from typing import List

import pytest

from repro.crypto import ecdsa
from repro.chain.network import Testnet
from repro.chain.transaction import SignedTransaction, Transaction
from repro.chain.txsender import TxAbandonedError, TxSender

USER = ecdsa.ECDSAKeyPair.from_seed(b"txs-user")
SINK = b"\x42" * 20


class _DropFirstN:
    """An adversary censoring the first ``n`` broadcasts it sees."""

    def __init__(self, n: int) -> None:
        self.remaining = n
        self.dropped: List[bytes] = []

    def on_transaction(self, stx: SignedTransaction):
        if self.remaining > 0:
            self.remaining -= 1
            self.dropped.append(stx.tx_hash)
            return []
        return [stx]


def _funded_net() -> Testnet:
    net = Testnet()
    net.fund(USER.address(), 10**9)
    return net


def test_clean_send_confirms_in_one_attempt() -> None:
    net = _funded_net()
    sender = TxSender(net)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=3)
    report = sender.send_with_report(tx, USER)
    assert report.receipt.success
    assert report.attempts == 1
    assert report.final_gas_price == 1
    assert net.any_node.balance_of(SINK) == 3


def test_dropped_tx_is_resubmitted_with_gas_bump() -> None:
    net = _funded_net()
    net.network.adversary = _DropFirstN(1)
    sender = TxSender(net, timeout_blocks=2)
    tx = Transaction(nonce=0, gas_price=100, gas_limit=21_000, to=SINK, value=7)
    report = sender.send_with_report(tx, USER)
    assert report.receipt.success
    assert report.attempts == 2
    assert report.final_gas_price == 125  # +25% bump on the retry
    assert net.any_node.balance_of(SINK) == 7


def test_duplicate_resubmission_is_idempotent() -> None:
    """Both the original and the bumped replacement float around; the
    shared nonce guarantees exactly one inclusion."""
    net = _funded_net()

    class _DelayingAdversary:
        """Holds the first broadcast, re-releasing it alongside later ones."""

        def __init__(self) -> None:
            self.held: List[SignedTransaction] = []
            self.calls = 0

        def on_transaction(self, stx: SignedTransaction):
            self.calls += 1
            if self.calls == 1:
                self.held.append(stx)
                return []
            return [stx] + self.held  # duplicate the withheld original

    net.network.adversary = _DelayingAdversary()
    sender = TxSender(net, timeout_blocks=2)
    tx = Transaction(nonce=0, gas_price=10, gas_limit=21_000, to=SINK, value=9)
    report = sender.send_with_report(tx, USER)
    assert report.receipt.success
    assert len(report.tx_hashes) == 2  # two distinct attempts existed
    assert net.any_node.balance_of(SINK) == 9  # paid exactly once
    net.mine_blocks(3)  # give the stale duplicate every chance to apply
    assert net.any_node.balance_of(SINK) == 9
    assert net.any_node.nonce_of(USER.address()) == 1


def test_superseded_nonce_is_reported_not_retried_forever() -> None:
    net = _funded_net()

    class _Substituting:
        """Censors the victim and spends its nonce on something else."""

        def __init__(self) -> None:
            other = Transaction(
                nonce=0, gas_price=999, gas_limit=21_000,
                to=b"\x43" * 20, value=1,
            )
            self.replacement = other.sign(USER)

        def on_transaction(self, stx: SignedTransaction):
            if stx.transaction.to == SINK:
                return [self.replacement]
            return [stx]

    net.network.adversary = _Substituting()
    sender = TxSender(net, timeout_blocks=2, max_attempts=2)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=5)
    with pytest.raises(TxAbandonedError):
        sender.send(tx, USER)
    assert net.any_node.balance_of(SINK) == 0
    assert net.any_node.balance_of(b"\x43" * 20) == 1


def test_send_signed_rebroadcasts_without_bump() -> None:
    net = _funded_net()
    net.network.adversary = _DropFirstN(1)
    sender = TxSender(net, timeout_blocks=2)
    stx = Transaction(
        nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=2
    ).sign(USER)
    receipt = sender.send_signed(stx)
    assert receipt.success
    assert receipt.tx_hash == stx.tx_hash
    assert sender.total_resubmissions == 1


def test_abandons_after_max_attempts_of_total_loss() -> None:
    net = _funded_net()
    net.network.adversary = _DropFirstN(10**6)  # black hole
    sender = TxSender(net, timeout_blocks=1, max_attempts=3)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=1)
    with pytest.raises(TxAbandonedError):
        sender.send(tx, USER)
    assert sender.total_attempts == 3


def test_gas_bump_clamped_to_sender_balance() -> None:
    net = Testnet()
    poor = ecdsa.ECDSAKeyPair.from_seed(b"txs-poor")
    net.fund(poor.address(), 30_000)  # covers gas_limit at price 1 only
    net.network.adversary = _DropFirstN(1)
    sender = TxSender(net, timeout_blocks=2)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=SINK, value=100)
    report = sender.send_with_report(tx, poor)
    assert report.receipt.success
    # (30_000 - 100) // 21_000 == 1: no affordable bump, same price resent.
    assert report.final_gas_price == 1
