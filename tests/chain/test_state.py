"""World state: balances, snapshots, roots, conservation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ChainError
from repro.chain.state import WorldState

A = b"\x0a" * 20
B = b"\x0b" * 20


def test_lazy_account_creation() -> None:
    state = WorldState()
    assert not state.has_account(A)
    assert state.balance_of(A) == 0
    state.account(A)
    assert state.has_account(A)


def test_credit_debit_transfer() -> None:
    state = WorldState()
    state.credit(A, 100)
    state.transfer(A, B, 40)
    assert state.balance_of(A) == 60
    assert state.balance_of(B) == 40


def test_overdraft_rejected() -> None:
    state = WorldState()
    state.credit(A, 10)
    with pytest.raises(ChainError):
        state.debit(A, 11)
    with pytest.raises(ChainError):
        state.credit(A, -1)


@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=100)),
                max_size=30))
@settings(max_examples=30)
def test_transfers_conserve_total_supply(moves) -> None:
    state = WorldState()
    state.credit(A, 5_000)
    state.credit(B, 5_000)
    for a_to_b, amount in moves:
        source, destination = (A, B) if a_to_b else (B, A)
        if state.balance_of(source) >= amount:
            state.transfer(source, destination, amount)
    assert state.total_supply() == 10_000


def test_snapshot_isolation() -> None:
    state = WorldState()
    state.credit(A, 100)
    state.account(A).storage["k"] = [1, 2]
    snapshot = state.snapshot()
    state.transfer(A, B, 60)
    state.account(A).storage["k"].append(3)
    assert snapshot.balance_of(A) == 100
    assert snapshot.account(A).storage["k"] == [1, 2]


def test_restore_rolls_back() -> None:
    state = WorldState()
    state.credit(A, 100)
    snapshot = state.snapshot()
    state.transfer(A, B, 99)
    state.restore(snapshot)
    assert state.balance_of(A) == 100
    assert state.balance_of(B) == 0


def test_state_root_tracks_content() -> None:
    s1 = WorldState()
    s2 = WorldState()
    s1.credit(A, 5)
    s2.credit(A, 5)
    assert s1.state_root() == s2.state_root()
    s2.credit(B, 1)
    assert s1.state_root() != s2.state_root()


def test_state_root_covers_storage() -> None:
    s1 = WorldState()
    s2 = WorldState()
    s1.account(A).storage["x"] = 1
    s2.account(A).storage["x"] = 2
    assert s1.state_root() != s2.state_root()


def test_nonce_tracking() -> None:
    state = WorldState()
    assert state.nonce_of(A) == 0
    state.account(A).nonce += 1
    assert state.nonce_of(A) == 1


# ----- journal frames -----------------------------------------------------------


def test_journal_rollback_restores_preimages() -> None:
    state = WorldState()
    state.credit(A, 100)
    frame = state.begin_transaction()
    state.transfer(A, B, 60)
    state.rollback_transaction(frame)
    assert state.balance_of(A) == 100
    assert not state.has_account(B)


def test_nested_journal_frames_are_legal() -> None:
    """Regression: ``begin_transaction`` used to raise ChainError
    ("state journal already open") on nesting; frames now stack."""
    state = WorldState()
    state.credit(A, 100)
    outer = state.begin_transaction()
    state.debit(A, 10)
    inner = state.begin_transaction()  # must NOT raise
    state.debit(A, 5)
    state.rollback_transaction(inner)
    assert state.balance_of(A) == 90  # inner undone, outer kept
    state.debit(A, 20)
    state.commit_transaction(outer)
    assert state.balance_of(A) == 70
    assert state.journal_depth() == 0


def test_nested_commit_then_outer_rollback_undoes_everything() -> None:
    state = WorldState()
    state.credit(A, 100)
    outer = state.begin_transaction()
    inner = state.begin_transaction()
    state.transfer(A, B, 30)
    state.commit_transaction(inner)
    state.debit(A, 10)
    state.rollback_transaction(outer)
    assert state.balance_of(A) == 100
    assert not state.has_account(B)


def test_non_innermost_handle_rejected() -> None:
    state = WorldState()
    outer = state.begin_transaction()
    state.begin_transaction()
    with pytest.raises(ChainError, match="LIFO"):
        state.commit_transaction(outer)
    with pytest.raises(ChainError, match="LIFO"):
        state.rollback_transaction(outer)


def test_close_without_open_frame_rejected() -> None:
    state = WorldState()
    with pytest.raises(ChainError):
        state.commit_transaction()
    with pytest.raises(ChainError):
        state.rollback_transaction()


def test_frame_access_sets_track_reads_and_writes() -> None:
    state = WorldState()
    state.credit(A, 5)
    frame = state.begin_transaction()
    state.balance_of(A)
    state.credit(B, 1)
    assert A in frame.access.reads
    assert A not in frame.access.writes
    assert B in frame.access.writes
    state.commit_transaction(frame)


def test_committed_inner_frame_access_merges_into_outer() -> None:
    state = WorldState()
    outer = state.begin_transaction()
    inner = state.begin_transaction()
    state.credit(A, 1)
    state.commit_transaction(inner)
    assert A in outer.access.writes
