"""World state: balances, snapshots, roots, conservation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ChainError
from repro.chain.state import WorldState

A = b"\x0a" * 20
B = b"\x0b" * 20


def test_lazy_account_creation() -> None:
    state = WorldState()
    assert not state.has_account(A)
    assert state.balance_of(A) == 0
    state.account(A)
    assert state.has_account(A)


def test_credit_debit_transfer() -> None:
    state = WorldState()
    state.credit(A, 100)
    state.transfer(A, B, 40)
    assert state.balance_of(A) == 60
    assert state.balance_of(B) == 40


def test_overdraft_rejected() -> None:
    state = WorldState()
    state.credit(A, 10)
    with pytest.raises(ChainError):
        state.debit(A, 11)
    with pytest.raises(ChainError):
        state.credit(A, -1)


@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=100)),
                max_size=30))
@settings(max_examples=30)
def test_transfers_conserve_total_supply(moves) -> None:
    state = WorldState()
    state.credit(A, 5_000)
    state.credit(B, 5_000)
    for a_to_b, amount in moves:
        source, destination = (A, B) if a_to_b else (B, A)
        if state.balance_of(source) >= amount:
            state.transfer(source, destination, amount)
    assert state.total_supply() == 10_000


def test_snapshot_isolation() -> None:
    state = WorldState()
    state.credit(A, 100)
    state.account(A).storage["k"] = [1, 2]
    snapshot = state.snapshot()
    state.transfer(A, B, 60)
    state.account(A).storage["k"].append(3)
    assert snapshot.balance_of(A) == 100
    assert snapshot.account(A).storage["k"] == [1, 2]


def test_restore_rolls_back() -> None:
    state = WorldState()
    state.credit(A, 100)
    snapshot = state.snapshot()
    state.transfer(A, B, 99)
    state.restore(snapshot)
    assert state.balance_of(A) == 100
    assert state.balance_of(B) == 0


def test_state_root_tracks_content() -> None:
    s1 = WorldState()
    s2 = WorldState()
    s1.credit(A, 5)
    s2.credit(A, 5)
    assert s1.state_root() == s2.state_root()
    s2.credit(B, 1)
    assert s1.state_root() != s2.state_root()


def test_state_root_covers_storage() -> None:
    s1 = WorldState()
    s2 = WorldState()
    s1.account(A).storage["x"] = 1
    s2.account(A).storage["x"] = 2
    assert s1.state_root() != s2.state_root()


def test_nonce_tracking() -> None:
    state = WorldState()
    assert state.nonce_of(A) == 0
    state.account(A).nonce += 1
    assert state.nonce_of(A) == 1
