"""Consensus engines: PoA rotation and simulated PoW targets."""

from __future__ import annotations

import pytest

from repro.crypto import ecdsa
from repro.errors import InvalidBlockError
from repro.chain.block import BlockHeader, GENESIS_PARENT
from repro.chain.consensus import PoAEngine, SimulatedPoWEngine

KEY_A = ecdsa.ECDSAKeyPair.from_seed(b"validator-a")
KEY_B = ecdsa.ECDSAKeyPair.from_seed(b"validator-b")


def _header(number: int, miner: bytes, seal: bytes = b"") -> BlockHeader:
    return BlockHeader(
        number=number, parent_hash=GENESIS_PARENT, timestamp=1_500_000_001,
        miner=miner, state_root=b"\x00" * 32, tx_root=b"\x00" * 32,
        gas_used=0, gas_limit=30_000_000, seal=seal,
    )


def test_poa_round_robin() -> None:
    engine = PoAEngine([KEY_A.address(), KEY_B.address()])
    assert engine.expected_proposer(0) == KEY_A.address()
    assert engine.expected_proposer(1) == KEY_B.address()
    assert engine.expected_proposer(2) == KEY_A.address()


def test_poa_seal_and_validate() -> None:
    engine = PoAEngine([KEY_A.address(), KEY_B.address()])
    header = _header(2, KEY_A.address())
    seal = engine.seal(header, KEY_A)
    sealed = BlockHeader(**{**header.__dict__, "seal": seal})
    engine.validate_seal(sealed)  # no raise


def test_poa_rejects_out_of_turn() -> None:
    engine = PoAEngine([KEY_A.address(), KEY_B.address()])
    header = _header(1, KEY_B.address())  # B's turn
    with pytest.raises(InvalidBlockError):
        engine.seal(header, KEY_A)


def test_poa_rejects_wrong_miner_field() -> None:
    engine = PoAEngine([KEY_A.address(), KEY_B.address()])
    header = _header(2, KEY_B.address())  # A's turn but header claims B
    with pytest.raises(InvalidBlockError):
        engine.validate_seal(header)


def test_poa_rejects_forged_seal() -> None:
    engine = PoAEngine([KEY_A.address()])
    header = _header(1, KEY_A.address())
    # B signs although the header names A.
    forged = KEY_B.sign(header.hash_without_seal()).to_bytes()
    sealed = BlockHeader(**{**header.__dict__, "seal": forged})
    with pytest.raises(InvalidBlockError):
        engine.validate_seal(sealed)


def test_poa_rejects_garbage_seal() -> None:
    engine = PoAEngine([KEY_A.address()])
    sealed = _header(1, KEY_A.address(), seal=b"\x00" * 10)
    with pytest.raises(InvalidBlockError):
        engine.validate_seal(sealed)


def test_poa_needs_validators() -> None:
    with pytest.raises(ValueError):
        PoAEngine([])


def test_pow_seal_meets_target() -> None:
    engine = SimulatedPoWEngine(difficulty=16)
    header = _header(1, KEY_A.address())
    seal = engine.seal(header, KEY_A)
    sealed = BlockHeader(**{**header.__dict__, "seal": seal})
    engine.validate_seal(sealed)


def test_pow_rejects_bad_nonce() -> None:
    engine = SimulatedPoWEngine(difficulty=1 << 20)
    sealed = _header(1, KEY_A.address(), seal=b"\x00" * 8)
    digest_ok = True
    try:
        engine.validate_seal(sealed)
    except InvalidBlockError:
        digest_ok = False
    assert not digest_ok  # overwhelmingly likely at this difficulty


def test_pow_anyone_may_propose() -> None:
    engine = SimulatedPoWEngine(difficulty=4)
    assert engine.expected_proposer(7) is None


def test_pow_difficulty_positive() -> None:
    with pytest.raises(ValueError):
        SimulatedPoWEngine(difficulty=0)
