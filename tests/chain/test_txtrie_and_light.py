"""Transaction Merkle trie + the header-only light client."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import InvalidBlockError
from repro.chain.consensus import PoAEngine
from repro.chain.light import LightClient, serve_inclusion_proof
from repro.chain.node import GenesisConfig, Node
from repro.chain.transaction import Transaction
from repro.chain.txtrie import (
    InclusionProof,
    prove_inclusion,
    transactions_merkle_root,
    verify_inclusion,
)

MINER = ecdsa.ECDSAKeyPair.from_seed(b"lt-miner")
USER = ecdsa.ECDSAKeyPair.from_seed(b"lt-user")


# ----- trie ---------------------------------------------------------------------


def _hashes(count: int) -> list:
    return [sha256(b"tx", bytes([i])) for i in range(count)]


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 8, 13])
def test_every_leaf_provable(count: int) -> None:
    hashes = _hashes(count)
    root = transactions_merkle_root(hashes)
    for index in range(count):
        proof = prove_inclusion(hashes, index)
        assert verify_inclusion(root, proof)


def test_empty_root_is_sentinel() -> None:
    assert transactions_merkle_root([]) == transactions_merkle_root([])
    assert transactions_merkle_root([]) != transactions_merkle_root(_hashes(1))


def test_wrong_leaf_fails() -> None:
    hashes = _hashes(4)
    root = transactions_merkle_root(hashes)
    proof = prove_inclusion(hashes, 2)
    forged = InclusionProof(
        tx_hash=sha256(b"other"), index=proof.index, siblings=proof.siblings
    )
    assert not verify_inclusion(root, forged)


def test_wrong_position_fails() -> None:
    hashes = _hashes(4)
    root = transactions_merkle_root(hashes)
    proof = prove_inclusion(hashes, 2)
    moved = InclusionProof(tx_hash=proof.tx_hash, index=1, siblings=proof.siblings)
    assert not verify_inclusion(root, moved)


def test_proof_index_bounds() -> None:
    with pytest.raises(IndexError):
        prove_inclusion(_hashes(3), 3)


@given(st.integers(min_value=1, max_value=24), st.integers(min_value=0, max_value=23))
@settings(max_examples=30)
def test_inclusion_property(count: int, which: int) -> None:
    hashes = _hashes(count)
    index = which % count
    assert verify_inclusion(
        transactions_merkle_root(hashes), prove_inclusion(hashes, index)
    )


def test_order_sensitivity() -> None:
    hashes = _hashes(4)
    swapped = [hashes[1], hashes[0], *hashes[2:]]
    assert transactions_merkle_root(hashes) != transactions_merkle_root(swapped)


# ----- light client ------------------------------------------------------------------


@pytest.fixture
def full_node() -> Node:
    genesis = GenesisConfig(allocations={USER.address(): 10**12})
    engine = PoAEngine([MINER.address()])
    return Node("full", genesis, engine=engine, keypair=MINER, is_miner=True)


def _light_for(node: Node) -> LightClient:
    genesis_header = node.block_by_number(0).header
    return LightClient(node.engine, genesis_header)


def test_light_client_syncs_headers(full_node) -> None:
    for i in range(3):
        full_node.submit_transaction(
            Transaction(nonce=i, gas_price=1, gas_limit=21_000,
                        to=b"\x01" * 20, value=1).sign(USER)
        )
        full_node.create_block(timestamp=1_500_000_015 + 15 * i)
    light = _light_for(full_node)
    assert light.sync_from(full_node) == 3
    assert light.height == 3
    assert light.head_header.block_hash() == full_node.head_block.block_hash


def test_light_client_rejects_forged_seal(full_node) -> None:
    import dataclasses

    block = full_node.create_block(timestamp=1_500_000_015)
    light = _light_for(full_node)
    forged = dataclasses.replace(block.header, seal=b"\x00" * 65)
    with pytest.raises(InvalidBlockError):
        light.import_header(forged)


def test_light_client_rejects_gap(full_node) -> None:
    full_node.create_block(timestamp=1_500_000_015)
    b2 = full_node.create_block(timestamp=1_500_000_030)
    light = _light_for(full_node)
    with pytest.raises(InvalidBlockError):
        light.import_header(b2.header)  # header 1 missing


def test_light_client_verifies_inclusion(full_node) -> None:
    stx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                      to=b"\x02" * 20, value=5).sign(USER)
    full_node.submit_transaction(stx)
    full_node.create_block(timestamp=1_500_000_015)
    light = _light_for(full_node)
    light.sync_from(full_node)
    served = serve_inclusion_proof(full_node, stx.tx_hash)
    assert served is not None
    proof, number = served
    assert light.verify_transaction_inclusion(proof, number)
    # A proof for a different (fake) tx fails.
    fake = InclusionProof(tx_hash=sha256(b"fake"), index=proof.index,
                          siblings=proof.siblings)
    assert not light.verify_transaction_inclusion(fake, number)


def test_serve_proof_unknown_tx(full_node) -> None:
    assert serve_inclusion_proof(full_node, sha256(b"nope")) is None


def test_light_client_header_by_number(full_node) -> None:
    for i in range(2):
        full_node.create_block(timestamp=1_500_000_015 + 15 * i)
    light = _light_for(full_node)
    light.sync_from(full_node)
    assert light.header_by_number(1).number == 1
    assert light.header_by_number(5) is None
