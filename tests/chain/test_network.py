"""Testnet facade and network adversary hooks."""

from __future__ import annotations

from typing import List

import pytest

from repro.crypto import ecdsa
from repro.errors import ChainError
from repro.chain.network import Testnet
from repro.chain.transaction import SignedTransaction, Transaction

USER = ecdsa.ECDSAKeyPair.from_seed(b"net-user")


def test_paper_topology_default(testnet) -> None:
    assert len(testnet.miners) == 2
    assert len(testnet.full_nodes) == 2


def test_fund_and_consensus(testnet) -> None:
    testnet.fund(USER.address(), 5_000)
    for node in testnet.network.nodes:
        assert node.balance_of(USER.address()) == 5_000
    testnet.assert_consensus()


def test_round_robin_mining(testnet) -> None:
    b1 = testnet.mine_block()
    b2 = testnet.mine_block()
    assert b1.header.miner != b2.header.miner  # two PoA validators alternate


def test_clock_advances_per_block(testnet) -> None:
    t0 = testnet.clock.now
    testnet.mine_block()
    assert testnet.clock.now == t0 + testnet.block_interval


def test_wait_for_receipt(testnet) -> None:
    testnet.fund(USER.address(), 10**9)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=b"\x55" * 20, value=7)
    tx_hash = testnet.send_transaction(tx.sign(USER))
    receipt = testnet.wait_for_receipt(tx_hash)
    assert receipt.success
    assert testnet.any_node.balance_of(b"\x55" * 20) == 7


def test_mine_until_raises_when_unreachable(testnet) -> None:
    with pytest.raises(ChainError):
        testnet.mine_until(lambda: False, max_blocks=3)


def test_pending_transactions_publicly_visible(testnet) -> None:
    testnet.fund(USER.address(), 10**9)
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=b"\x66" * 20, value=1)
    testnet.send_transaction(tx.sign(USER))
    pending = testnet.network.pending_transactions()
    assert any(stx.transaction.to == b"\x66" * 20 for stx in pending)


class _CensoringAdversary:
    """Drops every transaction paying to the victim address."""

    def __init__(self, victim: bytes) -> None:
        self.victim = victim
        self.censored: List[SignedTransaction] = []

    def on_transaction(self, stx: SignedTransaction):
        if stx.transaction.to == self.victim:
            self.censored.append(stx)
            return []
        return [stx]


def test_adversary_can_censor(testnet) -> None:
    testnet.fund(USER.address(), 10**9)
    victim = b"\x77" * 20
    adversary = _CensoringAdversary(victim)
    testnet.network.adversary = adversary
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000, to=victim, value=9)
    testnet.send_transaction(tx.sign(USER))
    testnet.mine_blocks(2)
    assert adversary.censored
    assert testnet.any_node.balance_of(victim) == 0


class _ObservingAdversary:
    """Sees every broadcast transaction before miners do (§III power)."""

    def __init__(self) -> None:
        self.seen: List[bytes] = []

    def on_transaction(self, stx: SignedTransaction):
        self.seen.append(stx.tx_hash)
        return [stx]


def test_adversary_observes_all_traffic(testnet) -> None:
    testnet.network.adversary = _ObservingAdversary()
    testnet.fund(USER.address(), 10**9)
    assert testnet.network.adversary.seen  # saw the faucet transfer


def test_custom_topology() -> None:
    net = Testnet(miners=1, full_nodes=0)
    assert net.any_node is net.miners[0]
    net.mine_block()
    net.assert_consensus()
