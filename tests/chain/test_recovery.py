"""Node crash recovery: journal replay, peer sync, reorg re-injection."""

from __future__ import annotations

import pytest

from repro.crypto import ecdsa
from repro.errors import ChainError
from repro.chain.consensus import SimulatedPoWEngine
from repro.chain.journal import ChainJournal, JournalCorruptionError
from repro.chain.network import Network, Testnet
from repro.chain.node import GenesisConfig, Node
from repro.chain.transaction import Transaction

USER = ecdsa.ECDSAKeyPair.from_seed(b"rc-user")


def _pow_world(miners: int = 2):
    genesis = GenesisConfig(allocations={USER.address(): 10**12})
    engine = SimulatedPoWEngine(difficulty=4)
    network = Network()
    nodes = [
        network.add_node(
            Node(f"pow-{i}", genesis, engine=engine,
                 keypair=ecdsa.ECDSAKeyPair.from_seed(b"pow-%d" % i),
                 is_miner=True)
        )
        for i in range(miners)
    ]
    return network, nodes


# ----- journal ---------------------------------------------------------------------


def test_journal_hash_chain_detects_tampering() -> None:
    net = Testnet(miners=1, full_nodes=1)
    net.mine_block()
    net.mine_block()
    journal = net.miners[0].journal
    assert len(journal) == 2
    # Swap the two entries: replay must refuse the broken chain.
    journal._entries[0], journal._entries[1] = (
        journal._entries[1], journal._entries[0],
    )
    with pytest.raises(JournalCorruptionError):
        list(journal.replay())


def test_journal_records_import_order() -> None:
    net = Testnet(miners=1, full_nodes=1)
    blocks = [net.mine_block() for _ in range(3)]
    replayed = list(net.full_nodes[0].journal.replay())
    assert [b.block_hash for b in replayed] == [b.block_hash for b in blocks]


# ----- crash / restart -------------------------------------------------------------


def test_restart_rebuilds_state_by_reexecution() -> None:
    net = Testnet()
    net.fund(USER.address(), 12_345)
    node = net.full_nodes[0]
    expected_root = node.head_state.state_root()
    expected_height = node.height
    receipts_before = dict(node._receipts)
    node.crash()
    assert node.crashed
    replayed = node.restart()
    assert replayed == expected_height
    assert node.height == expected_height
    assert node.head_state.state_root() == expected_root
    assert node.balance_of(USER.address()) == 12_345
    # Receipts come back because recovery re-executes every block.
    assert set(node._receipts) == set(receipts_before)


def test_crashed_node_rejects_all_chain_operations() -> None:
    net = Testnet()
    node = net.full_nodes[1]
    node.crash()
    with pytest.raises(ChainError):
        node.submit_transaction(
            Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                        to=b"\x01" * 20, value=1).sign(net.faucet_key)
        )
    with pytest.raises(ChainError):
        node.import_block(net.any_node.head_block)


def test_restarted_node_catches_up_missed_blocks_via_sync() -> None:
    net = Testnet()
    net.mine_block()
    node = net.full_nodes[1]
    node.crash()
    missed = [net.mine_block() for _ in range(3)]
    node.restart()
    assert node.height == net.network.height - len(missed)
    imported = net.network.sync_node(node)
    assert imported == len(missed)
    assert node.height == net.network.height
    net.assert_consensus()


# ----- reorg re-injection -----------------------------------------------------------


def test_reorg_returns_orphaned_transactions_to_mempool() -> None:
    """A same-height tiebreak reorg must not lose a submission."""
    network, (node_a, node_b) = _pow_world()
    network.partition([node_a], [node_b])
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=b"\x09" * 20, value=55).sign(USER)
    network.broadcast_transaction(tx, origin=node_a)
    block_a = node_a.create_block(timestamp=1_500_000_015)  # includes tx
    block_b = node_b.create_block(timestamp=1_500_000_016)  # empty
    assert any(s.tx_hash == tx.tx_hash for s in block_a.transactions)
    network.heal()
    assert node_a.head_block.block_hash == node_b.head_block.block_hash
    if node_a.head_block.block_hash == block_b.block_hash:
        # A reorged away from its own block: the tx must be pending
        # again, ready for the next block.
        assert node_a.mempool.contains(tx.tx_hash)
        assert node_a.head_state.balance_of(b"\x09" * 20) == 0
    else:
        # B reorged onto A's branch, which already carries the tx.
        assert node_b.head_state.balance_of(b"\x09" * 20) == 55
    # Either way the tx is included exactly once within two blocks.
    winner = max((node_a, node_b), key=lambda n: n.mempool.contains(tx.tx_hash))
    if winner.mempool.contains(tx.tx_hash):
        block = winner.create_block(timestamp=1_500_000_040)
        network.broadcast_block(block, origin=winner)
    assert node_a.head_state.balance_of(b"\x09" * 20) in (0, 55)


def test_reorg_does_not_reinject_transactions_on_both_branches() -> None:
    network, (node_a, node_b) = _pow_world()
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=b"\x0a" * 20, value=5).sign(USER)
    network.broadcast_transaction(tx)
    network.partition([node_a], [node_b])
    node_a.create_block(timestamp=1_500_000_015)  # includes tx
    node_b.create_block(timestamp=1_500_000_016)  # also includes tx
    network.heal()
    loser = node_a if node_a.head_block.header.miner != node_a.address else node_b
    # The tx rode both branches, so nobody should be re-offering it.
    assert not loser.mempool.contains(tx.tx_hash)
    assert node_a.head_state.balance_of(b"\x0a" * 20) == 5


def test_block_by_number_is_indexed_after_reorg() -> None:
    network, (node_a, node_b) = _pow_world()
    network.partition([node_a], [node_b])
    block_a = node_a.create_block(timestamp=1_500_000_015)
    node_b.create_block(timestamp=1_500_000_016)
    block_b2 = node_b.create_block(timestamp=1_500_000_031)
    network.heal()
    # Everyone's canonical index follows B's longer chain.
    for node in (node_a, node_b):
        assert node.block_by_number(2).block_hash == block_b2.block_hash
        assert node.block_by_number(1).block_hash != block_a.block_hash
        assert node.block_by_number(3) is None
        assert node.canonical_hash(0) == node.chain_to_genesis()[0].block_hash
