"""Chaos harness: the full crowdsourcing protocol under injected faults.

Each scenario runs publish → submit × n → proved reward end-to-end on a
testnet whose fabric drops, delays and duplicates gossip, crashes and
restarts a full node, and partitions the network — all on a fixed seed.
End-state invariants:

- every node converges (``assert_consensus``);
- every registered worker's submission is included and rewarded
  exactly once;
- value is conserved: payouts + refund equal the escrowed budget, the
  contract drains to zero, and no node's total supply drifts.
"""

from __future__ import annotations

import pytest

from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem
from repro.chain.faults import chaos_plan

#: Fixed fault-plan seeds (drops + delays + one crash/restart + one
#: partition window each); the acceptance set for this layer.
CHAOS_SEEDS = (1, 2, 3, 4, 5)

NUM_WORKERS = 3
BUDGET = 900  # splits evenly: every worker agrees, every worker is paid


def _run_protocol_under_chaos(seed: int):
    plan = chaos_plan(seed)
    system = ZebraLancerSystem(
        profile="test", backend_name="mock", fault_plan=plan
    )
    testnet = system.testnet
    requester = Requester(system, "chaos-req")
    workers = [Worker(system, f"chaos-w{i}") for i in range(NUM_WORKERS)]
    task = requester.publish_task(
        MajorityVotePolicy(4),
        "chaos task",
        num_answers=NUM_WORKERS,
        budget=BUDGET,
        answer_window=400,
        instruction_window=400,
    )
    records = [worker.submit_answer(task, [1]) for worker in workers]
    for record in records:
        assert record.receipt.success, record.receipt.error
    paid_before = {
        worker.identity: worker.reward_received(task.address)
        for worker in workers
    }
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success, receipt.error
    # Run the schedule to its horizon so every crash/partition window
    # closes, then let the fabric reconcile: link faults never stop, so
    # the final blocks may have been dropped on some links and the tail
    # is settled by pull-sync (``heal``), which gossip loss cannot touch.
    while testnet.height <= plan.horizon:
        testnet.mine_block()
    testnet.network.heal()
    return plan, system, task, workers, paid_before


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_protocol_converges_under_chaos(seed: int) -> None:
    plan, system, task, workers, paid_before = _run_protocol_under_chaos(seed)
    testnet = system.testnet

    # 1. All nodes converge on head and state.
    testnet.assert_consensus()

    # 2. Every worker's submission was included and rewarded exactly once.
    assert task.phase() == "completed"
    rewards = task.rewards()
    assert rewards == [BUDGET // NUM_WORKERS] * NUM_WORKERS
    assert len(set(task.submitters())) == NUM_WORKERS
    for worker in workers:
        paid = worker.reward_received(task.address) - paid_before[worker.identity]
        assert paid == BUDGET // NUM_WORKERS, (
            f"{worker.identity} paid {paid}, expected {BUDGET // NUM_WORKERS}"
        )

    # 3. Value conservation: the contract drained exactly its escrow.
    assert task.balance() == 0
    assert sum(rewards) == BUDGET
    for node in testnet.network.nodes:
        assert node.head_state.total_supply() == 10**30

    # 4. The faults actually fired (the run wasn't accidentally clean).
    stats = testnet.network.stats
    assert stats.dropped > 0
    assert stats.delayed > 0
    assert stats.crashes == 1 and stats.restarts == 1
    assert stats.syncs >= 1


def test_chaos_runs_are_reproducible() -> None:
    """Same seed → byte-identical end state (chain head and stats)."""

    def fingerprint(seed: int):
        _, system, task, _, _ = _run_protocol_under_chaos(seed)
        stats = system.testnet.network.stats
        return (
            system.testnet.any_node.head_block.block_hash,
            system.testnet.any_node.head_state.state_root(),
            tuple(task.rewards()),
            (stats.dropped, stats.delayed, stats.duplicated, stats.syncs),
        )

    assert fingerprint(CHAOS_SEEDS[0]) == fingerprint(CHAOS_SEEDS[0])


def test_tx_sender_carries_transfers_through_a_very_lossy_fabric() -> None:
    """With no immune links (even miners miss gossip) the TxSender's
    retry loop is load-bearing: transfers confirm despite 50% tx loss,
    and at least one of them needs a resubmission."""
    from repro.chain.faults import FaultPlan, LinkFaults
    from repro.chain.network import Testnet
    from repro.chain.transaction import Transaction

    plan = FaultPlan(seed=99, tx_faults=LinkFaults(drop=0.5))
    net = Testnet(fault_plan=plan)
    sink = b"\x77" * 20
    for i in range(8):
        tx = Transaction(
            nonce=i, gas_price=1, gas_limit=21_000, to=sink, value=10
        )
        receipt = net.tx_sender.send(tx, net.faucet_key)
        assert receipt.success
    assert net.any_node.balance_of(sink) == 80  # each paid exactly once
    assert net.tx_sender.total_resubmissions > 0
    net.network.heal()
    net.assert_consensus()
