"""Transactions: signing, recovery, calldata, validation surface."""

from __future__ import annotations

import pytest

from repro.crypto import ecdsa
from repro.errors import InvalidTransactionError
from repro.chain.transaction import (
    SignedTransaction,
    Transaction,
    encode_call,
    encode_create,
)

KEY = ecdsa.ECDSAKeyPair.from_seed(b"tx-signer")


def _tx(**overrides) -> Transaction:
    fields = dict(
        nonce=0, gas_price=1, gas_limit=21_000, to=b"\x11" * 20, value=100, data=b""
    )
    fields.update(overrides)
    return Transaction(**fields)


def test_sender_recovered_from_signature() -> None:
    signed = _tx().sign(KEY)
    assert signed.sender == KEY.address()
    assert signed.verify_signature()


def test_tx_hash_covers_signature() -> None:
    signed_a = _tx().sign(KEY)
    signed_b = _tx(value=101).sign(KEY)
    assert signed_a.tx_hash != signed_b.tx_hash


def test_signing_hash_covers_all_fields() -> None:
    base = _tx().signing_hash()
    assert _tx(nonce=1).signing_hash() != base
    assert _tx(gas_price=2).signing_hash() != base
    assert _tx(gas_limit=22_000).signing_hash() != base
    assert _tx(to=b"\x22" * 20).signing_hash() != base
    assert _tx(value=1).signing_hash() != base
    assert _tx(data=b"\x00").signing_hash() != base
    assert _tx(chain_id=2).signing_hash() != base


def test_negative_fields_rejected() -> None:
    with pytest.raises(InvalidTransactionError):
        _tx(value=-1)
    with pytest.raises(InvalidTransactionError):
        _tx(nonce=-1)


def test_bad_destination_rejected() -> None:
    with pytest.raises(InvalidTransactionError):
        _tx(to=b"\x11" * 19)


def test_create_has_no_destination() -> None:
    tx = _tx(to=None, data=encode_create("Counter", [1]))
    assert tx.is_create


def test_calldata_roundtrip() -> None:
    signed = _tx(data=encode_call("method", [1, b"x", [2, 3]])).sign(KEY)
    assert signed.decode_data() == ("call", "method", [1, b"x", [2, 3]])
    created = _tx(to=None, data=encode_create("Thing", ["a"])).sign(KEY)
    assert created.decode_data() == ("create", "Thing", ["a"])


def test_empty_calldata_decodes_empty() -> None:
    assert _tx().sign(KEY).decode_data() == ("", "", [])


def test_malformed_calldata_raises() -> None:
    signed = _tx(data=b"\xff\xff").sign(KEY)
    with pytest.raises(InvalidTransactionError):
        signed.decode_data()


def test_max_cost() -> None:
    signed = _tx(value=100, gas_price=2, gas_limit=21_000).sign(KEY)
    assert signed.max_cost() == 100 + 42_000


def test_forged_signature_detected() -> None:
    signed = _tx().sign(KEY)
    forged = SignedTransaction(
        transaction=_tx(value=999_999),
        signature=signed.signature,
    )
    # Recovery yields *some* address, but never the original signer's.
    try:
        assert forged.sender != KEY.address()
    except InvalidTransactionError:
        pass
