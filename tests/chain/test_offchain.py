"""Content-addressed off-chain storage."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.offchain import (
    ContentId,
    ContentStore,
    IntegrityError,
    content_reference,
    parse_content_reference,
)


def test_roundtrip_small() -> None:
    store = ContentStore()
    cid = store.put(b"hello zebra")
    assert store.get(cid) == b"hello zebra"
    assert store.has(cid)


def test_roundtrip_multi_chunk() -> None:
    store = ContentStore(chunk_size=64)
    blob = bytes(range(256)) * 10  # 2560 bytes → 40 chunks
    cid = store.put(blob)
    assert store.get(cid) == blob


def test_empty_blob() -> None:
    store = ContentStore()
    cid = store.put(b"")
    assert store.get(cid) == b""


@given(st.binary(max_size=2_000))
@settings(max_examples=25)
def test_roundtrip_property(blob: bytes) -> None:
    store = ContentStore(chunk_size=128)
    assert store.get(store.put(blob)) == blob


def test_content_addressing_is_deterministic() -> None:
    s1, s2 = ContentStore(), ContentStore()
    assert s1.put(b"same bytes") == s2.put(b"same bytes")
    assert s1.put(b"a") != s1.put(b"b")


def test_deduplication() -> None:
    store = ContentStore(chunk_size=64)
    store.put(b"\x00" * 640)  # 10 identical zero chunks
    assert store.stored_bytes == 64  # stored once


def test_unknown_id_raises() -> None:
    store = ContentStore()
    with pytest.raises(KeyError):
        store.get(ContentId(b"\x00" * 32))


def test_tampered_chunk_detected() -> None:
    store = ContentStore(chunk_size=64)
    cid = store.put(b"x" * 200)
    store.tamper_chunk(cid, 1, b"y" * 64)
    with pytest.raises((IntegrityError, KeyError)):
        store.get(cid)


def test_content_id_validation() -> None:
    with pytest.raises(ValueError):
        ContentId(b"\x00" * 16)
    cid = ContentId(b"\xab" * 32)
    assert ContentId.parse(cid.hex()) == cid


def test_reference_strings() -> None:
    cid = ContentId(b"\xcd" * 32)
    reference = content_reference(cid)
    assert reference.startswith("offchain:0x")
    assert parse_content_reference(reference) == cid
    assert parse_content_reference("plain description") is None


def test_task_descriptions_can_point_offchain(zebra_system) -> None:
    """A data-intensive task stores the image off-chain and only its
    content id on-chain (footnote 13's optimization, implemented)."""
    from repro.core import MajorityVotePolicy, Requester, Worker

    store = ContentStore()
    fake_image = b"\x89PNG" + bytes(range(200)) * 20
    cid = store.put(fake_image)
    requester = Requester(zebra_system, "r")
    task = requester.publish_task(
        MajorityVotePolicy(2),
        description=content_reference(cid),
        num_answers=1, budget=100,
    )
    # A worker resolves and verifies the reference before answering.
    worker = Worker(zebra_system, "w")
    params = worker.read_task(task.address)
    resolved = parse_content_reference(params.description)
    assert resolved is not None
    assert store.get(resolved) == fake_image
    # On-chain footprint is the reference string, not the image.
    assert len(params.description) < 100 < len(fake_image)
    assert worker.submit_answer(task, [1]).receipt.success


# ----- replicated store ------------------------------------------------------------


def _replicated(n: int = 3, **fault_kwargs):
    from repro.chain.offchain import FlakyContentStore, ReplicatedContentStore

    replicas = [FlakyContentStore(seed=i, **fault_kwargs) for i in range(n)]
    return ReplicatedContentStore(replicas), replicas


def test_replicated_roundtrip_clean() -> None:
    store, replicas = _replicated()
    blob = b"replicated blob " * 100
    cid = store.put(blob)
    assert store.get(cid) == blob
    assert all(r.has(cid) for r in replicas)


def test_replicated_survives_one_replica_down() -> None:
    store, replicas = _replicated()
    replicas[0].down = True
    blob = b"only two replicas got this"
    cid = store.put(blob)
    assert store.get(cid) == blob
    assert not replicas[0].has(cid)


def test_read_repair_heals_a_replica_that_missed_the_write() -> None:
    store, replicas = _replicated()
    replicas[2].down = True
    cid = store.put(b"repair me")
    replicas[2].down = False  # back up, but without the blob
    assert not replicas[2].has(cid)
    assert store.get(cid) == b"repair me"
    assert replicas[2].has(cid)  # read path repaired the hole
    assert store.read_repairs >= 1


def test_replicated_get_skips_tampered_replica() -> None:
    store, replicas = _replicated()
    blob = b"X" * 300
    cid = store.put(blob)
    replicas[0].store.tamper_chunk(cid, 0, b"Y" * 300)
    assert store.get(cid) == blob  # integrity check routes around it


def test_replicated_all_down_raises() -> None:
    from repro.chain.offchain import StoreUnavailableError

    store, replicas = _replicated()
    cid = store.put(b"doomed")
    for replica in replicas:
        replica.down = True
    with pytest.raises(StoreUnavailableError):
        store.get(cid)
    with pytest.raises(StoreUnavailableError):
        store.put(b"nobody will take this")


def test_replicated_retry_wins_against_transient_failures() -> None:
    """With a 40% per-get failure rate and three replicas over two
    rounds, a seeded run still serves every read."""
    store, _ = _replicated(get_failure_rate=0.4)
    blobs = [bytes([i]) * 100 for i in range(20)]
    cids = [store.put(blob) for blob in blobs]
    for blob, cid in zip(blobs, cids):
        assert store.get(cid) == blob


def test_flaky_store_failures_are_deterministic() -> None:
    from repro.chain.offchain import FlakyContentStore, StoreUnavailableError

    def trace(seed: int):
        replica = FlakyContentStore(seed=seed, get_failure_rate=0.5)
        cid = replica.put(b"det")
        outcomes = []
        for _ in range(32):
            try:
                replica.get(cid)
                outcomes.append(True)
            except StoreUnavailableError:
                outcomes.append(False)
        return outcomes

    assert trace(11) == trace(11)
    assert trace(11) != trace(12)
