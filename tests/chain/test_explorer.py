"""The block-explorer queries."""

from __future__ import annotations

import pytest

from repro.chain.explorer import ChainExplorer
from repro.core import MajorityVotePolicy, Requester, Worker

POLICY = MajorityVotePolicy(num_choices=4)


@pytest.fixture
def explored(zebra_system):
    requester = Requester(zebra_system, "exp-r")
    workers = [Worker(zebra_system, f"exp-w{i}") for i in range(2)]
    task = requester.publish_task(POLICY, "explored task", num_answers=2,
                                  budget=200)
    records = [worker.submit_answer(task, [1]) for worker in workers]
    requester.evaluate_and_reward(task)
    return zebra_system, task, records, ChainExplorer(zebra_system.node)


def test_find_transaction(explored) -> None:
    _, task, records, explorer = explored
    located = explorer.find_transaction(records[0].receipt.tx_hash)
    assert located is not None
    assert located.transaction.transaction.to == task.address
    assert located.receipt.success
    assert located.block_number == records[0].receipt.block_number


def test_find_unknown_transaction(explored) -> None:
    _, _, _, explorer = explored
    assert explorer.find_transaction(b"\x00" * 32) is None


def test_transactions_to_task(explored) -> None:
    _, task, records, explorer = explored
    located = explorer.transactions_to(task.address)
    # 2 submissions + 1 reward instruction
    assert len(located) == 3


def test_transactions_from_submitter(explored) -> None:
    _, task, records, explorer = explored
    sender = records[0].account_address
    located = explorer.transactions_from(sender)
    assert len(located) == 1
    assert located[0].transaction.transaction.to == task.address


def test_event_filtering(explored) -> None:
    _, task, _, explorer = explored
    collected = explorer.logs(address=task.address, event="AnswerCollected")
    assert len(collected) == 2
    completed = explorer.logs(address=task.address, event="TaskCompleted")
    assert len(completed) == 1
    with_predicate = explorer.logs(
        address=task.address,
        event="AnswerCollected",
        predicate=lambda log: log.fields["index"] == 0,
    )
    assert len(with_predicate) == 1


def test_published_tasks_registry(explored) -> None:
    _, task, _, explorer = explored
    published = explorer.published_tasks()
    assert any(entry["address"] == task.address for entry in published)
    entry = next(e for e in published if e["address"] == task.address)
    assert entry["budget"] == 200
    assert entry["num_answers"] == 2


def test_task_timeline_ordered(explored) -> None:
    _, task, _, explorer = explored
    timeline = explorer.task_timeline(task.address)
    events = [located.log.event for located in timeline]
    assert events[0] == "TaskPublished"
    assert events[-1] == "TaskCompleted"
    numbers = [located.block_number for located in timeline]
    assert numbers == sorted(numbers)


def test_gas_accounting(explored) -> None:
    _, task, records, explorer = explored
    total = explorer.gas_spent_on(task.address)
    assert total >= sum(r.receipt.gas_used for r in records)
