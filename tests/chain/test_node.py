"""Full-node behaviour: block production, import validation, fork choice."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto import ecdsa
from repro.errors import InvalidBlockError
from repro.chain.block import Block, BlockHeader
from repro.chain.consensus import PoAEngine
from repro.chain.node import GenesisConfig, Node
from repro.chain.transaction import Transaction

MINER_KEY = ecdsa.ECDSAKeyPair.from_seed(b"node-miner")
USER = ecdsa.ECDSAKeyPair.from_seed(b"node-user")
PEER = ecdsa.ECDSAKeyPair.from_seed(b"node-peer")


@pytest.fixture
def genesis() -> GenesisConfig:
    return GenesisConfig(allocations={USER.address(): 10**12})


@pytest.fixture
def miner(genesis) -> Node:
    engine = PoAEngine([MINER_KEY.address()])
    return Node("miner", genesis, engine=engine, keypair=MINER_KEY, is_miner=True)


@pytest.fixture
def follower(genesis) -> Node:
    engine = PoAEngine([MINER_KEY.address()])
    return Node("follower", genesis, engine=engine)


def _transfer(nonce: int, value: int = 100) -> Transaction:
    return Transaction(nonce=nonce, gas_price=1, gas_limit=21_000,
                       to=PEER.address(), value=value)


def test_genesis_state(miner) -> None:
    assert miner.height == 0
    assert miner.balance_of(USER.address()) == 10**12


def test_mine_block_includes_pending(miner) -> None:
    miner.submit_transaction(_transfer(0).sign(USER))
    block = miner.create_block(timestamp=1_500_000_015)
    assert block.number == 1
    assert len(block) == 1
    assert miner.balance_of(PEER.address()) == 100
    assert miner.get_receipt(block.transactions[0].tx_hash).success


def test_follower_replays_identically(miner, follower) -> None:
    miner.submit_transaction(_transfer(0).sign(USER))
    block = miner.create_block(timestamp=1_500_000_015)
    assert follower.import_block(block)
    assert follower.head_block.block_hash == miner.head_block.block_hash
    assert follower.head_state.state_root() == miner.head_state.state_root()


def test_reimport_is_noop(miner, follower) -> None:
    block = miner.create_block(timestamp=1_500_000_015)
    assert follower.import_block(block)
    assert not follower.import_block(block)


def test_non_miner_cannot_create(follower) -> None:
    with pytest.raises(InvalidBlockError):
        follower.create_block(timestamp=1_500_000_015)


def test_import_rejects_unknown_parent(miner, follower) -> None:
    b1 = miner.create_block(timestamp=1_500_000_015)
    b2 = miner.create_block(timestamp=1_500_000_030)
    with pytest.raises(InvalidBlockError):
        follower.import_block(b2)  # b1 never delivered


def test_import_rejects_tampered_state_root(miner, follower) -> None:
    block = miner.create_block(timestamp=1_500_000_015)
    header = dataclasses.replace(block.header, state_root=b"\x01" * 32)
    with pytest.raises(InvalidBlockError):
        follower.import_block(Block(header=header, transactions=block.transactions))


def test_import_rejects_tampered_transactions(miner, follower) -> None:
    miner.submit_transaction(_transfer(0).sign(USER))
    block = miner.create_block(timestamp=1_500_000_015)
    with pytest.raises(InvalidBlockError):
        follower.import_block(Block(header=block.header, transactions=()))


def test_import_rejects_backwards_timestamp(miner, follower) -> None:
    b1 = miner.create_block(timestamp=1_500_000_030)
    follower.import_block(b1)
    b2 = miner.create_block(timestamp=1_500_000_031)
    tampered_header = dataclasses.replace(b2.header, timestamp=1_500_000_010)
    tampered = Block(header=tampered_header, transactions=b2.transactions)
    with pytest.raises(InvalidBlockError):
        follower.import_block(tampered)


def test_chain_to_genesis(miner) -> None:
    miner.create_block(timestamp=1_500_000_015)
    miner.create_block(timestamp=1_500_000_030)
    chain = miner.chain_to_genesis()
    assert [b.number for b in chain] == [0, 1, 2]


def test_block_by_number(miner) -> None:
    b1 = miner.create_block(timestamp=1_500_000_015)
    assert miner.block_by_number(1).block_hash == b1.block_hash
    assert miner.block_by_number(0).number == 0
    assert miner.block_by_number(9) is None


def test_longest_chain_wins(genesis) -> None:
    engine = PoAEngine([MINER_KEY.address()])
    node_a = Node("a", genesis, engine=engine, keypair=MINER_KEY, is_miner=True)
    node_b = Node("b", genesis, engine=engine, keypair=MINER_KEY, is_miner=True)
    # Two competing height-1 blocks (different timestamps → different hashes).
    block_a1 = node_a.create_block(timestamp=1_500_000_015)
    node_b.create_block(timestamp=1_500_000_016)
    # b extends its own chain to height 2; a must reorg onto it.
    block_b2 = node_b.create_block(timestamp=1_500_000_031)
    node_a.import_block(node_b.block_by_number(1))
    node_a.import_block(block_b2)
    assert node_a.head_block.block_hash == block_b2.block_hash
    assert node_a.height == 2
    # The abandoned block is still known.
    assert node_a.block_by_hash(block_a1.block_hash) is not None


def test_included_txs_leave_mempool(miner) -> None:
    stx = _transfer(0).sign(USER)
    miner.submit_transaction(stx)
    assert len(miner.mempool) == 1
    miner.create_block(timestamp=1_500_000_015)
    assert len(miner.mempool) == 0


def test_stale_nonce_rejected_at_submission(miner) -> None:
    miner.submit_transaction(_transfer(0).sign(USER))
    miner.create_block(timestamp=1_500_000_015)
    from repro.errors import InvalidTransactionError

    with pytest.raises(InvalidTransactionError):
        miner.submit_transaction(_transfer(0).sign(USER))


def test_miner_earns_fees(miner) -> None:
    miner.submit_transaction(_transfer(0).sign(USER))
    block = miner.create_block(timestamp=1_500_000_015)
    receipt = miner.get_receipt(block.transactions[0].tx_hash)
    assert miner.balance_of(MINER_KEY.address()) == receipt.gas_used
