"""The snark_verify precompile: dispatch, gas, metrics, input hygiene."""

from __future__ import annotations

import pytest

from repro.errors import ContractError, OutOfGasError
from repro.chain.gas import GasMeter
from repro.chain.precompiles import SNARK_VERIFY_METRICS, snark_verify_precompile
from repro.zksnark import CircuitDefinition, MockBackend
from repro.zksnark.backend import Proof


class _Square(CircuitDefinition):
    name = "pc-square"

    def example_instance(self):
        return (5, 25)

    def synthesize(self, cs, instance) -> None:
        out = cs.alloc_public(instance[1])
        x = cs.alloc(instance[0])
        cs.enforce(x, x, out)


@pytest.fixture(scope="module")
def material():
    backend = MockBackend()
    keys = backend.setup(_Square(), seed=b"pc")
    proof = backend.prove(keys.proving_key, _Square(), (5, 25))
    return keys, proof


def _meter(limit: int = 10**7) -> GasMeter:
    return GasMeter(limit=limit)


def test_valid_proof_verifies(material) -> None:
    keys, proof = material
    assert snark_verify_precompile(_meter(), keys.verifying_key, [25], proof)


def test_invalid_statement_returns_false(material) -> None:
    keys, proof = material
    assert not snark_verify_precompile(_meter(), keys.verifying_key, [26], proof)


def test_gas_charged_per_input(material) -> None:
    keys, proof = material
    meter = _meter()
    snark_verify_precompile(meter, keys.verifying_key, [25], proof)
    schedule = meter.schedule
    assert meter.used == (
        schedule.snark_verify_base + schedule.snark_verify_per_input
    )


def test_out_of_gas_aborts_before_pairing(material) -> None:
    keys, proof = material
    with pytest.raises(OutOfGasError):
        snark_verify_precompile(_meter(limit=10), keys.verifying_key, [25], proof)


def test_non_proof_input_reverts(material) -> None:
    keys, _ = material
    with pytest.raises(ContractError):
        snark_verify_precompile(_meter(), keys.verifying_key, [25], b"junk")


def test_non_list_inputs_revert(material) -> None:
    keys, proof = material
    with pytest.raises(ContractError):
        snark_verify_precompile(_meter(), keys.verifying_key, 25, proof)


def test_metrics_recorded(material) -> None:
    keys, proof = material
    SNARK_VERIFY_METRICS.reset()
    snark_verify_precompile(_meter(), keys.verifying_key, [25], proof)
    snark_verify_precompile(_meter(), keys.verifying_key, [25], proof)
    assert SNARK_VERIFY_METRICS.calls == 2
    assert len(SNARK_VERIFY_METRICS.per_call_seconds) == 2
    assert SNARK_VERIFY_METRICS.total_seconds >= 0
    SNARK_VERIFY_METRICS.reset()
    assert SNARK_VERIFY_METRICS.calls == 0
