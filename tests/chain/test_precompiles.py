"""The snark_verify precompiles: dispatch, gas, metrics, input hygiene."""

from __future__ import annotations

import pytest

from repro.errors import ContractError, OutOfGasError
from repro.chain.gas import GasMeter
from repro.chain.precompiles import (
    SNARK_BATCH_VERIFY_METRICS,
    SNARK_VERIFY_METRICS,
    snark_batch_verify_precompile,
    snark_verify_precompile,
)
from repro.zksnark import CircuitDefinition, MockBackend
from repro.zksnark.backend import Proof


class _Square(CircuitDefinition):
    name = "pc-square"

    def example_instance(self):
        return (5, 25)

    def synthesize(self, cs, instance) -> None:
        out = cs.alloc_public(instance[1])
        x = cs.alloc(instance[0])
        cs.enforce(x, x, out)


@pytest.fixture(scope="module")
def material():
    backend = MockBackend()
    keys = backend.setup(_Square(), seed=b"pc")
    proof = backend.prove(keys.proving_key, _Square(), (5, 25))
    return keys, proof


def _meter(limit: int = 10**7) -> GasMeter:
    return GasMeter(limit=limit)


def test_valid_proof_verifies(material) -> None:
    keys, proof = material
    assert snark_verify_precompile(_meter(), keys.verifying_key, [25], proof)


def test_invalid_statement_returns_false(material) -> None:
    keys, proof = material
    assert not snark_verify_precompile(_meter(), keys.verifying_key, [26], proof)


def test_gas_charged_per_input(material) -> None:
    keys, proof = material
    meter = _meter()
    snark_verify_precompile(meter, keys.verifying_key, [25], proof)
    schedule = meter.schedule
    assert meter.used == (
        schedule.snark_verify_base + schedule.snark_verify_per_input
    )


def test_out_of_gas_aborts_before_pairing(material) -> None:
    keys, proof = material
    with pytest.raises(OutOfGasError):
        snark_verify_precompile(_meter(limit=10), keys.verifying_key, [25], proof)


def test_non_proof_input_reverts(material) -> None:
    keys, _ = material
    with pytest.raises(ContractError):
        snark_verify_precompile(_meter(), keys.verifying_key, [25], b"junk")


def test_non_list_inputs_revert(material) -> None:
    keys, proof = material
    with pytest.raises(ContractError):
        snark_verify_precompile(_meter(), keys.verifying_key, 25, proof)


def test_batch_valid_proofs_verify(material) -> None:
    keys, proof = material
    assert snark_batch_verify_precompile(
        _meter(), keys.verifying_key, [[25], [25]], [proof, proof]
    )


def test_batch_invalid_statement_returns_false(material) -> None:
    keys, proof = material
    assert not snark_batch_verify_precompile(
        _meter(), keys.verifying_key, [[25], [26]], [proof, proof]
    )


def test_batch_empty_is_valid_and_cheap(material) -> None:
    keys, _ = material
    meter = _meter()
    assert snark_batch_verify_precompile(meter, keys.verifying_key, [], [])
    assert meter.used == meter.schedule.snark_batch_verify_base


def test_batch_gas_charged_per_proof_and_input(material) -> None:
    keys, proof = material
    meter = _meter()
    snark_batch_verify_precompile(
        meter, keys.verifying_key, [[25], [25], [25]], [proof] * 3
    )
    schedule = meter.schedule
    assert meter.used == (
        schedule.snark_batch_verify_base
        + 3 * schedule.snark_batch_verify_per_proof
        + 3 * schedule.snark_batch_verify_per_input
    )


def test_batch_amortizes_below_sequential_gas(material) -> None:
    """The whole point: n batched proofs must be cheaper than n singles."""
    keys, proof = material
    n = 10
    batch_meter = _meter()
    snark_batch_verify_precompile(
        batch_meter, keys.verifying_key, [[25]] * n, [proof] * n
    )
    seq_meter = _meter()
    for _ in range(n):
        snark_verify_precompile(seq_meter, keys.verifying_key, [25], proof)
    assert batch_meter.used < seq_meter.used


def test_batch_length_mismatch_reverts(material) -> None:
    keys, proof = material
    with pytest.raises(ContractError):
        snark_batch_verify_precompile(
            _meter(), keys.verifying_key, [[25]], [proof, proof]
        )


def test_batch_mixed_backends_revert(material) -> None:
    keys, proof = material
    alien = Proof(backend="groth16", payload=proof.payload)
    with pytest.raises(ContractError):
        snark_batch_verify_precompile(
            _meter(), keys.verifying_key, [[25], [25]], [proof, alien]
        )


def test_batch_non_proof_input_reverts(material) -> None:
    keys, _ = material
    with pytest.raises(ContractError):
        snark_batch_verify_precompile(
            _meter(), keys.verifying_key, [[25]], [b"junk"]
        )


def test_batch_metrics_recorded(material) -> None:
    keys, proof = material
    SNARK_BATCH_VERIFY_METRICS.reset()
    snark_batch_verify_precompile(
        _meter(), keys.verifying_key, [[25], [25]], [proof, proof]
    )
    assert SNARK_BATCH_VERIFY_METRICS.calls == 1
    SNARK_BATCH_VERIFY_METRICS.reset()


def test_metrics_recorded(material) -> None:
    keys, proof = material
    SNARK_VERIFY_METRICS.reset()
    snark_verify_precompile(_meter(), keys.verifying_key, [25], proof)
    snark_verify_precompile(_meter(), keys.verifying_key, [25], proof)
    assert SNARK_VERIFY_METRICS.calls == 2
    assert len(SNARK_VERIFY_METRICS.per_call_seconds) == 2
    assert SNARK_VERIFY_METRICS.total_seconds >= 0
    SNARK_VERIFY_METRICS.reset()
    assert SNARK_VERIFY_METRICS.calls == 0
