"""Serial-equivalence oracle for optimistic parallel block execution.

The contract of :func:`repro.chain.parallel.execute_block` is that the
committed state, the receipts (every field), and the gas accounting are
bit-identical to serial execution — for any lane count, any worker
count, and any lane assignment.  These tests sweep ~100 seeded random
blocks (plain transfers, contract calls, cross-contract reads,
deliberate slot collisions, reverting txs, same-sender nonce chains
split across lanes) through lane counts 1/2/4/8 and compare roots,
receipt encodings and gas against the serial baseline.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest

import repro.contracts  # noqa: F401  (registers KVStore)
from repro.crypto import ecdsa
from repro.errors import ChainError, InvalidBlockError
from repro.chain.consensus import PoAEngine
from repro.chain.contract import BlockContext
from repro.chain.node import GenesisConfig, Node
from repro.chain.parallel import (
    BlockExecutionStats,
    assign_lanes,
    execute_block,
)
from repro.chain.receipts import encode_receipt
from repro.chain.state import LaneState, WorldState
from repro.chain.transaction import Transaction, encode_call
from repro.chain.vm import VM

SENDERS = [ecdsa.ECDSAKeyPair.from_seed(b"par-sender-%d" % i) for i in range(8)]
RECIPIENTS = [bytes([0x50 + i]) * 20 for i in range(4)]
KV_A = b"\x6a" * 20
KV_B = b"\x6b" * 20
COINBASE = b"\x7c" * 20
FUNDING = 10**15
LANE_COUNTS = (2, 4, 8)
BLOCK_CTX = BlockContext(number=1, timestamp=1_500_000_015, coinbase=COINBASE)


def _base_state() -> WorldState:
    state = WorldState()
    for keypair in SENDERS:
        state.credit(keypair.address(), FUNDING)
    for address in (KV_A, KV_B):
        state.account(address).contract_name = "KVStore"
    return state


def _call(sender_index: int, nonce: int, to: bytes, method: str, args: list,
          gas_limit: int = 400_000):
    return Transaction(
        nonce=nonce, gas_price=2, gas_limit=gas_limit, to=to, value=0,
        data=encode_call(method, args),
    ).sign(SENDERS[sender_index])


def _random_block(rng: random.Random) -> List:
    """6–14 txs mixing transfers, kv writes, collisions and reverts."""
    nonces = {i: 0 for i in range(len(SENDERS))}
    txs = []
    for _ in range(rng.randint(6, 14)):
        sender = rng.randrange(len(SENDERS))
        nonce = nonces[sender]
        nonces[sender] += 1
        kind = rng.random()
        contract = rng.choice([KV_A, KV_B])
        slot = f"slot-{rng.randrange(3)}"
        if kind < 0.30:
            txs.append(
                Transaction(
                    nonce=nonce, gas_price=2, gas_limit=30_000,
                    to=rng.choice(RECIPIENTS), value=rng.randint(1, 1000),
                ).sign(SENDERS[sender])
            )
        elif kind < 0.55:
            txs.append(_call(sender, nonce, contract, "put",
                             [slot, rng.randint(0, 99)]))
        elif kind < 0.70:
            txs.append(_call(sender, nonce, contract, "bump", [slot]))
        elif kind < 0.80:
            other = KV_B if contract == KV_A else KV_A
            txs.append(_call(sender, nonce, contract, "copy_from", [other, slot]))
        elif kind < 0.90:
            txs.append(_call(sender, nonce, contract, "fail", []))
        else:
            # Calldata to a plain account: deterministic revert.
            txs.append(_call(sender, nonce, rng.choice(RECIPIENTS), "put",
                             [slot, 1]))
    return txs


def _fingerprint(state: WorldState, execution) -> Tuple[bytes, List[bytes], int]:
    return (
        state.state_root(),
        [encode_receipt(receipt) for receipt in execution.receipts],
        execution.gas_used,
    )


def _random_assignment(rng: random.Random, count: int, lanes: int) -> List[int]:
    return [rng.randrange(lanes) for _ in range(count)]


@pytest.mark.parametrize("master_seed", range(10), ids=lambda s: f"seed-{s}")
def test_parallel_matches_serial_sweep(master_seed: int) -> None:
    """~100 blocks × lanes 1/2/4/8: byte-identical roots/receipts/gas.

    Every third block additionally runs under a *random* lane
    assignment (splitting same-sender nonce chains across lanes), so
    the invalid-at-speculation re-execution path is exercised too.
    """
    vm = VM()
    totals = BlockExecutionStats(lanes=0, workers=0)
    for block_index in range(10):
        rng = random.Random((master_seed << 8) | block_index)
        txs = _random_block(rng)
        serial_state = _base_state()
        serial = execute_block(vm, serial_state, txs, BLOCK_CTX, lanes=1)
        expected = _fingerprint(serial_state, serial)
        assert len(serial.receipts) == len(txs)
        for lanes in LANE_COUNTS:
            assignment: Optional[List[int]] = None
            if block_index % 3 == 0:
                assignment = _random_assignment(rng, len(txs), lanes)
            state = _base_state()
            execution = execute_block(
                vm, state, txs, BLOCK_CTX, lanes=lanes, assignment=assignment
            )
            assert _fingerprint(state, execution) == expected
            totals.transactions += execution.stats.transactions
            totals.speculative_commits += execution.stats.speculative_commits
            totals.reexecutions += execution.stats.reexecutions
            totals.conflicts += execution.stats.conflicts
    # The generator must produce real concurrency *and* real contention,
    # otherwise the sweep silently stops testing anything.
    assert totals.speculative_commits > 0
    assert totals.reexecutions > 0
    assert totals.conflicts > 0


def test_forked_workers_match_in_process() -> None:
    """Fork-pool speculation and in-process lanes agree bit-for-bit."""
    vm = VM()
    rng = random.Random(0xF0)
    txs = _random_block(rng)
    expected_state = _base_state()
    expected = _fingerprint(
        expected_state, execute_block(vm, expected_state, txs, BLOCK_CTX, lanes=4)
    )
    state = _base_state()
    execution = execute_block(vm, state, txs, BLOCK_CTX, lanes=4, workers=4)
    assert _fingerprint(state, execution) == expected


def test_affinity_assignment_is_deterministic_and_groups_senders() -> None:
    rng = random.Random(7)
    txs = _random_block(rng)
    assignment = assign_lanes(txs, 4)
    assert assignment == assign_lanes(txs, 4)
    by_sender = {}
    for stx, lane in zip(txs, assignment):
        by_sender.setdefault(stx.sender, set()).add(lane)
    assert all(len(lanes) == 1 for lanes in by_sender.values())


def test_cross_lane_conflict_reexecutes_in_serial_order() -> None:
    """Two lanes bumping one slot: the commit pass must re-execute the
    later tx so the counter ends at 2, not at a lost-update 1."""
    vm = VM()
    txs = [
        _call(0, 0, KV_A, "bump", ["hot"]),
        _call(1, 0, KV_B, "bump", ["warm"]),
        _call(2, 0, KV_B, "copy_from", [KV_A, "hot"]),
    ]
    # Force the conflicting pair onto different lanes explicitly.
    assignment = [0, 1, 1]
    serial_state = _base_state()
    serial = execute_block(vm, serial_state, txs, BLOCK_CTX, lanes=1)
    state = _base_state()
    execution = execute_block(
        vm, state, txs, BLOCK_CTX, lanes=2, assignment=assignment
    )
    assert _fingerprint(state, execution) == _fingerprint(serial_state, serial)
    assert execution.stats.conflicts >= 1
    assert state.account(KV_A).storage["hot"] == 1


def test_split_nonce_chain_still_serializes() -> None:
    """A sender's txs scattered across lanes (invalid at speculation
    time beyond the first) must still all land, in order."""
    vm = VM()
    txs = [
        Transaction(nonce=n, gas_price=2, gas_limit=30_000,
                    to=RECIPIENTS[0], value=10).sign(SENDERS[0])
        for n in range(4)
    ]
    serial_state = _base_state()
    serial = execute_block(vm, serial_state, txs, BLOCK_CTX, lanes=1)
    state = _base_state()
    execution = execute_block(
        vm, state, txs, BLOCK_CTX, lanes=4, assignment=[0, 1, 2, 3]
    )
    assert _fingerprint(state, execution) == _fingerprint(serial_state, serial)
    assert execution.stats.reexecutions == 3
    assert state.nonce_of(SENDERS[0].address()) == 4


def test_build_mode_drops_invalid_verify_mode_raises() -> None:
    vm = VM()
    valid = _call(0, 0, KV_A, "bump", ["x"])
    invalid = Transaction(nonce=5, gas_price=2, gas_limit=30_000,
                          to=RECIPIENTS[0], value=1).sign(SENDERS[1])
    state = _base_state()
    execution = execute_block(
        vm, state, [valid, invalid], BLOCK_CTX, lanes=2, mode="build"
    )
    assert execution.stats.invalid_dropped == 1
    assert [stx.tx_hash for stx in execution.included] == [valid.tx_hash]
    from repro.errors import InvalidTransactionError

    with pytest.raises(InvalidTransactionError):
        execute_block(
            vm, _base_state(), [valid, invalid], BLOCK_CTX, lanes=2, mode="verify"
        )


def test_commutative_coinbase_credits_do_not_conflict() -> None:
    """Independent transfers only share the coinbase fee account; they
    must all commit speculatively."""
    vm = VM()
    txs = [
        Transaction(nonce=0, gas_price=2, gas_limit=30_000,
                    to=RECIPIENTS[i % len(RECIPIENTS)], value=5).sign(SENDERS[i])
        for i in range(8)
    ]
    state = _base_state()
    execution = execute_block(
        vm, state, txs, BLOCK_CTX, lanes=4,
        assignment=[i % 4 for i in range(8)],
    )
    assert execution.stats.reexecutions == 0
    assert execution.stats.speculative_commits == 8
    fees = sum(2 * receipt.gas_used for receipt in execution.receipts)
    assert state.balance_of(COINBASE) == fees


def test_lane_state_is_isolated_overlay() -> None:
    base = WorldState()
    base.credit(RECIPIENTS[0], 100)
    lane = LaneState(base)
    lane.begin_access_window()
    lane.credit(RECIPIENTS[0], 50)          # buffered (commutative)
    lane.account(RECIPIENTS[1]).balance = 7  # materialized write
    assert lane.balance_of(RECIPIENTS[0]) == 150
    assert base.balance_of(RECIPIENTS[0]) == 100
    assert not base.has_account(RECIPIENTS[1])
    effects = lane.finish_access_window()
    assert effects.credits == {RECIPIENTS[0]: 50}
    assert RECIPIENTS[1] in effects.written
    with pytest.raises(ChainError):
        lane.state_root()


def test_nodes_with_different_lane_counts_agree() -> None:
    """A serial miner's block imports cleanly on a 4-lane verifier and
    both end at the same state root and receipts root."""
    miner_key = ecdsa.ECDSAKeyPair.from_seed(b"par-miner")
    genesis = GenesisConfig(
        allocations={keypair.address(): FUNDING for keypair in SENDERS}
    )
    engine = PoAEngine([miner_key.address()])
    miner = Node("serial-miner", genesis, engine=engine, keypair=miner_key,
                 is_miner=True)
    verifier = Node("parallel-verifier", genesis, engine=engine,
                    execution_lanes=4)
    for sender in range(4):
        miner.submit_transaction(_call(sender, 0, KV_A, "bump", ["shared"]))
        miner.submit_transaction(
            Transaction(nonce=1, gas_price=2, gas_limit=30_000,
                        to=RECIPIENTS[1], value=3).sign(SENDERS[sender])
        )
    block = miner.create_block(timestamp=1_500_000_015)
    assert len(block.transactions) == 8
    assert verifier.import_block(block)
    assert verifier.head_state.state_root() == miner.head_state.state_root()
    assert verifier.receipts_for_block(block.block_hash) == \
        miner.receipts_for_block(block.block_hash)


def test_tampered_receipts_root_rejected() -> None:
    """An importer must reject a block whose receipts root lies."""
    import dataclasses

    miner_key = ecdsa.ECDSAKeyPair.from_seed(b"par-miner")
    genesis = GenesisConfig(
        allocations={keypair.address(): FUNDING for keypair in SENDERS}
    )
    engine = PoAEngine([miner_key.address()])
    miner = Node("miner", genesis, engine=engine, keypair=miner_key, is_miner=True)
    verifier = Node("verifier", genesis, engine=engine, execution_lanes=2)
    miner.submit_transaction(_call(0, 0, KV_A, "bump", ["x"]))
    miner.submit_transaction(_call(1, 0, KV_B, "bump", ["y"]))
    block = miner.create_block(timestamp=1_500_000_015)
    header = dataclasses.replace(
        block.header, receipts_root=b"\xee" * 32, seal=b""
    )
    header = dataclasses.replace(
        header, seal=engine.seal(header, miner_key)
    )
    forged = dataclasses.replace(block, header=header)
    with pytest.raises(InvalidBlockError, match="receipts root"):
        verifier.import_block(forged)
