"""Network partitions, divergence, and longest-chain reconciliation."""

from __future__ import annotations

import pytest

from repro.crypto import ecdsa
from repro.chain.consensus import SimulatedPoWEngine
from repro.chain.network import Network
from repro.chain.node import GenesisConfig, Node
from repro.chain.transaction import Transaction

USER = ecdsa.ECDSAKeyPair.from_seed(b"pt-user")


def _pow_world(miners: int = 2):
    genesis = GenesisConfig(allocations={USER.address(): 10**12})
    engine = SimulatedPoWEngine(difficulty=4)
    network = Network()
    nodes = [
        network.add_node(
            Node(f"pow-{i}", genesis, engine=engine,
                 keypair=ecdsa.ECDSAKeyPair.from_seed(b"pow-%d" % i),
                 is_miner=True)
        )
        for i in range(miners)
    ]
    return network, nodes


def test_partition_blocks_gossip() -> None:
    network, (node_a, node_b) = _pow_world()
    network.partition([node_a], [node_b])
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=b"\x03" * 20, value=1).sign(USER)
    network.broadcast_transaction(tx, origin=node_a)
    assert len(node_a.mempool) == 1
    assert len(node_b.mempool) == 0


def test_partition_diverges_then_longest_chain_wins() -> None:
    network, (node_a, node_b) = _pow_world()
    network.partition([node_a], [node_b])
    # A mines one block; B mines two — different timestamps, two forks.
    block_a = node_a.create_block(timestamp=1_500_000_015)
    network.broadcast_block(block_a, origin=node_a)  # goes nowhere
    node_b.create_block(timestamp=1_500_000_016)
    node_b.create_block(timestamp=1_500_000_031)
    assert node_a.height == 1
    assert node_b.height == 2
    assert node_a.head_block.block_hash != node_b.head_block.block_hash
    network.heal()
    # Everyone converges on B's longer chain.
    assert node_a.height == node_b.height == 2
    assert node_a.head_block.block_hash == node_b.head_block.block_hash
    assert node_a.head_state.state_root() == node_b.head_state.state_root()


def test_equal_length_fork_resolves_deterministically() -> None:
    network, (node_a, node_b) = _pow_world()
    network.partition([node_a], [node_b])
    node_a.create_block(timestamp=1_500_000_015)
    node_b.create_block(timestamp=1_500_000_016)
    network.heal()
    assert node_a.head_block.block_hash == node_b.head_block.block_hash
    # Deterministic tie-break: lowest hash.
    assert node_a.head_block.block_hash == min(
        node_a.block_by_number(1).block_hash, node_b.block_by_number(1).block_hash
    ) or node_a.height > 1


def test_transactions_resurface_after_heal() -> None:
    """A tx mined only on the losing fork is re-executable on the winner.

    (Simplified: we check the winning chain's state simply lacks the
    orphaned transfer, i.e. no double-apply happened.)"""
    network, (node_a, node_b) = _pow_world()
    network.partition([node_a], [node_b])
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=b"\x04" * 20, value=77).sign(USER)
    network.broadcast_transaction(tx, origin=node_a)
    node_a.create_block(timestamp=1_500_000_015)  # includes the tx
    node_b.create_block(timestamp=1_500_000_016)  # empty fork
    node_b.create_block(timestamp=1_500_000_031)  # B is longer
    network.heal()
    # The winner is B's chain, where the transfer never happened (once).
    assert node_a.head_block.block_hash == node_b.head_block.block_hash
    balance = node_a.head_state.balance_of(b"\x04" * 20)
    assert balance in (0, 77)  # never 154 (no double-apply)
    if balance == 0:
        # The tx is still valid and can be re-mined on the new head.
        node_a.submit_transaction(tx)
        block = node_a.create_block(timestamp=1_500_000_050)
        assert any(s.tx_hash == tx.tx_hash for s in block.transactions)


def test_unpartitioned_nodes_hear_everything() -> None:
    network, nodes = _pow_world(miners=3)
    node_a, node_b, node_c = nodes
    network.partition([node_a], [node_b])  # c is in no group: multi-homed
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=b"\x05" * 20, value=1).sign(USER)
    network.broadcast_transaction(tx, origin=node_a)
    assert len(node_c.mempool) == 1
    assert len(node_b.mempool) == 0


def test_heal_is_idempotent() -> None:
    network, (node_a, node_b) = _pow_world()
    node_a.create_block(timestamp=1_500_000_015)
    network.heal()
    network.heal()
    assert node_a.head_block.block_hash == node_b.head_block.block_hash


def test_heal_imports_only_blocks_above_the_receivers_head() -> None:
    """Peer sync is head-relative: no O(n²) full-chain replay.

    A long shared prefix must not be re-offered to anyone on heal —
    verified through the per-node block-import counters.
    """
    network, (node_a, node_b) = _pow_world()
    # Build a 10-block common prefix everyone already has.
    for i in range(10):
        block = node_a.create_block(timestamp=1_500_000_000 + 15 * (i + 1))
        network.broadcast_block(block, origin=node_a)
    assert node_a.height == node_b.height == 10
    # Diverge: A mines 2, B mines 3 during a partition.
    network.partition([node_a], [node_b])
    for i in range(2):
        node_a.create_block(timestamp=1_500_000_200 + 15 * i)
    for i in range(3):
        node_b.create_block(timestamp=1_500_000_201 + 15 * i)
    attempts_a = node_a.import_attempts
    attempts_b = node_b.import_attempts
    network.heal()
    assert node_a.head_block.block_hash == node_b.head_block.block_hash
    assert node_a.height == 13
    # A needed exactly B's 3 divergent blocks — not the 10-block prefix.
    assert node_a.import_attempts - attempts_a == 3
    # B already had the winning chain: nothing was pushed at it.
    assert node_b.import_attempts - attempts_b == 0


def test_divergent_mining_then_sync_convergence_with_stats() -> None:
    network, (node_a, node_b, node_c) = _pow_world(miners=3)
    network.partition([node_a, node_c], [node_b])
    tx = Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                     to=b"\x06" * 20, value=13).sign(USER)
    network.broadcast_transaction(tx, origin=node_a)
    block = node_a.create_block(timestamp=1_500_000_015)
    network.broadcast_block(block, origin=node_a)  # c hears it, b does not
    node_b.create_block(timestamp=1_500_000_016)
    node_b.create_block(timestamp=1_500_000_031)
    node_b.create_block(timestamp=1_500_000_046)
    network.heal()
    for node in (node_a, node_b, node_c):
        assert node.height == 3
        assert node.head_block.block_hash == node_b.head_block.block_hash
    assert network.stats.syncs >= 2
    assert network.stats.sync_blocks >= 6  # 3 blocks each into a and c
    # The orphaned transfer is pending again on the reorged nodes.
    assert node_a.mempool.contains(tx.tx_hash)
