"""Gas schedule and metering."""

from __future__ import annotations

import pytest

from repro.errors import OutOfGasError
from repro.chain.gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule


def test_intrinsic_gas() -> None:
    schedule = GasSchedule()
    assert schedule.intrinsic_gas(b"", False) == schedule.tx_base
    assert (
        schedule.intrinsic_gas(b"ab", False)
        == schedule.tx_base + 2 * schedule.calldata_byte
    )
    assert (
        schedule.intrinsic_gas(b"", True)
        == schedule.tx_base + schedule.tx_create_extra
    )


def test_meter_consumption() -> None:
    meter = GasMeter(limit=1_000)
    meter.consume(400)
    assert meter.used == 400
    assert meter.remaining == 600


def test_meter_exhaustion_consumes_everything() -> None:
    meter = GasMeter(limit=1_000)
    with pytest.raises(OutOfGasError):
        meter.consume(1_001, "big op")
    assert meter.used == 1_000
    assert meter.remaining == 0


def test_meter_rejects_negative() -> None:
    meter = GasMeter(limit=10)
    with pytest.raises(ValueError):
        meter.consume(-1)


def test_exact_limit_allowed() -> None:
    meter = GasMeter(limit=100)
    meter.consume(100)
    assert meter.remaining == 0


def test_snark_precompile_pricing_grows_with_inputs() -> None:
    schedule = DEFAULT_SCHEDULE
    small = schedule.snark_verify_base + schedule.snark_verify_per_input * 2
    large = schedule.snark_verify_base + schedule.snark_verify_per_input * 10
    assert large > small
