"""Canonical encoding round-trips and edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.serialization import (
    bytes_to_int,
    chunk_bytes,
    decode,
    encode,
    from_hex,
    hex_str,
    int_to_bytes,
)

scalars = st.one_of(
    st.integers(min_value=-(10**30), max_value=10**30),
    st.binary(max_size=40),
    st.text(max_size=20),
    st.none(),
    st.booleans(),
)
values = st.recursive(scalars, lambda inner: st.lists(inner, max_size=4), max_leaves=12)


def _normalize(value):
    """bools encode as ints; tuples as lists."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    return value


@given(values)
def test_roundtrip(value) -> None:
    assert decode(encode(value)) == _normalize(value)


def test_dict_roundtrip() -> None:
    original = {"a": 1, "b": [b"xy", None], "c": {"nested": "yes"}}
    assert decode(encode(original)) == original


def test_object_fallback_roundtrip() -> None:
    from repro.zksnark.backend import Proof

    proof = Proof(backend="mock", payload=b"\x01" * 8)
    assert decode(encode([proof, 3])) == [proof, 3]


def test_trailing_bytes_rejected() -> None:
    with pytest.raises(ValueError):
        decode(encode(1) + b"\x00")


def test_truncation_rejected() -> None:
    blob = encode([1, 2, 3])
    with pytest.raises(ValueError):
        decode(blob[:-1])


def test_unknown_tag_rejected() -> None:
    with pytest.raises(ValueError):
        decode(b"\xff\x00\x00\x00\x00")


def test_distinct_types_encode_differently() -> None:
    assert encode(b"1") != encode("1") != encode(1)
    assert encode([]) != encode(None)


def test_int_helpers() -> None:
    assert int_to_bytes(0) == b"\x00"
    assert int_to_bytes(256, 4) == b"\x00\x00\x01\x00"
    assert bytes_to_int(b"\x01\x00") == 256
    with pytest.raises(ValueError):
        int_to_bytes(-1)


def test_hex_helpers() -> None:
    assert hex_str(b"\xab\xcd") == "0xabcd"
    assert from_hex("0xabcd") == b"\xab\xcd"
    assert from_hex("abcd") == b"\xab\xcd"


def test_chunk_bytes() -> None:
    assert list(chunk_bytes(b"abcdef", 4)) == [b"abcd", b"ef"]
    with pytest.raises(ValueError):
        list(chunk_bytes(b"ab", 0))
