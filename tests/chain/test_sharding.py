"""Differential, property, and chaos tests for the sharded chain.

Four layers, mirroring the bridge's trust argument:

1. **Differential equivalence** — ~50 seeded workloads run on
   ``shards=1`` and on 2/4/8 shards must end with identical per-account
   balances (and, for the co-located family, byte-identical receipts);
   ``shards=1`` itself must be *byte-identical* to a plain
   :class:`~repro.chain.network.Testnet`, including a same-seed
   engine transcript.
2. **Exactly-once / fail-closed** — duplicated, replayed, forged and
   misrouted cross-shard deliveries must all revert at the inbox; the
   one legitimate delivery pays exactly once.
3. **Conservation** — sum of per-shard supplies plus in-flight value is
   constant through every experiment (no mint/burn at shard
   boundaries), via :func:`~repro.core.accounting.assert_shard_conservation`.
4. **Chaos interaction** — the PR 1 fault plans (drops/partitions) on a
   4-shard topology, and a PR 7 mid-run engine crash/resume on shards,
   both converge with exactly-once payment.
"""

from __future__ import annotations

import random

import pytest

import repro.contracts  # noqa: F401  (registers protocol contract classes)
from repro.crypto import ecdsa
from repro.errors import ChainError
from repro.chain.faults import chaos_plan
from repro.chain.network import Testnet
from repro.chain.receipts import (
    ReceiptProof,
    encode_receipt,
    prove_receipt_inclusion,
)
from repro.chain.sharding import (
    INBOX_ADDRESS,
    OUTBOX_ADDRESS,
    XSHARD_SEND_EVENT,
    Beacon,
    BeaconLightClient,
    ShardAnchor,
    ShardedChain,
    XShardMessage,
    home_shard,
)
from repro.chain.transaction import Transaction, encode_call
from repro.core.accounting import assert_shard_conservation

pytestmark = pytest.mark.sharding

SHARD_COUNTS = (1, 2, 4, 8)
DIFF_SEEDS = 25


# ----- unit: assignment and routing ---------------------------------------------------


def test_home_shard_is_deterministic_and_in_range() -> None:
    rng = random.Random(11)
    for shards in (1, 2, 4, 8, 13):
        for _ in range(200):
            address = rng.randbytes(20)
            shard = home_shard(address, shards)
            assert 0 <= shard < shards
            assert shard == home_shard(address, shards)


def test_home_shard_spreads_uniformly_enough() -> None:
    rng = random.Random(12)
    counts = [0, 0, 0, 0]
    for _ in range(4000):
        counts[home_shard(rng.randbytes(20), 4)] += 1
    for count in counts:
        assert 800 <= count <= 1200, counts


def test_funding_near_binds_residence_first_wins() -> None:
    chain = ShardedChain(shards=4, miners=1, full_nodes=1)
    target = b"\x42" * 20
    account = b"\x43" * 20
    chain.fund(account, 1_000, near=target)
    assert chain.shard_of(account) == chain.shard_of(target)
    # A later contradictory hint cannot move an already-bound account.
    other = next(
        bytes([b]) * 20
        for b in range(256)
        if chain.shard_of(bytes([b]) * 20) != chain.shard_of(target)
    )
    chain.fund(account, 1_000, near=other)
    assert chain.shard_of(account) == chain.shard_of(target)
    assert chain.any_node.balance_of(account) == 2_000


# ----- byte-identity of shards=1 ------------------------------------------------------


def test_single_shard_is_byte_identical_to_plain_testnet() -> None:
    plain = Testnet(miners=2, full_nodes=2)
    sharded = ShardedChain(shards=1, miners=2, full_nodes=2)
    keys = [ecdsa.ECDSAKeyPair.from_seed(b"ident-%d" % i) for i in range(4)]
    for net in (plain, sharded):
        rng = random.Random(7)  # identical recipients on both nets
        for key in keys:
            net.fund(key.address(), 10**15)
        for i, key in enumerate(keys):
            tx = Transaction(
                nonce=0,
                gas_price=2,
                gas_limit=50_000,
                to=rng.randbytes(20),
                value=1_000 + i,
            )
            net.send_transaction(tx.sign(key))
        net.mine_blocks(3)
    assert (
        plain.any_node.head_block.block_hash
        == sharded.any_node.head_block.block_hash
    )
    assert (
        plain.any_node.head_state.state_root()
        == sharded.any_node.head_state.state_root()
    )
    # No bridge exists at shards=1: genesis carries no pre-installed
    # contracts and the genesis blocks are the same object shape.
    assert sharded.genesis.contracts == {}
    assert not sharded.any_node.head_state.account(OUTBOX_ADDRESS).is_contract


def test_single_shard_facade_passthroughs() -> None:
    sharded = ShardedChain(shards=1, miners=1, full_nodes=1)
    assert sharded.any_node is sharded.shard_testnets[0].any_node
    assert sharded.network is sharded.shard_testnets[0].network
    assert sharded.in_flight_value() == 0
    assert_shard_conservation(sharded)


# ----- differential equivalence -------------------------------------------------------


def _colocated_workload(seed: int, shards: int):
    """Family A: one-task accounts funded near their task; the *same*
    signed settlement transactions run at every shard count, so both
    balances and receipt encodings must be byte-equal."""
    rng = random.Random(seed)
    chain = ShardedChain(shards=shards, miners=1, full_nodes=1)
    tasks = [rng.randbytes(20) for _ in range(6)]
    keys = [
        ecdsa.ECDSAKeyPair.from_seed(b"colo-%d-%d" % (seed, i)) for i in range(6)
    ]
    pendings = [
        chain.fund_async(key.address(), 10**12, near=task)
        for key, task in zip(keys, tasks)
    ]
    chain.tx_sender.confirm_all(pendings)
    hashes = []
    for key, task in zip(keys, tasks):
        for nonce in range(rng.randrange(1, 4)):
            tx = Transaction(
                nonce=nonce,
                gas_price=1,
                gas_limit=50_000,
                to=task,
                value=rng.randrange(1, 10**6),
            )
            stx = tx.sign(key)
            hashes.append(stx.tx_hash)
            chain.send_transaction(stx)
    chain.mine_blocks(2)
    balances = {a: chain.any_node.balance_of(a) for a in tasks}
    balances.update(
        {key.address(): chain.any_node.balance_of(key.address()) for key in keys}
    )
    receipts = {
        h.hex(): encode_receipt(chain.any_node.get_receipt(h)) for h in hashes
    }
    assert_shard_conservation(chain)
    chain.assert_consensus()
    return balances, receipts


def _mixed_workload(seed: int, shards: int):
    """Family B: random transfers between accounts on their natural home
    shards; cross-shard pairs ride the outbox (different tx form, zero
    gas price), so balances — not receipt bytes — are the invariant."""
    rng = random.Random(seed)
    chain = ShardedChain(shards=shards, miners=1, full_nodes=1)
    keys = [
        ecdsa.ECDSAKeyPair.from_seed(b"mixed-%d-%d" % (seed, i)) for i in range(8)
    ]
    pendings = [chain.fund_async(key.address(), 10**12) for key in keys]
    chain.tx_sender.confirm_all(pendings)
    nonces = {key.address(): 0 for key in keys}
    hashes = []
    for _ in range(14):
        sender = rng.choice(keys)
        recipient = rng.choice(keys)
        if sender.address() == recipient.address():
            continue
        tx = chain.transfer_transaction(
            sender.address(),
            nonces[sender.address()],
            recipient.address(),
            rng.randrange(1, 10**6),
        )
        nonces[sender.address()] += 1
        stx = tx.sign(sender)
        hashes.append(stx.tx_hash)
        chain.send_transaction(stx)
    chain.mine_blocks(2)
    chain.drain_cross_shard()
    for h in hashes:
        receipt = chain.any_node.get_receipt(h)
        assert receipt is not None and receipt.success, (
            f"seed {seed} shards {shards}: {receipt and receipt.error}"
        )
    balances = {
        key.address(): chain.any_node.balance_of(key.address()) for key in keys
    }
    assert chain.in_flight_value() == 0
    assert_shard_conservation(chain)
    chain.assert_consensus()
    return balances


@pytest.mark.parametrize(
    "seed", range(DIFF_SEEDS), ids=[f"seed-{s:02d}" for s in range(DIFF_SEEDS)]
)
def test_differential_colocated_settlement(seed: int) -> None:
    base_balances, base_receipts = _colocated_workload(seed, shards=1)
    for shards in SHARD_COUNTS[1:]:
        balances, receipts = _colocated_workload(seed, shards=shards)
        assert balances == base_balances, f"balances diverge at shards={shards}"
        assert receipts == base_receipts, f"receipts diverge at shards={shards}"


@pytest.mark.parametrize(
    "seed", range(DIFF_SEEDS), ids=[f"seed-{s:02d}" for s in range(DIFF_SEEDS)]
)
def test_differential_mixed_transfers(seed: int) -> None:
    base_balances = _mixed_workload(seed, shards=1)
    for shards in SHARD_COUNTS[1:]:
        balances = _mixed_workload(seed, shards=shards)
        assert balances == base_balances, f"balances diverge at shards={shards}"


def test_engine_outcomes_invariant_across_shard_counts() -> None:
    """Same seed, shards 1 vs 4: byte-identical per-task outcomes
    (address, status, rewards) with conservation on the sharded run."""
    from repro.core.accounting import assert_exactly_once_payouts
    from repro.core.engine import ProtocolEngine, engine_system, make_uniform_specs

    lines = {}
    for shards in (1, 4):
        system = engine_system(4, 2, shards=shards)
        specs = make_uniform_specs(system, 4, 2)
        report = ProtocolEngine(system, specs).run()
        assert all(o.status == "completed" for o in report.outcomes)
        assert_exactly_once_payouts(system, specs, report.outcomes)
        assert_shard_conservation(system.testnet)
        lines[shards] = report.outcome_lines()
    assert lines[1] == lines[4], "task outcomes diverge across shard counts"


def test_engine_transcript_shards1_equals_unsharded_n4() -> None:
    """Fast engine-transcript identity (N=4); N=16 runs in the slow lane."""
    _assert_engine_transcript_identity(num_tasks=4)


@pytest.mark.slow
def test_engine_transcript_shards1_equals_unsharded_n16() -> None:
    _assert_engine_transcript_identity(num_tasks=16)


def _assert_engine_transcript_identity(num_tasks: int) -> None:
    from repro.core.engine import ProtocolEngine, engine_system, make_uniform_specs

    reports = []
    heads = []
    for shards in (None, 1):
        system = engine_system(num_tasks, 2, shards=shards)
        specs = make_uniform_specs(system, num_tasks, 2)
        report = ProtocolEngine(system, specs).run()
        reports.append(report.outcome_lines())
        heads.append(system.testnet.any_node.head_block.block_hash)
    assert reports[0] == reports[1]
    assert heads[0] == heads[1], "shards=1 engine transcript is not byte-identical"


# ----- exactly-once and fail-closed delivery ------------------------------------------


def _cross_shard_pair(chain: ShardedChain):
    """Two funded keypairs on distinct shards."""
    found = {}
    i = 0
    while len(found) < 2:
        key = ecdsa.ECDSAKeyPair.from_seed(b"xsend-%d" % i)
        found.setdefault(home_shard(key.address(), chain.num_shards), key)
        i += 1
    (s1, k1), (s2, k2) = sorted(found.items())[:2]
    chain.fund(k1.address(), 10**18)
    chain.fund(k2.address(), 10**18)
    return (s1, k1), (s2, k2)


def _delivered_send(chain: ShardedChain):
    """Perform one cross-shard send; returns everything needed to forge
    replays: (message, anchor, signature, proof, recipient, amount)."""
    (source, sender), (dest, recipient_key) = _cross_shard_pair(chain)
    amount = 12_345
    tx = chain.transfer_transaction(
        sender.address(), 0, recipient_key.address(), amount
    )
    stx = tx.sign(sender)
    chain.send_transaction(stx)
    chain.mine_block()  # includes the send; relayer submits the delivery
    chain.drain_cross_shard()
    send_receipt = chain.shard_testnets[source].any_node.get_receipt(stx.tx_hash)
    assert send_receipt is not None and send_receipt.success
    wire = next(
        log.fields["wire"]
        for log in send_receipt.logs
        if log.event == XSHARD_SEND_EVENT
    )
    message = XShardMessage.from_wire(wire)
    node = chain.shard_testnets[source].any_node
    block = node.block_by_number(send_receipt.block_number)
    receipts = list(node.receipts_for_block(block.block_hash))
    index = next(
        i for i, r in enumerate(receipts) if r.tx_hash == send_receipt.tx_hash
    )
    proof = prove_receipt_inclusion(receipts, index)
    anchor = ShardAnchor.of_block(source, block)
    signature = chain.beacon.sign_anchor(anchor)
    return message, anchor, signature, proof, recipient_key, amount


def _deliver_as_attacker(chain, dest_shard, anchor, signature, proof, message_wire):
    """Submit a deliver call from an independent funded account."""
    attacker = ecdsa.ECDSAKeyPair.from_seed(b"bridge-attacker")
    dest = chain.shard_testnets[dest_shard]
    dest.fund(attacker.address(), 10**12)
    tx = Transaction(
        nonce=dest.any_node.nonce_of(attacker.address()),
        gas_price=1,
        gas_limit=2_000_000,
        to=INBOX_ADDRESS,
        value=0,
        data=encode_call(
            "deliver",
            [
                anchor.to_wire(),
                signature,
                proof.receipt,
                proof.index,
                list(proof.siblings),
                message_wire,
            ],
        ),
    )
    stx = tx.sign(attacker)
    dest.send_transaction(stx)
    return dest.wait_for_receipt(stx.tx_hash)


def test_cross_shard_delivery_pays_exactly_once() -> None:
    chain = ShardedChain(shards=2, miners=1, full_nodes=1)
    message, anchor, signature, proof, recipient_key, amount = _delivered_send(chain)
    recipient = recipient_key.address()
    paid = chain.any_node.balance_of(recipient)
    assert paid == 10**18 + amount

    # Duplicate delivery: byte-identical replay of the proven message.
    receipt = _deliver_as_attacker(
        chain, message.dest_shard, anchor, signature, proof, message.to_wire()
    )
    assert not receipt.success
    assert "inbound nonce" in receipt.error
    assert chain.any_node.balance_of(recipient) == paid
    assert_shard_conservation(chain)


def test_forged_message_amount_is_rejected() -> None:
    chain = ShardedChain(shards=2, miners=1, full_nodes=1)
    message, anchor, signature, proof, recipient_key, _ = _delivered_send(chain)
    forged = XShardMessage(
        source_shard=message.source_shard,
        dest_shard=message.dest_shard,
        seq=message.seq + 1,  # fresh seq so the nonce check cannot save us
        source_block=message.source_block,
        sender=message.sender,
        recipient=message.recipient,
        amount=message.amount * 1_000,
    )
    before = chain.any_node.balance_of(recipient_key.address())
    receipt = _deliver_as_attacker(
        chain, message.dest_shard, anchor, signature, proof, forged.to_wire()
    )
    assert not receipt.success
    assert "not emitted" in receipt.error
    assert chain.any_node.balance_of(recipient_key.address()) == before
    assert_shard_conservation(chain)


def test_forged_anchor_signature_is_rejected() -> None:
    chain = ShardedChain(shards=2, miners=1, full_nodes=1)
    message, anchor, _, proof, recipient_key, _ = _delivered_send(chain)
    impostor = Beacon(ecdsa.ECDSAKeyPair.from_seed(b"not-the-beacon"), 2)
    fresh = XShardMessage(
        source_shard=message.source_shard,
        dest_shard=message.dest_shard,
        seq=message.seq + 1,
        source_block=message.source_block,
        sender=message.sender,
        recipient=message.recipient,
        amount=message.amount,
    )
    receipt = _deliver_as_attacker(
        chain,
        message.dest_shard,
        anchor,
        impostor.sign_anchor(anchor),
        proof,
        fresh.to_wire(),
    )
    assert not receipt.success
    assert "beacon" in receipt.error
    assert_shard_conservation(chain)


def test_tampered_receipt_proof_is_rejected() -> None:
    chain = ShardedChain(shards=2, miners=1, full_nodes=1)
    message, anchor, signature, proof, _, _ = _delivered_send(chain)
    # A bogus sibling changes the computed root, so even the *original*
    # message cannot be re-proven under this proof.
    tampered = ReceiptProof(
        receipt=proof.receipt,
        index=proof.index,
        siblings=proof.siblings + (b"\x13" * 32,),
    )
    receipt = _deliver_as_attacker(
        chain, message.dest_shard, anchor, signature, tampered, message.to_wire()
    )
    assert not receipt.success
    assert "proof" in receipt.error
    assert_shard_conservation(chain)


def test_delivery_to_wrong_shard_fails_closed() -> None:
    chain = ShardedChain(shards=4, miners=1, full_nodes=1)
    message, anchor, signature, proof, _, _ = _delivered_send(chain)
    wrong = next(
        s
        for s in range(chain.num_shards)
        if s not in (message.dest_shard, message.source_shard)
    )
    receipt = _deliver_as_attacker(
        chain, wrong, anchor, signature, proof, message.to_wire()
    )
    assert not receipt.success
    assert "different shard" in receipt.error
    assert_shard_conservation(chain)


def test_malformed_payloads_fail_closed_not_crash() -> None:
    """Garbage wires must revert inside the inbox, never crash block
    production (the VM only converts declared contract errors)."""
    chain = ShardedChain(shards=2, miners=1, full_nodes=1)
    message, anchor, signature, proof, _, _ = _delivered_send(chain)
    for bad_anchor, bad_message in [
        (b"junk", message.to_wire()),
        (anchor.to_wire(), b"\x00" * 7),
        (anchor.to_wire()[:-1], message.to_wire()),
        (message.to_wire(), anchor.to_wire()),  # cross-codec swap
    ]:
        attacker = ecdsa.ECDSAKeyPair.from_seed(b"mal-attacker")
        dest = chain.shard_testnets[message.dest_shard]
        dest.fund(attacker.address(), 10**12)
        tx = Transaction(
            nonce=dest.any_node.nonce_of(attacker.address()),
            gas_price=1,
            gas_limit=2_000_000,
            to=INBOX_ADDRESS,
            value=0,
            data=encode_call(
                "deliver",
                [bad_anchor, signature, proof.receipt, proof.index,
                 list(proof.siblings), bad_message],
            ),
        )
        stx = tx.sign(attacker)
        dest.send_transaction(stx)
        receipt = dest.wait_for_receipt(stx.tx_hash)
        assert not receipt.success
        assert "malformed" in receipt.error
    assert_shard_conservation(chain)


def test_outbox_requires_value_and_foreign_destination() -> None:
    chain = ShardedChain(shards=2, miners=1, full_nodes=1)
    key = ecdsa.ECDSAKeyPair.from_seed(b"outbox-cases")
    chain.fund(key.address(), 10**12)
    shard = chain.shard_of(key.address())
    net = chain.shard_testnets[shard]
    cases = [
        (shard, 100, "local shard"),       # destination == source
        (1 - shard, 0, "carry value"),     # zero value
        (7, 100, "out of range"),          # no such shard
    ]
    for nonce, (dest, value, expected) in enumerate(cases):
        tx = Transaction(
            nonce=nonce,
            gas_price=1,
            gas_limit=500_000,
            to=OUTBOX_ADDRESS,
            value=value,
            data=encode_call("send", [dest, b"\x05" * 20]),
        )
        stx = tx.sign(key)
        net.send_transaction(stx)
        receipt = net.wait_for_receipt(stx.tx_hash)
        assert not receipt.success and expected in receipt.error, receipt.error
    assert_shard_conservation(chain)


# ----- the beacon and its light client ------------------------------------------------


def test_beacon_light_client_verifies_anchored_receipts() -> None:
    chain = ShardedChain(shards=2, miners=1, full_nodes=1)
    message, anchor, _, proof, _, _ = _delivered_send(chain)
    client = BeaconLightClient(chain.beacon_key.address())
    for block in chain.beacon.blocks:
        client.import_beacon_block(block.to_wire())
    assert client.height == len(chain.beacon.blocks)
    assert client.verify_shard_receipt(anchor.shard, anchor.number, proof)
    # A tampered proof fails; an unanchored height fails.
    tampered = ReceiptProof(
        receipt=proof.receipt,
        index=proof.index,
        siblings=proof.siblings + (b"\x13" * 32,),
    )
    assert not client.verify_shard_receipt(anchor.shard, anchor.number, tampered)
    assert not client.verify_shard_receipt(anchor.shard, anchor.number + 999, proof)


def test_beacon_light_client_rejects_forks_and_forgeries() -> None:
    chain = ShardedChain(shards=2, miners=1, full_nodes=1)
    chain.mine_blocks(2)
    client = BeaconLightClient(chain.beacon_key.address())
    blocks = chain.beacon.blocks
    client.import_beacon_block(blocks[0].to_wire())
    with pytest.raises(ChainError):
        client.import_beacon_block(blocks[0].to_wire())  # replay (not an extension)
    # An impostor beacon's round is rejected on the signature.
    impostor = Beacon(ecdsa.ECDSAKeyPair.from_seed(b"fake-beacon"), 2)
    impostor.observe([net.any_node.head_block for net in chain.shard_testnets])
    forged = impostor.blocks[0]
    forged_next = type(forged)(
        number=1, parent=blocks[0].beacon_hash, anchors=forged.anchors
    )
    with pytest.raises(ChainError):
        client.import_beacon_block(forged_next.to_wire())


# ----- chaos interaction --------------------------------------------------------------


def test_sharded_transfers_survive_chaos_plans() -> None:
    """PR 1 fault plans (drops, delays, duplicates, partition windows)
    on every shard of a 4-shard topology: all settlements, including
    cross-shard ones relayed through the faulty fabric, land exactly
    once and the shards converge after heal."""
    plans = [chaos_plan(1_000 + k) for k in range(4)]
    chain = ShardedChain(shards=4, miners=2, full_nodes=2, fault_plan=plans)
    keys = [ecdsa.ECDSAKeyPair.from_seed(b"chaos-%d" % i) for i in range(6)]
    pendings = [chain.fund_async(key.address(), 10**12) for key in keys]
    chain.tx_sender.confirm_all(pendings)
    expected = {key.address(): 10**12 for key in keys}
    nonces = {key.address(): 0 for key in keys}
    rng = random.Random(505)
    for _ in range(10):
        sender = rng.choice(keys)
        recipient = rng.choice(keys)
        if sender.address() == recipient.address():
            continue
        amount = rng.randrange(1, 10**6)
        tx = chain.transfer_transaction(
            sender.address(), nonces[sender.address()], recipient.address(), amount
        )
        nonces[sender.address()] += 1
        # Reliable submission through the lossy fabric.
        chain.tx_sender.send(tx, sender)
        expected[sender.address()] -= amount
        expected[recipient.address()] += amount
    # Run every shard's schedule past its horizon so all crash and
    # partition windows close, then settle stragglers and reconcile.
    horizon = max(plan.horizon for plan in plans)
    while min(net.height for net in chain.shard_testnets) <= horizon:
        chain.mine_block()
    chain.mine_until(lambda: chain.in_flight_value() == 0, max_blocks=96)
    for net in chain.shard_testnets:
        net.network.heal()
    chain.assert_consensus()
    actual = {
        key.address(): chain.any_node.balance_of(key.address()) for key in keys
    }
    assert actual == expected
    assert_shard_conservation(chain)


def test_engine_crash_resume_on_four_shards() -> None:
    """PR 7 mid-run crash/resume with the chain sharded four ways: the
    resumed engine converges to the same outcomes with exactly-once
    payment and cross-shard conservation intact."""
    from repro.core.accounting import assert_exactly_once_payouts
    from repro.core.checkpoint import CheckpointStore
    from repro.core.engine import (
        ProtocolEngine,
        SimulatedEngineCrash,
        engine_system,
        make_uniform_specs,
    )

    system = engine_system(3, 2, seed=b"shard-crash", shards=4)
    specs = make_uniform_specs(system, 3, 2)
    store = CheckpointStore()

    def crash_hook(engine, rounds):
        if rounds == 3:
            raise SimulatedEngineCrash("killed mid-run on shards")

    engine = ProtocolEngine(
        system, specs, checkpoint_store=store, checkpoint_every=1,
        crash_hook=crash_hook,
    )
    with pytest.raises(SimulatedEngineCrash):
        engine.run()

    resumed = ProtocolEngine.resume(system, store.latest())
    report = resumed.run()
    assert all(outcome.status == "completed" for outcome in report.outcomes)
    assert_exactly_once_payouts(system, specs, report.outcomes)
    assert_shard_conservation(system.testnet)
    system.testnet.assert_consensus()
