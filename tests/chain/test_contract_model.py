"""The contract programming model: storage metering, registry, visibility."""

from __future__ import annotations

import pytest

from repro.errors import ChainError, ContractError
from repro.chain.contract import (
    BlockContext,
    Contract,
    ContractRegistry,
    ExecutionContext,
    MeteredStorage,
    external,
    view,
)
from repro.chain.gas import GasMeter
from repro.chain.state import WorldState


def _context(read_only: bool = False) -> ExecutionContext:
    return ExecutionContext(
        state=WorldState(),
        meter=GasMeter(limit=10**7),
        block=BlockContext(number=3, timestamp=1_500_000_045, coinbase=b"\xcc" * 20),
        origin=b"\x01" * 20,
        vm=None,
        read_only=read_only,
    )


def test_metered_storage_charges_reads_and_writes() -> None:
    ctx = _context()
    storage = MeteredStorage({}, ctx.meter)
    storage["k"] = 1
    first_write = ctx.meter.used
    assert first_write >= ctx.meter.schedule.storage_set
    storage["k"] = 2  # update, cheaper
    assert ctx.meter.used - first_write == ctx.meter.schedule.storage_update
    before = ctx.meter.used
    assert storage["k"] == 2
    assert ctx.meter.used - before == ctx.meter.schedule.storage_read


def test_metered_storage_dict_protocol() -> None:
    ctx = _context()
    storage = MeteredStorage({"a": 1}, ctx.meter)
    assert "a" in storage
    assert storage.get("missing", 42) == 42
    assert storage.keys() == ["a"]
    del storage["a"]
    assert storage.get("a") is None


def test_registry_rejects_duplicate_names() -> None:
    @ContractRegistry.register
    class UniqueThing(Contract):
        contract_name = "UniqueThingForTest"

    with pytest.raises(ChainError):

        @ContractRegistry.register
        class Impostor(Contract):
            contract_name = "UniqueThingForTest"


def test_registry_reregistering_same_class_is_idempotent() -> None:
    @ContractRegistry.register
    class Idem(Contract):
        contract_name = "IdemForTest"

    assert ContractRegistry.register(Idem) is Idem
    assert ContractRegistry.resolve("IdemForTest") is Idem


def test_registry_unknown_name() -> None:
    with pytest.raises(ChainError):
        ContractRegistry.resolve("NoSuchContract")


def test_known_contracts_include_zebralancer() -> None:
    import repro.contracts  # noqa: F401

    known = ContractRegistry.known()
    assert "ZebraLancerTask" in known
    assert "ZebraLancerRegistry" in known


def test_require_semantics() -> None:
    Contract.require(True)
    with pytest.raises(ContractError, match="custom message"):
        Contract.require(False, "custom message")


def test_visibility_decorators() -> None:
    class Thing(Contract):
        @external
        def mutate(self):
            ...

        @view
        def read(self):
            ...

        def internal(self):
            ...

    assert Thing.mutate.__contract_visibility__ == "external"
    assert Thing.read.__contract_visibility__ == "view"
    assert not hasattr(Thing.internal, "__contract_visibility__")


def test_read_only_context_blocks_transfer() -> None:
    ctx = _context(read_only=True)
    ctx.state.credit(b"\x09" * 20, 100)
    contract = Contract(
        address=b"\x09" * 20,
        storage=MeteredStorage({}, ctx.meter),
        ctx=ctx,
        msg_sender=b"\x01" * 20,
        msg_value=0,
    )
    with pytest.raises(ContractError):
        contract.transfer(b"\x02" * 20, 10)


def test_transfer_returns_false_when_underfunded() -> None:
    """Algorithm 1's transfer() semantics: no revert, just False."""
    ctx = _context()
    contract = Contract(
        address=b"\x09" * 20,
        storage=MeteredStorage({}, ctx.meter),
        ctx=ctx,
        msg_sender=b"\x01" * 20,
        msg_value=0,
    )
    assert contract.transfer(b"\x02" * 20, 10) is False
    ctx.state.credit(b"\x09" * 20, 100)
    assert contract.transfer(b"\x02" * 20, 10) is True
    assert contract.transfer(b"\x02" * 20, -5) is False


def test_block_environment_exposed() -> None:
    ctx = _context()
    contract = Contract(
        address=b"\x09" * 20,
        storage=MeteredStorage({}, ctx.meter),
        ctx=ctx,
        msg_sender=b"\x01" * 20,
        msg_value=7,
    )
    assert contract.block_number == 3
    assert contract.block_timestamp == 1_500_000_045
    assert contract.tx_origin == b"\x01" * 20
    assert contract.msg_value == 7


def test_emit_appends_logs_and_charges() -> None:
    ctx = _context()
    contract = Contract(
        address=b"\x09" * 20,
        storage=MeteredStorage({}, ctx.meter),
        ctx=ctx,
        msg_sender=b"\x01" * 20,
        msg_value=0,
    )
    used_before = ctx.meter.used
    contract.emit("Something", value=42)
    assert ctx.logs[0].event == "Something"
    assert ctx.logs[0].fields == {"value": 42}
    assert ctx.meter.used > used_before
