"""Fault-plan determinism and the network's fault machinery."""

from __future__ import annotations

import pytest

from repro.errors import ChainError
from repro.chain.faults import (
    BLOCK,
    TX,
    CrashWindow,
    FaultPlan,
    LinkFaults,
    PartitionWindow,
    chaos_plan,
)
from repro.chain.network import Testnet


def _decision_trace(plan: FaultPlan, n: int = 200):
    return [plan.deliveries(TX, None, f"node-{i % 4}") for i in range(n)]


def test_fault_plan_is_deterministic_per_seed() -> None:
    trace_a = _decision_trace(FaultPlan(seed=7, tx_faults=LinkFaults(
        drop=0.2, delay=0.3, duplicate=0.1)))
    trace_b = _decision_trace(FaultPlan(seed=7, tx_faults=LinkFaults(
        drop=0.2, delay=0.3, duplicate=0.1)))
    assert trace_a == trace_b


def test_fault_plan_seeds_differ() -> None:
    faults = LinkFaults(drop=0.2, delay=0.3, duplicate=0.1)
    trace_a = _decision_trace(FaultPlan(seed=1, tx_faults=faults))
    trace_b = _decision_trace(FaultPlan(seed=2, tx_faults=faults))
    assert trace_a != trace_b


def test_immune_receivers_always_get_clean_delivery() -> None:
    plan = FaultPlan(seed=3, tx_faults=LinkFaults(drop=1.0), immune=("miner-0",))
    assert plan.deliveries(TX, None, "miner-0") == [0]
    assert plan.deliveries(TX, None, "full-0") == []


def test_crash_and_partition_windows() -> None:
    plan = FaultPlan(
        seed=0,
        crashes=(CrashWindow("full-1", 3, 6),),
        partitions=(PartitionWindow(8, 10, (("a",), ("b",))),),
    )
    assert not plan.crashed_at("full-1", 2)
    assert plan.crashed_at("full-1", 3)
    assert plan.crashed_at("full-1", 5)
    assert not plan.crashed_at("full-1", 6)
    assert plan.partition_groups(7) is None
    assert plan.partition_groups(8) == (("a",), ("b",))
    assert plan.partition_groups(10) is None
    assert plan.horizon == 10


def test_invalid_rates_and_windows_rejected() -> None:
    with pytest.raises(ValueError):
        LinkFaults(drop=1.5)
    with pytest.raises(ValueError):
        CrashWindow("x", 5, 5)
    with pytest.raises(ValueError):
        PartitionWindow(1, 4, (("only-one-group",),))


def test_dropped_transaction_never_arrives() -> None:
    plan = FaultPlan(seed=0, tx_faults=LinkFaults(drop=1.0))
    net = Testnet(fault_plan=plan)
    net.send_transaction(_simple_tx(net))
    assert all(len(node.mempool) == 0 for node in net.network.nodes)
    assert net.network.stats.dropped >= len(net.network.nodes)


def test_delayed_transaction_released_on_block_tick() -> None:
    plan = FaultPlan(
        seed=0, tx_faults=LinkFaults(delay=1.0, max_delay_blocks=1)
    )
    net = Testnet(fault_plan=plan)
    net.send_transaction(_simple_tx(net))
    assert all(len(node.mempool) == 0 for node in net.network.nodes)
    net.mine_block()  # tick releases the delayed copies
    assert any(len(node.mempool) == 1 for node in net.network.nodes)


def test_scheduled_crash_and_restart_reconverges() -> None:
    plan = FaultPlan(seed=0, crashes=(CrashWindow("full-1", 2, 4),))
    net = Testnet(fault_plan=plan)
    crashed = net.full_nodes[1]
    net.mine_block()  # height 1: everyone up
    net.mine_block()  # height 2: full-1 crashes on this tick
    assert crashed.crashed
    with pytest.raises(ChainError):
        crashed.import_block(net.any_node.head_block)
    net.mine_block()  # height 3: still down, misses this block too
    net.mine_block()  # height 4: restart + journal replay + peer sync
    assert not crashed.crashed
    assert crashed.height == net.network.height
    net.assert_consensus()
    assert net.network.stats.crashes == 1
    assert net.network.stats.restarts == 1


def test_partition_window_applies_and_heals() -> None:
    plan = FaultPlan(
        seed=0,
        partitions=(PartitionWindow(
            2, 4, (("miner-0", "miner-1", "full-0"), ("full-1",)),
        ),),
    )
    net = Testnet(fault_plan=plan)
    isolated = net.full_nodes[1]
    net.mine_block()
    net.mine_block()  # partition begins
    net.mine_block()  # mined inside the window: full-1 must miss it
    assert isolated.height < net.network.height
    net.mine_block()  # window over: heal + head-relative sync
    assert isolated.height == net.network.height
    net.assert_consensus()


def test_chaos_plan_shape() -> None:
    plan = chaos_plan(seed=42)
    assert plan.crashes and plan.partitions
    assert "miner-0" in plan.immune
    assert plan.horizon > 0
    # Determinism across constructions.
    again = chaos_plan(seed=42)
    assert again.crashes == plan.crashes
    assert again.partitions == plan.partitions


def _simple_tx(net: Testnet):
    from repro.crypto import ecdsa
    from repro.chain.transaction import Transaction

    key = ecdsa.ECDSAKeyPair.from_seed(b"fault-user")
    # Fund without faults by crediting state at genesis is not possible
    # here, so pay from the faucet directly (signature-valid, nonce 0,
    # zero balance is fine for mempool admission of the faucet's key).
    return Transaction(
        nonce=0, gas_price=1, gas_limit=21_000,
        to=key.address(), value=1,
    ).sign(net.faucet_key)
