"""Receipt-proof light clients: valid proofs verify, forgeries fail.

A light client holding only validated headers checks a payout by
verifying a Merkle branch from the receipt encoding up to the header's
``receipts_root``.  The adversarial cases each tamper with one link:
the leaf (a lying receipt body), the path (truncated or
sibling-swapped), the index, and the anchor (a header that lost a
reorg).
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.contracts  # noqa: F401
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.chain.consensus import PoAEngine
from repro.chain.light import LightClient, serve_receipt_proof
from repro.chain.node import GenesisConfig, Node
from repro.chain.receipts import (
    Receipt,
    ReceiptProof,
    STATUS_SUCCESS,
    prove_receipt_inclusion,
    receipts_root,
    verify_receipt_proof,
)
from repro.chain.transaction import Transaction

MINER = ecdsa.ECDSAKeyPair.from_seed(b"rp-miner")
USER = ecdsa.ECDSAKeyPair.from_seed(b"rp-user")
PAYEE = b"\x42" * 20


def _node(name: str = "full") -> Node:
    genesis = GenesisConfig(allocations={USER.address(): 10**12})
    engine = PoAEngine([MINER.address()])
    return Node(name, genesis, engine=engine, keypair=MINER, is_miner=True)


def _light_for(node: Node) -> LightClient:
    return LightClient(node.engine, node.block_by_number(0).header)


def _mine_payout(node: Node, nonce: int = 0, timestamp: int = 1_500_000_015):
    stx = Transaction(nonce=nonce, gas_price=1, gas_limit=21_000,
                      to=PAYEE, value=777).sign(USER)
    node.submit_transaction(stx)
    node.create_block(timestamp=timestamp)
    return stx


# ----- trie-level -------------------------------------------------------------


def _receipts(count: int):
    return [
        Receipt(tx_hash=sha256(b"rp", bytes([i])), status=STATUS_SUCCESS,
                gas_used=21_000 + i, block_number=1)
        for i in range(count)
    ]


@pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
def test_every_receipt_provable(count: int) -> None:
    receipts = _receipts(count)
    root = receipts_root(receipts)
    for index in range(count):
        assert verify_receipt_proof(root, prove_receipt_inclusion(receipts, index))


def test_receipt_and_tx_tries_are_domain_separated() -> None:
    """A single-leaf tx trie and receipts trie over the same bytes must
    not share a root (distinct leaf prefixes)."""
    from repro.chain.txtrie import merkle_root
    from repro.chain.receipts import RECEIPT_LEAF_PREFIX, EMPTY_RECEIPTS_ROOT

    payload = b"same-bytes"
    assert merkle_root([payload]) != merkle_root(
        [payload], leaf_prefix=RECEIPT_LEAF_PREFIX, empty_root=EMPTY_RECEIPTS_ROOT
    )


def test_wrong_leaf_rejected() -> None:
    """A proof whose claimed receipt lies about any field fails."""
    receipts = _receipts(4)
    root = receipts_root(receipts)
    proof = prove_receipt_inclusion(receipts, 2)
    inflated = dataclasses.replace(
        proof, receipt=dataclasses.replace(proof.receipt, gas_used=1)
    )
    assert not verify_receipt_proof(root, inflated)
    restatused = dataclasses.replace(
        proof, receipt=dataclasses.replace(proof.receipt, status=0)
    )
    assert not verify_receipt_proof(root, restatused)


def test_truncated_path_rejected() -> None:
    receipts = _receipts(5)
    root = receipts_root(receipts)
    proof = prove_receipt_inclusion(receipts, 3)
    assert len(proof.siblings) > 1
    truncated = dataclasses.replace(proof, siblings=proof.siblings[:-1])
    assert not verify_receipt_proof(root, truncated)


def test_sibling_swapped_path_rejected() -> None:
    receipts = _receipts(8)
    root = receipts_root(receipts)
    proof = prove_receipt_inclusion(receipts, 2)
    swapped = dataclasses.replace(
        proof, siblings=tuple(reversed(proof.siblings))
    )
    assert not verify_receipt_proof(root, swapped)
    corrupted = dataclasses.replace(
        proof,
        siblings=(sha256(b"evil"),) + proof.siblings[1:],
    )
    assert not verify_receipt_proof(root, corrupted)


def test_wrong_index_rejected() -> None:
    receipts = _receipts(6)
    root = receipts_root(receipts)
    proof = prove_receipt_inclusion(receipts, 4)
    moved = dataclasses.replace(proof, index=1)
    assert not verify_receipt_proof(root, moved)


def test_prove_index_bounds() -> None:
    with pytest.raises(IndexError):
        prove_receipt_inclusion(_receipts(3), 3)


# ----- end-to-end via the light client ----------------------------------------


def test_light_client_verifies_payout_receipt() -> None:
    node = _node()
    stx = _mine_payout(node)
    light = _light_for(node)
    light.sync_from(node)
    served = serve_receipt_proof(node, stx.tx_hash)
    assert served is not None
    proof, number = served
    assert light.verify_receipt_inclusion(proof, number)
    assert proof.receipt.success
    # Unknown block number → no anchor → reject.
    assert not light.verify_receipt_inclusion(proof, number + 7)
    # Same proof against a forged receipt body → reject.
    forged = dataclasses.replace(
        proof, receipt=dataclasses.replace(proof.receipt, gas_used=1)
    )
    assert not light.verify_receipt_inclusion(forged, number)


def test_serve_receipt_proof_unknown_tx() -> None:
    node = _node()
    assert serve_receipt_proof(node, sha256(b"never-mined")) is None


def test_reorged_away_proof_rejected_and_canonical_proof_verifies() -> None:
    """A proof anchored in a header that loses a reorg must fail, while
    the same payout re-proved on the winning branch verifies — across a
    ``sync_from`` that follows the reorg."""
    node_a = _node("a")
    node_b = _node("b")

    # Branch A: payout mined at height 1.
    stx = _mine_payout(node_a)
    light = _light_for(node_a)
    light.sync_from(node_a)
    served = serve_receipt_proof(node_a, stx.tx_hash)
    assert served is not None
    proof_a, number_a = served
    assert light.verify_receipt_inclusion(proof_a, number_a)

    # Branch B (longer, same payout mined later): heights 1–2.
    node_b.create_block(timestamp=1_500_000_015)  # empty block
    stx_b = _mine_payout(node_b, timestamp=1_500_000_030)
    assert stx_b.tx_hash == stx.tx_hash  # same signed payout tx

    # Node A adopts branch B; the light client follows.
    for number in (1, 2):
        node_a.import_block(node_b.block_by_number(number))
    assert node_a.height == 2
    light.sync_from(node_a)
    assert light.height == 2

    # The stale proof no longer verifies anywhere: its anchor header
    # at height 1 was replaced (empty block), and the branch does not
    # match height 2 either.
    assert not light.verify_receipt_inclusion(proof_a, 1)
    assert not light.verify_receipt_inclusion(proof_a, 2)

    # A fresh proof from the canonical chain verifies at height 2.
    served = serve_receipt_proof(node_a, stx.tx_hash)
    assert served is not None
    proof_b, number_b = served
    assert number_b == 2
    assert light.verify_receipt_inclusion(proof_b, number_b)
