"""Throughput load harness: the concurrent engine vs the serial baseline.

Drives identical :class:`~repro.core.engine.TaskSpec` cohorts through
``run_serial`` (one task at a time, ~one block per transaction) and
:class:`~repro.core.engine.ProtocolEngine` (overlapped phases, batched
blocks, pooled proving) on a fresh chain each, and records:

- wall-clock per driver (best of ``repeats`` interleaved runs, which
  de-noises the shared-host jitter this box exhibits),
- tasks/sec and the speedup ratio,
- phase-latency percentiles, two ways: per-task phase transitions in
  *blocks* (chain-derived, deterministic) and observability-span wall
  times from one extra instrumented engine run (``engine.round``,
  ``snark.prove``, ``chain.create_block``, ``chain.import_block``).

Results merge into ``BENCH_throughput.json`` at the repo root keyed by
``{backend}-n{N}-m{M}``, so the smoke lane (N=8) and the full gate
(N=32) write into one artifact.

Run the sweep by hand::

    PYTHONPATH=src python benchmarks/bench_throughput.py --tasks 4 8 16 --workers 3

or the asserted gates via pytest (see the CI ``throughput-smoke`` lane)::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_throughput.py -k smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Sequence

import pytest

from repro import observability as obs
from repro.core.engine import (
    COLLECTING,
    FUNDING,
    FUNDING_WORKERS,
    PROVING,
    PUBLISHING,
    REWARDING,
    SUBMITTING,
    EngineReport,
    ProtocolEngine,
    engine_system,
    make_uniform_specs,
    run_serial,
)

_BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: Engine phase transitions, in protocol order (for per-task latencies).
_PHASE_ORDER = [
    FUNDING,
    PUBLISHING,
    FUNDING_WORKERS,
    SUBMITTING,
    COLLECTING,
    PROVING,
    REWARDING,
]

#: Span names whose wall-time distribution the instrumented run records.
_SPAN_NAMES = ("engine.round", "snark.prove", "chain.create_block", "chain.import_block")


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    if not values:
        return {}
    ordered = sorted(values)
    def pick(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]
    return {
        "p50": pick(0.50),
        "p90": pick(0.90),
        "p99": pick(0.99),
        "max": ordered[-1],
        "count": len(ordered),
    }


def _fresh(num_tasks: int, workers: int, backend: str):
    system = engine_system(
        num_tasks,
        workers,
        backend_name=backend,
        seed=b"throughput-%d-%d" % (num_tasks, workers),
    )
    specs = make_uniform_specs(system, num_tasks, workers, seed=7)
    return system, specs


def _phase_latency_blocks(report: EngineReport) -> Dict[str, Dict[str, float]]:
    """Per-phase block latency percentiles across the cohort."""
    out: Dict[str, Dict[str, float]] = {}
    for prev, phase in zip(_PHASE_ORDER, _PHASE_ORDER[1:]):
        deltas = [
            outcome.phase_blocks[phase] - outcome.phase_blocks[prev]
            for outcome in report.outcomes
            if phase in outcome.phase_blocks and prev in outcome.phase_blocks
        ]
        if deltas:
            out[f"{prev}->{phase}"] = _percentiles(deltas)
    return out


def _instrumented_span_latencies(
    num_tasks: int, workers: int, backend: str
) -> Dict[str, Dict[str, float]]:
    """One extra engine run with the tracer on, for span percentiles.

    Kept out of the timed runs so instrumentation overhead never skews
    the speedup measurement.
    """
    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        system, specs = _fresh(num_tasks, workers, backend)
        ProtocolEngine(system, specs).run()
        spans = obs.TRACER.finished_spans()
    finally:
        if not was_enabled:
            obs.disable()
        obs.reset()
    latencies: Dict[str, Dict[str, float]] = {}
    for name in _SPAN_NAMES:
        durations = [s.end - s.start for s in spans if s.name == name and s.end is not None]
        if durations:
            latencies[name] = _percentiles(durations)
    return latencies


def measure_pair(
    num_tasks: int,
    workers: int,
    backend: str = "mock",
    repeats: int = 2,
    instrument: bool = True,
) -> Dict[str, Any]:
    """Serial vs engine over identical specs; best-of-``repeats`` each.

    The two drivers alternate within each repeat so slow host-level
    drift (frequency scaling, a noisy neighbour) hits both rather than
    biasing whichever ran last.
    """
    serial_times: List[float] = []
    engine_times: List[float] = []
    serial_report: Optional[EngineReport] = None
    engine_report: Optional[EngineReport] = None
    for _ in range(max(1, repeats)):
        system, specs = _fresh(num_tasks, workers, backend)
        serial_report = run_serial(system, specs)
        serial_times.append(serial_report.wall_seconds)

        system, specs = _fresh(num_tasks, workers, backend)
        engine_report = ProtocolEngine(system, specs).run()
        engine_times.append(engine_report.wall_seconds)

    assert serial_report is not None and engine_report is not None
    serial_rewards = [o.rewards for o in serial_report.outcomes]
    engine_rewards = [o.rewards for o in engine_report.outcomes]
    if serial_rewards != engine_rewards:
        raise AssertionError(
            "engine and serial drivers disagree on rewards — not a fair benchmark"
        )

    best_serial = min(serial_times)
    best_engine = min(engine_times)
    record: Dict[str, Any] = {
        "backend": backend,
        "num_tasks": num_tasks,
        "workers_per_task": workers,
        "repeats": repeats,
        "serial_seconds": round(best_serial, 4),
        "engine_seconds": round(best_engine, 4),
        "serial_seconds_all": [round(t, 4) for t in serial_times],
        "engine_seconds_all": [round(t, 4) for t in engine_times],
        "serial_tasks_per_sec": round(num_tasks / best_serial, 4),
        "engine_tasks_per_sec": round(num_tasks / best_engine, 4),
        "speedup": round(best_serial / best_engine, 4),
        "serial_blocks": serial_report.blocks_mined,
        "engine_blocks": engine_report.blocks_mined,
        "engine_rounds": engine_report.rounds,
        "engine_transactions": engine_report.transactions,
        "serial_transactions": serial_report.transactions,
        "engine_tasks_per_block": round(engine_report.tasks_per_block, 4),
        "phase_latency_blocks": _phase_latency_blocks(engine_report),
    }
    if instrument:
        record["span_latency_seconds"] = _instrumented_span_latencies(
            num_tasks, workers, backend
        )
    return record


def write_record(record: Dict[str, Any]) -> None:
    """Merge one measurement into BENCH_throughput.json (keyed by shape)."""
    document: Dict[str, Any] = {}
    if _BENCH_PATH.exists():
        try:
            document = json.loads(_BENCH_PATH.read_text())
        except ValueError:
            document = {}
    document.setdefault("generated_with", "benchmarks/bench_throughput.py")
    document["host"] = {"cpu_count": os.cpu_count()}
    key = "%s-n%d-m%d" % (
        record["backend"], record["num_tasks"], record["workers_per_task"],
    )
    document.setdefault("measurements", {})[key] = record
    _BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


# ----- asserted gates (run from CI) --------------------------------------------------


def test_throughput_smoke_n8() -> None:
    """CI smoke gate: at N=8 the engine must be >=2x the serial driver."""
    record = measure_pair(num_tasks=8, workers=3, backend="mock", repeats=2)
    write_record(record)
    assert record["speedup"] >= 2.0, (
        f"engine speedup {record['speedup']}x below the 2x smoke floor "
        f"(serial {record['serial_seconds']}s, engine {record['engine_seconds']}s)"
    )
    # Batching is the mechanism: the engine must amortize blocks.
    assert record["engine_blocks"] < record["serial_blocks"] / 4


@pytest.mark.slow
def test_throughput_gate_n32() -> None:
    """The headline gate: >=3x tasks/sec at N=32 on the mock backend."""
    record = measure_pair(num_tasks=32, workers=3, backend="mock", repeats=2)
    write_record(record)
    assert record["speedup"] >= 3.0, (
        f"engine speedup {record['speedup']}x below the 3x gate "
        f"(serial {record['serial_seconds']}s, engine {record['engine_seconds']}s)"
    )


@pytest.mark.slow
def test_throughput_real_backend_point() -> None:
    """One real-Groth16 point: correctness parity + recorded numbers.

    With the real prover the SNARK dominates wall time on one core, so
    no speedup floor is asserted — the engine must simply not be slower
    than serial by more than measurement noise allows.
    """
    record = measure_pair(
        num_tasks=2, workers=2, backend="groth16", repeats=1, instrument=False
    )
    write_record(record)
    assert record["speedup"] > 0.8


# ----- manual sweep ------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, nargs="+", default=[4, 8, 16, 32])
    parser.add_argument("--workers", type=int, nargs="+", default=[3])
    parser.add_argument("--backend", default="mock", choices=["mock", "groth16"])
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)
    for workers in args.workers:
        for tasks in args.tasks:
            record = measure_pair(
                tasks, workers, backend=args.backend, repeats=args.repeats
            )
            write_record(record)
            print(
                f"N={tasks:3d} M={workers} {args.backend}: "
                f"serial {record['serial_seconds']:.2f}s "
                f"engine {record['engine_seconds']:.2f}s "
                f"speedup {record['speedup']:.2f}x "
                f"({record['engine_tasks_per_sec']:.2f} tasks/s)"
            )
    print(f"wrote {_BENCH_PATH}")


if __name__ == "__main__":
    main()
