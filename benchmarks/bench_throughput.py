"""Throughput load harness: the concurrent engine vs the serial baseline.

Drives identical :class:`~repro.core.engine.TaskSpec` cohorts through
``run_serial`` (one task at a time, ~one block per transaction) and
:class:`~repro.core.engine.ProtocolEngine` (overlapped phases, batched
blocks, pooled proving) on a fresh chain each, and records:

- wall-clock per driver (best of ``repeats`` interleaved runs, which
  de-noises the shared-host jitter this box exhibits),
- tasks/sec and the speedup ratio,
- phase-latency percentiles, two ways: per-task phase transitions in
  *blocks* (chain-derived, deterministic) and observability-span wall
  times from one extra instrumented engine run (``engine.round``,
  ``snark.prove``, ``chain.create_block``, ``chain.import_block``).

Results merge into ``BENCH_throughput.json`` at the repo root keyed by
``{backend}-n{N}-m{M}``, so the smoke lane (N=8) and the full gate
(N=32) write into one artifact.

Run the sweep by hand::

    PYTHONPATH=src python benchmarks/bench_throughput.py --tasks 4 8 16 --workers 3

or the asserted gates via pytest (see the CI ``throughput-smoke`` lane)::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_throughput.py -k smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import pytest

import repro.contracts  # noqa: F401  (registers KVStore for the parallel workload)
from repro import observability as obs
from repro.crypto import ecdsa
from repro.crypto.hashing import keccak256
from repro.chain.contract import BlockContext
from repro.chain.parallel import execute_block
from repro.chain.receipts import encode_receipt
from repro.chain.state import WorldState
from repro.chain.transaction import SignedTransaction, Transaction, encode_call
from repro.chain.vm import VM
from repro.core.engine import (
    COLLECTING,
    FUNDING,
    FUNDING_WORKERS,
    PROVING,
    PUBLISHING,
    REWARDING,
    SUBMITTING,
    EngineReport,
    ProtocolEngine,
    engine_system,
    make_uniform_specs,
    run_serial,
)

_BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: Engine phase transitions, in protocol order (for per-task latencies).
_PHASE_ORDER = [
    FUNDING,
    PUBLISHING,
    FUNDING_WORKERS,
    SUBMITTING,
    COLLECTING,
    PROVING,
    REWARDING,
]

#: Span names whose wall-time distribution the instrumented run records.
_SPAN_NAMES = ("engine.round", "snark.prove", "chain.create_block", "chain.import_block")


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    if not values:
        return {}
    ordered = sorted(values)
    def pick(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]
    return {
        "p50": pick(0.50),
        "p90": pick(0.90),
        "p99": pick(0.99),
        "max": ordered[-1],
        "count": len(ordered),
    }


def _fresh(num_tasks: int, workers: int, backend: str):
    system = engine_system(
        num_tasks,
        workers,
        backend_name=backend,
        seed=b"throughput-%d-%d" % (num_tasks, workers),
    )
    specs = make_uniform_specs(system, num_tasks, workers, seed=7)
    return system, specs


def _phase_latency_blocks(report: EngineReport) -> Dict[str, Dict[str, float]]:
    """Per-phase block latency percentiles across the cohort."""
    out: Dict[str, Dict[str, float]] = {}
    for prev, phase in zip(_PHASE_ORDER, _PHASE_ORDER[1:]):
        deltas = [
            outcome.phase_blocks[phase] - outcome.phase_blocks[prev]
            for outcome in report.outcomes
            if phase in outcome.phase_blocks and prev in outcome.phase_blocks
        ]
        if deltas:
            out[f"{prev}->{phase}"] = _percentiles(deltas)
    return out


def _instrumented_span_latencies(
    num_tasks: int, workers: int, backend: str
) -> Dict[str, Dict[str, float]]:
    """One extra engine run with the tracer on, for span percentiles.

    Kept out of the timed runs so instrumentation overhead never skews
    the speedup measurement.
    """
    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        system, specs = _fresh(num_tasks, workers, backend)
        ProtocolEngine(system, specs).run()
        spans = obs.TRACER.finished_spans()
    finally:
        if not was_enabled:
            obs.disable()
        obs.reset()
    latencies: Dict[str, Dict[str, float]] = {}
    for name in _SPAN_NAMES:
        durations = [s.end - s.start for s in spans if s.name == name and s.end is not None]
        if durations:
            latencies[name] = _percentiles(durations)
    return latencies


def measure_pair(
    num_tasks: int,
    workers: int,
    backend: str = "mock",
    repeats: int = 2,
    instrument: bool = True,
) -> Dict[str, Any]:
    """Serial vs engine over identical specs; best-of-``repeats`` each.

    The two drivers alternate within each repeat so slow host-level
    drift (frequency scaling, a noisy neighbour) hits both rather than
    biasing whichever ran last.
    """
    serial_times: List[float] = []
    engine_times: List[float] = []
    serial_report: Optional[EngineReport] = None
    engine_report: Optional[EngineReport] = None
    for _ in range(max(1, repeats)):
        system, specs = _fresh(num_tasks, workers, backend)
        serial_report = run_serial(system, specs)
        serial_times.append(serial_report.wall_seconds)

        system, specs = _fresh(num_tasks, workers, backend)
        engine_report = ProtocolEngine(system, specs).run()
        engine_times.append(engine_report.wall_seconds)

    assert serial_report is not None and engine_report is not None
    serial_rewards = [o.rewards for o in serial_report.outcomes]
    engine_rewards = [o.rewards for o in engine_report.outcomes]
    if serial_rewards != engine_rewards:
        raise AssertionError(
            "engine and serial drivers disagree on rewards — not a fair benchmark"
        )

    best_serial = min(serial_times)
    best_engine = min(engine_times)
    record: Dict[str, Any] = {
        "backend": backend,
        "num_tasks": num_tasks,
        "workers_per_task": workers,
        "repeats": repeats,
        "serial_seconds": round(best_serial, 4),
        "engine_seconds": round(best_engine, 4),
        "serial_seconds_all": [round(t, 4) for t in serial_times],
        "engine_seconds_all": [round(t, 4) for t in engine_times],
        "serial_tasks_per_sec": round(num_tasks / best_serial, 4),
        "engine_tasks_per_sec": round(num_tasks / best_engine, 4),
        "speedup": round(best_serial / best_engine, 4),
        "serial_blocks": serial_report.blocks_mined,
        "engine_blocks": engine_report.blocks_mined,
        "engine_rounds": engine_report.rounds,
        "engine_transactions": engine_report.transactions,
        "serial_transactions": serial_report.transactions,
        "engine_tasks_per_block": round(engine_report.tasks_per_block, 4),
        "phase_latency_blocks": _phase_latency_blocks(engine_report),
    }
    if instrument:
        record["span_latency_seconds"] = _instrumented_span_latencies(
            num_tasks, workers, backend
        )
    return record


def write_record(record: Dict[str, Any], key: Optional[str] = None) -> None:
    """Merge one measurement into BENCH_throughput.json (keyed by shape)."""
    document: Dict[str, Any] = {}
    if _BENCH_PATH.exists():
        try:
            document = json.loads(_BENCH_PATH.read_text())
        except ValueError:
            document = {}
    document.setdefault("generated_with", "benchmarks/bench_throughput.py")
    document["host"] = {"cpu_count": os.cpu_count()}
    if key is None:
        key = "%s-n%d-m%d" % (
            record["backend"], record["num_tasks"], record["workers_per_task"],
        )
    document.setdefault("measurements", {})[key] = record
    _BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


# ----- optimistic parallel block execution -------------------------------------------

_PX_COINBASE = b"\x7d" * 20
_PX_FUNDING = 10**15
_PX_CONTRACT_COUNT = 8


def _px_contract(index: int) -> bytes:
    return b"\x61" + index.to_bytes(19, "big")


def _parallel_workload(
    n_txs: int, contended: bool
) -> Tuple[List[bytes], List[bytes], List[bytes]]:
    """One block of ``n_txs`` single-nonce transactions, as wire bytes.

    Wire bytes, not signed objects: ``SignedTransaction`` caches the
    recovered sender, so a fair measurement must rebuild the
    transactions per run and let each lane pay its own ECDSA recovery.

    Independent shape: distinct senders alternate plain transfers and
    ``KVStore.put`` calls across 8 contract accounts; with round-robin
    lane assignment at any power-of-two lane count, no two lanes share
    a contract, so every transaction commits speculatively.  Contended
    shape: every other transaction instead ``bump``s one shared slot of
    one shared contract, forcing cross-lane conflicts and re-execution.
    """
    senders = [ecdsa.ECDSAKeyPair.from_seed(b"bench-px-%d" % i) for i in range(n_txs)]
    contracts = [_px_contract(i) for i in range(_PX_CONTRACT_COUNT)]
    wires: List[bytes] = []
    for i, keypair in enumerate(senders):
        if i % 2 == 0:
            tx = Transaction(
                nonce=0, gas_price=2, gas_limit=30_000,
                to=bytes([0x51]) + i.to_bytes(19, "big"), value=100 + i,
            )
        elif contended:
            tx = Transaction(
                nonce=0, gas_price=2, gas_limit=400_000, to=contracts[0],
                value=0, data=encode_call("bump", ["hot"]),
            )
        else:
            tx = Transaction(
                nonce=0, gas_price=2, gas_limit=400_000,
                to=contracts[i % _PX_CONTRACT_COUNT],
                value=0, data=encode_call("put", [f"slot-{i}", i]),
            )
        wires.append(tx.sign(keypair).to_wire())
    return wires, [keypair.address() for keypair in senders], contracts


def _px_state(sender_addresses: Sequence[bytes], contracts: Sequence[bytes]) -> WorldState:
    state = WorldState()
    for address in sender_addresses:
        state.credit(address, _PX_FUNDING)
    for address in contracts:
        state.account(address).contract_name = "KVStore"
    return state


def measure_parallel_block_execution(
    n_txs: int = 32,
    lane_counts: Sequence[int] = (1, 2, 4, 8),
    repeats: int = 3,
    contended: bool = False,
) -> Dict[str, Any]:
    """Execute one block at each lane count; best-of-``repeats`` each.

    Asserts along the way that every lane count commits a byte-identical
    block (state root, receipt encodings, gas) — a lane count that
    changed the outcome would invalidate the whole measurement.

    Two timings per lane count, both recorded:

    - ``wall_seconds``: measured in-process wall time.  On a single-core
      host (this container reports ``os.cpu_count() == 1``) lanes share
      the core, so this cannot beat serial and honestly shows the
      scheduling overhead instead.
    - ``critical_path_seconds``: measured inside the scheduler as
      ``max(per-lane speculation time) + commit-pass time`` — the block
      time a host with one core per lane would observe.  The speedup
      gate asserts on this modeled number.
    """
    wires, sender_addresses, contracts = _parallel_workload(n_txs, contended)
    vm = VM()
    block_ctx = BlockContext(
        number=1, timestamp=1_500_000_015, coinbase=_PX_COINBASE
    )
    baseline: Optional[Tuple[bytes, Tuple[bytes, ...], int]] = None
    serial_best: Optional[float] = None
    lanes_out: Dict[str, Any] = {}
    for lanes in lane_counts:
        walls: List[float] = []
        criticals: List[float] = []
        stats_dict: Dict[str, Any] = {}
        for _ in range(max(1, repeats)):
            txs = [SignedTransaction.from_wire(wire) for wire in wires]
            state = _px_state(sender_addresses, contracts)
            assignment = (
                [i % lanes for i in range(len(txs))] if lanes > 1 else None
            )
            started = time.perf_counter()
            execution = execute_block(
                vm, state, txs, block_ctx,
                lanes=lanes, workers=1, mode="verify", assignment=assignment,
            )
            walls.append(time.perf_counter() - started)
            criticals.append(execution.stats.critical_path_seconds)
            stats_dict = execution.stats.as_dict()
            fingerprint = (
                state.state_root(),
                tuple(encode_receipt(receipt) for receipt in execution.receipts),
                execution.gas_used,
            )
            if baseline is None:
                baseline = fingerprint
            elif fingerprint != baseline:
                raise AssertionError(
                    f"lane count {lanes} changed the committed block — "
                    "serial equivalence is broken"
                )
        entry: Dict[str, Any] = {
            "wall_seconds": round(min(walls), 4),
            "stats": stats_dict,
        }
        if lanes == 1:
            serial_best = min(walls)
        else:
            assert serial_best is not None, "lane_counts must start at 1"
            best_critical = min(criticals)
            entry["critical_path_seconds"] = round(best_critical, 4)
            entry["speedup_wall"] = round(serial_best / min(walls), 4)
            entry["speedup_modeled"] = round(serial_best / best_critical, 4)
        lanes_out[str(lanes)] = entry
    return {
        "workload": "contended" if contended else "independent",
        "transactions": n_txs,
        "repeats": repeats,
        "serial_seconds": round(serial_best, 4),
        "lanes": lanes_out,
        "model": (
            "speedup_modeled = serial / (max lane speculation + commit pass), "
            "i.e. one core per lane; speedup_wall is measured in-process on "
            f"this host (cpu_count={os.cpu_count()})"
        ),
    }


# ----- static sharding: tasks partitioned by contract address ------------------------


def _shard_task_address(index: int) -> bytes:
    return keccak256(b"bench-shard-task", index.to_bytes(4, "big"))[:20]


def measure_sharded_throughput(
    n_tasks: int = 64,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    value: int = 1_000,
    repeats: int = 3,
) -> Dict[str, Any]:
    """One settlement transaction per task, swept over shard counts.

    The workload is the sharding model itself: task ``i`` lives at a
    derived contract-style address, its one-task account is funded
    ``near=`` that address (so account and task share a shard), and the
    settlement transfer executes on the task's home shard.  The *same*
    signed transactions run at every shard count, so per-account final
    balances are byte-equal across the sweep (asserted here).

    Two timings per shard count:

    - ``wall_seconds``: in-process wall clock for the settlement rounds
      (shards execute sequentially in this simulation, so this cannot
      beat serial — it honestly shows the facade's overhead).
    - ``critical_path_seconds``: sum over rounds of the *slowest*
      shard's block-build critical path — the round time a deployment
      with one host per shard would observe.  The speedup gate asserts
      on this modeled number, mirroring the parallel-execution bench.
    """
    from repro.chain.sharding import ShardedChain, home_shard

    keypairs = [
        ecdsa.ECDSAKeyPair.from_seed(b"bench-shard-worker-%d" % i)
        for i in range(n_tasks)
    ]
    tasks = [_shard_task_address(i) for i in range(n_tasks)]
    baseline: Optional[Dict[bytes, int]] = None
    serial_modeled: Optional[float] = None
    shards_out: Dict[str, Any] = {}
    for shards in shard_counts:
        walls: List[float] = []
        modeleds: List[float] = []
        rounds = 0
        for _ in range(max(1, repeats)):
            chain = ShardedChain(shards=shards, miners=1, full_nodes=1)
            pendings = [
                chain.fund_async(keypair.address(), 10**9, near=task)
                for keypair, task in zip(keypairs, tasks)
            ]
            chain.tx_sender.confirm_all(pendings)
            # The settlement transactions are identical at every shard
            # count: nonce 0, same recipient, same chain id — the sweep
            # varies only where they execute.
            for keypair, task in zip(keypairs, tasks):
                tx = Transaction(
                    nonce=0, gas_price=1, gas_limit=50_000, to=task, value=value,
                )
                chain.send_transaction(tx.sign(keypair))

            def backlog() -> int:
                return sum(
                    len(net.any_node.mempool) for net in chain.shard_testnets
                )

            rounds = 0
            modeled = 0.0
            started = time.perf_counter()
            while backlog() > 0:
                chain.mine_block()
                rounds += 1
                modeled += max(
                    (
                        net.miners[0].last_build_stats.critical_path_seconds
                        if net.miners[0].last_build_stats is not None
                        else 0.0
                    )
                    for net in chain.shard_testnets
                )
                if rounds > 64:
                    raise AssertionError("sharded settlement did not drain")
            walls.append(time.perf_counter() - started)
            modeleds.append(modeled)

            balances = {
                task: chain.any_node.balance_of(task) for task in tasks
            }
            for keypair in keypairs:
                balances[keypair.address()] = chain.any_node.balance_of(
                    keypair.address()
                )
            if baseline is None:
                baseline = balances
            elif balances != baseline:
                raise AssertionError(
                    f"shard count {shards} changed final balances — "
                    "shard-vs-serial equivalence is broken"
                )
        modeled = min(modeleds)
        occupancy = [0] * shards
        for task in tasks:
            occupancy[home_shard(task, shards)] += 1
        entry: Dict[str, Any] = {
            "rounds": rounds,
            "wall_seconds": round(min(walls), 4),
            "critical_path_seconds": round(modeled, 4),
            "tasks_per_shard": occupancy,
        }
        if shards == 1:
            serial_modeled = modeled
        else:
            assert serial_modeled is not None, "shard_counts must start at 1"
            entry["speedup_modeled"] = round(serial_modeled / modeled, 4)
        shards_out[str(shards)] = entry
    return {
        "workload": "sharded-settlement",
        "num_tasks": n_tasks,
        "repeats": repeats,
        "serial_seconds": round(serial_modeled, 4),
        "shards": shards_out,
        "model": (
            "speedup_modeled = serial critical path / sum over rounds of the "
            "slowest shard's block-build critical path, i.e. one host per "
            f"shard; wall_seconds is in-process on this host "
            f"(cpu_count={os.cpu_count()})"
        ),
    }


# ----- asserted gates (run from CI) --------------------------------------------------


def test_throughput_smoke_n8() -> None:
    """CI smoke gate: at N=8 the engine must be >=2x the serial driver."""
    record = measure_pair(num_tasks=8, workers=3, backend="mock", repeats=2)
    write_record(record)
    assert record["speedup"] >= 2.0, (
        f"engine speedup {record['speedup']}x below the 2x smoke floor "
        f"(serial {record['serial_seconds']}s, engine {record['engine_seconds']}s)"
    )
    # Batching is the mechanism: the engine must amortize blocks.
    assert record["engine_blocks"] < record["serial_blocks"] / 4


def test_parallel_block_execution_smoke() -> None:
    """CI gate for the optimistic scheduler at N=32.

    The independent workload must commit every transaction
    speculatively and model >=1.5x at 4 lanes; the contended workload
    must show a nonzero conflict rate while still committing the
    serial-identical block (asserted inside the measurement).
    """
    record = measure_parallel_block_execution(
        n_txs=32, lane_counts=(1, 2, 4, 8), repeats=3
    )
    write_record(record, key="parallel-exec-n32")
    four = record["lanes"]["4"]
    assert four["stats"]["conflicts"] == 0, "independent workload must not conflict"
    assert four["stats"]["speculative_commits"] == 32
    assert four["speedup_modeled"] >= 1.5, (
        f"modeled 4-lane speedup {four['speedup_modeled']}x below the 1.5x floor "
        f"(serial {record['serial_seconds']}s, "
        f"critical path {four['critical_path_seconds']}s)"
    )

    contended = measure_parallel_block_execution(
        n_txs=32, lane_counts=(1, 4), repeats=2, contended=True
    )
    write_record(contended, key="parallel-exec-n32-contended")
    stats = contended["lanes"]["4"]["stats"]
    assert stats["conflicts"] > 0 and stats["conflict_rate"] > 0
    assert stats["reexecutions"] >= stats["conflicts"]


@pytest.mark.sharding
def test_sharding_speedup_smoke() -> None:
    """CI gate for the sharded chain at N=64.

    Four shards must model >=1.5x the single-shard critical path, the
    hash assignment must actually spread tasks (no empty shard at
    S=4 with 64 uniform tasks is overwhelmingly likely and asserted),
    and the sweep itself asserts balance equality across shard counts.
    """
    record = measure_sharded_throughput(n_tasks=64, shard_counts=(1, 2, 4))
    write_record(record, key="sharding-n64")
    four = record["shards"]["4"]
    assert four["speedup_modeled"] >= 1.5, (
        f"modeled 4-shard speedup {four['speedup_modeled']}x below the 1.5x "
        f"floor (serial {record['serial_seconds']}s, sharded "
        f"{four['critical_path_seconds']}s)"
    )
    assert all(count > 0 for count in four["tasks_per_shard"]), (
        f"degenerate shard assignment: {four['tasks_per_shard']}"
    )


@pytest.mark.slow
@pytest.mark.sharding
def test_sharding_sweep_n256() -> None:
    """The full N=256 tasks x shards 1/2/4/8 sweep from the roadmap."""
    record = measure_sharded_throughput(n_tasks=256, shard_counts=(1, 2, 4, 8))
    write_record(record, key="sharding-n256")
    assert record["shards"]["4"]["speedup_modeled"] >= 1.5
    assert record["shards"]["8"]["speedup_modeled"] >= record["shards"]["2"][
        "speedup_modeled"
    ] * 0.9  # more shards must not collapse the model


@pytest.mark.slow
def test_throughput_gate_n32() -> None:
    """The headline gate: >=3x tasks/sec at N=32 on the mock backend."""
    record = measure_pair(num_tasks=32, workers=3, backend="mock", repeats=2)
    write_record(record)
    assert record["speedup"] >= 3.0, (
        f"engine speedup {record['speedup']}x below the 3x gate "
        f"(serial {record['serial_seconds']}s, engine {record['engine_seconds']}s)"
    )


@pytest.mark.slow
def test_throughput_real_backend_point() -> None:
    """One real-Groth16 point: correctness parity + recorded numbers.

    With the real prover the SNARK dominates wall time on one core, so
    no speedup floor is asserted — the engine must simply not be slower
    than serial by more than measurement noise allows.
    """
    record = measure_pair(
        num_tasks=2, workers=2, backend="groth16", repeats=1, instrument=False
    )
    write_record(record)
    assert record["speedup"] > 0.8


# ----- manual sweep ------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, nargs="+", default=[4, 8, 16, 32])
    parser.add_argument("--workers", type=int, nargs="+", default=[3])
    parser.add_argument("--backend", default="mock", choices=["mock", "groth16"])
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--parallel-exec", action="store_true",
        help="also sweep optimistic block execution over lanes 1/2/4/8",
    )
    parser.add_argument(
        "--sharding-sweep", type=int, metavar="N", default=None,
        help="run the N-task settlement sweep over shards 1/2/4/8 and exit",
    )
    args = parser.parse_args(argv)
    if args.sharding_sweep is not None:
        record = measure_sharded_throughput(
            n_tasks=args.sharding_sweep, shard_counts=(1, 2, 4, 8)
        )
        write_record(record, key=f"sharding-n{args.sharding_sweep}")
        for shards, entry in record["shards"].items():
            modeled = entry.get("speedup_modeled", 1.0)
            print(
                f"shards={shards}: rounds {entry['rounds']} "
                f"critical path {entry['critical_path_seconds']:.3f}s "
                f"modeled speedup {modeled:.2f}x "
                f"occupancy {entry['tasks_per_shard']}"
            )
        print(f"wrote {_BENCH_PATH}")
        return
    if args.parallel_exec:
        for contended in (False, True):
            record = measure_parallel_block_execution(
                n_txs=32, lane_counts=(1, 2, 4, 8) if not contended else (1, 4),
                repeats=args.repeats, contended=contended,
            )
            suffix = "-contended" if contended else ""
            write_record(record, key=f"parallel-exec-n32{suffix}")
            for lanes, entry in record["lanes"].items():
                modeled = entry.get("speedup_modeled", 1.0)
                print(
                    f"parallel{suffix} lanes={lanes}: wall {entry['wall_seconds']:.3f}s "
                    f"modeled speedup {modeled:.2f}x "
                    f"conflict_rate {entry['stats']['conflict_rate']:.2f}"
                )
    for workers in args.workers:
        for tasks in args.tasks:
            record = measure_pair(
                tasks, workers, backend=args.backend, repeats=args.repeats
            )
            write_record(record)
            print(
                f"N={tasks:3d} M={workers} {args.backend}: "
                f"serial {record['serial_seconds']:.2f}s "
                f"engine {record['engine_seconds']:.2f}s "
                f"speedup {record['speedup']:.2f}x "
                f"({record['engine_tasks_per_sec']:.2f} tasks/s)"
            )
    print(f"wrote {_BENCH_PATH}")


if __name__ == "__main__":
    main()
