"""Ablations over the design choices DESIGN.md calls out.

- Link() cost: the paper argues the O(n²) pairwise sweep is "nearly
  nothing" because each check is one tag equality — measured here.
- Certificate mode: merkle (default) vs schnorr (paper-faithful
  signature certs) — proving-time and circuit-size cost of faithfulness.
- Backend swap: real Groth16 vs the ideal functionality, same circuit.
- MiMC round scaling: the security-parameter axis of every circuit.
"""

from __future__ import annotations

import pytest

from repro.anonauth import AnonymousAuthScheme, UserKeyPair, setup as auth_setup
from repro.anonauth.scheme import attestation_statement
from repro.profiles import TEST
from repro.zksnark.backend import get_backend
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_hash_native


def test_link_sweep_is_nearly_free(benchmark, auth_material) -> None:
    """Full O(n²) Link() sweep over 100 attestation tags."""
    scheme = auth_material["scheme"]
    # Tags are field elements; the sweep compares each new tag to all
    # previous ones, as the contract does.
    tags = [mimc_hash_native([i], auth_material["params"].mimc) for i in range(100)]

    def sweep() -> int:
        linked = 0
        for i, tag_a in enumerate(tags):
            for tag_b in tags[:i]:
                if tag_a == tag_b:
                    linked += 1
        return linked

    assert benchmark(sweep) == 0
    benchmark.extra_info["pairs_checked"] = 100 * 99 // 2


@pytest.mark.parametrize("cert_mode", ["merkle", "schnorr"])
def test_cert_mode_proving_cost(benchmark, cert_mode: str) -> None:
    params, authority = auth_setup(
        profile=TEST, cert_mode=cert_mode, backend_name="groth16",
        seed=b"ablation-%s" % cert_mode.encode(),
    )
    scheme = AnonymousAuthScheme(params)
    user = UserKeyPair.generate(params.mimc, seed=b"ablation-user")
    certificate = authority.register("ablation-user", user.public_key)
    commitment = authority.registry_commitment()
    counter = [0]

    def prove():
        counter[0] += 1
        message = b"\xab" * 32 + b"ablation-%d" % counter[0]
        return scheme.auth(message, user, certificate, commitment)

    attestation = benchmark.pedantic(prove, rounds=2, iterations=1)
    assert scheme.verify(
        b"\xab" * 32 + b"ablation-%d" % counter[0], attestation, commitment
    )
    example = params.circuit()
    from repro.anonauth.scheme import _example_instance

    cs = example.build(_example_instance(TEST, authority))
    benchmark.extra_info["constraints"] = cs.num_constraints


@pytest.mark.parametrize("backend_name", ["groth16", "mock"])
def test_backend_verify_cost(benchmark, majority_material, backend_name: str) -> None:
    """Same statement, real pairing verification vs ideal functionality."""
    if backend_name == "groth16":
        material = majority_material[5]
        backend = material["backend"]
        result = benchmark(
            backend.verify, material["keys"].verifying_key,
            material["statement"], material["proof"],
        )
        assert result
        return
    # Rebuild the n=5 instance under the mock backend.
    from repro.core.policy import MajorityVotePolicy
    from repro.core.reward_circuit import (
        build_reward_instance, make_reward_circuit, reward_statement,
    )

    backend = get_backend("mock")
    mimc = MiMCParameters.for_rounds(TEST.mimc_rounds)
    policy = MajorityVotePolicy(num_choices=4)
    circuit = make_reward_circuit(policy, 5, mimc)
    keys = backend.setup(circuit, seed=b"ablation-mock")
    instance = build_reward_instance(
        policy, 500, [j + 1 for j in range(5)],
        [[j % 4] for j in range(5)], mimc,
    )
    proof = backend.prove(keys.proving_key, circuit, instance)
    statement = reward_statement(
        instance.budget, instance.reward_unit, instance.entries, instance.rewards
    )
    assert benchmark(backend.verify, keys.verifying_key, statement, proof)


def test_non_anonymous_mode_cost(benchmark) -> None:
    """Section VI's remark: giving up anonymity 'costs nearly nothing'.

    Measures the plain certified-signature authentication (auth +
    verify) — compare against test_cert_mode_proving_cost.
    """
    import random

    from repro.anonauth.plain import PlainAuthority, PlainAuthScheme
    from repro.crypto.rsa import RSAKeyPair

    authority = PlainAuthority(bits=1024, rng=random.Random(0))
    scheme = PlainAuthScheme(authority.master_public_key)
    keys = RSAKeyPair.generate(1024, random.Random(1))
    certificate = authority.register("bench-plain", keys.public_key,
                                     random.Random(2))
    rng = random.Random(3)

    def auth_and_verify() -> bool:
        attestation = scheme.auth(b"\xaa" * 32 + b"payload", keys, certificate, rng)
        return scheme.verify(b"\xaa" * 32 + b"payload", attestation)

    assert benchmark(auth_and_verify)
    benchmark.extra_info["anonymity"] = "none (fully linkable)"


@pytest.mark.parametrize("rounds", [7, 46, 91])
def test_mimc_round_scaling(benchmark, rounds: int) -> None:
    """Native MiMC hashing cost across the security profiles' rounds."""
    params = MiMCParameters.for_rounds(rounds)
    result = benchmark(mimc_hash_native, [123456789, 987654321], params)
    assert 0 < result
    benchmark.extra_info["rounds"] = rounds


def test_duplicate_ciphertext_scan(benchmark) -> None:
    """The contract's free-rider duplicate check over a full task."""
    wires = [b"\x01" * 200 + bytes([i]) for i in range(64)]
    candidate = b"\x02" * 201

    def scan() -> bool:
        return candidate in wires

    assert benchmark(scan) is False
    benchmark.extra_info["pool_size"] = len(wires)
