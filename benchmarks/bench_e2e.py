"""The Section VI deployment: five tasks collecting 3/5/7/9/11 answers.

Benchmarks one full protocol round (publish → n submissions → proved
reward instruction) per task size on the simulated test net, recording
per-phase gas — the end-to-end feasibility claim.  Runs the ideal-SNARK
backend so the timing isolates the *platform* cost (the cryptographic
costs are measured by bench_table1/bench_fig4).
"""

from __future__ import annotations

import pytest

from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem

WORKER_COUNTS = (3, 5, 7, 9, 11)


def _full_round(n: int):
    system = ZebraLancerSystem(profile="test", backend_name="mock")
    requester = Requester(system, "bench-requester")
    workers = [Worker(system, f"bench-worker-{i}") for i in range(n)]
    task = requester.publish_task(
        MajorityVotePolicy(num_choices=4), f"bench task n={n}",
        num_answers=n, budget=1_000 * n, answer_window=6 * n,
    )
    submit_gas = []
    for index, worker in enumerate(workers):
        record = worker.submit_answer(task, [index % 4])
        assert record.receipt.success
        submit_gas.append(record.receipt.gas_used)
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success
    assert task.phase() == "completed"
    system.testnet.assert_consensus()
    return {
        "submit_gas_avg": sum(submit_gas) // n,
        "reward_gas": receipt.gas_used,
        "chain_height": system.testnet.height,
    }


@pytest.mark.parametrize("n", WORKER_COUNTS)
def test_e2e_task_round(benchmark, n: int) -> None:
    stats = benchmark.pedantic(_full_round, args=(n,), rounds=1, iterations=1)
    benchmark.extra_info.update(stats)
    benchmark.extra_info["workers"] = n
