"""Engine resilience sweep: faults × byzantine actors × crash cadence.

Each cell of the grid runs one multi-task engine cohort and reports

- completion rate (settled tasks / tasks; healthy tasks separately),
- crash count and recovery latency percentiles (seconds from the
  simulated process death to the resumed engine finishing its first
  scheduler round — checkpoint decode + client re-derivation + keygen),
- refund correctness: the exactly-once conservation check of
  :mod:`repro.core.accounting` over every task,
- the engine's resilience counters (retries, recoveries, quarantines,
  byzantine accept/reject).

Results merge into ``BENCH_throughput.json`` at the repo root under
``engine-chaos-*`` keys, next to the throughput measurements.

Run the sweep by hand::

    PYTHONPATH=src python benchmarks/bench_engine_chaos.py --tasks 8

or the asserted CI gate (see the ``engine-chaos-smoke`` lane)::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_engine_chaos.py -k smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ProtocolError
from repro.chain.faults import chaos_plan
from repro.core.accounting import assert_exactly_once_payouts
from repro.core.checkpoint import CheckpointStore
from repro.core.engine import (
    ProtocolEngine,
    SimulatedEngineCrash,
    engine_system,
    make_chaos_specs,
)

_BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: The byzantine mix every non-clean cell injects (task indices).
BYZANTINE_MIX = {
    "stonewall": [1],
    "vanish": [2],
    "equivocate": [3],
    "empty": [4],
}
SETTLED = ("completed", "defaulted", "aborted")


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return round(ordered[index], 4)


class _CrashSchedule:
    """Kill the engine every ``crash_every`` rounds, a bounded number
    of times, and time each recovery."""

    def __init__(self, crash_every: int, max_crashes: int = 3) -> None:
        self.crash_every = crash_every
        self.max_crashes = max_crashes
        self.crashes = 0
        self.recovery_seconds: List[float] = []
        self._crash_time: Optional[float] = None

    def hook(self, engine: ProtocolEngine, rounds: int) -> None:
        if self._crash_time is not None and rounds >= 1:
            # First full round after a resume: recovery is complete.
            self.recovery_seconds.append(time.perf_counter() - self._crash_time)
            self._crash_time = None
        if (
            self.crash_every
            and self.crashes < self.max_crashes
            and rounds
            and rounds % self.crash_every == 0
        ):
            self.crashes += 1
            self._crash_time = time.perf_counter()
            raise SimulatedEngineCrash(f"scheduled crash #{self.crashes}")


def measure_cell(
    num_tasks: int = 8,
    workers: int = 3,
    fault_seed: Optional[int] = None,
    byzantine: bool = True,
    crash_every: int = 0,
    seed: int = 5,
) -> Dict[str, Any]:
    """One grid cell: build, run (with crash/resume), verify, report."""
    fault_plan = (
        chaos_plan(fault_seed, horizon=80) if fault_seed is not None else None
    )
    system = engine_system(
        num_tasks, workers,
        seed=b"bench-engine-chaos-%d" % seed,
        fault_plan=fault_plan,
    )
    mix = BYZANTINE_MIX if byzantine else {}
    specs = make_chaos_specs(
        system, num_tasks, workers, seed=seed, instruction_window=8, **mix
    )
    schedule = _CrashSchedule(crash_every)
    store = CheckpointStore()
    engine = ProtocolEngine(
        system, specs,
        max_rounds=2048, breaker_threshold=3,
        checkpoint_store=store, checkpoint_every=2,
        crash_hook=schedule.hook,
    )
    wall_start = time.perf_counter()
    rounds = 0
    while True:
        try:
            report = engine.run()
            break
        except SimulatedEngineCrash:
            rounds += engine.round
            engine = ProtocolEngine.resume(
                system, store.latest(),
                max_rounds=2048, breaker_threshold=3,
                checkpoint_store=store, checkpoint_every=2,
                crash_hook=schedule.hook,
            )
    wall = time.perf_counter() - wall_start

    unhealthy = {i for ids in mix.values() for i in ids}
    settled = [o for o in report.outcomes if o.status in SETTLED]
    healthy = [o for o in report.outcomes if o.index not in unhealthy]
    try:
        assert_exactly_once_payouts(system, specs, report.outcomes)
        refund_ok = True
    except ProtocolError:
        refund_ok = False
    return {
        "num_tasks": num_tasks,
        "workers_per_task": workers,
        "fault_seed": fault_seed,
        "byzantine": byzantine,
        "crash_every": crash_every,
        "completion_rate": round(len(settled) / num_tasks, 4),
        "healthy_completion_rate": round(
            sum(1 for o in healthy if o.status == "completed") / len(healthy),
            4,
        ),
        "crashes": schedule.crashes,
        "recovery_p50_seconds": _percentile(schedule.recovery_seconds, 0.5),
        "recovery_p95_seconds": _percentile(schedule.recovery_seconds, 0.95),
        "refund_exactly_once": refund_ok,
        "wall_seconds": round(wall, 3),
        "rounds": rounds + report.rounds,
        "checkpoints": store.saves,
        "resilience": dict(report.resilience),
    }


def write_record(record: Dict[str, Any], key: str) -> None:
    """Merge one cell into BENCH_throughput.json (keyed by shape)."""
    document: Dict[str, Any] = {}
    if _BENCH_PATH.exists():
        try:
            document = json.loads(_BENCH_PATH.read_text())
        except ValueError:
            document = {}
    document.setdefault("generated_with", "benchmarks/bench_throughput.py")
    document["host"] = {"cpu_count": os.cpu_count()}
    document.setdefault("measurements", {})[key] = record
    _BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def _cell_key(record: Dict[str, Any]) -> str:
    return "engine-chaos-n%d-f%s-b%d-c%d" % (
        record["num_tasks"],
        record["fault_seed"] if record["fault_seed"] is not None else "clean",
        int(record["byzantine"]),
        record["crash_every"],
    )


# ----- asserted gate (run from CI) --------------------------------------------


def test_engine_chaos_smoke_n8() -> None:
    """CI gate: faults + byzantine mix + periodic crashes at N=8.

    Every task settles, every honest worker is paid or refunded exactly
    once, no equivocation is ever accepted, and the quarantined tasks
    are exactly the byzantine-requester ones.
    """
    record = measure_cell(
        num_tasks=8, workers=3, fault_seed=5, byzantine=True, crash_every=10
    )
    write_record(record, _cell_key(record))
    assert record["completion_rate"] == 1.0, record
    assert record["healthy_completion_rate"] == 1.0, record
    assert record["refund_exactly_once"], record
    assert record["crashes"] >= 1, record
    assert record["resilience"]["byzantine_accepted"] == 0, record
    assert record["resilience"]["quarantined"] == 2, record


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=8)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument(
        "--fault-seeds", type=int, nargs="*", default=[5],
        help="chaos_plan seeds; a clean (no-fault) cell always runs too",
    )
    parser.add_argument(
        "--crash-every", type=int, nargs="*", default=[0, 10],
        help="crash cadences in rounds (0 = never)",
    )
    args = parser.parse_args(argv)

    fault_cells: List[Optional[int]] = [None] + list(args.fault_seeds)
    for fault_seed in fault_cells:
        for byzantine in (False, True):
            for crash_every in args.crash_every:
                record = measure_cell(
                    num_tasks=args.tasks, workers=args.workers,
                    fault_seed=fault_seed, byzantine=byzantine,
                    crash_every=crash_every,
                )
                key = _cell_key(record)
                write_record(record, key)
                print(
                    f"{key}: completion={record['completion_rate']} "
                    f"crashes={record['crashes']} "
                    f"recovery_p95={record['recovery_p95_seconds']}s "
                    f"refund_ok={record['refund_exactly_once']} "
                    f"wall={record['wall_seconds']}s"
                )


if __name__ == "__main__":
    main()
