"""Cost of resilience: the protocol round on a clean vs a faulty fabric.

Runs the same end-to-end crowdsourcing round as ``bench_e2e`` on a
pristine network and under ``chaos_plan`` fault schedules (drops,
delays, duplicates, a crash/restart, a partition window), reporting the
fabric's fault counters and the TxSender retry effort alongside the
timing — the overhead a deployment pays for riding out failures.
"""

from __future__ import annotations

import pytest

from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem
from repro.chain.faults import chaos_plan

NUM_WORKERS = 3
BUDGET = 900

CHAOS_SEEDS = (0, 1, 2)


def _protocol_round(fault_plan=None):
    system = ZebraLancerSystem(
        profile="test", backend_name="mock", fault_plan=fault_plan
    )
    testnet = system.testnet
    requester = Requester(system, "bench-requester")
    workers = [Worker(system, f"bench-worker-{i}") for i in range(NUM_WORKERS)]
    task = requester.publish_task(
        MajorityVotePolicy(num_choices=4), "bench fault round",
        num_answers=NUM_WORKERS, budget=BUDGET,
        answer_window=400, instruction_window=400,
    )
    for index, worker in enumerate(workers):
        record = worker.submit_answer(task, [index % 4])
        assert record.receipt.success
    receipt = requester.evaluate_and_reward(task)
    assert receipt.success
    if fault_plan is not None:
        while testnet.height <= fault_plan.horizon:
            testnet.mine_block()
    testnet.network.heal()
    testnet.assert_consensus()
    stats = testnet.network.stats
    sender = testnet.tx_sender
    return {
        "chain_height": testnet.height,
        "delivered": stats.delivered,
        "dropped": stats.dropped,
        "delayed": stats.delayed,
        "duplicated": stats.duplicated,
        "crashes": stats.crashes,
        "restarts": stats.restarts,
        "syncs": stats.syncs,
        "sync_blocks": stats.sync_blocks,
        "tx_attempts": sender.total_attempts,
        "tx_resubmissions": sender.total_resubmissions,
    }


def test_protocol_round_clean(benchmark) -> None:
    stats = benchmark.pedantic(_protocol_round, rounds=1, iterations=1)
    benchmark.extra_info.update(stats)
    benchmark.extra_info["faults"] = "none"


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_protocol_round_under_chaos(benchmark, seed: int) -> None:
    stats = benchmark.pedantic(
        _protocol_round, args=(chaos_plan(seed),), rounds=1, iterations=1
    )
    benchmark.extra_info.update(stats)
    benchmark.extra_info["faults"] = f"chaos_plan(seed={seed})"
