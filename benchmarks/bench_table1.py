"""TABLE I — execution time of in-contract zk-SNARK verifications.

One benchmark per table row: the anonymous-authentication verification
and the majority-vote reward verification for n ∈ {3, 5, 7, 9, 11}.
Each records the paper's operand columns (proof / key / input sizes) as
``extra_info``, and a final check reproduces the constant-memory
observation.  Shapes to compare against the paper: constant proof size,
key/input sizes growing linearly in n, verification time growing mildly
with n.
"""

from __future__ import annotations

import pytest

from repro.anonauth.scheme import attestation_statement
from repro.core.metrics import peak_memory
from repro.zksnark.backend import get_backend


def test_table1_auth_verification(benchmark, auth_material) -> None:
    params = auth_material["params"]
    attestation = auth_material["attestation"]
    statement = attestation_statement(auth_material["message"], attestation)
    backend = get_backend(params.backend_name)

    result = benchmark(
        backend.verify, params.keys.verifying_key, statement, attestation.proof
    )
    assert result is True
    benchmark.extra_info["proof_bytes"] = attestation.proof.size_bytes()
    benchmark.extra_info["key_bytes"] = params.keys.verifying_key.size_bytes()
    benchmark.extra_info["input_bytes"] = 32 * len(statement)
    benchmark.extra_info["paper_pc_a_ms"] = 10.9
    benchmark.extra_info["paper_pc_b_ms"] = 6.2


@pytest.mark.parametrize("n", [3, 5, 7, 9, 11])
def test_table1_majority_verification(benchmark, majority_material, n: int) -> None:
    material = majority_material[n]
    backend = material["backend"]
    keys = material["keys"]

    result = benchmark(
        backend.verify, keys.verifying_key, material["statement"], material["proof"]
    )
    assert result is True
    paper = {3: (15.5, 9.1), 5: (16.3, 9.8), 7: (17.0, 10.3),
             9: (17.5, 12.1), 11: (17.9, 13.1)}[n]
    benchmark.extra_info["proof_bytes"] = material["proof"].size_bytes()
    benchmark.extra_info["key_bytes"] = keys.verifying_key.size_bytes()
    benchmark.extra_info["input_bytes"] = 32 * len(material["statement"])
    benchmark.extra_info["paper_pc_a_ms"] = paper[0]
    benchmark.extra_info["paper_pc_b_ms"] = paper[1]


def test_table1_shapes_match_paper(benchmark, majority_material, auth_material) -> None:
    """The non-timing claims of Table I, checked outright:
    constant proof size, monotone key/input growth in n."""
    proof_sizes = {m["proof"].size_bytes() for m in majority_material.values()}
    proof_sizes.add(auth_material["attestation"].proof.size_bytes())
    assert len(proof_sizes) == 1  # succinct: one constant size

    ns = sorted(majority_material)
    key_sizes = [majority_material[n]["keys"].verifying_key.size_bytes() for n in ns]
    input_sizes = [32 * len(majority_material[n]["statement"]) for n in ns]
    assert key_sizes == sorted(key_sizes) and len(set(key_sizes)) == len(ns)
    assert input_sizes == sorted(input_sizes) and len(set(input_sizes)) == len(ns)

    benchmark(lambda: None)  # registers the check in --benchmark-only runs
    benchmark.extra_info["key_bytes_by_n"] = dict(zip(ns, key_sizes))
    benchmark.extra_info["input_bytes_by_n"] = dict(zip(ns, input_sizes))


def test_table1_verifier_memory_constant(benchmark, majority_material) -> None:
    """The paper reports a constant ≈17 MB verifier footprint; here the
    peak allocation of a verification must not grow with n."""
    peaks = {}
    for n, material in sorted(majority_material.items()):
        backend = material["backend"]
        keys = material["keys"]
        with peak_memory() as holder:
            assert backend.verify(
                keys.verifying_key, material["statement"], material["proof"]
            )
        peaks[n] = holder["peak_bytes"]
    smallest, largest = min(peaks.values()), max(peaks.values())
    assert largest < 4 * max(smallest, 1 << 20)  # flat within small factors

    material = majority_material[11]
    benchmark(
        material["backend"].verify,
        material["keys"].verifying_key,
        material["statement"],
        material["proof"],
    )
    benchmark.extra_info["peak_bytes_by_n"] = peaks
