"""Shared benchmark fixtures.

Profile selection: benchmarks default to the ``test`` profile so the
whole suite finishes in minutes on one core; export
``REPRO_BENCH_PROFILE=bench`` (or ``production``) to run the heavier
parameterizations the EXPERIMENTS.md numbers were recorded with.
Backend: real Groth16 throughout — these benchmarks measure the actual
pairing-based verification the paper's Table I reports.
"""

from __future__ import annotations

import os

import pytest

import repro.contracts  # noqa: F401
from repro.profiles import get_profile

PROFILE_NAME = os.environ.get("REPRO_BENCH_PROFILE", "test")
BACKEND_NAME = os.environ.get("REPRO_BENCH_BACKEND", "groth16")


@pytest.fixture(scope="session")
def bench_profile():
    return get_profile(PROFILE_NAME)


@pytest.fixture(scope="session")
def auth_material(bench_profile):
    """Auth-SNARK setup + one registered user + one attestation."""
    from repro.anonauth import AnonymousAuthScheme, UserKeyPair, setup

    params, authority = setup(
        profile=bench_profile, cert_mode="merkle",
        backend_name=BACKEND_NAME, seed=b"bench-auth",
    )
    scheme = AnonymousAuthScheme(params)
    user = UserKeyPair.generate(params.mimc, seed=b"bench-user")
    certificate = authority.register("bench-user", user.public_key)
    commitment = authority.registry_commitment()
    message = b"\xbe" * 32 + b"bench-message"
    attestation = scheme.auth(message, user, certificate, commitment)
    return {
        "params": params,
        "authority": authority,
        "scheme": scheme,
        "user": user,
        "certificate": certificate,
        "commitment": commitment,
        "message": message,
        "attestation": attestation,
    }


@pytest.fixture(scope="session")
def majority_material(bench_profile):
    """Reward-SNARK material per paper worker count: (circuit, keys,
    instance, statement, proof)."""
    from repro.core.policy import MajorityVotePolicy
    from repro.core.reward_circuit import (
        build_reward_instance,
        make_reward_circuit,
        reward_statement,
    )
    from repro.zksnark.backend import get_backend
    from repro.zksnark.gadgets.mimc import MiMCParameters

    backend = get_backend(BACKEND_NAME)
    mimc = MiMCParameters.for_rounds(bench_profile.mimc_rounds)
    policy = MajorityVotePolicy(num_choices=4)
    material = {}
    for n in (3, 5, 7, 9, 11):
        circuit = make_reward_circuit(policy, n, mimc)
        keys = backend.setup(circuit, seed=b"bench-majority-%d" % n)
        instance = build_reward_instance(
            policy, budget=100 * n, keys=[j + 1 for j in range(n)],
            answers=[[j % 4] for j in range(n)], mimc=mimc,
        )
        proof = backend.prove(keys.proving_key, circuit, instance)
        statement = reward_statement(
            instance.budget, instance.reward_unit, instance.entries,
            instance.rewards,
        )
        material[n] = {
            "circuit": circuit,
            "keys": keys,
            "instance": instance,
            "statement": statement,
            "proof": proof,
            "backend": backend,
        }
    return material
