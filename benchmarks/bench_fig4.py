"""FIG. 4 — the cost of anonymity: attestation-generation time.

The paper runs 12 attestation generations on each of two PCs and box-
plots the distribution (medians ≈78 s and ≈62 s; pure clock-speed
ratio).  ``test_fig4_attestation_generation`` is the timing benchmark;
``test_fig4_distribution`` reproduces the 12-run methodology and
records the five-number summary.  Set ``REPRO_BENCH_PROFILE=bench`` for
paper-scale circuit parameters (minutes per run in pure Python).
"""

from __future__ import annotations

import os

from repro.core.metrics import BoxStats, time_call

_FIG4_RUNS = int(os.environ.get("REPRO_FIG4_RUNS", "12"))


def _make_attestation(auth_material, counter=[0]):
    scheme = auth_material["scheme"]
    counter[0] += 1
    message = b"\xf4" * 32 + b"fig4-bench-%d" % counter[0]
    return scheme.auth(
        message,
        auth_material["user"],
        auth_material["certificate"],
        auth_material["commitment"],
    )


def test_fig4_attestation_generation(benchmark, auth_material) -> None:
    attestation = benchmark.pedantic(
        _make_attestation, args=(auth_material,), rounds=3, iterations=1
    )
    assert attestation.t1  # produced something real
    benchmark.extra_info["paper_pc_a_s"] = 78.0
    benchmark.extra_info["paper_pc_b_s"] = 62.0
    benchmark.extra_info["attestation_bytes"] = attestation.size_bytes()


def test_fig4_distribution(benchmark, auth_material) -> None:
    """The 12-experiment box plot (run count via REPRO_FIG4_RUNS)."""
    samples = time_call(lambda: _make_attestation(auth_material), repeats=_FIG4_RUNS)
    stats = BoxStats.from_samples(samples)
    assert stats.count == _FIG4_RUNS
    assert stats.minimum > 0
    # Low dispersion, as in the paper's tight boxes.
    assert stats.q3 <= 5 * stats.q1

    benchmark(lambda: _make_attestation(auth_material))
    benchmark.extra_info["box"] = {
        "min_s": round(stats.minimum, 4),
        "q1_s": round(stats.q1, 4),
        "median_s": round(stats.median, 4),
        "q3_s": round(stats.q3, 4),
        "max_s": round(stats.maximum, 4),
    }
    benchmark.extra_info["paper_box_medians_s"] = {"pc_a": 78.0, "pc_b": 62.0}


def test_fig4_verification_is_cheap_relative_to_proving(
    benchmark, auth_material
) -> None:
    """The asymmetry the protocol exploits: verify ≪ prove."""
    from repro.anonauth.scheme import attestation_statement
    from repro.zksnark.backend import get_backend

    params = auth_material["params"]
    attestation = auth_material["attestation"]
    statement = attestation_statement(auth_material["message"], attestation)
    backend = get_backend(params.backend_name)

    prove_seconds = min(
        time_call(lambda: _make_attestation(auth_material), repeats=1)
    )
    verify_seconds = min(
        time_call(
            lambda: backend.verify(
                params.keys.verifying_key, statement, attestation.proof
            ),
            repeats=3,
        )
    )
    assert verify_seconds < prove_seconds

    benchmark(
        backend.verify, params.keys.verifying_key, statement, attestation.proof
    )
    benchmark.extra_info["prove_over_verify"] = round(
        prove_seconds / max(verify_seconds, 1e-9), 1
    )
