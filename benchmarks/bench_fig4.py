"""FIG. 4 — the cost of anonymity: attestation-generation time.

The paper runs 12 attestation generations on each of two PCs and box-
plots the distribution (medians ≈78 s and ≈62 s; pure clock-speed
ratio).  ``test_fig4_attestation_generation`` is the timing benchmark;
``test_fig4_distribution`` reproduces the 12-run methodology and
records the five-number summary.  Set ``REPRO_BENCH_PROFILE=bench`` for
paper-scale circuit parameters (minutes per run in pure Python).
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.core.metrics import BoxStats, time_call

_FIG4_RUNS = int(os.environ.get("REPRO_FIG4_RUNS", "12"))

#: Where the before/after SNARK timings land (repo root).
_BENCH_SNARK_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_snark.json"


def _make_attestation(auth_material, counter=[0]):
    scheme = auth_material["scheme"]
    counter[0] += 1
    message = b"\xf4" * 32 + b"fig4-bench-%d" % counter[0]
    return scheme.auth(
        message,
        auth_material["user"],
        auth_material["certificate"],
        auth_material["commitment"],
    )


def test_fig4_attestation_generation(benchmark, auth_material) -> None:
    attestation = benchmark.pedantic(
        _make_attestation, args=(auth_material,), rounds=3, iterations=1
    )
    assert attestation.t1  # produced something real
    benchmark.extra_info["paper_pc_a_s"] = 78.0
    benchmark.extra_info["paper_pc_b_s"] = 62.0
    benchmark.extra_info["attestation_bytes"] = attestation.size_bytes()


def test_fig4_distribution(benchmark, auth_material) -> None:
    """The 12-experiment box plot (run count via REPRO_FIG4_RUNS)."""
    samples = time_call(lambda: _make_attestation(auth_material), repeats=_FIG4_RUNS)
    stats = BoxStats.from_samples(samples)
    assert stats.count == _FIG4_RUNS
    assert stats.minimum > 0
    # Low dispersion, as in the paper's tight boxes.
    assert stats.q3 <= 5 * stats.q1

    benchmark(lambda: _make_attestation(auth_material))
    benchmark.extra_info["box"] = {
        "min_s": round(stats.minimum, 4),
        "q1_s": round(stats.q1, 4),
        "median_s": round(stats.median, 4),
        "q3_s": round(stats.q3, 4),
        "max_s": round(stats.maximum, 4),
    }
    benchmark.extra_info["paper_box_medians_s"] = {"pc_a": 78.0, "pc_b": 62.0}


def test_fig4_verification_is_cheap_relative_to_proving(
    benchmark, auth_material
) -> None:
    """The asymmetry the protocol exploits: verify ≪ prove."""
    from repro.anonauth.scheme import attestation_statement
    from repro.zksnark.backend import get_backend

    params = auth_material["params"]
    attestation = auth_material["attestation"]
    statement = attestation_statement(auth_material["message"], attestation)
    backend = get_backend(params.backend_name)

    prove_seconds = min(
        time_call(lambda: _make_attestation(auth_material), repeats=1)
    )
    verify_seconds = min(
        time_call(
            lambda: backend.verify(
                params.keys.verifying_key, statement, attestation.proof
            ),
            repeats=3,
        )
    )
    assert verify_seconds < prove_seconds

    benchmark(
        backend.verify, params.keys.verifying_key, statement, attestation.proof
    )
    benchmark.extra_info["prove_over_verify"] = round(
        prove_seconds / max(verify_seconds, 1e-9), 1
    )


#: The "after" column of the previous BENCH_snark.json (pre-GLV, pre-raw-G2,
#: pre-service): setup 0.8563 s + prove 1.4128 s.  The amortized per-task
#: cost through the persistent proving service must beat this by >= 2x,
#: asserted below so the raw-speed floor cannot silently regress.
_PREVIOUS_AFTER_SETUP_PLUS_PROVE_S = 2.2691


def _time_toggle_axes():
    """Time a representative 64-point G1 MSM under every toggle combo."""
    import random as _random

    from repro.zksnark.bn128.curve import G1, g1_msm, g1_mul, set_fast_opts
    from repro.zksnark.bn128.fq import CURVE_ORDER

    rng = _random.Random(0xF16)
    points = [g1_mul(G1, rng.randrange(1, CURVE_ORDER)) for _ in range(64)]
    scalars = [rng.randrange(CURVE_ORDER) for _ in range(64)]
    axes = {}
    prior = set_fast_opts()
    try:
        for montgomery in (False, True):
            for glv in (False, True):
                set_fast_opts(montgomery=montgomery, glv=glv)
                seconds = min(
                    time_call(lambda: g1_msm(points, scalars), repeats=3)
                )
                axes[f"montgomery={montgomery},glv={glv}"] = round(seconds, 4)
    finally:
        set_fast_opts(*prior)
    return axes


def test_snark_before_after(benchmark, bench_profile, auth_material) -> None:
    """Naive vs optimized Groth16 on the largest circuit (the auth SNARK).

    Writes ``BENCH_snark.json`` at the repo root: setup/prove/verify in
    both modes, batch_verify(n=10) against 10 sequential verifies,
    per-toggle-combo MSM timings (Montgomery x GLV axes), and the
    persistent proving service's amortized per-task cost (one warm
    setup + a prove_many batch).  The optimized hot path must beat the
    naive reference by >= 4x on setup+prove, and the service's
    amortized per-task cost must beat the previous generation's
    optimized path by ~2x (asserted at 1.8x for timer headroom) — both
    asserted here so the speedups cannot silently rot.
    """
    from repro.anonauth.scheme import AuthCircuit, attestation_statement
    from repro.zksnark.groth16 import Groth16Backend

    params = auth_material["params"]
    scheme = auth_material["scheme"]
    # Rebuild a setup-capable circuit: key material needs example wires.
    from repro.anonauth.scheme import _example_instance

    instance = _example_instance(bench_profile, auth_material["authority"])
    circuit = AuthCircuit(
        bench_profile,
        params.cert_mode,
        master_public_key=params.master_public_key,
        example=instance,
    )

    fast = Groth16Backend()
    naive = Groth16Backend(optimized=False)

    fast_setup = min(time_call(lambda: fast.setup(circuit, seed=b"ba"), repeats=1))
    naive_setup = min(time_call(lambda: naive.setup(circuit, seed=b"ba"), repeats=1))
    keys = fast.setup(circuit, seed=b"bench-ba")

    fast_prove = min(
        time_call(lambda: fast.prove(keys.proving_key, circuit, instance), repeats=1)
    )
    naive_prove = min(
        time_call(lambda: naive.prove(keys.proving_key, circuit, instance), repeats=1)
    )

    statement = circuit.public_inputs(instance)
    proof = fast.prove(keys.proving_key, circuit, instance)
    fast_verify = min(
        time_call(lambda: fast.verify(keys.verifying_key, statement, proof), repeats=3)
    )
    naive_verify = min(
        time_call(
            lambda: naive.verify(keys.verifying_key, statement, proof), repeats=3
        )
    )

    # batch_verify(n=10) vs 10 sequential verifications (distinct messages)
    n_batch = 10
    statements = []
    proofs = []
    for i in range(n_batch):
        message = b"\xba" * 32 + b"batch-%d" % i
        attestation = scheme.auth(
            message,
            auth_material["user"],
            auth_material["certificate"],
            auth_material["commitment"],
        )
        statements.append(attestation_statement(message, attestation))
        proofs.append(attestation.proof)
    vk = params.keys.verifying_key
    batch_seconds = min(
        time_call(lambda: fast.batch_verify(vk, statements, proofs), repeats=1)
    )
    sequential_seconds = min(
        time_call(
            lambda: all(
                fast.verify(vk, s, p) for s, p in zip(statements, proofs)
            ),
            repeats=1,
        )
    )

    # Persistent proving service: one warm setup amortized over a batch.
    from repro.zksnark.service import ProvingService

    service = ProvingService(Groth16Backend(jobs=1), jobs=1)
    warm_seconds = min(
        time_call(lambda: service.warm(circuit, seed=b"svc"), repeats=1)
    )
    service_keys = service.warm(circuit, seed=b"svc")
    n_tasks = 8
    requests = [
        (service_keys.proving_key, circuit, instance) for _ in range(n_tasks)
    ]
    batch_prove_seconds = min(
        time_call(lambda: service.prove_many(requests), repeats=1)
    )
    service.close()
    amortized_task_seconds = (warm_seconds + batch_prove_seconds) / n_tasks
    service_speedup = _PREVIOUS_AFTER_SETUP_PLUS_PROVE_S / max(
        amortized_task_seconds, 1e-9
    )

    toggle_axes = _time_toggle_axes()

    setup_prove_speedup = (naive_setup + naive_prove) / max(
        fast_setup + fast_prove, 1e-9
    )
    # Ratcheted from 3.0: the GLV split, raw int-pair G2 core, and
    # Karatsuba FQ12 moved the measured ratio well past the old floor.
    assert setup_prove_speedup >= 4.0, (
        f"optimized setup+prove only {setup_prove_speedup:.2f}x faster"
    )
    # Measured ~2.1x; asserted at 1.8x to leave CI timer-jitter headroom.
    assert service_speedup >= 1.8, (
        f"service amortized task cost {amortized_task_seconds:.3f}s is only "
        f"{service_speedup:.2f}x faster than the previous optimized path "
        f"({_PREVIOUS_AFTER_SETUP_PLUS_PROVE_S}s)"
    )
    assert batch_seconds < sequential_seconds, (
        f"batch_verify(n={n_batch}) took {batch_seconds:.3f}s vs "
        f"{sequential_seconds:.3f}s sequential"
    )

    record = {
        "profile": os.environ.get("REPRO_BENCH_PROFILE", "test"),
        "circuit": {"name": circuit.name, "cert_mode": params.cert_mode},
        "before": {
            "setup_s": round(naive_setup, 4),
            "prove_s": round(naive_prove, 4),
            "verify_s": round(naive_verify, 4),
        },
        "after": {
            "setup_s": round(fast_setup, 4),
            "prove_s": round(fast_prove, 4),
            "verify_s": round(fast_verify, 4),
        },
        "speedup": {
            "setup": round(naive_setup / max(fast_setup, 1e-9), 2),
            "prove": round(naive_prove / max(fast_prove, 1e-9), 2),
            "verify": round(naive_verify / max(fast_verify, 1e-9), 2),
            "setup_plus_prove": round(setup_prove_speedup, 2),
        },
        "batch_verify": {
            "n": n_batch,
            "batched_s": round(batch_seconds, 4),
            "sequential_s": round(sequential_seconds, 4),
            "speedup": round(sequential_seconds / max(batch_seconds, 1e-9), 2),
        },
        # 64-point G1 MSM under each representation toggle combination.
        # Montgomery is OFF by default: REDC's three half-width multiplies
        # lose to CPython's single native ``%`` on big ints (kept as a
        # differential-tested representation toggle).  GLV is the win.
        "toggle_axes_msm64_s": toggle_axes,
        # Persistent proving service: warm the CRS once, then amortize it
        # over a prove_many batch.  ``speedup_vs_previous_after`` compares
        # the amortized per-task cost against the previous generation's
        # optimized setup+prove (the ratcheted >= 2x floor).
        "service": {
            "n_tasks": n_tasks,
            "warm_setup_s": round(warm_seconds, 4),
            "batch_prove_s": round(batch_prove_seconds, 4),
            "amortized_task_s": round(amortized_task_seconds, 4),
            "previous_after_setup_plus_prove_s": _PREVIOUS_AFTER_SETUP_PLUS_PROVE_S,
            "speedup_vs_previous_after": round(service_speedup, 2),
        },
    }
    _BENCH_SNARK_PATH.write_text(json.dumps(record, indent=2) + "\n")

    benchmark(lambda: fast.verify(keys.verifying_key, statement, proof))
    benchmark.extra_info["bench_snark"] = record
