"""Common-prefix-linkable anonymous authentication (Section V-A).

The paper's new primitive: a certified user can authenticate messages
anonymously, yet two authentications by the *same* key holder on
messages sharing a λ-length common prefix are publicly linkable (and
only those).  Algorithms:

- :func:`repro.anonauth.scheme.setup` — system setup (SNARK public
  parameters + RA master keys).
- :class:`repro.anonauth.authority.RegistrationAuthority` — ``CertGen``.
- :meth:`repro.anonauth.scheme.AnonymousAuthScheme.auth` /
  :meth:`~repro.anonauth.scheme.AnonymousAuthScheme.verify` /
  :meth:`~repro.anonauth.scheme.AnonymousAuthScheme.link`.

Two certificate modes are provided (DESIGN.md §2.4): ``merkle``
(default; RA accumulates identity commitments in a MiMC Merkle tree)
and ``schnorr`` (paper-faithful signature certificates verified
in-circuit).
"""

from repro.anonauth.authority import RegistrationAuthority
from repro.anonauth.keys import UserKeyPair, derive_public_key
from repro.anonauth.scheme import (
    AnonymousAuthScheme,
    Attestation,
    SystemParameters,
    setup,
)

__all__ = [
    "RegistrationAuthority",
    "UserKeyPair",
    "derive_public_key",
    "AnonymousAuthScheme",
    "Attestation",
    "SystemParameters",
    "setup",
]
