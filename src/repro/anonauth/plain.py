"""The non-anonymous authentication mode (Section VI, last paragraph).

"Our protocol can be trivially extended to support non-anonymous mode,
in case that one gives up the anonymity privilege: s/he can generate a
public-private key pair (for digital signatures), and then registers
the public key at RA to receive a certificate bound to the public key;
to authenticate, s/he can simply show the certified public key, the
certificate, along with a message properly signed under the
corresponding secret key, which essentially costs nearly nothing."

This module implements exactly that: RSA-PSS certificates and message
signatures, a trivially linkable ``link`` (identity is public), and the
same Auth/Verify/Link interface shape as the anonymous scheme so the
ablation benchmark can compare their costs head-to-head.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.errors import RegistrationError
from repro.serialization import decode, encode

_CERT_DOMAIN = b"zebralancer-plain-cert:"
_MESSAGE_DOMAIN = b"zebralancer-plain-msg:"


@dataclass(frozen=True)
class PlainCertificate:
    """The RA's RSA-PSS signature over the member's public key."""

    public_key: RSAPublicKey
    signature: bytes


@dataclass(frozen=True)
class PlainAttestation:
    """Everything shown on authentication: pk, cert, message signature.

    There is nothing anonymous here — the certified public key itself is
    the linkage handle (every authentication by the same user is
    linkable to every other, across all tasks).
    """

    certificate: PlainCertificate
    message_signature: bytes

    def to_wire(self) -> bytes:
        return encode(
            [
                self.certificate.public_key.n,
                self.certificate.public_key.e,
                self.certificate.signature,
                self.message_signature,
            ]
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "PlainAttestation":
        n, e, cert_sig, msg_sig = decode(data)
        return cls(
            certificate=PlainCertificate(
                public_key=RSAPublicKey(n=n, e=e), signature=cert_sig
            ),
            message_signature=msg_sig,
        )

    def size_bytes(self) -> int:
        return len(self.to_wire())


def _cert_payload(public_key: RSAPublicKey) -> bytes:
    return _CERT_DOMAIN + public_key.fingerprint()


class PlainAuthority:
    """The RA's non-anonymous certification service."""

    def __init__(self, bits: int = 1024, rng: Optional[random.Random] = None) -> None:
        self._keys = RSAKeyPair.generate(bits, rng)
        self._identities: Dict[str, bytes] = {}

    @property
    def master_public_key(self) -> RSAPublicKey:
        return self._keys.public_key

    def register(self, identity: str, public_key: RSAPublicKey,
                 rng: Optional[random.Random] = None) -> PlainCertificate:
        """One certificate per unique identity, as in the anonymous RA."""
        if identity in self._identities:
            raise RegistrationError(f"identity {identity!r} already registered")
        self._identities[identity] = public_key.fingerprint()
        signature = self._keys.sign(_cert_payload(public_key), rng)
        return PlainCertificate(public_key=public_key, signature=signature)


class PlainAuthScheme:
    """Auth / Verify / Link without anonymity (costs nearly nothing)."""

    def __init__(self, master_public_key: RSAPublicKey) -> None:
        self.master_public_key = master_public_key

    @staticmethod
    def auth(message: bytes, keypair: RSAKeyPair, certificate: PlainCertificate,
             rng: Optional[random.Random] = None) -> PlainAttestation:
        return PlainAttestation(
            certificate=certificate,
            message_signature=keypair.sign(_MESSAGE_DOMAIN + message, rng),
        )

    def verify(self, message: bytes, attestation: PlainAttestation) -> bool:
        certificate = attestation.certificate
        if not self.master_public_key.verify(
            _cert_payload(certificate.public_key), certificate.signature
        ):
            return False
        return certificate.public_key.verify(
            _MESSAGE_DOMAIN + message, attestation.message_signature
        )

    @staticmethod
    def link(a: PlainAttestation, b: PlainAttestation) -> bool:
        """Identity is in the clear: everything by one user links."""
        return (
            a.certificate.public_key.fingerprint()
            == b.certificate.public_key.fingerprint()
        )
