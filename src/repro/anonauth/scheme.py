"""Scheme driver: Setup / Auth / Verify / Link.

Messages are byte strings whose first ``PREFIX_LENGTH`` bytes are the
common prefix p (in ZebraLancer, the task contract's address α_C).
Digests map prefix and full message into the circuit field; tags are
``t1 = MiMC(p̂, sk)`` and ``t2 = MiMC(m̂, sk)``; the attestation is the
pair of tags plus a zk-SNARK proof for the language L_T.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import observability as obs
from repro.crypto.hashing import hash_to_int
from repro.errors import AuthenticationError
from repro.profiles import SecurityProfile, get_profile
from repro.zksnark.backend import KeyPair, Proof, get_backend
from repro.zksnark.field import BN128_SCALAR_FIELD
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_hash_native
from repro.anonauth.authority import Certificate, RegistrationAuthority
from repro.anonauth.circuit import AuthCircuit, AuthInstance
from repro.anonauth.keys import UserKeyPair, derive_public_key

#: λ: the prefix length in bytes (a padded contract address).
PREFIX_LENGTH = 32


def task_prefix(contract_address: bytes) -> bytes:
    """The canonical λ-byte common prefix for a task: α_C zero-padded.

    Every message authenticated within one task MUST start with exactly
    these bytes — Link()'s guarantee depends on it.  (A 20-byte address
    used directly would let per-message bytes bleed into the prefix and
    silently disable linkability.)
    """
    if len(contract_address) > PREFIX_LENGTH:
        raise AuthenticationError("address longer than the prefix length")
    return contract_address.ljust(PREFIX_LENGTH, b"\x00")

_PREFIX_DOMAIN = b"zebralancer-prefix-digest"
_MESSAGE_DOMAIN = b"zebralancer-message-digest"


def prefix_digest(prefix: bytes) -> int:
    """Map the λ-byte prefix into the circuit field."""
    return hash_to_int(prefix, BN128_SCALAR_FIELD, domain=_PREFIX_DOMAIN)


def message_digest(message: bytes) -> int:
    """Map the full message into the circuit field."""
    return hash_to_int(message, BN128_SCALAR_FIELD, domain=_MESSAGE_DOMAIN)


@dataclass(frozen=True)
class Attestation:
    """π = (t1, t2, η): linkability tags plus the zk proof.

    ``registry_commitment`` records the registry state (Merkle root /
    mpk commitment) the certificate was proved against, so verifiers on
    a moving registry can check against the right historical value.
    """

    t1: int
    t2: int
    proof: Proof
    registry_commitment: int

    def to_bytes(self) -> bytes:
        return (
            self.t1.to_bytes(32, "big")
            + self.t2.to_bytes(32, "big")
            + self.proof.payload
        )

    def size_bytes(self) -> int:
        return len(self.to_bytes())

    def to_wire(self) -> bytes:
        """Transport encoding (chain calldata)."""
        from repro.serialization import encode

        return encode(
            [
                self.t1,
                self.t2,
                self.registry_commitment,
                self.proof.backend,
                self.proof.payload,
            ]
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "Attestation":
        from repro.serialization import decode

        t1, t2, commitment, backend, payload = decode(data)
        return cls(
            t1=t1,
            t2=t2,
            proof=Proof(backend=backend, payload=payload),
            registry_commitment=commitment,
        )


@dataclass
class SystemParameters:
    """Everything a participant needs: PP (SNARK keys) + scheme config.

    The proving key is public in this scheme (anyone may prove), so the
    whole bundle is distributed to all participants; the verifying key
    additionally lives on-chain for contract-side verification.
    """

    profile: SecurityProfile
    cert_mode: str
    backend_name: str
    keys: KeyPair
    master_public_key: Optional[Tuple[int, int]]

    @property
    def mimc(self) -> MiMCParameters:
        return MiMCParameters.for_rounds(self.profile.mimc_rounds)

    def circuit(self) -> AuthCircuit:
        return AuthCircuit(
            self.profile, self.cert_mode, master_public_key=self.master_public_key
        )


def setup(
    profile: SecurityProfile | str = "test",
    cert_mode: str = "merkle",
    backend_name: str = "groth16",
    seed: Optional[bytes] = None,
) -> Tuple[SystemParameters, RegistrationAuthority]:
    """System setup: create the RA and establish the Auth SNARK.

    Returns the public system parameters (shared by every participant
    and the chain) and the registration authority object (held by the
    RA operator).
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    authority = RegistrationAuthority(profile, cert_mode=cert_mode, seed=seed)
    example = _example_instance(profile, authority)
    circuit = AuthCircuit(
        profile,
        cert_mode,
        master_public_key=authority.master_public_key,
        example=example,
    )
    backend = get_backend(backend_name)
    keys = backend.setup(circuit, seed=seed)
    params = SystemParameters(
        profile=profile,
        cert_mode=cert_mode,
        backend_name=backend_name,
        keys=keys,
        master_public_key=authority.master_public_key,
    )
    return params, authority


def _example_instance(
    profile: SecurityProfile, authority: RegistrationAuthority
) -> AuthInstance:
    """A satisfiable sample instance used only to derive key material."""
    from repro.anonauth.authority import CERT_MODE_MERKLE, MerkleCertificate
    from repro.zksnark.gadgets import schnorr
    from repro.zksnark.gadgets.merkle import MerkleTree

    mimc = MiMCParameters.for_rounds(profile.mimc_rounds)
    keypair = UserKeyPair.generate(mimc, seed=b"anonauth-example-user")
    if authority.cert_mode == CERT_MODE_MERKLE:
        tree = MerkleTree(depth=profile.merkle_depth, params=mimc)
        index = tree.append(keypair.public_key)
        certificate: Certificate = MerkleCertificate(
            leaf_index=index, path=tree.path(index)
        )
        commitment = tree.root
    else:
        # Only the RA can mint a satisfying Schnorr example.
        signature = schnorr.sign(
            authority.schnorr_params, authority._msk, [keypair.public_key]
        )
        from repro.anonauth.authority import SchnorrCertificate

        certificate = SchnorrCertificate(signature=signature)
        commitment = authority.registry_commitment()
    message = b"\x00" * PREFIX_LENGTH + b"example-message"
    p_digest = prefix_digest(message[:PREFIX_LENGTH])
    m_digest = message_digest(message)
    t1 = mimc_hash_native([p_digest, keypair.secret_key], mimc)
    t2 = mimc_hash_native([m_digest, keypair.secret_key], mimc)
    return AuthInstance(
        prefix_digest=p_digest,
        message_digest=m_digest,
        registry_commitment=commitment,
        t1=t1,
        t2=t2,
        secret_key=keypair.secret_key,
        certificate=certificate,
    )


def attestation_statement(message: bytes, attestation: Attestation) -> list[int]:
    """The SNARK statement a verifier (e.g. the task contract) checks.

    Uses the registry commitment recorded in the attestation; the
    caller must separately confirm that commitment is an acceptable
    registry state (the registry contract keeps the history).
    """
    return [
        prefix_digest(message[:PREFIX_LENGTH]),
        message_digest(message),
        attestation.registry_commitment,
        attestation.t1,
        attestation.t2,
    ]


def tag_link_statement(
    prefix_a: bytes, prefix_b: bytes, attestation: Attestation
) -> list[int]:
    """The SNARK statement a tag-link verifier (e.g. the marketplace) checks.

    Both public inputs go through :func:`prefix_digest`, so a valid
    proof asserts t1 = PRF_sk(p̂_a) AND t2 = PRF_sk(p̂_b) for one
    certified sk — the same-key bridge between two prefix tags.  As
    with :func:`attestation_statement`, the caller must separately
    confirm the recorded registry commitment is acceptable.
    """
    return [
        prefix_digest(prefix_a),
        prefix_digest(prefix_b),
        attestation.registry_commitment,
        attestation.t1,
        attestation.t2,
    ]


class AnonymousAuthScheme:
    """The user/verifier-facing Auth, Verify and Link algorithms."""

    def __init__(self, params: SystemParameters) -> None:
        self.params = params
        self._backend = get_backend(params.backend_name)
        self._circuit = params.circuit()

    # ----- Auth ----------------------------------------------------------------

    def auth(
        self,
        message: bytes,
        keypair: UserKeyPair,
        certificate: Certificate,
        registry_commitment: int,
    ) -> Attestation:
        """Authenticate ``message`` anonymously.

        ``registry_commitment`` is the public registry value the
        certificate currently verifies against (the on-chain Merkle
        root, or the mpk commitment in schnorr mode).
        """
        if len(message) <= PREFIX_LENGTH:
            raise AuthenticationError(
                f"message must be longer than the {PREFIX_LENGTH}-byte prefix"
            )
        with obs.span(
            "protocol.authenticate",
            backend=self.params.backend_name,
            message_bytes=len(message),
        ):
            mimc = self.params.mimc
            p_digest = prefix_digest(message[:PREFIX_LENGTH])
            m_digest = message_digest(message)
            t1 = mimc_hash_native([p_digest, keypair.secret_key], mimc)
            t2 = mimc_hash_native([m_digest, keypair.secret_key], mimc)
            instance = AuthInstance(
                prefix_digest=p_digest,
                message_digest=m_digest,
                registry_commitment=registry_commitment,
                t1=t1,
                t2=t2,
                secret_key=keypair.secret_key,
                certificate=certificate,
            )
            proof = self._backend.prove(
                self.params.keys.proving_key, self._circuit, instance
            )
        obs.count("auth.attestations")
        return Attestation(
            t1=t1, t2=t2, proof=proof, registry_commitment=registry_commitment
        )

    # ----- Verify ---------------------------------------------------------------

    def verify(
        self, message: bytes, attestation: Attestation, registry_commitment: int
    ) -> bool:
        """Check an attestation against the message and registry state."""
        if len(message) <= PREFIX_LENGTH:
            return False
        statement = [
            prefix_digest(message[:PREFIX_LENGTH]),
            message_digest(message),
            registry_commitment,
            attestation.t1,
            attestation.t2,
        ]
        return self._backend.verify(
            self.params.keys.verifying_key, statement, attestation.proof
        )

    # ----- Link -----------------------------------------------------------------

    @staticmethod
    def link(attestation_a: Attestation, attestation_b: Attestation) -> bool:
        """1 iff the two (valid) attestations share a prefix *and* a key.

        Per the paper this is a single tag-equality check — the reason
        the contract's O(n²) Link sweep costs "nearly nothing".
        """
        return attestation_a.t1 == attestation_b.t1

    # ----- tag-link attestations -------------------------------------------------

    def prefix_tag(self, prefix: bytes, keypair: UserKeyPair) -> int:
        """The deterministic tag this key produces under ``prefix``.

        Equals the t1 of every attestation the key makes on messages
        sharing the prefix — a client-side prediction used to locate
        its own submissions (and, with the marketplace board's address
        as the prefix, its stable pseudonymous reputation handle).
        """
        return mimc_hash_native(
            [prefix_digest(prefix), keypair.secret_key], self.params.mimc
        )

    def auth_tag_link(
        self,
        prefix_a: bytes,
        prefix_b: bytes,
        keypair: UserKeyPair,
        certificate: Certificate,
        registry_commitment: int,
    ) -> Attestation:
        """Prove that ONE certified key owns the tags under two prefixes.

        Reuses the Auth circuit unchanged: both public digests are fed
        through :func:`prefix_digest` (its domain), so the statement
        becomes t1 = PRF_sk(p̂_a), t2 = PRF_sk(p̂_b) — i.e. t1 is the
        key's tag under ``prefix_a`` and t2 its tag under ``prefix_b``,
        with the certificate check riding along.  The marketplace uses
        this as an unforgeable claim binding a board-level reputation
        handle (t1) to a per-task submission tag (t2): domain
        separation between :func:`prefix_digest` and
        :func:`message_digest` means no ordinary message attestation
        can be replayed as a tag link or vice versa.
        """
        with obs.span("protocol.auth_tag_link", backend=self.params.backend_name):
            mimc = self.params.mimc
            a_digest = prefix_digest(prefix_a)
            b_digest = prefix_digest(prefix_b)
            t1 = mimc_hash_native([a_digest, keypair.secret_key], mimc)
            t2 = mimc_hash_native([b_digest, keypair.secret_key], mimc)
            instance = AuthInstance(
                prefix_digest=a_digest,
                message_digest=b_digest,
                registry_commitment=registry_commitment,
                t1=t1,
                t2=t2,
                secret_key=keypair.secret_key,
                certificate=certificate,
            )
            proof = self._backend.prove(
                self.params.keys.proving_key, self._circuit, instance
            )
        obs.count("auth.tag_links")
        return Attestation(
            t1=t1, t2=t2, proof=proof, registry_commitment=registry_commitment
        )

    def verify_tag_link(
        self,
        prefix_a: bytes,
        prefix_b: bytes,
        attestation: Attestation,
        registry_commitment: int,
    ) -> bool:
        """Check a tag-link attestation against the two prefixes."""
        statement = tag_link_statement(prefix_a, prefix_b, attestation)
        statement[2] = registry_commitment
        return self._backend.verify(
            self.params.keys.verifying_key, statement, attestation.proof
        )
