"""User identity keys for the anonymous-authentication scheme.

A user's secret key is a scalar of the BN128 scalar field; the public
key is the MiMC identity commitment ``pk = H(sk)`` (so the ``pair(pk,
sk) = 1`` clause of the paper's language L_T is one in-circuit hash).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashing import hash_to_int
from repro.zksnark.field import BN128_SCALAR_FIELD
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_hash_native

_KEY_DOMAIN = b"zebralancer-identity-key"


def derive_public_key(secret_key: int, mimc: MiMCParameters) -> int:
    """pk = MiMC-hash(sk): the identity commitment."""
    return mimc_hash_native([secret_key], mimc)


@dataclass(frozen=True)
class UserKeyPair:
    """An identity keypair (sk, pk = H(sk))."""

    secret_key: int
    public_key: int

    @classmethod
    def generate(
        cls, mimc: MiMCParameters, seed: Optional[bytes] = None
    ) -> "UserKeyPair":
        """Sample (or derive from ``seed``) a fresh identity keypair."""
        if seed is not None:
            sk = hash_to_int(seed, BN128_SCALAR_FIELD, domain=_KEY_DOMAIN)
        else:
            sk = secrets.randbelow(BN128_SCALAR_FIELD)
        sk = sk or 1
        return cls(secret_key=sk, public_key=derive_public_key(sk, mimc))
