"""The registration authority (RA).

The RA validates each participant's real-world identity once, off-line,
and issues a credential bound to the participant's public key (the
``Register`` phase of the protocol).  One identity gets exactly one
credential — this is what bounds a malicious participant to q
certificates in the common-prefix-linkability game.

Certificate modes:

- ``merkle``: the credential is membership of the identity commitment
  in the RA's append-only MiMC Merkle tree; the RA publishes the root
  (via the on-chain registry contract).  The RA *cannot* de-anonymize
  anyone — it only ever sees pk, never sk, and attestations reveal
  neither.
- ``schnorr``: the credential is a Schnorr signature on pk under the
  RA's master key (the paper's description), verified in-circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.errors import RegistrationError
from repro.profiles import SecurityProfile
from repro.zksnark.gadgets import babyjubjub as bjj
from repro.zksnark.gadgets import schnorr
from repro.zksnark.gadgets.merkle import MerklePath, MerkleTree
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_hash_native

CERT_MODE_MERKLE = "merkle"
CERT_MODE_SCHNORR = "schnorr"
CERT_MODES = (CERT_MODE_MERKLE, CERT_MODE_SCHNORR)


@dataclass(frozen=True)
class MerkleCertificate:
    """Membership credential: the leaf slot in the registration tree."""

    leaf_index: int
    path: MerklePath


@dataclass(frozen=True)
class SchnorrCertificate:
    """Signature credential: RA's Schnorr signature on pk."""

    signature: schnorr.SchnorrSignature


Certificate = Union[MerkleCertificate, SchnorrCertificate]


class RegistrationAuthority:
    """Issues one credential per unique identity (``CertGen``)."""

    def __init__(
        self,
        profile: SecurityProfile,
        cert_mode: str = CERT_MODE_MERKLE,
        seed: Optional[bytes] = None,
    ) -> None:
        if cert_mode not in CERT_MODES:
            raise ValueError(f"cert_mode must be one of {CERT_MODES}")
        self.profile = profile
        self.cert_mode = cert_mode
        self.mimc = MiMCParameters.for_rounds(profile.mimc_rounds)
        self._identities: Dict[str, int] = {}  # identity -> pk
        self._leaf_index: Dict[int, int] = {}  # pk -> merkle leaf slot
        self._tree = MerkleTree(depth=profile.merkle_depth, params=self.mimc)
        self._schnorr_params = schnorr.SchnorrParameters(
            scalar_bits=profile.scalar_bits, mimc=self.mimc
        )
        self._msk: Optional[int] = None
        self._mpk: Optional[bjj.Point] = None
        if cert_mode == CERT_MODE_SCHNORR:
            self._msk, self._mpk = schnorr.generate_keypair(
                self._schnorr_params, seed=seed
            )

    # ----- public system material -------------------------------------------

    @property
    def schnorr_params(self) -> schnorr.SchnorrParameters:
        return self._schnorr_params

    @property
    def master_public_key(self) -> Optional[bjj.Point]:
        """The RA's mpk (schnorr mode only)."""
        return self._mpk

    def registry_commitment(self) -> int:
        """The public value the Verify algorithm checks certificates against.

        Merkle mode: the current tree root (changes as users register).
        Schnorr mode: a commitment to the fixed master public key.
        """
        if self.cert_mode == CERT_MODE_MERKLE:
            return self._tree.root
        assert self._mpk is not None
        return mimc_hash_native([self._mpk[0], self._mpk[1]], self.mimc)

    @property
    def registered_count(self) -> int:
        return len(self._identities)

    # ----- CertGen ------------------------------------------------------------

    def register(self, identity: str, public_key: int) -> Certificate:
        """Bind ``public_key`` to a unique real-world ``identity``.

        Raises :class:`RegistrationError` when the identity already has
        a credential — the one-identity-one-credential rule underpinning
        accountability.
        """
        if identity in self._identities:
            raise RegistrationError(f"identity {identity!r} is already registered")
        if public_key in self._leaf_index:
            raise RegistrationError("public key is already certified")
        self._identities[identity] = public_key
        if self.cert_mode == CERT_MODE_MERKLE:
            index = self._tree.append(public_key)
            self._leaf_index[public_key] = index
            return MerkleCertificate(leaf_index=index, path=self._tree.path(index))
        self._leaf_index[public_key] = len(self._leaf_index)
        assert self._msk is not None
        signature = schnorr.sign(self._schnorr_params, self._msk, [public_key])
        return SchnorrCertificate(signature=signature)

    def refresh_certificate(self, public_key: int) -> Certificate:
        """Re-issue the current credential for an already-certified key.

        In merkle mode paths go stale as later users register; clients
        refresh before authenticating.  Schnorr certificates are stable.
        """
        if public_key not in self._leaf_index:
            raise RegistrationError("public key is not certified")
        if self.cert_mode == CERT_MODE_MERKLE:
            index = self._leaf_index[public_key]
            return MerkleCertificate(leaf_index=index, path=self._tree.path(index))
        assert self._msk is not None
        signature = schnorr.sign(self._schnorr_params, self._msk, [public_key])
        return SchnorrCertificate(signature=signature)

    def is_certified(self, public_key: int) -> bool:
        return public_key in self._leaf_index
