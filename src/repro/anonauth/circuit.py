"""The Auth circuit: the language L_T of Section V-A.

Public statement: (p̂, m̂, registry commitment, t1, t2) where p̂ and m̂
are field digests of the prefix and the full message.  Witness: the
user's secret key and certificate.  Constraints:

- ``pk = MiMC(sk)``                        (the ``pair(pk, sk) = 1`` clause)
- ``t1 = MiMC(p̂, sk)``                    (the prefix-linkability tag)
- ``t2 = MiMC(m̂, sk)``                    (the full-message tag)
- ``CertVrfy(cert, pk, mpk) = 1``          (mode-dependent, see below)

In ``merkle`` mode the certificate clause is a Merkle-membership proof
of pk against the public registry root; in ``schnorr`` mode it is an
in-circuit Schnorr verification against the RA's master key, which is a
circuit constant fixed at setup (the paper's Setup likewise emits the
master keys together with PP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AuthenticationError, CircuitError
from repro.profiles import SecurityProfile
from repro.zksnark.backend import CircuitDefinition
from repro.zksnark.circuit import ConstraintSystem
from repro.zksnark.gadgets import babyjubjub as bjj
from repro.zksnark.gadgets import schnorr
from repro.zksnark.gadgets.merkle import merkle_root_gadget
from repro.zksnark.gadgets.mimc import MiMCParameters, mimc_hash, mimc_hash_native
from repro.anonauth.authority import (
    CERT_MODE_MERKLE,
    CERT_MODE_SCHNORR,
    Certificate,
    MerkleCertificate,
    SchnorrCertificate,
)


@dataclass(frozen=True)
class AuthInstance:
    """One concrete Auth statement + witness."""

    prefix_digest: int
    message_digest: int
    registry_commitment: int
    t1: int
    t2: int
    secret_key: int
    certificate: Certificate

    def public_inputs(self) -> list[int]:
        return [
            self.prefix_digest,
            self.message_digest,
            self.registry_commitment,
            self.t1,
            self.t2,
        ]


class AuthCircuit(CircuitDefinition):
    """Circuit template for the common-prefix-linkable Auth statement."""

    name = "anonauth"

    def __init__(
        self,
        profile: SecurityProfile,
        cert_mode: str,
        master_public_key: Optional[bjj.Point] = None,
        example: Optional[AuthInstance] = None,
    ) -> None:
        self.profile = profile
        self.cert_mode = cert_mode
        self.mimc = MiMCParameters.for_rounds(profile.mimc_rounds)
        self.master_public_key = master_public_key
        self._example = example
        if cert_mode == CERT_MODE_SCHNORR and master_public_key is None:
            raise CircuitError("schnorr mode requires the RA master public key")
        self._schnorr_params = schnorr.SchnorrParameters(
            scalar_bits=profile.scalar_bits, mimc=self.mimc
        )

    def example_instance(self) -> AuthInstance:
        if self._example is None:
            raise CircuitError(
                "this AuthCircuit was built without example material; "
                "only setup-side circuits carry one"
            )
        return self._example

    def public_inputs(self, instance: AuthInstance) -> list[int]:
        return instance.public_inputs()

    def synthesize(self, cs: ConstraintSystem, instance: AuthInstance) -> None:
        prefix_digest = cs.alloc_public(instance.prefix_digest)
        message_digest = cs.alloc_public(instance.message_digest)
        commitment = cs.alloc_public(instance.registry_commitment)
        t1_public = cs.alloc_public(instance.t1)
        t2_public = cs.alloc_public(instance.t2)

        secret_key = cs.alloc(instance.secret_key)
        public_key = mimc_hash(cs, [secret_key], self.mimc)

        t1 = mimc_hash(cs, [prefix_digest, secret_key], self.mimc)
        cs.enforce_equal(t1, t1_public, annotation="t1 tag")
        t2 = mimc_hash(cs, [message_digest, secret_key], self.mimc)
        cs.enforce_equal(t2, t2_public, annotation="t2 tag")

        if self.cert_mode == CERT_MODE_MERKLE:
            certificate = instance.certificate
            if not isinstance(certificate, MerkleCertificate):
                raise AuthenticationError("merkle mode requires a Merkle certificate")
            root = merkle_root_gadget(cs, public_key, certificate.path, self.mimc)
            cs.enforce_equal(root, commitment, annotation="registry root")
        else:
            certificate = instance.certificate
            if not isinstance(certificate, SchnorrCertificate):
                raise AuthenticationError("schnorr mode requires a Schnorr certificate")
            mpk = self.master_public_key
            assert mpk is not None
            schnorr.verify_gadget(
                cs,
                self._schnorr_params,
                mpk,
                [public_key],
                [],
                certificate.signature,
            )
            expected = mimc_hash_native([mpk[0], mpk[1]], self.mimc)
            cs.enforce_equal(
                commitment, cs.constant(expected), annotation="mpk commitment"
            )
