"""A full node: keeps the chain, the state per block, and a mempool.

Every node re-executes every imported block and refuses blocks whose
declared state root disagrees with its own execution — the "correct
computation" guarantee.  Fork choice is longest-chain (lowest hash as a
deterministic tiebreak).

Robustness machinery: every accepted block is appended to an
append-only :class:`~repro.chain.journal.ChainJournal`, so a crashed
node rebuilds its whole in-memory state by re-executing the journal on
restart; a number→hash index over the canonical chain makes
``block_by_number`` and peer sync O(1) per block; and a reorg returns
the abandoned branch's transactions to the mempool instead of silently
dropping them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import observability as obs
from repro.crypto import ecdsa
from repro.errors import ChainError, InvalidBlockError, InvalidTransactionError
from repro.chain.block import Block, BlockHeader, GENESIS_PARENT, transactions_root
from repro.chain.consensus import ConsensusEngine, PoAEngine
from repro.chain.contract import BlockContext
from repro.chain.gas import DEFAULT_SCHEDULE, GasSchedule
from repro.chain.journal import ChainJournal
from repro.chain.mempool import Mempool
from repro.chain.parallel import execute_block
from repro.chain.receipts import EMPTY_RECEIPTS_ROOT, Receipt, receipts_root
from repro.chain.state import WorldState
from repro.chain.transaction import SignedTransaction
from repro.chain.vm import VM

DEFAULT_BLOCK_GAS_LIMIT = 30_000_000


@dataclass
class GenesisConfig:
    """Initial balances and chain parameters."""

    allocations: Dict[bytes, int] = field(default_factory=dict)
    gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT
    chain_id: int = 1337
    timestamp: int = 1_500_000_000
    #: Pre-installed contracts: address -> (registered contract name,
    #: initial storage).  Used by the sharded chain to place the
    #: cross-shard outbox/inbox at fixed addresses in every shard's
    #: genesis; empty for ordinary chains.
    contracts: Dict[bytes, Tuple[str, Dict[str, Any]]] = field(default_factory=dict)

    def build_state(self) -> WorldState:
        state = WorldState()
        for address, balance in self.allocations.items():
            state.credit(address, balance)
        for address, (contract_name, storage) in self.contracts.items():
            account = state.account(address)
            account.contract_name = contract_name
            account.storage = {key: value for key, value in storage.items()}
        return state

    def build_genesis_block(self) -> Block:
        state = self.build_state()
        header = BlockHeader(
            number=0,
            parent_hash=GENESIS_PARENT,
            timestamp=self.timestamp,
            miner=b"\x00" * 20,
            state_root=state.state_root(),
            tx_root=transactions_root([]),
            receipts_root=EMPTY_RECEIPTS_ROOT,
            gas_used=0,
            gas_limit=self.gas_limit,
            extra=b"zebralancer-genesis",
        )
        return Block(header=header, transactions=())


class Node:
    """One network participant (miner or plain full node)."""

    def __init__(
        self,
        name: str,
        genesis: GenesisConfig,
        engine: Optional[ConsensusEngine] = None,
        keypair: Optional[ecdsa.ECDSAKeyPair] = None,
        is_miner: bool = False,
        schedule: GasSchedule = DEFAULT_SCHEDULE,
        execution_lanes: int = 1,
        execution_workers: int = 1,
        mempool_capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.genesis = genesis
        self.keypair = keypair or ecdsa.ECDSAKeyPair.from_seed(name.encode())
        self.is_miner = is_miner
        #: Optimistic-concurrency knobs: speculative lanes per block and
        #: forked worker processes driving them (1/1 = serial).
        self.execution_lanes = max(1, execution_lanes)
        self.execution_workers = max(1, execution_workers)
        self.engine = engine or PoAEngine([self.keypair.address()])
        self.vm = VM(schedule=schedule, chain_id=genesis.chain_id)
        self.mempool = Mempool(capacity=mempool_capacity)
        self.journal = ChainJournal()
        self.crashed = False
        #: Counters for recovery tests: accepted imports / import calls.
        self.blocks_imported = 0
        self.import_attempts = 0
        #: Execution stats of the last block this node built (the shard
        #: throughput bench reads critical-path timings from here).
        self.last_build_stats = None
        self._reset_in_memory_state()

    def _reset_in_memory_state(self) -> None:
        genesis_block = self.genesis.build_genesis_block()
        self._blocks: Dict[bytes, Block] = {genesis_block.block_hash: genesis_block}
        self._states: Dict[bytes, WorldState] = {
            genesis_block.block_hash: self.genesis.build_state()
        }
        self._receipts: Dict[bytes, Receipt] = {}
        # block hash -> ordered receipts (source of receipt proofs).
        self._block_receipts: Dict[bytes, Tuple[Receipt, ...]] = {
            genesis_block.block_hash: ()
        }
        self._head = genesis_block.block_hash
        # number -> hash of the canonical (head-ancestor) chain.
        self._canonical: Dict[int, bytes] = {0: genesis_block.block_hash}

    # ----- chain views --------------------------------------------------------------

    @property
    def address(self) -> bytes:
        return self.keypair.address()

    @property
    def head_block(self) -> Block:
        return self._blocks[self._head]

    @property
    def head_state(self) -> WorldState:
        return self._states[self._head]

    @property
    def height(self) -> int:
        return self.head_block.number

    def block_by_hash(self, block_hash: bytes) -> Optional[Block]:
        return self._blocks.get(block_hash)

    def block_by_number(self, number: int) -> Optional[Block]:
        """The canonical block at ``number`` (O(1) via the index)."""
        block_hash = self._canonical.get(number)
        return self._blocks.get(block_hash) if block_hash is not None else None

    def canonical_hash(self, number: int) -> Optional[bytes]:
        return self._canonical.get(number)

    def canonical_blocks(self, start: int, end: int) -> List[Block]:
        """Canonical blocks with numbers in ``[start, end]`` (for sync)."""
        blocks: List[Block] = []
        for number in range(start, end + 1):
            block = self.block_by_number(number)
            if block is None:
                break
            blocks.append(block)
        return blocks

    def get_receipt(self, tx_hash: bytes) -> Optional[Receipt]:
        return self._receipts.get(tx_hash)

    def receipts_for_block(self, block_hash: bytes) -> Optional[Tuple[Receipt, ...]]:
        """The ordered receipts of a locally executed block."""
        return self._block_receipts.get(block_hash)

    def balance_of(self, address: bytes) -> int:
        return self.head_state.balance_of(address)

    def nonce_of(self, address: bytes) -> int:
        return self.head_state.nonce_of(address)

    def call(
        self,
        address: bytes,
        method: str,
        args: Optional[List[Any]] = None,
        caller: Optional[bytes] = None,
    ) -> Any:
        """Execute a view method against the head state (free)."""
        block_ctx = BlockContext(
            number=self.height,
            timestamp=self.head_block.header.timestamp,
            coinbase=self.head_block.header.miner,
        )
        return self.vm.run_view(
            self.head_state, address, method, args or [], block_ctx, caller
        )

    # ----- mempool --------------------------------------------------------------------

    def submit_transaction(self, stx: SignedTransaction) -> bool:
        """Admit a transaction to the local pool (light validation).

        Inclusion-time validation is strict; admission only requires a
        valid signature, a plausible nonce and fee coverage.
        """
        self._require_live()
        if not stx.verify_signature():
            raise InvalidTransactionError("bad signature")
        if stx.transaction.chain_id != self.genesis.chain_id:
            raise InvalidTransactionError("wrong chain id")
        state = self.head_state
        if stx.transaction.nonce < state.nonce_of(stx.sender):
            raise InvalidTransactionError("stale nonce")
        if state.balance_of(stx.sender) < stx.max_cost():
            raise InvalidTransactionError("cannot cover value + max fee")
        return self.mempool.add(stx)

    # ----- block production --------------------------------------------------------------

    def create_block(self, timestamp: int) -> Block:
        """Mine a block on the current head from the local mempool."""
        self._require_live()
        if not self.is_miner:
            raise InvalidBlockError(f"node {self.name} is not a miner")
        parent = self.head_block
        with obs.span(
            "chain.create_block", node=self.name, number=parent.number + 1
        ) as mine_span:
            state = self.head_state.snapshot()
            block_ctx = BlockContext(
                number=parent.number + 1, timestamp=timestamp, coinbase=self.address
            )
            selected = self.mempool.select_for_block(
                self.genesis.gas_limit, state=self.head_state
            )
            execution = execute_block(
                self.vm, state, selected, block_ctx,
                lanes=self.execution_lanes, workers=self.execution_workers,
                mode="build",
            )
            included = execution.included
            gas_used = execution.gas_used
            self.last_build_stats = execution.stats
            header = BlockHeader(
                number=parent.number + 1,
                parent_hash=parent.block_hash,
                timestamp=timestamp,
                miner=self.address,
                state_root=state.state_root(),
                tx_root=transactions_root(included),
                receipts_root=receipts_root(execution.receipts),
                gas_used=gas_used,
                gas_limit=self.genesis.gas_limit,
            )
            seal = self.engine.seal(header, self.keypair)
            sealed = BlockHeader(**{**header.__dict__, "seal": seal})
            block = Block(header=sealed, transactions=tuple(included))
            mine_span.set_attrs(
                txs=len(included), gas_used=gas_used,
                lanes=execution.stats.lanes,
                reexecutions=execution.stats.reexecutions,
            )
            self.import_block(block)
        return block

    # ----- block import --------------------------------------------------------------------

    def import_block(self, block: Block) -> bool:
        """Validate, re-execute and adopt a block; returns False if known."""
        self._require_live()
        self.import_attempts += 1
        if block.block_hash in self._blocks:
            return False
        with obs.span(
            "chain.import_block",
            node=self.name,
            number=block.number,
            txs=len(block.transactions),
        ):
            return self._import_block_inner(block)

    def _import_block_inner(self, block: Block) -> bool:
        parent_state = self._states.get(block.header.parent_hash)
        parent_block = self._blocks.get(block.header.parent_hash)
        if parent_state is None or parent_block is None:
            raise InvalidBlockError("unknown parent block")
        if block.number != parent_block.number + 1:
            raise InvalidBlockError("non-consecutive block number")
        if block.header.timestamp < parent_block.header.timestamp:
            raise InvalidBlockError("timestamp moves backwards")
        self.engine.validate_seal(block.header)
        if block.header.tx_root != transactions_root(list(block.transactions)):
            raise InvalidBlockError("transaction root mismatch")

        state = parent_state.snapshot()
        block_ctx = BlockContext(
            number=block.number,
            timestamp=block.header.timestamp,
            coinbase=block.header.miner,
        )
        try:
            execution = execute_block(
                self.vm, state, list(block.transactions), block_ctx,
                lanes=self.execution_lanes, workers=self.execution_workers,
                mode="verify",
            )
        except InvalidTransactionError as exc:
            raise InvalidBlockError(f"invalid transaction in block: {exc}") from exc
        receipts = execution.receipts
        if execution.gas_used != block.header.gas_used:
            raise InvalidBlockError("gas-used mismatch after re-execution")
        if state.state_root() != block.header.state_root:
            raise InvalidBlockError("state root mismatch after re-execution")
        if receipts_root(receipts) != block.header.receipts_root:
            raise InvalidBlockError("receipts root mismatch after re-execution")

        self._blocks[block.block_hash] = block
        self._states[block.block_hash] = state
        self._block_receipts[block.block_hash] = tuple(receipts)
        for receipt in receipts:
            self._receipts[receipt.tx_hash] = receipt
        self.blocks_imported += 1
        if not self._replaying:
            self.journal.append(block)
        self.mempool.drop_included(block.transactions)
        self._maybe_reorg(block)
        self.mempool.prune_stale(self.head_state)
        if obs.TRACER.enabled:
            obs.count("chain.blocks_imported")
            obs.gauge_set("chain.height", self.height)
            obs.gauge_set("chain.mempool_depth", len(self.mempool))
        return True

    def _maybe_reorg(self, candidate: Block) -> None:
        """Adopt ``candidate`` as head if fork choice prefers it.

        On a branch switch the abandoned branch's transactions return to
        the mempool (if still valid on the new head) so a reorg never
        silently loses a submission.
        """
        head = self.head_block
        better = candidate.number > head.number or (
            candidate.number == head.number and candidate.block_hash < head.block_hash
        )
        if not better:
            return
        # Walk the candidate's ancestry down to the canonical chain;
        # cheap in the common extend-head case (one step).
        new_branch: List[Block] = []
        ancestor = candidate
        while (
            ancestor.number > 0
            and self._canonical.get(ancestor.number) != ancestor.block_hash
        ):
            new_branch.append(ancestor)
            parent = self._blocks.get(ancestor.header.parent_hash)
            if parent is None:  # cannot happen: imports require known parents
                raise InvalidBlockError("broken ancestry during reorg")
            ancestor = parent
        fork_height = ancestor.number
        orphaned: List[Block] = [
            self._blocks[self._canonical[number]]
            for number in range(fork_height + 1, head.number + 1)
            if number in self._canonical
        ]
        for number in range(candidate.number + 1, head.number + 1):
            self._canonical.pop(number, None)
        for block in new_branch:
            self._canonical[block.number] = block.block_hash
        self._head = candidate.block_hash
        if orphaned:
            if obs.TRACER.enabled:
                obs.count("chain.reorgs")
                obs.observe(
                    "chain.reorg_depth", len(orphaned),
                    buckets=(1, 2, 3, 5, 8, 13, 21),
                )
            self._reinject_orphaned(orphaned, fork_height)

    def _reinject_orphaned(self, orphaned: List[Block], fork_height: int) -> None:
        adopted_hashes = {
            stx.tx_hash
            for number in range(fork_height + 1, self.head_block.number + 1)
            for stx in self._blocks[self._canonical[number]].transactions
        }
        state = self.head_state
        for block in orphaned:
            for stx in block.transactions:
                if stx.tx_hash in adopted_hashes:
                    continue
                if stx.transaction.nonce < state.nonce_of(stx.sender):
                    continue  # superseded on the adopted branch
                self.mempool.add(stx)

    # ----- crash / recovery ------------------------------------------------------------

    _replaying = False

    def _require_live(self) -> None:
        if self.crashed:
            raise ChainError(f"node {self.name} is down")

    def crash(self) -> None:
        """Lose every in-memory structure; only the journal survives."""
        self.crashed = True
        self.mempool = Mempool(
            ordering=self.mempool.ordering, capacity=self.mempool.capacity
        )
        self._blocks = {}
        self._states = {}
        self._receipts = {}
        self._block_receipts = {}
        self._canonical = {}

    def restart(self) -> int:
        """Rebuild chain + state by re-executing the journal.

        Returns the number of replayed blocks.  Receipts and per-block
        states come back automatically because recovery *re-executes*
        rather than trusting any snapshot.
        """
        self.crashed = False
        self._reset_in_memory_state()
        replayed = 0
        self._replaying = True
        try:
            for block in self.journal.replay():
                if self.import_block(block):
                    replayed += 1
        finally:
            self._replaying = False
        return replayed

    # ----- invariants ------------------------------------------------------------------------

    def chain_to_genesis(self) -> List[Block]:
        """The head's ancestor chain, genesis first."""
        return self.canonical_blocks(0, self.height)
