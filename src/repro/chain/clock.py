"""Simulated time for the discrete-event network."""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: int = 1_500_000_000) -> None:
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def advance(self, seconds: int) -> int:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds
        return self._now
