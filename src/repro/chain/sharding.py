"""Static chain sharding by task-contract address, with cross-shard
reward settlement.

The chain-level scaling step the ROADMAP sketches after optimistic
parallel execution: a *shard* is a lane whose assignment is static and
whose conflicts are cross-shard messages.  :class:`ShardedChain` runs S
independent :class:`~repro.chain.network.Testnet` sub-chains (each with
its own miners, mempool, faucet and per-shard parallel block
production), statically routes every transaction to the home shard of
the contract it touches, and settles value *between* shards through a
burn-and-mint bridge:

- **Outbox** (source shard): ``ShardOutbox.send(dest, recipient)``
  escrow-burns the attached value, assigns the next per-channel
  sequence number and emits an ``XShardSend`` log carrying the full
  :class:`XShardMessage` wire.  The log lands in a receipt, which lands
  under the block's ``receipts_root`` — the existing light-client
  commitment (PR 6) is the bridge's proof substrate.
- **Beacon**: after every round the beacon authority signs a
  :class:`ShardAnchor` per shard head (block hash + receipts root +
  state root) and chains them into :class:`BeaconBlock` s — the single
  consistent ordering of shard headers that light clients and the
  engine observe.
- **Inbox** (destination shard): ``ShardInbox.deliver`` verifies the
  beacon signature over the anchor, the Merkle receipt proof against
  the anchored ``receipts_root``, that the claimed message really was
  emitted by the outbox in that receipt, and that the message's
  sequence number equals the per-source-shard inbound nonce.  Only then
  does it re-mint and pay out.  Duplicates, replays and forged proofs
  all fail closed; the inbound nonce makes application exactly-once.

Conservation: every cross-shard send burns on the source shard and
mints exactly once on the destination, so

    sum(shard total supplies) + in-flight value == initial supply

holds at every instant (``in_flight_value`` reads the cumulative
sent/received counters straight from contract storage).

``ShardedChain(shards=1)`` is a pure veneer over a single standard
``Testnet`` — no bridge contracts, no extra allocations, byte-identical
blocks — so the differential suite can pin the sharded runtime to the
unsharded chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto import ecdsa
from repro.crypto.hashing import keccak256, sha256
from repro.errors import ChainError, SignatureError
from repro.serialization import framed_decode, framed_encode
from repro.chain.address import contract_address
from repro.chain.block import Block
from repro.chain.contract import Contract, ContractRegistry, external, view
from repro.chain.faults import FaultPlan
from repro.chain.network import NetworkStats, Testnet
from repro.chain.receipts import Receipt, ReceiptProof, prove_receipt_inclusion
from repro.chain.transaction import SignedTransaction, Transaction, encode_call
from repro.chain.txsender import PendingTx, TxAbandonedError, TxSender

__test__ = False

_MAGIC_MESSAGE = b"ZLXM"
_MAGIC_ANCHOR = b"ZLSA"
_MAGIC_BEACON = b"ZLBB"
_WIRE_VERSION = 1

#: Fixed bridge addresses, pre-installed in every shard's genesis (S>1).
OUTBOX_ADDRESS = keccak256(b"zebralancer/xshard/outbox")[:20]
INBOX_ADDRESS = keccak256(b"zebralancer/xshard/inbox")[:20]

XSHARD_SEND_EVENT = "XShardSend"
XSHARD_DELIVERED_EVENT = "XShardDelivered"

#: Deterministic infrastructure keys (relayer pays delivery gas; the
#: beacon authority signs shard anchors).
RELAYER_SEED = b"xshard-relayer"
BEACON_SEED = b"xshard-beacon"

DELIVER_GAS_LIMIT = 2_000_000
SEND_GAS_LIMIT = 500_000

GENESIS_BEACON_PARENT = b"\x00" * 32


def home_shard(address: bytes, shards: int) -> int:
    """The static shard assignment of an address (hash-uniform)."""
    if shards < 1:
        raise ValueError("need at least one shard")
    if shards == 1:
        return 0
    return int.from_bytes(keccak256(b"zl-shard-assign", address)[:8], "big") % shards


def _require_address(value: Any, what: str) -> bytes:
    if not isinstance(value, (bytes, bytearray)) or len(value) != 20:
        raise ValueError(f"{what} must be a 20-byte address")
    return bytes(value)


def _require_hash(value: Any, what: str) -> bytes:
    if not isinstance(value, (bytes, bytearray)) or len(value) != 32:
        raise ValueError(f"{what} must be a 32-byte hash")
    return bytes(value)


def _require_uint(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ValueError(f"{what} must be a non-negative int")
    return value


# ----- wire formats -------------------------------------------------------------------


@dataclass(frozen=True)
class XShardMessage:
    """One cross-shard value transfer, as emitted by the source outbox.

    ``seq`` is the per-(source, dest) channel sequence number — the
    destination inbox applies messages in exactly this order, which is
    what makes delivery exactly-once.  ``source_block`` pins the block
    whose anchored receipts root must prove the send.
    """

    source_shard: int
    dest_shard: int
    seq: int
    source_block: int
    sender: bytes
    recipient: bytes
    amount: int

    def to_wire(self) -> bytes:
        return framed_encode(
            _MAGIC_MESSAGE,
            _WIRE_VERSION,
            [
                self.source_shard,
                self.dest_shard,
                self.seq,
                self.source_block,
                self.sender,
                self.recipient,
                self.amount,
            ],
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "XShardMessage":
        fields = framed_decode(_MAGIC_MESSAGE, _WIRE_VERSION, data)
        if not isinstance(fields, list) or len(fields) != 7:
            raise ValueError("cross-shard message must hold exactly seven fields")
        source_shard, dest_shard, seq, source_block, sender, recipient, amount = fields
        source_shard = _require_uint(source_shard, "source shard")
        dest_shard = _require_uint(dest_shard, "destination shard")
        if source_shard == dest_shard:
            raise ValueError("a cross-shard message cannot target its own shard")
        amount = _require_uint(amount, "amount")
        if amount == 0:
            raise ValueError("a cross-shard message must carry positive value")
        return cls(
            source_shard=source_shard,
            dest_shard=dest_shard,
            seq=_require_uint(seq, "sequence number"),
            source_block=_require_uint(source_block, "source block"),
            sender=_require_address(sender, "sender"),
            recipient=_require_address(recipient, "recipient"),
            amount=amount,
        )


@dataclass(frozen=True)
class ShardAnchor:
    """One shard head as committed by the beacon.

    The anchor is what a destination inbox (and any light client)
    trusts about a foreign shard: the beacon signature over this wire
    authenticates the ``receipts_root`` that receipt proofs verify
    against.
    """

    shard: int
    number: int
    block_hash: bytes
    receipts_root: bytes
    state_root: bytes

    def to_wire(self) -> bytes:
        return framed_encode(
            _MAGIC_ANCHOR,
            _WIRE_VERSION,
            [
                self.shard,
                self.number,
                self.block_hash,
                self.receipts_root,
                self.state_root,
            ],
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "ShardAnchor":
        fields = framed_decode(_MAGIC_ANCHOR, _WIRE_VERSION, data)
        if not isinstance(fields, list) or len(fields) != 5:
            raise ValueError("shard anchor must hold exactly five fields")
        shard, number, block_hash, receipts_root, state_root = fields
        return cls(
            shard=_require_uint(shard, "shard"),
            number=_require_uint(number, "block number"),
            block_hash=_require_hash(block_hash, "block hash"),
            receipts_root=_require_hash(receipts_root, "receipts root"),
            state_root=_require_hash(state_root, "state root"),
        )

    def signing_digest(self) -> bytes:
        return sha256(b"zl-shard-anchor", self.to_wire())

    @classmethod
    def of_block(cls, shard: int, block: Block) -> "ShardAnchor":
        return cls(
            shard=shard,
            number=block.number,
            block_hash=block.block_hash,
            receipts_root=block.header.receipts_root,
            state_root=block.header.state_root,
        )


@dataclass(frozen=True)
class BeaconBlock:
    """One beacon round: the ordered tuple of signed shard anchors.

    ``anchors`` holds (anchor_wire, signature) pairs, one per shard in
    shard order; ``parent`` hash-chains rounds so the header stream is
    fork-free for consumers.
    """

    number: int
    parent: bytes
    anchors: Tuple[Tuple[bytes, bytes], ...]

    def to_wire(self) -> bytes:
        return framed_encode(
            _MAGIC_BEACON,
            _WIRE_VERSION,
            [
                self.number,
                self.parent,
                [[wire, signature] for wire, signature in self.anchors],
            ],
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "BeaconBlock":
        fields = framed_decode(_MAGIC_BEACON, _WIRE_VERSION, data)
        if not isinstance(fields, list) or len(fields) != 3:
            raise ValueError("beacon block must hold exactly three fields")
        number, parent, anchors = fields
        if not isinstance(anchors, list) or not anchors:
            raise ValueError("beacon block must anchor at least one shard")
        pairs: List[Tuple[bytes, bytes]] = []
        for item in anchors:
            if not isinstance(item, list) or len(item) != 2:
                raise ValueError("each anchor entry must be [wire, signature]")
            wire, signature = item
            if not isinstance(wire, bytes) or not isinstance(signature, bytes):
                raise ValueError("anchor entries must be byte strings")
            ShardAnchor.from_wire(wire)  # reject junk anchors at the frame
            pairs.append((wire, signature))
        return cls(
            number=_require_uint(number, "beacon number"),
            parent=_require_hash(parent, "parent hash"),
            anchors=tuple(pairs),
        )

    @property
    def beacon_hash(self) -> bytes:
        return sha256(b"zl-beacon-block", self.to_wire())


# ----- bridge contracts ---------------------------------------------------------------


@ContractRegistry.register
class ShardOutbox(Contract):
    """Source-shard half of the bridge: escrow-burn and log the send.

    Pre-installed at :data:`OUTBOX_ADDRESS` in every shard's genesis
    with storage ``{"shard": k, "shards": S}``.
    """

    contract_name = "ShardOutbox"

    @external
    def send(self, dest_shard: int, recipient: bytes) -> int:
        shards = self.storage["shards"]
        local = self.storage["shard"]
        self.require(
            isinstance(dest_shard, int) and 0 <= dest_shard < shards,
            "destination shard out of range",
        )
        self.require(dest_shard != local, "destination is the local shard")
        self.require(
            isinstance(recipient, (bytes, bytearray)) and len(recipient) == 20,
            "recipient must be a 20-byte address",
        )
        amount = self.msg_value
        self.require(amount > 0, "a cross-shard send must carry value")
        seq_key = f"seq:{dest_shard}"
        seq = self.storage.get(seq_key, 0)
        message = XShardMessage(
            source_shard=local,
            dest_shard=dest_shard,
            seq=seq,
            source_block=self.block_number,
            sender=self.msg_sender,
            recipient=bytes(recipient),
            amount=amount,
        )
        # Burn the escrowed value: the destination inbox re-mints it
        # exactly once, keeping sum(supplies) + in-flight constant.
        self._ctx.state.debit(self.address, amount)
        self.storage[seq_key] = seq + 1
        sent_key = f"sent:{dest_shard}"
        self.storage[sent_key] = self.storage.get(sent_key, 0) + amount
        self.emit(XSHARD_SEND_EVENT, wire=message.to_wire())
        return seq

    @view
    def next_seq(self, dest_shard: int) -> int:
        return self.storage.get(f"seq:{dest_shard}", 0)

    @view
    def total_sent(self, dest_shard: int) -> int:
        return self.storage.get(f"sent:{dest_shard}", 0)


@ContractRegistry.register
class ShardInbox(Contract):
    """Destination-shard half: verify, apply exactly once, re-mint.

    Pre-installed at :data:`INBOX_ADDRESS` with storage
    ``{"shard": k, "shards": S, "beacon": <beacon address>}``.
    """

    contract_name = "ShardInbox"

    @external
    def deliver(
        self,
        anchor_wire: bytes,
        anchor_signature: bytes,
        receipt: Any,
        index: int,
        siblings: List[bytes],
        message_wire: bytes,
    ) -> int:
        try:
            anchor = ShardAnchor.from_wire(bytes(anchor_wire))
            message = XShardMessage.from_wire(bytes(message_wire))
        except (ValueError, TypeError) as exc:
            self.require(False, f"malformed cross-shard payload: {exc}")
            raise  # unreachable; keeps type checkers honest

        # 1. The anchor must be signed by the beacon authority.
        try:
            signer = ecdsa.recover_address(
                anchor.signing_digest(),
                ecdsa.ECDSASignature.from_bytes(bytes(anchor_signature)),
            )
        except (SignatureError, ValueError, TypeError):
            signer = None
        self.require(signer == self.storage["beacon"], "anchor not signed by the beacon")

        # 2. The message must target this shard and match the anchor.
        self.require(
            message.dest_shard == self.storage["shard"],
            "message targets a different shard",
        )
        self.require(
            message.source_shard == anchor.shard,
            "message and anchor disagree on the source shard",
        )
        self.require(
            message.source_block == anchor.number,
            "message and anchor disagree on the source block",
        )

        # 3. The send receipt must sit under the anchored receipts root.
        self.require(isinstance(receipt, Receipt), "claimed receipt is not a receipt")
        try:
            proof = ReceiptProof(
                receipt=receipt,
                index=int(index),
                siblings=tuple(bytes(s) for s in siblings),
            )
            self._ctx.meter.consume(
                self._ctx.meter.schedule.compute_step * (len(proof.siblings) + 8),
                "receipt proof verification",
            )
            proven = proof.compute_root() == anchor.receipts_root
        except (ValueError, TypeError):
            proven = False
        self.require(proven, "receipt proof does not match the anchored root")
        self.require(receipt.success, "the send receipt reverted")

        # 4. The receipt must really carry this message, from the outbox.
        emitted = any(
            log.address == OUTBOX_ADDRESS
            and log.event == XSHARD_SEND_EVENT
            and log.fields.get("wire") == bytes(message_wire)
            for log in receipt.logs
        )
        self.require(emitted, "message was not emitted by the source outbox")

        # 5. Exactly-once: the per-source-shard inbound nonce.
        nonce_key = f"nonce:{message.source_shard}"
        expected = self.storage.get(nonce_key, 0)
        self.require(
            message.seq == expected,
            f"sequence {message.seq} != inbound nonce {expected}",
        )
        self.storage[nonce_key] = expected + 1
        recv_key = f"recv:{message.source_shard}"
        self.storage[recv_key] = self.storage.get(recv_key, 0) + message.amount

        # Re-mint the value the source outbox burned and pay it out.
        self._ctx.state.credit(self.address, message.amount)
        self.require(
            self.transfer(message.recipient, message.amount),
            "inbox payout transfer failed",
        )
        self.emit(
            XSHARD_DELIVERED_EVENT,
            source=message.source_shard,
            seq=message.seq,
            recipient=message.recipient,
            amount=message.amount,
        )
        return message.seq

    @view
    def next_nonce(self, source_shard: int) -> int:
        return self.storage.get(f"nonce:{source_shard}", 0)

    @view
    def total_received(self, source_shard: int) -> int:
        return self.storage.get(f"recv:{source_shard}", 0)


def bridge_genesis_contracts(
    shard: int, shards: int, beacon_address: bytes
) -> Dict[bytes, Tuple[str, Dict[str, Any]]]:
    """The genesis pre-install map for one shard's bridge contracts."""
    return {
        OUTBOX_ADDRESS: ("ShardOutbox", {"shard": shard, "shards": shards}),
        INBOX_ADDRESS: (
            "ShardInbox",
            {"shard": shard, "shards": shards, "beacon": beacon_address},
        ),
    }


# ----- the beacon ---------------------------------------------------------------------


class Beacon:
    """Orders shard headers into one signed, hash-chained stream."""

    def __init__(self, keypair: ecdsa.ECDSAKeyPair, num_shards: int) -> None:
        self.keypair = keypair
        self.num_shards = num_shards
        self.blocks: List[BeaconBlock] = []

    @property
    def address(self) -> bytes:
        return self.keypair.address()

    def sign_anchor(self, anchor: ShardAnchor) -> bytes:
        return self.keypair.sign(anchor.signing_digest()).to_bytes()

    def observe(self, heads: Sequence[Block]) -> BeaconBlock:
        """Record one round: sign and chain every shard's current head."""
        if len(heads) != self.num_shards:
            raise ChainError("the beacon needs one head per shard")
        anchors = tuple(
            (anchor.to_wire(), self.sign_anchor(anchor))
            for anchor in (
                ShardAnchor.of_block(shard, head) for shard, head in enumerate(heads)
            )
        )
        parent = self.blocks[-1].beacon_hash if self.blocks else GENESIS_BEACON_PARENT
        block = BeaconBlock(number=len(self.blocks), parent=parent, anchors=anchors)
        self.blocks.append(block)
        return block

    def latest_anchor(self, shard: int) -> Optional[ShardAnchor]:
        for block in reversed(self.blocks):
            if shard < len(block.anchors):
                return ShardAnchor.from_wire(block.anchors[shard][0])
        return None


class BeaconLightClient:
    """A header-only consumer of the beacon stream.

    Trusts nothing but the beacon authority's address: every imported
    beacon block must extend the hash chain and every anchor signature
    must recover to that address.  ``verify_shard_receipt`` then checks
    a receipt proof against the anchored receipts root — the one-view
    light-client path across all shards.
    """

    def __init__(self, beacon_address: bytes) -> None:
        self.beacon_address = beacon_address
        self._blocks: List[BeaconBlock] = []
        #: (shard, number) -> receipts_root of the verified anchor.
        self._anchored: Dict[Tuple[int, int], bytes] = {}

    @property
    def height(self) -> int:
        return len(self._blocks)

    def import_beacon_block(self, wire: bytes) -> BeaconBlock:
        block = BeaconBlock.from_wire(wire)
        expected_parent = (
            self._blocks[-1].beacon_hash if self._blocks else GENESIS_BEACON_PARENT
        )
        if block.number != len(self._blocks) or block.parent != expected_parent:
            raise ChainError("beacon block does not extend the verified chain")
        for shard, (anchor_wire, signature) in enumerate(block.anchors):
            anchor = ShardAnchor.from_wire(anchor_wire)
            if anchor.shard != shard:
                raise ChainError("anchor order does not match shard order")
            try:
                signer = ecdsa.recover_address(
                    anchor.signing_digest(),
                    ecdsa.ECDSASignature.from_bytes(signature),
                )
            except (SignatureError, ValueError):
                raise ChainError("unrecoverable anchor signature") from None
            if signer != self.beacon_address:
                raise ChainError("anchor not signed by the beacon authority")
        self._blocks.append(block)
        for anchor_wire, _ in block.anchors:
            anchor = ShardAnchor.from_wire(anchor_wire)
            self._anchored[(anchor.shard, anchor.number)] = anchor.receipts_root
        return block

    def verify_shard_receipt(
        self, shard: int, block_number: int, proof: ReceiptProof
    ) -> bool:
        root = self._anchored.get((shard, block_number))
        if root is None:
            return False
        return proof.compute_root() == root


# ----- routed views -------------------------------------------------------------------


class _MempoolDepthView:
    """Aggregate mempool depth across shards (the engine's backpressure
    gate only ever takes ``len``)."""

    def __init__(self, chain: "ShardedChain") -> None:
        self._chain = chain

    def __len__(self) -> int:
        return sum(
            len(shard.any_node.mempool) for shard in self._chain.shard_testnets
        )


class RoutedNodeView:
    """A Node-shaped read facade that routes each query to the shard
    owning the queried address.

    Chain-wide views (``head_block``, ``canonical_blocks``…) default to
    shard 0; address-keyed reads (``call``, ``balance_of``,
    ``nonce_of``) go to the owning shard; ``get_receipt`` searches all
    shards.  ``for_address`` exposes the underlying per-shard node for
    callers (like accounting) that need full chain scans in the right
    shard.
    """

    def __init__(self, chain: "ShardedChain") -> None:
        self._chain = chain

    def for_address(self, address: bytes):
        return self._chain.shard_testnets[self._chain.shard_of(address)].any_node

    # -- address-keyed reads --

    def call(self, address, method, args=None, caller=None):
        return self.for_address(address).call(address, method, args, caller)

    def balance_of(self, address: bytes) -> int:
        return self.for_address(address).balance_of(address)

    def nonce_of(self, address: bytes) -> int:
        return self.for_address(address).nonce_of(address)

    def get_receipt(self, tx_hash: bytes):
        for shard in self._chain.shard_testnets:
            receipt = shard.any_node.get_receipt(tx_hash)
            if receipt is not None:
                return receipt
        return None

    # -- chain-wide views (shard 0 unless noted) --

    @property
    def height(self) -> int:
        return max(shard.height for shard in self._chain.shard_testnets)

    @property
    def head_block(self):
        return self._chain.shard_testnets[0].any_node.head_block

    @property
    def head_state(self):
        return self._chain.shard_testnets[0].any_node.head_state

    @property
    def mempool(self) -> _MempoolDepthView:
        return _MempoolDepthView(self._chain)

    def block_by_number(self, number: int):
        return self._chain.shard_testnets[0].any_node.block_by_number(number)

    def canonical_hash(self, number: int):
        return self._chain.shard_testnets[0].any_node.canonical_hash(number)

    def canonical_blocks(self, start: int, end: int):
        return self._chain.shard_testnets[0].any_node.canonical_blocks(start, end)

    def receipts_for_block(self, block_hash: bytes):
        for shard in self._chain.shard_testnets:
            receipts = shard.any_node.receipts_for_block(block_hash)
            if receipts is not None:
                return receipts
        return None


class _MergedNetwork:
    """Read-only union of every shard's network (nodes + fault stats)."""

    def __init__(self, chain: "ShardedChain") -> None:
        self._chain = chain

    @property
    def nodes(self):
        return [
            node
            for shard in self._chain.shard_testnets
            for node in shard.network.nodes
        ]

    @property
    def stats(self) -> NetworkStats:
        merged = NetworkStats()
        for shard in self._chain.shard_testnets:
            stats = shard.network.stats
            merged.delivered += stats.delivered
            merged.dropped += stats.dropped
            merged.delayed += stats.delayed
            merged.duplicated += stats.duplicated
            merged.syncs += stats.syncs
            merged.sync_blocks += stats.sync_blocks
            merged.crashes += stats.crashes
            merged.restarts += stats.restarts
        return merged

    @property
    def transaction_log(self):
        return [
            stx
            for shard in self._chain.shard_testnets
            for stx in shard.network.transaction_log
        ]


# ----- the sharded chain --------------------------------------------------------------


class ShardedChain:
    """S statically partitioned sub-chains behind one Testnet surface.

    Duck-types the :class:`~repro.chain.network.Testnet` API the
    protocol stack consumes (``tx_sender``, ``fund``/``fund_async``,
    ``send_transaction``, ``mine_block``, ``any_node``, ``network``,
    ``wait_for_receipt``…), so :class:`ZebraLancerSystem` and
    :class:`ProtocolEngine` run unmodified on top.

    Routing: a *residence* directory maps addresses to shards.  EOAs
    default to :func:`home_shard` of their address; funding with a
    ``near=`` hint co-locates an account with the contract it will
    transact against (how Algorithm-1 one-task accounts land on their
    task's shard); contract creations follow their funded creator, and
    a task contract's home shard is the home shard of its (statically
    derived) address because the creator account is funded
    ``near=`` the predicted contract address.  Senders registered via
    :meth:`fund_system` are *replicated*: their transactions broadcast
    to every shard (the RA's registry, the janitor).
    """

    __test__ = False

    def __init__(
        self,
        shards: int = 2,
        miners: int = 2,
        full_nodes: int = 2,
        block_interval: int = 15,
        gas_limit: int = 30_000_000,
        initial_faucet_balance: int = 10**30,
        fault_plan: Optional[object] = None,
        execution_lanes: int = 1,
        execution_workers: int = 1,
        mempool_capacity: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = shards
        self.block_interval = block_interval
        self.beacon_key = ecdsa.ECDSAKeyPair.from_seed(BEACON_SEED)
        self.relayer_key = ecdsa.ECDSAKeyPair.from_seed(RELAYER_SEED)
        self.beacon = Beacon(self.beacon_key, shards)
        plans = self._fault_plans(fault_plan, shards)

        self.shard_testnets: List[Testnet] = []
        for k in range(shards):
            faucet_seed = (
                b"testnet-faucet"
                if k == 0
                else f"testnet-faucet/shard-{k}".encode()
            )
            extra = None
            contracts = None
            if shards > 1:
                extra = {self.relayer_key.address(): 10**24}
                contracts = bridge_genesis_contracts(
                    k, shards, self.beacon_key.address()
                )
            self.shard_testnets.append(
                Testnet(
                    miners=miners,
                    full_nodes=full_nodes,
                    block_interval=block_interval,
                    gas_limit=gas_limit,
                    initial_faucet_balance=initial_faucet_balance,
                    fault_plan=plans[k],
                    execution_lanes=execution_lanes,
                    execution_workers=execution_workers,
                    mempool_capacity=mempool_capacity,
                    faucet_seed=faucet_seed,
                    extra_allocations=extra,
                    genesis_contracts=contracts,
                )
            )

        self.tx_sender = TxSender(self)
        self._residence: Dict[bytes, int] = {}
        self._replicated: Set[bytes] = set()
        for k, shard in enumerate(self.shard_testnets):
            self._residence[shard.faucet_key.address()] = k
        self._faucet_shards: Dict[bytes, int] = {
            shard.faucet_key.address(): k
            for k, shard in enumerate(self.shard_testnets)
        }
        #: (source shard, dest shard, seq) -> in-flight delivery.
        self._relayed: Dict[Tuple[int, int, int], PendingTx] = {}
        self._inflight: List[List[PendingTx]] = [[] for _ in range(shards)]
        self._scanned: List[int] = [0] * shards
        self._initial_supply = sum(
            sum(shard.genesis.allocations.values()) for shard in self.shard_testnets
        )
        self._view = RoutedNodeView(self)
        self._network = _MergedNetwork(self)

    @staticmethod
    def _fault_plans(fault_plan, shards: int) -> List[Optional[FaultPlan]]:
        """One plan per shard: a sequence is used as-is; a single plan
        lands on shard 0 (plans hold stateful RNGs and cannot be
        shared across networks)."""
        if fault_plan is None:
            return [None] * shards
        if isinstance(fault_plan, (list, tuple)):
            if len(fault_plan) != shards:
                raise ValueError("need one fault plan entry per shard")
            return list(fault_plan)
        return [fault_plan] + [None] * (shards - 1)

    # ----- views ----------------------------------------------------------------

    @property
    def clock(self):
        return self.shard_testnets[0].clock

    @property
    def genesis(self):
        return self.shard_testnets[0].genesis

    @property
    def faucet_key(self):
        return self.shard_testnets[0].faucet_key

    @property
    def any_node(self):
        if self.num_shards == 1:
            return self.shard_testnets[0].any_node
        return self._view

    @property
    def network(self):
        if self.num_shards == 1:
            return self.shard_testnets[0].network
        return self._network

    @property
    def height(self) -> int:
        return max(shard.height for shard in self.shard_testnets)

    def shard(self, index: int) -> Testnet:
        return self.shard_testnets[index]

    def shard_node(self, address: bytes):
        """The owning shard's best node for an address (full Node API)."""
        return self.shard_testnets[self.shard_of(address)].any_node

    # ----- routing --------------------------------------------------------------

    def shard_of(self, address: bytes) -> int:
        """The shard an address resides on (directory, else hash home)."""
        if self.num_shards == 1:
            return 0
        resident = self._residence.get(address)
        if resident is not None:
            return resident
        return home_shard(address, self.num_shards)

    def bind(self, address: bytes, near: bytes) -> int:
        """Co-locate ``address`` with ``near`` (first binding wins)."""
        shard = self._residence.setdefault(address, self.shard_of(near))
        return shard

    def is_replicated(self, address: bytes) -> bool:
        return address in self._replicated

    def route_transaction(self, tx: Transaction, sender: bytes) -> int:
        """The shard a (sender, tx) pair executes on, updating the
        directory for contract creations."""
        if self.num_shards == 1:
            return 0
        # A shard faucet only ever holds balance on its own shard, so
        # its transfers execute there regardless of the recipient (the
        # recipient's residence was bound to that shard when the
        # funding was routed).
        faucet_home = self._faucet_shards.get(sender)
        if faucet_home is not None:
            return faucet_home
        if tx.to is None:
            derived = contract_address(sender, tx.nonce)
            shard = self._residence.get(sender)
            if shard is None:
                shard = self.shard_of(derived)
                self._residence[sender] = shard
            self._residence.setdefault(derived, shard)
            return shard
        if tx.to in (OUTBOX_ADDRESS, INBOX_ADDRESS):
            return self.shard_of(sender)
        return self.shard_of(tx.to)

    # ----- actions --------------------------------------------------------------

    def send_transaction(self, stx: SignedTransaction) -> bytes:
        if self.num_shards == 1:
            return self.shard_testnets[0].send_transaction(stx)
        tx = stx.transaction
        if stx.sender in self._replicated:
            if tx.to is None:
                self._replicated.add(contract_address(stx.sender, tx.nonce))
            for shard in self.shard_testnets:
                shard.send_transaction(stx)
            return stx.tx_hash
        shard = self.route_transaction(tx, stx.sender)
        return self.shard_testnets[shard].send_transaction(stx)

    def mine_block(self) -> Block:
        """Advance every shard by one block, anchor the round at the
        beacon, and relay newly observed cross-shard sends.

        Returns shard 0's block (the Testnet-compatible view)."""
        if self.num_shards == 1:
            return self.shard_testnets[0].mine_block()
        blocks = [shard.mine_block() for shard in self.shard_testnets]
        self.beacon.observe([shard.any_node.head_block for shard in self.shard_testnets])
        self._relay_round()
        return blocks[0]

    def mine_blocks(self, count: int) -> List[Block]:
        return [self.mine_block() for _ in range(count)]

    def mine_until(self, predicate: Callable[[], bool], max_blocks: int = 64) -> None:
        for _ in range(max_blocks):
            if predicate():
                return
            self.mine_block()
        if not predicate():
            raise ChainError(f"condition not reached within {max_blocks} blocks")

    def wait_for_receipt(self, tx_hash: bytes, max_blocks: int = 16):
        self.mine_until(
            lambda: self.any_node.get_receipt(tx_hash) is not None, max_blocks
        )
        return self.any_node.get_receipt(tx_hash)

    def assert_consensus(self) -> None:
        for shard in self.shard_testnets:
            shard.assert_consensus()

    # ----- funding --------------------------------------------------------------

    def _faucet_tx(self, shard: int, address: bytes, amount: int) -> Transaction:
        net = self.shard_testnets[shard]
        return Transaction(
            nonce=self.tx_sender.nonces.reserve(net.faucet_key.address()),
            gas_price=1,
            gas_limit=50_000,
            to=address,
            value=amount,
            chain_id=net.genesis.chain_id,
        )

    def _fund_target(self, address: bytes, near: Optional[bytes]) -> int:
        if near is not None:
            return self.bind(address, near)
        return self._residence.setdefault(address, self.shard_of(address))

    def fund(
        self,
        address: bytes,
        amount: int,
        mine: bool = True,
        near: Optional[bytes] = None,
    ) -> None:
        if self.num_shards == 1:
            return self.shard_testnets[0].fund(address, amount, mine=mine)
        shard = self._fund_target(address, near)
        tx = self._faucet_tx(shard, address, amount)
        key = self.shard_testnets[shard].faucet_key
        if mine:
            self.tx_sender.send(tx, key)
        else:
            self.send_transaction(tx.sign(key))

    def fund_async(
        self, address: bytes, amount: int, near: Optional[bytes] = None
    ) -> PendingTx:
        if self.num_shards == 1:
            return self.shard_testnets[0].fund_async(address, amount)
        shard = self._fund_target(address, near)
        return self.tx_sender.broadcast(
            self._faucet_tx(shard, address, amount),
            self.shard_testnets[shard].faucet_key,
        )

    def fund_system(self, address: bytes, amount: int, mine: bool = True) -> None:
        """Fund ``address`` on EVERY shard and mark it replicated: all
        its future transactions broadcast to all shards in lockstep
        (the RA's registry updates, the janitor's timeouts)."""
        if self.num_shards == 1:
            return self.shard_testnets[0].fund(address, amount, mine=mine)
        pendings = self.fund_all_async(address, amount)
        if mine:
            self.tx_sender.confirm_all(pendings)

    def fund_all_async(self, address: bytes, amount: int) -> List[PendingTx]:
        if self.num_shards == 1:
            return [self.shard_testnets[0].fund_async(address, amount)]
        self._replicated.add(address)
        return [
            self.tx_sender.broadcast(
                self._faucet_tx(k, address, amount), shard.faucet_key
            )
            for k, shard in enumerate(self.shard_testnets)
        ]

    # ----- the relayer ----------------------------------------------------------

    def _relay_round(self) -> None:
        """Scan new source blocks for sends, submit deliveries, and
        service in-flight delivery transactions."""
        for source in range(self.num_shards):
            node = self.shard_testnets[source].any_node
            top = node.height
            for number in range(self._scanned[source] + 1, top + 1):
                block = node.block_by_number(number)
                if block is None:
                    top = number - 1
                    break
                receipts = node.receipts_for_block(block.block_hash)
                if receipts is None:
                    top = number - 1
                    break
                self._relay_block(source, block, receipts)
            self._scanned[source] = max(self._scanned[source], top)
        for dest, shard in enumerate(self.shard_testnets):
            self._inflight[dest] = self._service_deliveries(
                shard, self._inflight[dest]
            )

    def _relay_block(
        self, source: int, block: Block, receipts: Sequence[Receipt]
    ) -> None:
        anchor = ShardAnchor.of_block(source, block)
        signature: Optional[bytes] = None
        for index, receipt in enumerate(receipts):
            for log in receipt.logs:
                if log.address != OUTBOX_ADDRESS or log.event != XSHARD_SEND_EVENT:
                    continue
                wire = log.fields.get("wire")
                if not isinstance(wire, bytes):
                    continue
                try:
                    message = XShardMessage.from_wire(wire)
                except ValueError:
                    continue
                key = (message.source_shard, message.dest_shard, message.seq)
                if key in self._relayed:
                    continue
                if signature is None:
                    signature = self.beacon.sign_anchor(anchor)
                proof = prove_receipt_inclusion(list(receipts), index)
                pending = self._submit_delivery(
                    message, anchor, signature, proof, wire
                )
                self._relayed[key] = pending
                self._inflight[message.dest_shard].append(pending)

    def _submit_delivery(
        self,
        message: XShardMessage,
        anchor: ShardAnchor,
        signature: bytes,
        proof: ReceiptProof,
        message_wire: bytes,
    ) -> PendingTx:
        dest = self.shard_testnets[message.dest_shard]
        tx = Transaction(
            nonce=dest.tx_sender.nonces.reserve(self.relayer_key.address()),
            gas_price=1,
            gas_limit=DELIVER_GAS_LIMIT,
            to=INBOX_ADDRESS,
            value=0,
            data=encode_call(
                "deliver",
                [
                    anchor.to_wire(),
                    signature,
                    proof.receipt,
                    proof.index,
                    list(proof.siblings),
                    message_wire,
                ],
            ),
            chain_id=dest.genesis.chain_id,
        )
        return dest.tx_sender.broadcast(tx, self.relayer_key)

    @staticmethod
    def _service_deliveries(
        shard: Testnet, pendings: List[PendingTx]
    ) -> List[PendingTx]:
        remaining: List[PendingTx] = []
        for pending in pendings:
            try:
                if shard.tx_sender.service([pending]):
                    remaining.append(pending)
            except TxAbandonedError:
                # The relayer never shares nonces, so abandonment means
                # exhausted attempts under faults: reset and keep trying.
                pending.attempts = 1
                pending.broadcast_height = shard.height
                remaining.append(pending)
        return remaining

    def drain_cross_shard(self, max_blocks: int = 64) -> None:
        """Mine rounds until every observed send has been delivered."""
        self.mine_until(lambda: self.in_flight_value() == 0, max_blocks)

    # ----- conservation ---------------------------------------------------------

    def initial_supply(self) -> int:
        return self._initial_supply

    def total_supply(self) -> int:
        return sum(
            shard.any_node.head_state.total_supply()
            for shard in self.shard_testnets
        )

    def in_flight_value(self) -> int:
        """Value burned at an outbox but not yet minted by an inbox."""
        if self.num_shards == 1:
            return 0
        total = 0
        for s, source in enumerate(self.shard_testnets):
            for d, dest in enumerate(self.shard_testnets):
                if s == d:
                    continue
                sent = source.any_node.call(OUTBOX_ADDRESS, "total_sent", [d])
                received = dest.any_node.call(INBOX_ADDRESS, "total_received", [s])
                total += sent - received
        return total

    # ----- convenience (tests, benchmarks) --------------------------------------

    def transfer_transaction(
        self,
        sender: bytes,
        sender_nonce: int,
        recipient: bytes,
        amount: int,
        gas_price: int = 0,
    ) -> Transaction:
        """A value transfer that crosses shards when it must.

        Same-shard pairs get a plain transfer; cross-shard pairs an
        ``ShardOutbox.send`` carrying the value — the two forms leave
        identical per-account balances (modulo gas), which is what the
        differential suite pins.
        """
        source = self.shard_of(sender)
        dest = self.shard_of(recipient)
        if source == dest:
            return Transaction(
                nonce=sender_nonce,
                gas_price=gas_price,
                gas_limit=SEND_GAS_LIMIT,
                to=recipient,
                value=amount,
                chain_id=self.genesis.chain_id,
            )
        return Transaction(
            nonce=sender_nonce,
            gas_price=gas_price,
            gas_limit=SEND_GAS_LIMIT,
            to=OUTBOX_ADDRESS,
            value=amount,
            data=encode_call("send", [dest, recipient]),
            chain_id=self.genesis.chain_id,
        )


#: Back-compat alias: the facade is a drop-in Testnet.
ShardedTestnet = ShardedChain
