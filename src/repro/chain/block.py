"""Blocks and headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List

from repro.crypto.hashing import keccak256
from repro.serialization import encode
from repro.chain.transaction import SignedTransaction

GENESIS_PARENT = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Consensus-relevant block metadata."""

    number: int
    parent_hash: bytes
    timestamp: int
    miner: bytes
    state_root: bytes
    tx_root: bytes
    gas_used: int
    gas_limit: int
    extra: bytes = b""
    seal: bytes = b""  # consensus-engine data (PoW nonce / PoA tag)

    def hash_without_seal(self) -> bytes:
        return keccak256(
            encode(
                [
                    self.number,
                    self.parent_hash,
                    self.timestamp,
                    self.miner,
                    self.state_root,
                    self.tx_root,
                    self.gas_used,
                    self.gas_limit,
                    self.extra,
                ]
            )
        )

    def block_hash(self) -> bytes:
        return keccak256(self.hash_without_seal() + self.seal)


def transactions_root(transactions: List[SignedTransaction]) -> bytes:
    """Merkle commitment over the block's ordered transactions.

    Backed by the binary trie in :mod:`repro.chain.txtrie` so light
    clients can check inclusion with a logarithmic branch.
    """
    from repro.chain.txtrie import transactions_merkle_root

    return transactions_merkle_root([stx.tx_hash for stx in transactions])


@dataclass(frozen=True)
class Block:
    """A sealed block."""

    header: BlockHeader
    transactions: tuple

    @cached_property
    def block_hash(self) -> bytes:
        return self.header.block_hash()

    @property
    def number(self) -> int:
        return self.header.number

    def __len__(self) -> int:
        return len(self.transactions)
