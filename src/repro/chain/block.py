"""Blocks and headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List

from repro.crypto.hashing import keccak256
from repro.errors import InvalidBlockError
from repro.serialization import decode, encode
from repro.chain.transaction import SignedTransaction

GENESIS_PARENT = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Consensus-relevant block metadata."""

    number: int
    parent_hash: bytes
    timestamp: int
    miner: bytes
    state_root: bytes
    tx_root: bytes
    gas_used: int
    gas_limit: int
    extra: bytes = b""
    seal: bytes = b""  # consensus-engine data (PoW nonce / PoA tag)
    receipts_root: bytes = b""  # Merkle root over receipt encodings

    def hash_without_seal(self) -> bytes:
        return keccak256(
            encode(
                [
                    self.number,
                    self.parent_hash,
                    self.timestamp,
                    self.miner,
                    self.state_root,
                    self.tx_root,
                    self.receipts_root,
                    self.gas_used,
                    self.gas_limit,
                    self.extra,
                ]
            )
        )

    def block_hash(self) -> bytes:
        return keccak256(self.hash_without_seal() + self.seal)

    def to_wire(self) -> bytes:
        """Canonical gossip encoding of the header (seal included)."""
        return encode(
            [
                self.number,
                self.parent_hash,
                self.timestamp,
                self.miner,
                self.state_root,
                self.tx_root,
                self.receipts_root,
                self.gas_used,
                self.gas_limit,
                self.extra,
                self.seal,
            ]
        )

    @classmethod
    def from_wire(cls, wire: bytes) -> "BlockHeader":
        """Inverse of :meth:`to_wire`; rejects malformed bytes loudly."""
        try:
            fields = decode(wire)
        except (ValueError, TypeError) as exc:
            raise InvalidBlockError(f"malformed header wire: {exc}") from exc
        if not isinstance(fields, list) or len(fields) != 11:
            raise InvalidBlockError("header wire must carry 11 fields")
        (number, parent_hash, timestamp, miner, state_root, tx_root,
         receipts_root, gas_used, gas_limit, extra, seal) = fields
        for name, value, kind in (
            ("number", number, int), ("parent_hash", parent_hash, bytes),
            ("timestamp", timestamp, int), ("miner", miner, bytes),
            ("state_root", state_root, bytes), ("tx_root", tx_root, bytes),
            ("receipts_root", receipts_root, bytes),
            ("gas_used", gas_used, int), ("gas_limit", gas_limit, int),
            ("extra", extra, bytes), ("seal", seal, bytes),
        ):
            if not isinstance(value, kind):
                raise InvalidBlockError(f"header field {name} has the wrong type")
        return cls(
            number=number, parent_hash=parent_hash, timestamp=timestamp,
            miner=miner, state_root=state_root, tx_root=tx_root,
            receipts_root=receipts_root, gas_used=gas_used,
            gas_limit=gas_limit, extra=extra, seal=seal,
        )


def transactions_root(transactions: List[SignedTransaction]) -> bytes:
    """Merkle commitment over the block's ordered transactions.

    Backed by the binary trie in :mod:`repro.chain.txtrie` so light
    clients can check inclusion with a logarithmic branch.
    """
    from repro.chain.txtrie import transactions_merkle_root

    return transactions_merkle_root([stx.tx_hash for stx in transactions])


@dataclass(frozen=True)
class Block:
    """A sealed block."""

    header: BlockHeader
    transactions: tuple

    @cached_property
    def block_hash(self) -> bytes:
        return self.header.block_hash()

    @property
    def number(self) -> int:
        return self.header.number

    def __len__(self) -> int:
        return len(self.transactions)

    def to_wire(self) -> bytes:
        """Canonical gossip encoding: header wire + each tx's wire."""
        return encode(
            [self.header.to_wire()]
            + [stx.to_wire() for stx in self.transactions]
        )

    @classmethod
    def from_wire(cls, wire: bytes) -> "Block":
        """Inverse of :meth:`to_wire`; rejects malformed bytes loudly."""
        from repro.errors import InvalidTransactionError

        try:
            parts = decode(wire)
        except (ValueError, TypeError) as exc:
            raise InvalidBlockError(f"malformed block wire: {exc}") from exc
        if (
            not isinstance(parts, list)
            or not parts
            or not all(isinstance(part, bytes) for part in parts)
        ):
            raise InvalidBlockError("block wire must be a list of byte strings")
        header = BlockHeader.from_wire(parts[0])
        try:
            transactions = tuple(
                SignedTransaction.from_wire(part) for part in parts[1:]
            )
        except InvalidTransactionError as exc:
            raise InvalidBlockError(f"malformed block transaction: {exc}") from exc
        return cls(header=header, transactions=transactions)
