"""Precompiled contracts embedded in the VM runtime.

The paper modifies the Ethereum client so an optimized libsnark
verification library is available to contracts as a primitive
operation (Section VI, "Implementation challenges").  Here the same
role is played by :func:`snark_verify_precompile`, which dispatches to
whichever proving backend produced the proof and charges
Byzantium-style gas (base + per-public-input).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List

from repro import observability as obs
from repro.errors import ContractError
from repro.chain.gas import GasMeter
from repro.zksnark.backend import Proof, get_backend


@dataclass
class PrecompileMetrics:
    """Aggregate timing of precompile executions (feeds Table I)."""

    calls: int = 0
    total_seconds: float = 0.0
    per_call_seconds: List[float] = field(default_factory=list)

    def record(self, elapsed: float) -> None:
        self.calls += 1
        self.total_seconds += elapsed
        self.per_call_seconds.append(elapsed)

    def reset(self) -> None:
        self.calls = 0
        self.total_seconds = 0.0
        self.per_call_seconds.clear()


#: Global metrics sink — the benchmark harness reads and resets this.
SNARK_VERIFY_METRICS = PrecompileMetrics()

#: Separate sink for the batched verifier, so benchmarks can compare
#: amortized against sequential cost.
SNARK_BATCH_VERIFY_METRICS = PrecompileMetrics()


def snark_verify_precompile(
    meter: GasMeter, verifying_key: Any, public_inputs: List[int], proof: Any
) -> bool:
    """Verify a zk-SNARK proof inside contract execution.

    Gas is charged before the (expensive) pairing work, like Ethereum's
    ecPairing precompile; malformed inputs revert rather than returning
    False so contracts cannot mistake garbage for a mere invalid proof.
    """
    if not isinstance(proof, Proof):
        raise ContractError("snark_verify expects a Proof object")
    if not isinstance(public_inputs, (list, tuple)):
        raise ContractError("snark_verify expects a list of public inputs")
    schedule = meter.schedule
    meter.consume(
        schedule.snark_verify_base
        + schedule.snark_verify_per_input * len(public_inputs),
        "snark_verify",
    )
    backend = get_backend(proof.backend)
    started = time.perf_counter()
    with obs.span(
        "chain.verify_proof", backend=proof.backend, inputs=len(public_inputs)
    ):
        try:
            result = backend.verify(verifying_key, list(public_inputs), proof)
        finally:
            elapsed = time.perf_counter() - started
            SNARK_VERIFY_METRICS.record(elapsed)
            if obs.TRACER.enabled:
                obs.count("chain.snark_verify.calls")
                obs.observe("chain.snark_verify.seconds", elapsed)
    return result


def snark_batch_verify_precompile(
    meter: GasMeter,
    verifying_key: Any,
    statements: List[List[int]],
    proofs: List[Any],
) -> bool:
    """Verify n zk-SNARK proofs under one key in a single combined check.

    Dispatches to the backend's ``batch_verify`` (for Groth16 a
    random-linear-combination multi-pairing with one final
    exponentiation); gas is charged up front with a per-proof term far
    below a standalone ``snark_verify``, mirroring the real amortized
    cost.  All proofs must come from the same backend.
    """
    if not isinstance(statements, (list, tuple)) or not isinstance(
        proofs, (list, tuple)
    ):
        raise ContractError("snark_batch_verify expects statement and proof lists")
    if len(statements) != len(proofs):
        raise ContractError(
            "snark_batch_verify got "
            f"{len(statements)} statements but {len(proofs)} proofs"
        )
    backends = set()
    total_inputs = 0
    for statement, proof in zip(statements, proofs):
        if not isinstance(proof, Proof):
            raise ContractError("snark_batch_verify expects Proof objects")
        if not isinstance(statement, (list, tuple)):
            raise ContractError("snark_batch_verify expects lists of public inputs")
        backends.add(proof.backend)
        total_inputs += len(statement)
    if len(backends) > 1:
        raise ContractError(
            f"snark_batch_verify proofs span multiple backends: {sorted(backends)}"
        )
    schedule = meter.schedule
    meter.consume(
        schedule.snark_batch_verify_base
        + schedule.snark_batch_verify_per_proof * len(proofs)
        + schedule.snark_batch_verify_per_input * total_inputs,
        "snark_batch_verify",
    )
    if not proofs:
        return True
    backend = get_backend(next(iter(backends)))
    started = time.perf_counter()
    with obs.span(
        "chain.batch_verify_proof",
        backend=next(iter(backends)),
        proofs=len(proofs),
        inputs=total_inputs,
    ):
        try:
            result = backend.batch_verify(
                verifying_key, [list(s) for s in statements], list(proofs)
            )
        finally:
            elapsed = time.perf_counter() - started
            SNARK_BATCH_VERIFY_METRICS.record(elapsed)
            if obs.TRACER.enabled:
                obs.count("chain.snark_batch_verify.calls")
                obs.count("chain.snark_batch_verify.proofs", len(proofs))
                obs.observe("chain.snark_batch_verify.seconds", elapsed)
    return result
