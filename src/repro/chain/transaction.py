"""Transactions: signed messages to the ledger.

A transaction either transfers value, calls a contract method, or
creates a contract.  Call data is the canonical encoding of
``[kind, name, args]``; signing follows the Ethereum pattern (sign the
keccak of the canonically-encoded unsigned transaction, recover the
sender from the signature).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, List, Optional, Tuple

from repro.crypto import ecdsa
from repro.crypto.hashing import keccak256
from repro.errors import InvalidTransactionError
from repro.serialization import encode
from repro.chain.address import ADDRESS_LENGTH

CALL_KIND = "call"
CREATE_KIND = "create"


def encode_call(method: str, args: List[Any]) -> bytes:
    """Calldata for invoking ``method(*args)`` on a contract."""
    return encode([CALL_KIND, method, args])


def encode_create(contract_name: str, args: List[Any]) -> bytes:
    """Calldata for deploying registered contract ``contract_name``."""
    return encode([CREATE_KIND, contract_name, args])


@dataclass(frozen=True)
class Transaction:
    """An unsigned transaction."""

    nonce: int
    gas_price: int
    gas_limit: int
    to: Optional[bytes]  # None => contract creation
    value: int
    data: bytes = b""
    chain_id: int = 1337

    def __post_init__(self) -> None:
        if self.to is not None and len(self.to) != ADDRESS_LENGTH:
            raise InvalidTransactionError("destination must be a 20-byte address")
        if self.value < 0 or self.nonce < 0 or self.gas_price < 0 or self.gas_limit < 0:
            raise InvalidTransactionError("transaction fields must be non-negative")

    @property
    def is_create(self) -> bool:
        return self.to is None

    def signing_hash(self) -> bytes:
        # Cached directly in __dict__ (bypasses the frozen guard):
        # signing, sender recovery, and tx hashing all need this keccak,
        # and calldata can be kilobytes.
        cached = self.__dict__.get("_signing_hash")
        if cached is None:
            cached = keccak256(
                encode(
                    [
                        self.nonce,
                        self.gas_price,
                        self.gas_limit,
                        self.to,
                        self.value,
                        self.data,
                        self.chain_id,
                    ]
                )
            )
            self.__dict__["_signing_hash"] = cached
        return cached

    def sign(self, keypair: ecdsa.ECDSAKeyPair) -> "SignedTransaction":
        signature = keypair.sign(self.signing_hash())
        return SignedTransaction(transaction=self, signature=signature)


@dataclass(frozen=True)
class SignedTransaction:
    """A transaction plus its secp256k1 signature."""

    transaction: Transaction
    signature: ecdsa.ECDSASignature

    @cached_property
    def sender(self) -> bytes:
        """The 20-byte sender address recovered from the signature."""
        try:
            return ecdsa.recover_address(
                self.transaction.signing_hash(), self.signature
            )
        except Exception as exc:  # noqa: BLE001 - map to domain error
            raise InvalidTransactionError(f"unrecoverable signature: {exc}") from exc

    @cached_property
    def tx_hash(self) -> bytes:
        return keccak256(
            encode(
                [
                    self.transaction.signing_hash(),
                    self.signature.r,
                    self.signature.s,
                    self.signature.v,
                ]
            )
        )

    def verify_signature(self) -> bool:
        try:
            _ = self.sender
        except InvalidTransactionError:
            return False
        return True

    def to_wire(self) -> bytes:
        """Canonical gossip encoding of the signed transaction."""
        tx = self.transaction
        return encode(
            [
                tx.nonce,
                tx.gas_price,
                tx.gas_limit,
                tx.to,
                tx.value,
                tx.data,
                tx.chain_id,
                self.signature.r,
                self.signature.s,
                self.signature.v,
            ]
        )

    @classmethod
    def from_wire(cls, wire: bytes) -> "SignedTransaction":
        """Inverse of :meth:`to_wire`; rejects malformed bytes loudly."""
        from repro.serialization import decode

        try:
            fields = decode(wire)
        except (ValueError, TypeError) as exc:
            raise InvalidTransactionError(f"malformed transaction wire: {exc}") from exc
        if not isinstance(fields, list) or len(fields) != 10:
            raise InvalidTransactionError("transaction wire must carry 10 fields")
        nonce, gas_price, gas_limit, to, value, data, chain_id, r, s, v = fields
        if to is not None and not isinstance(to, bytes):
            raise InvalidTransactionError("destination must be bytes or None")
        if not isinstance(data, bytes):
            raise InvalidTransactionError("calldata must be bytes")
        for field_value in (nonce, gas_price, gas_limit, value, chain_id, r, s, v):
            if not isinstance(field_value, int):
                raise InvalidTransactionError("numeric field has the wrong type")
        tx = Transaction(
            nonce=nonce, gas_price=gas_price, gas_limit=gas_limit,
            to=to, value=value, data=data, chain_id=chain_id,
        )
        return cls(transaction=tx, signature=ecdsa.ECDSASignature(r=r, s=s, v=v))

    def decode_data(self) -> Tuple[str, str, List[Any]]:
        """Decode calldata into (kind, name, args)."""
        from repro.serialization import decode

        if not self.transaction.data:
            return ("", "", [])
        try:
            kind, name, args = decode(self.transaction.data)
        except (ValueError, TypeError) as exc:
            raise InvalidTransactionError(f"malformed calldata: {exc}") from exc
        return (kind, name, args)

    def max_cost(self) -> int:
        """value + worst-case gas fee; must be covered by the sender."""
        tx = self.transaction
        return tx.value + tx.gas_price * tx.gas_limit
