"""Chain introspection: the block-explorer view of a node.

Clients and experiments frequently need "all events of this contract",
"where is this transaction", or "every task ever published" — this
module provides those read-only queries over a node's canonical chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.chain.block import Block
from repro.chain.node import Node
from repro.chain.receipts import Log, Receipt
from repro.chain.transaction import SignedTransaction


@dataclass(frozen=True)
class LocatedTransaction:
    """A transaction with its inclusion coordinates."""

    transaction: SignedTransaction
    block_number: int
    index_in_block: int
    receipt: Optional[Receipt]


@dataclass(frozen=True)
class LocatedLog:
    """An event log with its chain coordinates."""

    log: Log
    block_number: int
    tx_hash: bytes


class ChainExplorer:
    """Read-only queries over one node's canonical chain."""

    def __init__(self, node: Node) -> None:
        self.node = node

    # ----- blocks & transactions ---------------------------------------------------

    def canonical_chain(self) -> List[Block]:
        return self.node.chain_to_genesis()

    def find_transaction(self, tx_hash: bytes) -> Optional[LocatedTransaction]:
        """Locate a mined transaction on the canonical chain."""
        for block in self.canonical_chain():
            for index, stx in enumerate(block.transactions):
                if stx.tx_hash == tx_hash:
                    return LocatedTransaction(
                        transaction=stx,
                        block_number=block.number,
                        index_in_block=index,
                        receipt=self.node.get_receipt(tx_hash),
                    )
        return None

    def transactions_to(self, address: bytes) -> List[LocatedTransaction]:
        """Every canonical transaction addressed to ``address``."""
        located: List[LocatedTransaction] = []
        for block in self.canonical_chain():
            for index, stx in enumerate(block.transactions):
                if stx.transaction.to == address:
                    located.append(
                        LocatedTransaction(
                            transaction=stx,
                            block_number=block.number,
                            index_in_block=index,
                            receipt=self.node.get_receipt(stx.tx_hash),
                        )
                    )
        return located

    def transactions_from(self, sender: bytes) -> List[LocatedTransaction]:
        located: List[LocatedTransaction] = []
        for block in self.canonical_chain():
            for index, stx in enumerate(block.transactions):
                if stx.sender == sender:
                    located.append(
                        LocatedTransaction(
                            transaction=stx,
                            block_number=block.number,
                            index_in_block=index,
                            receipt=self.node.get_receipt(stx.tx_hash),
                        )
                    )
        return located

    # ----- events ---------------------------------------------------------------------

    def logs(
        self,
        address: Optional[bytes] = None,
        event: Optional[str] = None,
        predicate: Optional[Callable[[Log], bool]] = None,
    ) -> List[LocatedLog]:
        """Filter every canonical event log by contract / name / predicate."""
        matches: List[LocatedLog] = []
        for block in self.canonical_chain():
            for stx in block.transactions:
                receipt = self.node.get_receipt(stx.tx_hash)
                if receipt is None or not receipt.success:
                    continue
                for log in receipt.logs:
                    if address is not None and log.address != address:
                        continue
                    if event is not None and log.event != event:
                        continue
                    if predicate is not None and not predicate(log):
                        continue
                    matches.append(
                        LocatedLog(
                            log=log, block_number=block.number, tx_hash=stx.tx_hash
                        )
                    )
        return matches

    # ----- ZebraLancer-specific views ---------------------------------------------------

    def published_tasks(self) -> List[Dict[str, Any]]:
        """Every task announced on this chain (from TaskPublished events)."""
        tasks = []
        for located in self.logs(event="TaskPublished"):
            tasks.append(
                {
                    "address": located.log.address,
                    "block_number": located.block_number,
                    **located.log.fields,
                }
            )
        return tasks

    def task_timeline(self, task_address: bytes) -> List[LocatedLog]:
        """The full event history of one task, in chain order."""
        return self.logs(address=task_address)

    def gas_spent_on(self, address: bytes) -> int:
        """Total gas consumed by canonical transactions to ``address``."""
        return sum(
            located.receipt.gas_used
            for located in self.transactions_to(address)
            if located.receipt is not None
        )
