"""Simulated Ethereum-like blockchain substrate.

The paper deploys on a four-PC Ethereum test net (two miners, two full
nodes) with a modified EVM embedding a libsnark verifier.  This package
reproduces that platform as a deterministic discrete-event simulation
that preserves the ideal-public-ledger model of Section III:

- signed transactions (secp256k1, Ethereum-style addresses and nonces);
- a mempool whose not-yet-mined contents are *visible and reorderable*
  by an adversary (the power behind the free-riding copy attack);
- gas accounting, block gas limits, miner fees;
- Python smart contracts executed identically by every node;
- a ``snark_verify`` precompile (the embedded libsnark verifier);
- pluggable consensus (round-robin PoA, simulated PoW) over a
  multi-node network with configurable latency.
"""

from repro.chain.account import Account
from repro.chain.block import Block, BlockHeader
from repro.chain.contract import Contract, external, view
from repro.chain.faults import CrashWindow, FaultPlan, LinkFaults, PartitionWindow
from repro.chain.gas import GasSchedule
from repro.chain.journal import ChainJournal
from repro.chain.network import Network, Testnet
from repro.chain.node import Node
from repro.chain.receipts import Log, Receipt
from repro.chain.state import WorldState
from repro.chain.transaction import SignedTransaction, Transaction
from repro.chain.txsender import TxSender

__all__ = [
    "Account",
    "Block",
    "BlockHeader",
    "ChainJournal",
    "Contract",
    "CrashWindow",
    "external",
    "view",
    "FaultPlan",
    "GasSchedule",
    "LinkFaults",
    "Network",
    "PartitionWindow",
    "Testnet",
    "Node",
    "Log",
    "Receipt",
    "TxSender",
    "WorldState",
    "SignedTransaction",
    "Transaction",
]
