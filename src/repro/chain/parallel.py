"""Optimistic parallel execution of one block's transactions.

A Block-STM-style pipeline in three steps:

1. **Assign.**  Transactions are partitioned into *lanes* by
   sender/recipient affinity (:func:`assign_lanes`): a sender's whole
   nonce chain lands on one lane, and transactions targeting an
   address some lane already touched follow it there.
2. **Speculate.**  Each lane executes its transactions in serial-index
   order against an immutable base state through a
   :class:`~repro.chain.state.LaneState` overlay, capturing per-tx
   read/write sets and effects.  Lanes run in-process or, with
   ``workers > 1``, in forked worker processes.
3. **Commit.**  A single pass in serial index order applies each
   transaction's captured effects verbatim when its footprint is
   disjoint from every *other* lane's committed impact, and
   deterministically re-executes it against the committed state
   otherwise.

The committed state, receipts and gas accounting are bit-identical to
serial execution for any lane count and any lane assignment — that is
the oracle ``tests/chain/test_parallel_exec.py`` sweeps.

Miner-fee credits are the one deliberate relaxation of the footprint
rule: ``LaneState`` buffers credits to untouched accounts as
commutative deltas, so every transaction paying the same coinbase (or
crediting the same recipient) does not serialize the block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import observability as obs
from repro.errors import InvalidTransactionError
from repro.chain.contract import BlockContext
from repro.chain.receipts import Receipt
from repro.chain.state import LaneState, TxEffects, WorldState
from repro.chain.transaction import SignedTransaction
from repro.chain.vm import VM

#: Sentinel owners in the commit pass's impact map: accounts impacted
#: by a re-executed transaction, or by two different lanes, conflict
#: with every later speculative result regardless of its lane.
_REEXEC = -1
_MIXED = -2


@dataclass
class BlockExecutionStats:
    """Concurrency accounting for one block execution."""

    lanes: int
    workers: int
    transactions: int = 0
    speculative_commits: int = 0
    reexecutions: int = 0
    conflicts: int = 0
    invalid_dropped: int = 0
    #: Wall seconds each lane spent speculating, and the commit pass.
    #: ``max(lane_seconds) + commit_seconds`` is the critical-path time
    #: a host with one core per lane would observe.
    lane_seconds: List[float] = field(default_factory=list)
    commit_seconds: float = 0.0

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.transactions if self.transactions else 0.0

    @property
    def abort_rate(self) -> float:
        """Fraction of transactions whose speculative result was discarded."""
        return self.reexecutions / self.transactions if self.transactions else 0.0

    @property
    def critical_path_seconds(self) -> float:
        """Modeled block time with one core per lane (speculation is
        bounded by the slowest lane; the commit pass is sequential)."""
        return (max(self.lane_seconds) if self.lane_seconds else 0.0) + self.commit_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "lanes": self.lanes,
            "workers": self.workers,
            "transactions": self.transactions,
            "speculative_commits": self.speculative_commits,
            "reexecutions": self.reexecutions,
            "conflicts": self.conflicts,
            "invalid_dropped": self.invalid_dropped,
            "conflict_rate": round(self.conflict_rate, 4),
            "abort_rate": round(self.abort_rate, 4),
            "lane_seconds": [round(s, 4) for s in self.lane_seconds],
            "commit_seconds": round(self.commit_seconds, 4),
            "critical_path_seconds": round(self.critical_path_seconds, 4),
        }


@dataclass
class BlockExecution:
    """Result of executing one block's transaction list."""

    included: List[SignedTransaction]
    receipts: List[Receipt]
    stats: BlockExecutionStats

    @property
    def gas_used(self) -> int:
        return sum(receipt.gas_used for receipt in self.receipts)


@dataclass
class _SpecResult:
    """One transaction's speculative outcome (``receipt is None`` →
    the transaction was invalid against the lane's view)."""

    index: int
    lane: int
    receipt: Optional[Receipt]
    effects: Optional[TxEffects]


def assign_lanes(transactions: Sequence[SignedTransaction], lanes: int) -> List[int]:
    """Deterministic affinity-based lane assignment.

    A sender's transactions all share a lane (nonce chains must
    speculate in order), and a transaction whose recipient some lane
    already touched follows it there (single-contract hot spots stay
    lane-local).  Unaffiliated transactions round-robin.
    """
    affinity: Dict[bytes, int] = {}
    counter = 0
    assignment: List[int] = []
    for stx in transactions:
        sender = stx.sender
        to = stx.transaction.to
        lane = affinity.get(sender)
        if lane is None and to is not None:
            lane = affinity.get(to)
        if lane is None:
            lane = counter % lanes
            counter += 1
        affinity.setdefault(sender, lane)
        if to is not None:
            affinity.setdefault(to, lane)
        assignment.append(lane)
    return assignment


def _run_lane(
    vm: VM,
    base: WorldState,
    block_ctx: BlockContext,
    items: Sequence[Tuple[int, SignedTransaction]],
) -> List[_SpecResult]:
    """Speculatively execute one lane's transactions over ``base``."""
    lane_state = LaneState(base)
    results: List[_SpecResult] = []
    for index, stx in items:
        lane_state.begin_access_window()
        try:
            receipt = vm.execute_transaction(lane_state, stx, block_ctx)
        except InvalidTransactionError:
            # No state was touched (validation precedes any mutation);
            # the commit pass retries this tx against committed state.
            lane_state.finish_access_window()
            results.append(_SpecResult(index=index, lane=0, receipt=None, effects=None))
            continue
        effects = lane_state.finish_access_window()
        results.append(
            _SpecResult(index=index, lane=0, receipt=receipt, effects=effects)
        )
    return results


class _LaneJob:
    """Picklable per-lane speculation job for the fork pool."""

    def __init__(
        self,
        vm: VM,
        base: WorldState,
        block_ctx: BlockContext,
        lane_items: List[List[Tuple[int, SignedTransaction]]],
    ) -> None:
        self.vm = vm
        self.base = base
        self.block_ctx = block_ctx
        self.lane_items = lane_items

    def __call__(self, lane: int) -> Tuple[List[_SpecResult], float]:
        started = time.perf_counter()
        results = _run_lane(self.vm, self.base, self.block_ctx, self.lane_items[lane])
        for result in results:
            result.lane = lane
        return results, time.perf_counter() - started


def _map_lanes(
    job: _LaneJob, lanes: int, workers: int
) -> List[Tuple[List[_SpecResult], float]]:
    """Run every lane, forking worker processes when asked and possible."""
    if workers > 1 and lanes > 1:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # platform without fork: stay in-process
            ctx = None
        if ctx is not None:
            with ctx.Pool(processes=min(workers, lanes)) as pool:
                return pool.map(job, range(lanes))
    return [job(lane) for lane in range(lanes)]


def execute_block(
    vm: VM,
    state: WorldState,
    transactions: Sequence[SignedTransaction],
    block_ctx: BlockContext,
    lanes: int = 1,
    workers: int = 1,
    mode: str = "verify",
    assignment: Optional[Sequence[int]] = None,
) -> BlockExecution:
    """Execute a block's transactions against ``state``, mutating it.

    ``mode="verify"`` (importers) raises
    :class:`~repro.errors.InvalidTransactionError` on a transaction
    that is invalid in serial order; ``mode="build"`` (miners) silently
    drops it.  ``assignment`` overrides :func:`assign_lanes` — the
    serial-equivalence guarantee holds for *any* assignment, which the
    oracle tests exploit.
    """
    if mode not in ("verify", "build"):
        raise ValueError(f"unknown execution mode {mode!r}")
    txs = list(transactions)
    lanes = max(1, lanes)
    stats = BlockExecutionStats(
        lanes=lanes, workers=max(1, workers), transactions=len(txs)
    )
    if lanes == 1 or len(txs) < 2:
        return _execute_serial(vm, state, txs, block_ctx, mode, stats)

    if assignment is None:
        assignment = assign_lanes(txs, lanes)
    elif len(assignment) != len(txs):
        raise ValueError("lane assignment length must match transaction count")
    lane_items: List[List[Tuple[int, SignedTransaction]]] = [[] for _ in range(lanes)]
    for index, (stx, lane) in enumerate(zip(txs, assignment)):
        if not 0 <= lane < lanes:
            raise ValueError(f"lane {lane} out of range for {lanes} lanes")
        lane_items[lane].append((index, stx))

    job = _LaneJob(vm, state, block_ctx, lane_items)
    spec: List[Optional[_SpecResult]] = [None] * len(txs)
    for results, seconds in _map_lanes(job, lanes, stats.workers):
        stats.lane_seconds.append(seconds)
        for result in results:
            spec[result.index] = result

    # Commit pass: serial index order, so the outcome is the serial one.
    commit_started = time.perf_counter()
    impact: Dict[bytes, int] = {}
    included: List[SignedTransaction] = []
    receipts: List[Receipt] = []
    for index, stx in enumerate(txs):
        result = spec[index]
        assert result is not None
        if result.receipt is not None and not _conflicts(result, impact):
            state.apply_effects(result.effects)
            _mark_impact(impact, result.effects, result.lane)
            receipts.append(result.receipt)
            included.append(stx)
            stats.speculative_commits += 1
            continue
        if result.receipt is not None:
            stats.conflicts += 1
        stats.reexecutions += 1
        if result.effects is not None:
            # The discarded speculative footprint still poisons later
            # same-lane results, which were speculated on top of it.
            _mark_impact(impact, result.effects, _REEXEC)
        replay = LaneState(state)
        replay.begin_access_window()
        try:
            receipt = vm.execute_transaction(replay, stx, block_ctx)
        except InvalidTransactionError:
            if mode == "verify":
                raise
            stats.invalid_dropped += 1
            continue
        effects = replay.finish_access_window()
        state.apply_effects(effects)
        _mark_impact(impact, effects, _REEXEC)
        receipts.append(receipt)
        included.append(stx)
    stats.commit_seconds = time.perf_counter() - commit_started

    if obs.TRACER.enabled:
        obs.count("chain.parallel.blocks")
        obs.count("chain.parallel.speculative_commits", stats.speculative_commits)
        obs.count("chain.parallel.reexecutions", stats.reexecutions)
    return BlockExecution(included=included, receipts=receipts, stats=stats)


def _execute_serial(
    vm: VM,
    state: WorldState,
    txs: Sequence[SignedTransaction],
    block_ctx: BlockContext,
    mode: str,
    stats: BlockExecutionStats,
) -> BlockExecution:
    included: List[SignedTransaction] = []
    receipts: List[Receipt] = []
    started = time.perf_counter()
    for stx in txs:
        try:
            receipt = vm.execute_transaction(state, stx, block_ctx)
        except InvalidTransactionError:
            if mode == "verify":
                raise
            stats.invalid_dropped += 1
            continue
        receipts.append(receipt)
        included.append(stx)
    # One "lane" spanning the whole block, so critical_path_seconds is
    # meaningful for serial blocks too (the sharding bench compares
    # per-shard serial block builds against a single serial chain).
    stats.lane_seconds.append(time.perf_counter() - started)
    return BlockExecution(included=included, receipts=receipts, stats=stats)


def _conflicts(result: _SpecResult, impact: Dict[bytes, int]) -> bool:
    """Did any account this tx observed get impacted by another lane?"""
    for address in result.effects.access.touched():
        owner = impact.get(address)
        if owner is not None and owner != result.lane:
            return True
    return False


def _mark_impact(impact: Dict[bytes, int], effects: TxEffects, lane: int) -> None:
    for address in effects.access.writes | set(effects.credits):
        previous = impact.get(address)
        if previous is None:
            impact[address] = lane
        elif previous != lane:
            impact[address] = _MIXED
