"""Content-addressed off-chain storage (the paper's open question 2).

"Can we further optimize our implementations with using off-chain
storage [51, 52] … to assist more large-scale tasks, e.g. to collect
annotations for millions of images?"  This module implements the
Swarm/IPFS-shaped piece such an optimization needs: a content-addressed
blob store with chunking and Merkle-DAG-style manifests, so a task
contract only carries a 32-byte content id while images/audio live
off-chain.

The store itself is an honest-but-curious service: integrity is
verified by the *reader* against the content id, so a malicious store
cannot substitute data (availability, as in Swarm/IPFS, is an
assumption).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.crypto.hashing import sha256
from repro.errors import ChainError
from repro.serialization import chunk_bytes, decode, encode

#: Chunk size for large blobs (Swarm uses 4 KiB chunks).
DEFAULT_CHUNK_SIZE = 4096

_LEAF_DOMAIN = b"offchain-leaf"
_MANIFEST_DOMAIN = b"offchain-manifest"


class IntegrityError(ChainError):
    """Fetched content does not hash to the requested content id."""


class StoreUnavailableError(ChainError):
    """A (replicated) store could not serve the request right now."""


@dataclass(frozen=True)
class ContentId:
    """A 32-byte content address, printable as 0x-hex."""

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("content ids are 32-byte digests")

    def hex(self) -> str:
        return "0x" + self.digest.hex()

    @classmethod
    def parse(cls, text: str) -> "ContentId":
        if text.startswith(("0x", "0X")):
            text = text[2:]
        return cls(bytes.fromhex(text))


def leaf_id(chunk: bytes) -> ContentId:
    return ContentId(sha256(_LEAF_DOMAIN, chunk))


def manifest_id(chunk_ids: List[ContentId], length: int) -> ContentId:
    payload = encode([length, [c.digest for c in chunk_ids]])
    return ContentId(sha256(_MANIFEST_DOMAIN, payload))


class ContentStore:
    """An in-memory content-addressed store with chunked large blobs.

    ``put`` returns a :class:`ContentId`; ``get`` re-verifies every
    chunk and the manifest against it, so a tampering store is always
    detected.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 64:
            raise ValueError("chunk size too small to be useful")
        self.chunk_size = chunk_size
        self._chunks: Dict[bytes, bytes] = {}
        self._manifests: Dict[bytes, bytes] = {}

    # ----- write ----------------------------------------------------------------

    def put(self, blob: bytes) -> ContentId:
        """Store a blob of any size; returns its content id."""
        chunk_ids: List[ContentId] = []
        for chunk in chunk_bytes(blob, self.chunk_size) if blob else [b""]:
            cid = leaf_id(chunk)
            self._chunks[cid.digest] = chunk
            chunk_ids.append(cid)
        mid = manifest_id(chunk_ids, len(blob))
        self._manifests[mid.digest] = encode(
            [len(blob), [c.digest for c in chunk_ids]]
        )
        return mid

    # ----- read -----------------------------------------------------------------

    def get(self, content_id: ContentId) -> bytes:
        """Fetch + verify a blob; raises :class:`IntegrityError` on tamper."""
        manifest_blob = self._manifests.get(content_id.digest)
        if manifest_blob is None:
            raise KeyError(f"unknown content id {content_id.hex()}")
        length, digests = decode(manifest_blob)
        ids = [ContentId(d) for d in digests]
        if manifest_id(ids, length) != content_id:
            raise IntegrityError("manifest does not hash to the content id")
        pieces: List[bytes] = []
        for cid in ids:
            chunk = self._chunks.get(cid.digest)
            if chunk is None:
                raise KeyError(f"missing chunk {cid.hex()}")
            if leaf_id(chunk) != cid:
                raise IntegrityError("chunk does not hash to its id")
            pieces.append(chunk)
        blob = b"".join(pieces)
        if len(blob) != length:
            raise IntegrityError("reassembled length mismatch")
        return blob

    def has(self, content_id: ContentId) -> bool:
        return content_id.digest in self._manifests

    # ----- adversarial hooks for tests ---------------------------------------------

    def tamper_chunk(self, content_id: ContentId, index: int, new_chunk: bytes) -> None:
        """Corrupt the index-th chunk of a stored blob (for tests)."""
        manifest_blob = self._manifests[content_id.digest]
        _, digests = decode(manifest_blob)
        self._chunks[digests[index]] = new_chunk

    @property
    def stored_bytes(self) -> int:
        return sum(len(c) for c in self._chunks.values())


class FlakyContentStore:
    """A :class:`ContentStore` replica with seeded failure injection.

    Each ``get``/``put`` independently fails with the configured
    probability (raising :class:`StoreUnavailableError`), and the
    replica can be taken down entirely — the availability faults a
    replicated store must mask.
    """

    def __init__(
        self,
        store: Optional[ContentStore] = None,
        seed: int = 0,
        get_failure_rate: float = 0.0,
        put_failure_rate: float = 0.0,
    ) -> None:
        for rate in (get_failure_rate, put_failure_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("failure rates must be probabilities")
        self.store = store or ContentStore()
        self.get_failure_rate = get_failure_rate
        self.put_failure_rate = put_failure_rate
        self.down = False
        self.failures = 0
        self._rng = random.Random(seed)

    def _maybe_fail(self, rate: float, operation: str) -> None:
        if self.down or (rate and self._rng.random() < rate):
            self.failures += 1
            raise StoreUnavailableError(f"replica unavailable during {operation}")

    def put(self, blob: bytes) -> ContentId:
        self._maybe_fail(self.put_failure_rate, "put")
        return self.store.put(blob)

    def get(self, content_id: ContentId) -> bytes:
        self._maybe_fail(self.get_failure_rate, "get")
        return self.store.get(content_id)

    def has(self, content_id: ContentId) -> bool:
        return not self.down and self.store.has(content_id)


class ReplicatedContentStore:
    """N content-store replicas with retry and read-repair.

    Writes go to every replica (success requires at least one accepting
    the blob — content addressing makes partial writes harmless).
    Reads rotate over the replicas for up to ``max_read_rounds`` passes;
    the first verified copy wins and is repaired back onto the replicas
    that missed it, so a previously failed replica converges instead of
    staying a hole.  Integrity still rests with the *reader*: a replica
    serving tampered bytes is skipped like an unavailable one.
    """

    def __init__(
        self, replicas: Sequence, max_read_rounds: int = 2
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        if max_read_rounds < 1:
            raise ValueError("need at least one read round")
        self.replicas = list(replicas)
        self.max_read_rounds = max_read_rounds
        self.read_repairs = 0

    def put(self, blob: bytes) -> ContentId:
        content_id: Optional[ContentId] = None
        for replica in self.replicas:
            try:
                content_id = replica.put(blob)
            except StoreUnavailableError:
                continue
        if content_id is None:
            raise StoreUnavailableError("no replica accepted the write")
        return content_id

    def get(self, content_id: ContentId) -> bytes:
        for _ in range(self.max_read_rounds):
            for replica in self.replicas:
                try:
                    blob = replica.get(content_id)
                except (StoreUnavailableError, IntegrityError, KeyError):
                    continue
                self._read_repair(content_id, blob)
                return blob
        raise StoreUnavailableError(
            f"content {content_id.hex()} unavailable on every replica"
        )

    def _read_repair(self, content_id: ContentId, blob: bytes) -> None:
        for replica in self.replicas:
            try:
                if not replica.has(content_id):
                    replica.put(blob)
                    self.read_repairs += 1
            except StoreUnavailableError:
                continue

    def has(self, content_id: ContentId) -> bool:
        return any(replica.has(content_id) for replica in self.replicas)


def content_reference(content_id: ContentId) -> str:
    """Render a content id as a task-description reference string."""
    return f"offchain:{content_id.hex()}"


def parse_content_reference(reference: str) -> Optional[ContentId]:
    """Parse ``offchain:0x…`` references; None if not one."""
    if not reference.startswith("offchain:"):
        return None
    return ContentId.parse(reference.split(":", 1)[1])
