"""Content-addressed off-chain storage (the paper's open question 2).

"Can we further optimize our implementations with using off-chain
storage [51, 52] … to assist more large-scale tasks, e.g. to collect
annotations for millions of images?"  This module implements the
Swarm/IPFS-shaped piece such an optimization needs: a content-addressed
blob store with chunking and Merkle-DAG-style manifests, so a task
contract only carries a 32-byte content id while images/audio live
off-chain.

The store itself is an honest-but-curious service: integrity is
verified by the *reader* against the content id, so a malicious store
cannot substitute data (availability, as in Swarm/IPFS, is an
assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.hashing import sha256
from repro.errors import ChainError
from repro.serialization import chunk_bytes, decode, encode

#: Chunk size for large blobs (Swarm uses 4 KiB chunks).
DEFAULT_CHUNK_SIZE = 4096

_LEAF_DOMAIN = b"offchain-leaf"
_MANIFEST_DOMAIN = b"offchain-manifest"


class IntegrityError(ChainError):
    """Fetched content does not hash to the requested content id."""


@dataclass(frozen=True)
class ContentId:
    """A 32-byte content address, printable as 0x-hex."""

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("content ids are 32-byte digests")

    def hex(self) -> str:
        return "0x" + self.digest.hex()

    @classmethod
    def parse(cls, text: str) -> "ContentId":
        if text.startswith(("0x", "0X")):
            text = text[2:]
        return cls(bytes.fromhex(text))


def leaf_id(chunk: bytes) -> ContentId:
    return ContentId(sha256(_LEAF_DOMAIN, chunk))


def manifest_id(chunk_ids: List[ContentId], length: int) -> ContentId:
    payload = encode([length, [c.digest for c in chunk_ids]])
    return ContentId(sha256(_MANIFEST_DOMAIN, payload))


class ContentStore:
    """An in-memory content-addressed store with chunked large blobs.

    ``put`` returns a :class:`ContentId`; ``get`` re-verifies every
    chunk and the manifest against it, so a tampering store is always
    detected.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 64:
            raise ValueError("chunk size too small to be useful")
        self.chunk_size = chunk_size
        self._chunks: Dict[bytes, bytes] = {}
        self._manifests: Dict[bytes, bytes] = {}

    # ----- write ----------------------------------------------------------------

    def put(self, blob: bytes) -> ContentId:
        """Store a blob of any size; returns its content id."""
        chunk_ids: List[ContentId] = []
        for chunk in chunk_bytes(blob, self.chunk_size) if blob else [b""]:
            cid = leaf_id(chunk)
            self._chunks[cid.digest] = chunk
            chunk_ids.append(cid)
        mid = manifest_id(chunk_ids, len(blob))
        self._manifests[mid.digest] = encode(
            [len(blob), [c.digest for c in chunk_ids]]
        )
        return mid

    # ----- read -----------------------------------------------------------------

    def get(self, content_id: ContentId) -> bytes:
        """Fetch + verify a blob; raises :class:`IntegrityError` on tamper."""
        manifest_blob = self._manifests.get(content_id.digest)
        if manifest_blob is None:
            raise KeyError(f"unknown content id {content_id.hex()}")
        length, digests = decode(manifest_blob)
        ids = [ContentId(d) for d in digests]
        if manifest_id(ids, length) != content_id:
            raise IntegrityError("manifest does not hash to the content id")
        pieces: List[bytes] = []
        for cid in ids:
            chunk = self._chunks.get(cid.digest)
            if chunk is None:
                raise KeyError(f"missing chunk {cid.hex()}")
            if leaf_id(chunk) != cid:
                raise IntegrityError("chunk does not hash to its id")
            pieces.append(chunk)
        blob = b"".join(pieces)
        if len(blob) != length:
            raise IntegrityError("reassembled length mismatch")
        return blob

    def has(self, content_id: ContentId) -> bool:
        return content_id.digest in self._manifests

    # ----- adversarial hooks for tests ---------------------------------------------

    def tamper_chunk(self, content_id: ContentId, index: int, new_chunk: bytes) -> None:
        """Corrupt the index-th chunk of a stored blob (for tests)."""
        manifest_blob = self._manifests[content_id.digest]
        _, digests = decode(manifest_blob)
        self._chunks[digests[index]] = new_chunk

    @property
    def stored_bytes(self) -> int:
        return sum(len(c) for c in self._chunks.values())


def content_reference(content_id: ContentId) -> str:
    """Render a content id as a task-description reference string."""
    return f"offchain:{content_id.hex()}"


def parse_content_reference(reference: str) -> Optional[ContentId]:
    """Parse ``offchain:0x…`` references; None if not one."""
    if not reference.startswith("offchain:"):
        return None
    return ContentId.parse(reference.split(":", 1)[1])
