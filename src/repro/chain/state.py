"""World state: the address → account map with snapshot support.

Two rollback mechanisms coexist:

* :meth:`snapshot`/:meth:`restore` deep-copy the whole state — used
  per *block* (miners build on a scratch copy, importers re-execute
  against the parent state).
* :meth:`begin_transaction`/:meth:`rollback_transaction` journal
  copy-on-write preimages of only the accounts a single transaction
  touches — used per *tx* by the VM, where a full clone would make
  execution cost scale with total account count instead of touched
  account count.

The state root is a content hash used by block validation to assert
that every node executed identically — the "correct computation"
property of the ideal public ledger.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.crypto.hashing import sha256
from repro.errors import ChainError
from repro.serialization import encode
from repro.chain.account import Account


class WorldState:
    """The full ledger state."""

    def __init__(self) -> None:
        self._accounts: Dict[bytes, Account] = {}
        # Open tx journal: preimages (first-touch clones) of accounts,
        # or None for accounts created during the journaled window.
        self._journal: Optional[List[Tuple[bytes, Optional[Account]]]] = None
        self._journaled: Set[bytes] = set()

    # ----- account access -----------------------------------------------------

    def account(self, address: bytes) -> Account:
        """Fetch (creating lazily) the account at ``address``."""
        account = self._accounts.get(address)
        journal = self._journal
        if journal is not None and address not in self._journaled:
            self._journaled.add(address)
            journal.append((address, account.clone() if account is not None else None))
        if account is None:
            account = Account()
            self._accounts[address] = account
        return account

    def has_account(self, address: bytes) -> bool:
        return address in self._accounts

    def balance_of(self, address: bytes) -> int:
        account = self._accounts.get(address)
        return account.balance if account else 0

    def nonce_of(self, address: bytes) -> int:
        account = self._accounts.get(address)
        return account.nonce if account else 0

    def accounts(self) -> Iterator[Tuple[bytes, Account]]:
        return iter(self._accounts.items())

    # ----- mutation -------------------------------------------------------------

    def credit(self, address: bytes, amount: int) -> None:
        if amount < 0:
            raise ChainError("cannot credit a negative amount")
        self.account(address).balance += amount

    def debit(self, address: bytes, amount: int) -> None:
        if amount < 0:
            raise ChainError("cannot debit a negative amount")
        account = self.account(address)
        if account.balance < amount:
            raise ChainError(
                f"insufficient balance at 0x{address.hex()}: "
                f"{account.balance} < {amount}"
            )
        account.balance -= amount

    def transfer(self, source: bytes, destination: bytes, amount: int) -> None:
        self.debit(source, amount)
        self.credit(destination, amount)

    # ----- snapshots --------------------------------------------------------------

    def snapshot(self) -> "WorldState":
        """A deep, independent copy of the whole state."""
        clone = WorldState()
        clone._accounts = {addr: acct.clone() for addr, acct in self._accounts.items()}
        return clone

    def restore(self, snapshot: "WorldState") -> None:
        """Replace this state's contents with a snapshot's."""
        self._accounts = {
            addr: acct.clone() for addr, acct in snapshot._accounts.items()
        }

    # ----- tx journal --------------------------------------------------------------

    def begin_transaction(self) -> None:
        """Start journaling: record a preimage of each account on first touch.

        Unlike :meth:`snapshot` this is O(accounts touched), not
        O(accounts total); a typical contract call journals a handful
        of accounts while the ledger holds hundreds.
        """
        if self._journal is not None:
            raise ChainError("state journal already open (nested begin_transaction)")
        self._journal = []
        self._journaled = set()

    def commit_transaction(self) -> None:
        """Keep the journaled window's changes; discard the preimages."""
        if self._journal is None:
            raise ChainError("no open state journal to commit")
        self._journal = None
        self._journaled = set()

    def rollback_transaction(self) -> None:
        """Undo every change made since :meth:`begin_transaction`."""
        if self._journal is None:
            raise ChainError("no open state journal to roll back")
        for address, preimage in reversed(self._journal):
            if preimage is None:
                self._accounts.pop(address, None)
            else:
                self._accounts[address] = preimage
        self._journal = None
        self._journaled = set()

    # ----- integrity ----------------------------------------------------------------

    def state_root(self) -> bytes:
        """A canonical content hash over all accounts.

        Contract storage may contain arbitrary picklable values, so the
        root hashes a stable ``repr``-based rendering of storage — good
        enough for cross-node execution-equality checks in this
        simulation.
        """
        items = []
        for address in sorted(self._accounts):
            account = self._accounts[address]
            storage_repr = repr(sorted(account.storage.items(), key=lambda kv: kv[0]))
            items.append(
                encode(
                    [
                        address,
                        account.balance,
                        account.nonce,
                        account.contract_name or "",
                        storage_repr,
                    ]
                )
            )
        return sha256(b"state-root", *items)

    def total_supply(self) -> int:
        """Sum of all balances (conserved modulo mint/burn — a test invariant)."""
        return sum(account.balance for account in self._accounts.values())
