"""World state: the address → account map with snapshot support.

Three rollback/isolation mechanisms coexist:

* :meth:`snapshot`/:meth:`restore` deep-copy the whole state — used
  per *block* (miners build on a scratch copy, importers re-execute
  against the parent state).
* :meth:`begin_transaction`/:meth:`commit_transaction`/
  :meth:`rollback_transaction` maintain a *stack* of copy-on-write
  journal frames that record preimages of only the accounts a single
  transaction touches — used per *tx* by the VM, where a full clone
  would make execution cost scale with total account count instead of
  touched account count.  ``begin_transaction`` returns a
  :class:`JournalHandle`; nested frames are legal and must close in
  LIFO order.  Each frame also tracks the account-granular read/write
  set of its window, which is what makes optimistic concurrency
  (:mod:`repro.chain.parallel`) able to detect conflicts post-hoc.
* :class:`LaneState` is a copy-on-write overlay over an immutable base
  state, giving each speculative execution lane an isolated view plus
  a captured per-transaction effect (:class:`TxEffects`) that the
  commit pass can replay verbatim.

The state root is a content hash used by block validation to assert
that every node executed identically — the "correct computation"
property of the ideal public ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.crypto.hashing import sha256
from repro.errors import ChainError
from repro.serialization import encode
from repro.chain.account import Account


@dataclass
class AccessSet:
    """Account-granular read/write footprint of one execution window.

    ``writes`` over-approximates: any account fetched through the
    mutable :meth:`WorldState.account` accessor counts as written, even
    if the caller only read it.  Over-approximation is safe for
    conflict detection (it can only add conflicts, never hide one).
    """

    reads: Set[bytes] = field(default_factory=set)
    writes: Set[bytes] = field(default_factory=set)

    def touched(self) -> Set[bytes]:
        return self.reads | self.writes

    def merge(self, other: "AccessSet") -> None:
        self.reads |= other.reads
        self.writes |= other.writes


class JournalHandle:
    """One open copy-on-write journal frame.

    Holds first-touch account preimages (``None`` marks an account
    created inside the window), the window's access set, and undo
    entries for buffered lane credits (see :meth:`LaneState.credit`).
    """

    __slots__ = ("preimages", "journaled", "access", "credit_undo")

    def __init__(self) -> None:
        self.preimages: List[Tuple[bytes, Optional[Account]]] = []
        self.journaled: Set[bytes] = set()
        self.access = AccessSet()
        # (address, lane_delta, tx_delta) to re-add on rollback.
        self.credit_undo: List[Tuple[bytes, int, int]] = []


@dataclass
class TxEffects:
    """One transaction's captured effect on a :class:`LaneState`.

    ``written`` maps addresses to the account's absolute end-of-tx
    value; ``credits`` holds commutative balance deltas to accounts the
    transaction never otherwise touched (miner fees, transfer
    recipients).  The two key sets are disjoint: materializing an
    account folds its pending credits into the absolute value.
    """

    access: AccessSet
    written: Dict[bytes, Account]
    credits: Dict[bytes, int]


class WorldState:
    """The full ledger state."""

    def __init__(self) -> None:
        self._accounts: Dict[bytes, Account] = {}
        self._frames: List[JournalHandle] = []

    # ----- account access -----------------------------------------------------

    def account(self, address: bytes) -> Account:
        """Fetch (creating lazily) the account at ``address``.

        The returned object is mutable, so this access counts as a
        write in the open journal frame's access set.
        """
        self._record_rw(address)
        account = self._accounts.get(address)
        self._journal_first_touch(address, account)
        if account is None:
            account = self._materialize(address)
        return account

    def has_account(self, address: bytes) -> bool:
        self._record_read(address)
        return address in self._accounts

    def balance_of(self, address: bytes) -> int:
        self._record_read(address)
        account = self._accounts.get(address)
        return account.balance if account else 0

    def nonce_of(self, address: bytes) -> int:
        self._record_read(address)
        account = self._accounts.get(address)
        return account.nonce if account else 0

    def accounts(self) -> Iterator[Tuple[bytes, Account]]:
        return iter(self._accounts.items())

    # ----- access/journal plumbing (overridden by LaneState) -------------------

    def _record_read(self, address: bytes) -> None:
        if self._frames:
            self._frames[-1].access.reads.add(address)

    def _record_rw(self, address: bytes) -> None:
        if self._frames:
            access = self._frames[-1].access
            access.reads.add(address)
            access.writes.add(address)

    def _journal_first_touch(self, address: bytes, account: Optional[Account]) -> None:
        if not self._frames:
            return
        top = self._frames[-1]
        if address in top.journaled:
            return
        top.journaled.add(address)
        top.preimages.append((address, account.clone() if account is not None else None))

    def _materialize(self, address: bytes) -> Account:
        account = Account()
        self._accounts[address] = account
        return account

    # ----- mutation -------------------------------------------------------------

    def credit(self, address: bytes, amount: int) -> None:
        if amount < 0:
            raise ChainError("cannot credit a negative amount")
        self.account(address).balance += amount

    def debit(self, address: bytes, amount: int) -> None:
        if amount < 0:
            raise ChainError("cannot debit a negative amount")
        account = self.account(address)
        if account.balance < amount:
            raise ChainError(
                f"insufficient balance at 0x{address.hex()}: "
                f"{account.balance} < {amount}"
            )
        account.balance -= amount

    def transfer(self, source: bytes, destination: bytes, amount: int) -> None:
        self.debit(source, amount)
        self.credit(destination, amount)

    def apply_effects(self, effects: TxEffects) -> None:
        """Replay a captured :class:`TxEffects` verbatim onto this state."""
        for address, account in effects.written.items():
            self._accounts[address] = account
        for address, delta in effects.credits.items():
            if delta:
                self.credit(address, delta)

    # ----- snapshots --------------------------------------------------------------

    def snapshot(self) -> "WorldState":
        """A deep, independent copy of the whole state."""
        clone = WorldState()
        clone._accounts = {addr: acct.clone() for addr, acct in self._accounts.items()}
        return clone

    def restore(self, snapshot: "WorldState") -> None:
        """Replace this state's contents with a snapshot's."""
        self._accounts = {
            addr: acct.clone() for addr, acct in snapshot._accounts.items()
        }

    # ----- tx journal --------------------------------------------------------------

    def begin_transaction(self) -> JournalHandle:
        """Open a journal frame: preimages are recorded on first touch.

        Unlike :meth:`snapshot` this is O(accounts touched), not
        O(accounts total).  Frames nest — each ``begin`` pushes a new
        frame and returns its handle, so independent callers (parallel
        execution lanes, nested VM windows) no longer trip over a
        single global journal.  Frames must close innermost-first.
        """
        frame = JournalHandle()
        self._frames.append(frame)
        return frame

    def commit_transaction(self, handle: Optional[JournalHandle] = None) -> None:
        """Keep the frame's changes; fold its bookkeeping into the parent."""
        frame = self._pop_frame(handle, "commit")
        if self._frames:
            parent = self._frames[-1]
            for address, preimage in frame.preimages:
                if address not in parent.journaled:
                    parent.journaled.add(address)
                    parent.preimages.append((address, preimage))
            parent.access.merge(frame.access)
            parent.credit_undo.extend(frame.credit_undo)

    def rollback_transaction(self, handle: Optional[JournalHandle] = None) -> None:
        """Undo every change made since the matching :meth:`begin_transaction`."""
        frame = self._pop_frame(handle, "roll back")
        for address, preimage in reversed(frame.preimages):
            if preimage is None:
                self._accounts.pop(address, None)
            else:
                self._accounts[address] = preimage
        self._undo_credits(frame)
        if self._frames:
            # Rolled-back reads/writes still happened; conflict
            # detection must keep them visible to the outer window.
            self._frames[-1].access.merge(frame.access)

    def journal_depth(self) -> int:
        return len(self._frames)

    def _pop_frame(self, handle: Optional[JournalHandle], action: str) -> JournalHandle:
        if not self._frames:
            raise ChainError(f"no open state journal to {action}")
        if handle is not None and handle is not self._frames[-1]:
            raise ChainError(
                f"cannot {action} a non-innermost journal frame "
                "(frames close in LIFO order)"
            )
        return self._frames.pop()

    def _undo_credits(self, frame: JournalHandle) -> None:
        if frame.credit_undo:  # only LaneState ever records credit undos
            raise ChainError("credit undo entries on a non-lane state")

    # ----- integrity ----------------------------------------------------------------

    def state_root(self) -> bytes:
        """A canonical content hash over all accounts.

        Contract storage may contain arbitrary picklable values, so the
        root hashes a stable ``repr``-based rendering of storage — good
        enough for cross-node execution-equality checks in this
        simulation.
        """
        items = []
        for address in sorted(self._accounts):
            account = self._accounts[address]
            storage_repr = repr(sorted(account.storage.items(), key=lambda kv: kv[0]))
            items.append(
                encode(
                    [
                        address,
                        account.balance,
                        account.nonce,
                        account.contract_name or "",
                        storage_repr,
                    ]
                )
            )
        return sha256(b"state-root", *items)

    def total_supply(self) -> int:
        """Sum of all balances (conserved modulo mint/burn — a test invariant)."""
        return sum(account.balance for account in self._accounts.values())


class LaneState(WorldState):
    """A copy-on-write overlay for one speculative execution lane.

    Reads fall through to the immutable ``base``; the first access via
    :meth:`account` materializes a deep clone into the overlay, so the
    base is never mutated.  Credits to accounts the lane has not
    otherwise touched are buffered as commutative *deltas* instead of
    writes — two lanes paying the same coinbase therefore never
    conflict.  Between :meth:`begin_access_window` and
    :meth:`finish_access_window` every access and mutation is captured
    into a :class:`TxEffects` the commit pass can apply verbatim.
    """

    def __init__(self, base: WorldState) -> None:
        super().__init__()
        self._base = base
        # Lane-wide pending credit deltas to unmaterialized accounts,
        # and the portion contributed by the current access window.
        self._credits: Dict[bytes, int] = {}
        self._tx_credits: Dict[bytes, int] = {}
        self.access = AccessSet()

    # ----- recording ------------------------------------------------------------

    def _record_read(self, address: bytes) -> None:
        self.access.reads.add(address)
        super()._record_read(address)

    def _record_rw(self, address: bytes) -> None:
        self.access.reads.add(address)
        self.access.writes.add(address)
        super()._record_rw(address)

    # ----- overlay reads ---------------------------------------------------------

    def _materialize(self, address: bytes) -> Account:
        pending = self._credits.pop(address, 0)
        if pending:
            tx_part = self._tx_credits.pop(address, 0)
            if self._frames:
                self._frames[-1].credit_undo.append((address, pending, tx_part))
        base_account = self._base._accounts.get(address)
        account = base_account.clone() if base_account is not None else Account()
        if pending:
            account.balance += pending
        self._accounts[address] = account
        return account

    def has_account(self, address: bytes) -> bool:
        self._record_read(address)
        return (
            address in self._accounts
            or address in self._credits
            or address in self._base._accounts
        )

    def balance_of(self, address: bytes) -> int:
        self._record_read(address)
        account = self._accounts.get(address)
        if account is not None:
            return account.balance
        base_account = self._base._accounts.get(address)
        base_balance = base_account.balance if base_account is not None else 0
        return base_balance + self._credits.get(address, 0)

    def nonce_of(self, address: bytes) -> int:
        self._record_read(address)
        account = self._accounts.get(address)
        if account is None:
            account = self._base._accounts.get(address)
        return account.nonce if account is not None else 0

    # ----- overlay writes --------------------------------------------------------

    def credit(self, address: bytes, amount: int) -> None:
        if amount < 0:
            raise ChainError("cannot credit a negative amount")
        if address in self._accounts:
            # Already materialized: a credit is just a write.
            self.account(address).balance += amount
            return
        self._credits[address] = self._credits.get(address, 0) + amount
        self._tx_credits[address] = self._tx_credits.get(address, 0) + amount
        if self._frames:
            self._frames[-1].credit_undo.append((address, -amount, -amount))

    def _undo_credits(self, frame: JournalHandle) -> None:
        for address, lane_delta, tx_delta in reversed(frame.credit_undo):
            for bucket, delta in ((self._credits, lane_delta), (self._tx_credits, tx_delta)):
                if not delta:
                    continue
                total = bucket.get(address, 0) + delta
                if total:
                    bucket[address] = total
                else:
                    bucket.pop(address, None)

    # ----- per-transaction capture -----------------------------------------------

    def begin_access_window(self) -> None:
        """Reset the per-transaction access set and credit ledger."""
        self.access = AccessSet()
        self._tx_credits = {}

    def finish_access_window(self) -> TxEffects:
        """Freeze and return the window's effects (clones, not views)."""
        written = {
            address: self._accounts[address].clone()
            for address in self.access.writes
            if address in self._accounts
        }
        credits = {
            address: delta for address, delta in self._tx_credits.items() if delta
        }
        effects = TxEffects(access=self.access, written=written, credits=credits)
        self.access = AccessSet()
        self._tx_credits = {}
        return effects

    # ----- guards ----------------------------------------------------------------

    def state_root(self) -> bytes:
        raise ChainError("lane overlays have no standalone state root")

    def total_supply(self) -> int:
        raise ChainError("lane overlays have no standalone total supply")
