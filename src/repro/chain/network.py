"""The P2P network simulation and the paper-shaped test net.

:class:`Network` connects nodes, gossips transactions and blocks (with
an optional adversary that may observe, reorder, drop, or inject
traffic before delivery — exactly the power §III grants the network
adversary over not-yet-mined transactions).  :class:`Testnet` is a
convenience facade reproducing the paper's deployment: a handful of
nodes, some of them miners, with a faucet for funding one-task-only
addresses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol

from repro.crypto import ecdsa
from repro.errors import ChainError, InvalidTransactionError
from repro.chain.block import Block
from repro.chain.clock import SimClock
from repro.chain.consensus import ConsensusEngine, PoAEngine
from repro.chain.node import GenesisConfig, Node
from repro.chain.transaction import SignedTransaction, Transaction


class NetworkAdversary(Protocol):
    """Hooks an adversary may implement (all optional in spirit).

    ``on_transaction`` is called before a broadcast transaction is
    delivered and returns the list of transactions that actually get
    delivered — returning ``[]`` censors, returning extra transactions
    injects (e.g. the free-rider's copy), reordering happens naturally
    by submitting ahead of the victim with a higher gas price.
    """

    def on_transaction(self, stx: SignedTransaction) -> List[SignedTransaction]:
        ...


class Network:
    """Gossip fabric between nodes."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self.nodes: List[Node] = []
        self.adversary: Optional[NetworkAdversary] = None
        self.transaction_log: List[SignedTransaction] = []
        self._partition_of: Dict[int, int] = {}  # id(node) -> group

    def add_node(self, node: Node) -> Node:
        self.nodes.append(node)
        return node

    # ----- partitions --------------------------------------------------------------

    def partition(self, *groups: List[Node]) -> None:
        """Split the network: gossip only flows within each group.

        Nodes not named in any group keep receiving everything (they
        model multi-homed peers).  Call :meth:`heal` to reconnect.
        """
        self._partition_of = {}
        for index, group in enumerate(groups):
            for node in group:
                self._partition_of[id(node)] = index

    def heal(self) -> None:
        """Reconnect everyone and let nodes sync missing blocks."""
        self._partition_of = {}
        # Everyone offers its canonical chain to everyone else; longest
        # chain wins through the ordinary fork-choice rule.
        for source in self.nodes:
            chain = source.chain_to_genesis()
            for node in self.nodes:
                if node is source:
                    continue
                for block in chain:
                    try:
                        node.import_block(block)
                    except Exception:  # noqa: BLE001 - unknown parent mid-chain etc.
                        continue

    def _reachable(self, sender: Optional[Node], receiver: Node) -> bool:
        if not self._partition_of or sender is None:
            return True
        sender_group = self._partition_of.get(id(sender))
        receiver_group = self._partition_of.get(id(receiver))
        if sender_group is None or receiver_group is None:
            return True
        return sender_group == receiver_group

    # ----- gossip -------------------------------------------------------------------

    def broadcast_transaction(
        self, stx: SignedTransaction, origin: Optional[Node] = None
    ) -> None:
        """Gossip a transaction to every reachable node (via the adversary)."""
        deliveries = [stx]
        if self.adversary is not None:
            deliveries = self.adversary.on_transaction(stx)
        for delivered in deliveries:
            self.transaction_log.append(delivered)
            for node in self.nodes:
                if not self._reachable(origin, node):
                    continue
                try:
                    node.submit_transaction(delivered)
                except InvalidTransactionError:
                    continue  # nodes drop junk silently

    def broadcast_block(self, block: Block, origin: Node) -> None:
        for node in self.nodes:
            if node is origin or not self._reachable(origin, node):
                continue
            node.import_block(block)

    def pending_transactions(self) -> List[SignedTransaction]:
        """The union view of pending traffic (what an observer sees)."""
        seen: Dict[bytes, SignedTransaction] = {}
        for node in self.nodes:
            for stx in node.mempool.pending():
                seen.setdefault(stx.tx_hash, stx)
        return list(seen.values())


class Testnet:
    """The paper's deployment shape: miners + full nodes + a faucet.

    (``__test__ = False`` keeps pytest from trying to collect this.)

    Defaults mirror Section VI: two miners and two non-mining full
    nodes (one of which a requester client attaches to, the other the
    workers').  ``mine_block`` advances the chain by one block and one
    block interval of simulated time.
    """

    __test__ = False

    def __init__(
        self,
        miners: int = 2,
        full_nodes: int = 2,
        block_interval: int = 15,
        gas_limit: int = 30_000_000,
        initial_faucet_balance: int = 10**30,
        engine: Optional[ConsensusEngine] = None,
    ) -> None:
        if miners < 1:
            raise ValueError("need at least one miner")
        self.block_interval = block_interval
        self.clock = SimClock()
        self.network = Network(self.clock)
        self.faucet_key = ecdsa.ECDSAKeyPair.from_seed(b"testnet-faucet")

        miner_keys = [
            ecdsa.ECDSAKeyPair.from_seed(f"miner-{i}".encode()) for i in range(miners)
        ]
        self.engine = engine or PoAEngine([k.address() for k in miner_keys])
        genesis = GenesisConfig(
            allocations={self.faucet_key.address(): initial_faucet_balance},
            gas_limit=gas_limit,
        )
        self.genesis = genesis
        self.miners: List[Node] = [
            self.network.add_node(
                Node(
                    name=f"miner-{i}",
                    genesis=genesis,
                    engine=self.engine,
                    keypair=key,
                    is_miner=True,
                )
            )
            for i, key in enumerate(miner_keys)
        ]
        self.full_nodes: List[Node] = [
            self.network.add_node(
                Node(name=f"full-{i}", genesis=genesis, engine=self.engine)
            )
            for i in range(full_nodes)
        ]
        self._faucet_nonce = 0

    # ----- views ----------------------------------------------------------------

    @property
    def any_node(self) -> Node:
        """A full node to read the chain through (miners work too)."""
        return self.full_nodes[0] if self.full_nodes else self.miners[0]

    @property
    def height(self) -> int:
        return self.any_node.height

    # ----- actions ----------------------------------------------------------------

    def send_transaction(self, stx: SignedTransaction) -> bytes:
        """Broadcast a signed transaction; returns its hash."""
        self.network.broadcast_transaction(stx)
        return stx.tx_hash

    def mine_block(self) -> Block:
        """Let the scheduled miner seal the next block and gossip it."""
        height = self.any_node.height + 1
        proposer_address = self.engine.expected_proposer(height)
        miner = self.miners[0]
        if proposer_address is not None:
            for candidate in self.miners:
                if candidate.address == proposer_address:
                    miner = candidate
                    break
            else:
                raise ChainError("no local miner matches the expected proposer")
        timestamp = self.clock.advance(self.block_interval)
        block = miner.create_block(timestamp)
        self.network.broadcast_block(block, origin=miner)
        return block

    def mine_blocks(self, count: int) -> List[Block]:
        return [self.mine_block() for _ in range(count)]

    def mine_until(self, predicate: Callable[[], bool], max_blocks: int = 64) -> None:
        """Mine until ``predicate()`` holds (or fail loudly)."""
        for _ in range(max_blocks):
            if predicate():
                return
            self.mine_block()
        if not predicate():
            raise ChainError(f"condition not reached within {max_blocks} blocks")

    def fund(self, address: bytes, amount: int, mine: bool = True) -> None:
        """Faucet-transfer ``amount`` to ``address`` (mining one block)."""
        tx = Transaction(
            nonce=self._faucet_nonce,
            gas_price=1,
            gas_limit=50_000,
            to=address,
            value=amount,
            chain_id=self.genesis.chain_id,
        )
        self._faucet_nonce += 1
        self.send_transaction(tx.sign(self.faucet_key))
        if mine:
            self.mine_block()

    def wait_for_receipt(self, tx_hash: bytes, max_blocks: int = 16):
        """Mine until the transaction is included; returns its receipt."""
        self.mine_until(
            lambda: self.any_node.get_receipt(tx_hash) is not None, max_blocks
        )
        return self.any_node.get_receipt(tx_hash)

    def assert_consensus(self) -> None:
        """All nodes agree on head hash and state root (test invariant)."""
        heads = {node.head_block.block_hash for node in self.network.nodes}
        if len(heads) != 1:
            raise ChainError("nodes diverged on the head block")
        roots = {node.head_state.state_root() for node in self.network.nodes}
        if len(roots) != 1:
            raise ChainError("nodes diverged on state")
