"""The P2P network simulation and the paper-shaped test net.

:class:`Network` connects nodes, gossips transactions and blocks (with
an optional adversary that may observe, reorder, drop, or inject
traffic before delivery — exactly the power §III grants the network
adversary over not-yet-mined transactions).  A seedable
:class:`~repro.chain.faults.FaultPlan` adds the operational half of
that adversary: per-link drops, block-tick delay queues, duplication,
scheduled node crash/restart and partition windows.  :class:`Testnet`
is a convenience facade reproducing the paper's deployment: a handful
of nodes, some of them miners, with a faucet for funding one-task-only
addresses.

Recovery: :meth:`Network.sync_node` implements a head-relative peer
sync (find the common ancestor over the canonical-number index, import
only the blocks above it) which both :meth:`Network.heal` and delayed
/ out-of-order block delivery fall back on — no full-chain replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Set, Tuple

from repro.crypto import ecdsa
from repro.errors import ChainError, InvalidBlockError, InvalidTransactionError
from repro.chain.block import Block
from repro.chain.clock import SimClock
from repro.chain.consensus import ConsensusEngine, PoAEngine
from repro.chain.faults import BLOCK, TX, FaultPlan
from repro.chain.node import GenesisConfig, Node
from repro.chain.transaction import SignedTransaction, Transaction
from repro.chain.txsender import TxSender


class NetworkAdversary(Protocol):
    """Hooks an adversary may implement (all optional in spirit).

    ``on_transaction`` is called before a broadcast transaction is
    delivered and returns the list of transactions that actually get
    delivered — returning ``[]`` censors, returning extra transactions
    injects (e.g. the free-rider's copy), reordering happens naturally
    by submitting ahead of the victim with a higher gas price.
    """

    def on_transaction(self, stx: SignedTransaction) -> List[SignedTransaction]:
        ...


@dataclass
class NetworkStats:
    """Fault/recovery accounting (read by the chaos bench and tests)."""

    delivered: int = 0
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    syncs: int = 0
    sync_blocks: int = 0
    crashes: int = 0
    restarts: int = 0


@dataclass
class _Delayed:
    release_height: int
    kind: str
    payload: Any
    receiver: Node
    origin: Optional[Node]


class Network:
    """Gossip fabric between nodes (with optional fault injection)."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.nodes: List[Node] = []
        self.adversary: Optional[NetworkAdversary] = None
        self.fault_plan = fault_plan
        self.stats = NetworkStats()
        self.transaction_log: List[SignedTransaction] = []
        self._partition_of: Dict[int, int] = {}  # id(node) -> group
        self._delayed: List[_Delayed] = []
        # Node *names*, not id()s: recovery sync must run in the stable
        # node-list order, or two same-seed runs could heal in different
        # orders (id() follows the allocator) and diverge their stats.
        self._needs_sync: Set[str] = set()
        self._plan_crashed: Set[int] = set()  # nodes the plan took down

    def add_node(self, node: Node) -> Node:
        self.nodes.append(node)
        return node

    @property
    def height(self) -> int:
        """Best height over live nodes (the fabric's notion of "now")."""
        live = [node.height for node in self.nodes if not node.crashed]
        return max(live, default=0)

    def node_named(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ChainError(f"no node named {name!r}")

    # ----- partitions --------------------------------------------------------------

    def partition(self, *groups: List[Node]) -> None:
        """Split the network: gossip only flows within each group.

        Nodes not named in any group keep receiving everything (they
        model multi-homed peers).  Call :meth:`heal` to reconnect.
        """
        self._partition_of = {}
        for index, group in enumerate(groups):
            for node in group:
                self._partition_of[id(node)] = index

    def heal(self) -> None:
        """Reconnect everyone and head-sync each node from its best peer."""
        self._partition_of = {}
        self.sync_all()

    def _reachable(self, sender: Optional[Node], receiver: Node) -> bool:
        if not self._partition_of or sender is None:
            return True
        sender_group = self._partition_of.get(id(sender))
        receiver_group = self._partition_of.get(id(receiver))
        if sender_group is None or receiver_group is None:
            return True
        return sender_group == receiver_group

    # ----- peer sync ----------------------------------------------------------------

    def sync_all(self) -> None:
        for node in self.nodes:
            if not node.crashed:
                self.sync_node(node)

    def sync_node(self, node: Node) -> int:
        """Pull the blocks ``node`` is missing from its best peer.

        Implements the head-relative sync protocol: pick the reachable
        peer whose head wins fork choice, find the highest height where
        the two canonical chains agree, and import only the peer's
        blocks above it.  Returns the number of imported blocks.
        """
        if node.crashed:
            return 0
        best: Optional[Node] = None
        for peer in self.nodes:
            if peer is node or peer.crashed or not self._reachable(peer, node):
                continue
            if best is None or _head_wins(peer, best):
                best = peer
        if best is None or not _head_wins(best, node):
            return 0
        self.stats.syncs += 1
        ancestor = _common_ancestor_height(node, best)
        imported = 0
        for block in best.canonical_blocks(ancestor + 1, best.height):
            try:
                if node.import_block(block):
                    imported += 1
            except (InvalidBlockError, ChainError):
                break  # descendants cannot import either; retry next tick
        self.stats.sync_blocks += imported
        return imported

    # ----- fault plan ---------------------------------------------------------------

    def _link_delays(self, kind: str, origin: Optional[Node], node: Node) -> List[int]:
        if self.fault_plan is None:
            return [0]
        origin_name = origin.name if origin is not None else None
        delays = self.fault_plan.deliveries(kind, origin_name, node.name)
        if not delays:
            self.stats.dropped += 1
        if len(delays) > 1:
            self.stats.duplicated += len(delays) - 1
        return delays

    def tick(self, height: int) -> None:
        """Advance the fault schedule to ``height`` (call per mined block).

        Applies crash/restart and partition windows, releases due
        delayed deliveries, and runs recovery sync for nodes that saw
        out-of-order blocks or just restarted.
        """
        if self.fault_plan is not None:
            self._apply_crash_schedule(height)
            self._apply_partition_schedule(height)
        self._flush_delayed(height)
        # Dropped gossip leaves silent gaps: any live node more than one
        # block behind the best head pulls from a peer (push is lossy,
        # pull is reliable).
        best_height = self.height
        for node in self.nodes:
            if not node.crashed and node.height + 1 < best_height:
                self._needs_sync.add(node.name)
        for node in self.nodes:
            if node.name in self._needs_sync:
                self.sync_node(node)
        self._needs_sync.clear()

    def _apply_crash_schedule(self, height: int) -> None:
        assert self.fault_plan is not None
        for node in self.nodes:
            down = self.fault_plan.crashed_at(node.name, height)
            if down and not node.crashed:
                node.crash()
                self._plan_crashed.add(id(node))
                self.stats.crashes += 1
            elif not down and node.crashed and id(node) in self._plan_crashed:
                node.restart()
                self._plan_crashed.discard(id(node))
                self.stats.restarts += 1
                self._needs_sync.add(node.name)

    def _apply_partition_schedule(self, height: int) -> None:
        assert self.fault_plan is not None
        groups = self.fault_plan.partition_groups(height)
        if groups is None:
            if self._partition_of:
                self.heal()
            return
        self.partition(
            *[[self.node_named(name) for name in group] for group in groups]
        )

    def _flush_delayed(self, height: int) -> None:
        due = [d for d in self._delayed if d.release_height <= height]
        self._delayed = [d for d in self._delayed if d.release_height > height]
        for delivery in due:
            if delivery.receiver.crashed:
                self.stats.dropped += 1
                continue
            if not self._reachable(delivery.origin, delivery.receiver):
                self.stats.dropped += 1
                continue
            if delivery.kind == TX:
                self._deliver_transaction(delivery.receiver, delivery.payload)
            else:
                self._deliver_block(delivery.receiver, delivery.payload)

    # ----- gossip -------------------------------------------------------------------

    def broadcast_transaction(
        self, stx: SignedTransaction, origin: Optional[Node] = None
    ) -> None:
        """Gossip a transaction to every reachable node (via the adversary)."""
        deliveries = [stx]
        if self.adversary is not None:
            deliveries = self.adversary.on_transaction(stx)
        for delivered in deliveries:
            self.transaction_log.append(delivered)
            for node in self.nodes:
                if node.crashed or not self._reachable(origin, node):
                    continue
                self._dispatch(TX, delivered, node, origin)

    def broadcast_block(self, block: Block, origin: Node) -> None:
        for node in self.nodes:
            if node is origin or node.crashed:
                continue
            if not self._reachable(origin, node):
                continue
            self._dispatch(BLOCK, block, node, origin)

    def _dispatch(
        self, kind: str, payload: Any, node: Node, origin: Optional[Node]
    ) -> None:
        for delay in self._link_delays(kind, origin, node):
            if delay > 0:
                self.stats.delayed += 1
                self._delayed.append(
                    _Delayed(self.height + delay, kind, payload, node, origin)
                )
            elif kind == TX:
                self._deliver_transaction(node, payload)
            else:
                self._deliver_block(node, payload)

    def _deliver_transaction(self, node: Node, stx: SignedTransaction) -> None:
        try:
            node.submit_transaction(stx)
            self.stats.delivered += 1
        except InvalidTransactionError:
            pass  # nodes drop junk silently

    def _deliver_block(self, node: Node, block: Block) -> None:
        try:
            node.import_block(block)
            self.stats.delivered += 1
        except InvalidBlockError:
            # Unknown parent (delayed/dropped ancestor): schedule a
            # head-relative sync instead of losing the block forever.
            self._needs_sync.add(node.name)

    def pending_transactions(self) -> List[SignedTransaction]:
        """The union view of pending traffic (what an observer sees)."""
        seen: Dict[bytes, SignedTransaction] = {}
        for node in self.nodes:
            if node.crashed:
                continue
            for stx in node.mempool.pending():
                seen.setdefault(stx.tx_hash, stx)
        return list(seen.values())


def _head_wins(contender: Node, incumbent: Node) -> bool:
    """Longest-chain fork choice with the lowest-hash tiebreak."""
    if contender.height != incumbent.height:
        return contender.height > incumbent.height
    return contender.head_block.block_hash < incumbent.head_block.block_hash


def _common_ancestor_height(node: Node, peer: Node) -> int:
    height = min(node.height, peer.height)
    while height > 0 and node.canonical_hash(height) != peer.canonical_hash(height):
        height -= 1
    return height


class Testnet:
    """The paper's deployment shape: miners + full nodes + a faucet.

    (``__test__ = False`` keeps pytest from trying to collect this.)

    Defaults mirror Section VI: two miners and two non-mining full
    nodes (one of which a requester client attaches to, the other the
    workers').  ``mine_block`` advances the chain by one block and one
    block interval of simulated time.
    """

    __test__ = False

    def __init__(
        self,
        miners: int = 2,
        full_nodes: int = 2,
        block_interval: int = 15,
        gas_limit: int = 30_000_000,
        initial_faucet_balance: int = 10**30,
        engine: Optional[ConsensusEngine] = None,
        fault_plan: Optional[FaultPlan] = None,
        execution_lanes: int = 1,
        execution_workers: int = 1,
        mempool_capacity: Optional[int] = None,
        faucet_seed: bytes = b"testnet-faucet",
        extra_allocations: Optional[Dict[bytes, int]] = None,
        genesis_contracts: Optional[Dict[bytes, Tuple[str, Dict[str, Any]]]] = None,
    ) -> None:
        if miners < 1:
            raise ValueError("need at least one miner")
        self.block_interval = block_interval
        self.clock = SimClock()
        self.network = Network(self.clock, fault_plan=fault_plan)
        self.tx_sender = TxSender(self)
        # Sharded deployments give every shard a distinct faucet seed so
        # no honest account holds balance on two shards (the cross-shard
        # replay guard); the default seed keeps single-chain genesis
        # byte-identical to every chain built before sharding existed.
        self.faucet_key = ecdsa.ECDSAKeyPair.from_seed(faucet_seed)

        miner_keys = [
            ecdsa.ECDSAKeyPair.from_seed(f"miner-{i}".encode()) for i in range(miners)
        ]
        self.engine = engine or PoAEngine([k.address() for k in miner_keys])
        allocations = {self.faucet_key.address(): initial_faucet_balance}
        if extra_allocations:
            for address, balance in extra_allocations.items():
                allocations[address] = allocations.get(address, 0) + balance
        genesis = GenesisConfig(
            allocations=allocations,
            gas_limit=gas_limit,
            contracts=dict(genesis_contracts) if genesis_contracts else {},
        )
        self.genesis = genesis
        self.miners: List[Node] = [
            self.network.add_node(
                Node(
                    name=f"miner-{i}",
                    genesis=genesis,
                    engine=self.engine,
                    keypair=key,
                    is_miner=True,
                    execution_lanes=execution_lanes,
                    execution_workers=execution_workers,
                    mempool_capacity=mempool_capacity,
                )
            )
            for i, key in enumerate(miner_keys)
        ]
        self.full_nodes: List[Node] = [
            self.network.add_node(
                Node(
                    name=f"full-{i}",
                    genesis=genesis,
                    engine=self.engine,
                    execution_lanes=execution_lanes,
                    execution_workers=execution_workers,
                    mempool_capacity=mempool_capacity,
                )
            )
            for i in range(full_nodes)
        ]
    # ----- views ----------------------------------------------------------------

    @property
    def any_node(self) -> Node:
        """A live node to read the chain through, freshest head first.

        Clients fail over on both liveness and staleness: among the
        nodes still up, attach to the one whose head wins fork choice
        (a provider that missed gossip would serve stale contract
        state).  Full nodes win ties over miners.
        """
        best: Optional[Node] = None
        for node in [*self.full_nodes, *self.miners]:
            if node.crashed:
                continue
            if best is None or _head_wins(node, best):
                best = node
        if best is None:
            raise ChainError("every node is down")
        return best

    @property
    def height(self) -> int:
        return self.any_node.height

    # ----- actions ----------------------------------------------------------------

    def send_transaction(self, stx: SignedTransaction) -> bytes:
        """Broadcast a signed transaction; returns its hash."""
        self.network.broadcast_transaction(stx)
        return stx.tx_hash

    def mine_block(self) -> Block:
        """Let the scheduled miner seal the next block and gossip it."""
        height = self.network.height + 1
        proposer_address = self.engine.expected_proposer(height)
        miner = self.miners[0]
        if proposer_address is not None:
            for candidate in self.miners:
                if candidate.address == proposer_address:
                    miner = candidate
                    break
            else:
                raise ChainError("no local miner matches the expected proposer")
        if miner.crashed:
            raise ChainError(f"scheduled proposer {miner.name} is down")
        # A proposer that missed gossip must catch up before sealing.
        if miner.height + 1 < height:
            self.network.sync_node(miner)
        if miner.height + 1 != height:
            raise ChainError(f"proposer {miner.name} cannot reach the head")
        timestamp = self.clock.advance(self.block_interval)
        block = miner.create_block(timestamp)
        self.network.broadcast_block(block, origin=miner)
        self.network.tick(block.number)
        return block

    def mine_blocks(self, count: int) -> List[Block]:
        return [self.mine_block() for _ in range(count)]

    def mine_until(self, predicate: Callable[[], bool], max_blocks: int = 64) -> None:
        """Mine until ``predicate()`` holds (or fail loudly)."""
        for _ in range(max_blocks):
            if predicate():
                return
            self.mine_block()
        if not predicate():
            raise ChainError(f"condition not reached within {max_blocks} blocks")

    def _faucet_tx(self, address: bytes, amount: int) -> Transaction:
        return Transaction(
            nonce=self.tx_sender.nonces.reserve(self.faucet_key.address()),
            gas_price=1,
            gas_limit=50_000,
            to=address,
            value=amount,
            chain_id=self.genesis.chain_id,
        )

    def fund(
        self,
        address: bytes,
        amount: int,
        mine: bool = True,
        near: Optional[bytes] = None,
    ) -> None:
        """Faucet-transfer ``amount`` to ``address`` (mining one block).

        ``near`` is a co-location hint consumed by the sharded facade
        (fund the account on the shard owning ``near``); a single-chain
        testnet has one shard, so it is accepted and ignored here.
        """
        del near
        tx = self._faucet_tx(address, amount)
        if mine:
            # Resilient path: confirmed even if the first broadcast drops.
            self.tx_sender.send(tx, self.faucet_key)
        else:
            self.send_transaction(tx.sign(self.faucet_key))

    def fund_async(self, address: bytes, amount: int, near: Optional[bytes] = None):
        """Broadcast a faucet transfer without mining (batched funding).

        Returns the :class:`~repro.chain.txsender.PendingTx`; concurrent
        callers get consecutive faucet nonces from the shared
        :class:`~repro.chain.txsender.NonceManager`, so a whole funding
        wave coexists in the mempool and lands in one block.  ``near``
        is the sharded facade's co-location hint, ignored here.
        """
        del near
        return self.tx_sender.broadcast(
            self._faucet_tx(address, amount), self.faucet_key
        )

    def wait_for_receipt(self, tx_hash: bytes, max_blocks: int = 16):
        """Mine until the transaction is included; returns its receipt."""
        self.mine_until(
            lambda: self.any_node.get_receipt(tx_hash) is not None, max_blocks
        )
        return self.any_node.get_receipt(tx_hash)

    def assert_consensus(self) -> None:
        """All nodes agree on head hash and state root (test invariant)."""
        down = [node.name for node in self.network.nodes if node.crashed]
        if down:
            raise ChainError(f"cannot assert consensus while nodes are down: {down}")
        heads = {node.head_block.block_hash for node in self.network.nodes}
        if len(heads) != 1:
            raise ChainError("nodes diverged on the head block")
        roots = {node.head_state.state_root() for node in self.network.nodes}
        if len(roots) != 1:
            raise ChainError("nodes diverged on state")
