"""Smart-contract programming model.

Contracts are Python classes registered with the VM by name.  Every
node re-instantiates the class over the account's persistent storage
and executes the same method with the same inputs — the determinism the
ideal-ledger model requires.  The base class exposes the familiar
Solidity-ish environment: ``self.msg_sender``, ``self.msg_value``,
``self.block_number``, ``require``, ``emit``, value transfer, and the
``snark_verify`` precompile (the embedded libsnark verifier of the
paper's modified EVM).

Method visibility:

- ``@external`` — callable via transactions (state-mutating);
- ``@view`` — read-only; callable off-chain for free via ``Node.call``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Type

from repro.errors import ChainError, ContractError
from repro.chain.gas import GasMeter
from repro.chain.receipts import Log


def external(func: Callable) -> Callable:
    """Mark a contract method callable from transactions."""
    func.__contract_visibility__ = "external"
    return func


def view(func: Callable) -> Callable:
    """Mark a contract method read-only (free off-chain calls)."""
    func.__contract_visibility__ = "view"
    return func


@dataclass
class BlockContext:
    """Block-level environment visible to contracts."""

    number: int
    timestamp: int
    coinbase: bytes


class MeteredStorage:
    """Dict-backed storage charging the gas schedule on access."""

    def __init__(self, backing: Dict[str, Any], meter: GasMeter) -> None:
        self._backing = backing
        self._meter = meter

    def __getitem__(self, key: str) -> Any:
        self._meter.consume(self._meter.schedule.storage_read, "storage read")
        return self._backing[key]

    def get(self, key: str, default: Any = None) -> Any:
        self._meter.consume(self._meter.schedule.storage_read, "storage read")
        return self._backing.get(key, default)

    def __setitem__(self, key: str, value: Any) -> None:
        schedule = self._meter.schedule
        cost = schedule.storage_update if key in self._backing else schedule.storage_set
        self._meter.consume(cost, "storage write")
        self._backing[key] = value

    def __contains__(self, key: str) -> bool:
        self._meter.consume(self._meter.schedule.storage_read, "storage probe")
        return key in self._backing

    def __delitem__(self, key: str) -> None:
        self._meter.consume(self._meter.schedule.storage_update, "storage delete")
        del self._backing[key]

    def keys(self):
        self._meter.consume(self._meter.schedule.storage_read, "storage scan")
        return list(self._backing.keys())


class ExecutionContext:
    """Everything one call frame needs (threaded through nested calls)."""

    def __init__(
        self,
        state,  # WorldState; untyped to avoid an import cycle
        meter: GasMeter,
        block: BlockContext,
        origin: bytes,
        vm,  # VM; provides nested call + precompile dispatch
        read_only: bool = False,
    ) -> None:
        self.state = state
        self.meter = meter
        self.block = block
        self.origin = origin
        self.vm = vm
        self.read_only = read_only
        self.logs: List[Log] = []


class Contract:
    """Base class for all on-chain programs."""

    #: Set by ContractRegistry.register; defaults to the class name.
    contract_name: str = ""

    def __init__(
        self,
        address: bytes,
        storage: MeteredStorage,
        ctx: ExecutionContext,
        msg_sender: bytes,
        msg_value: int,
    ) -> None:
        self.address = address
        self.storage = storage
        self._ctx = ctx
        self.msg_sender = msg_sender
        self.msg_value = msg_value

    # ----- environment ---------------------------------------------------------

    @property
    def block_number(self) -> int:
        return self._ctx.block.number

    @property
    def block_timestamp(self) -> int:
        return self._ctx.block.timestamp

    @property
    def tx_origin(self) -> bytes:
        return self._ctx.origin

    def balance_of(self, address: bytes) -> int:
        self._ctx.meter.consume(self._ctx.meter.schedule.storage_read, "balance read")
        return self._ctx.state.balance_of(address)

    @property
    def balance(self) -> int:
        return self.balance_of(self.address)

    # ----- effects ----------------------------------------------------------------

    @staticmethod
    def require(condition: bool, message: str = "requirement failed") -> None:
        """Revert the call frame unless ``condition`` holds."""
        if not condition:
            raise ContractError(message)

    def transfer(self, destination: bytes, amount: int) -> bool:
        """Move value from this contract; mirrors Algorithm 1's transfer().

        Returns False (without reverting) when the balance is short,
        matching the paper's pseudo-code.
        """
        self._assert_mutable()
        self._ctx.meter.consume(self._ctx.meter.schedule.transfer_stipend, "transfer")
        if self._ctx.state.balance_of(self.address) < amount or amount < 0:
            return False
        self._ctx.state.transfer(self.address, destination, amount)
        return True

    def emit(self, event: str, **fields: Any) -> None:
        """Append an event log."""
        log = Log(address=self.address, event=event, fields=fields)
        schedule = self._ctx.meter.schedule
        self._ctx.meter.consume(
            schedule.log_base + schedule.log_byte * log.approximate_size(), "log"
        )
        self._ctx.logs.append(log)

    def call_contract(
        self, address: bytes, method: str, args: List[Any], value: int = 0
    ) -> Any:
        """Synchronous nested call into another contract."""
        self._assert_mutable() if value else None
        self._ctx.meter.consume(self._ctx.meter.schedule.call_base, "nested call")
        return self._ctx.vm.nested_call(
            self._ctx, caller=self.address, address=address, method=method,
            args=args, value=value,
        )

    def static_read(self, address: bytes, method: str, args: List[Any]) -> Any:
        """Read-only nested call (view methods of other contracts)."""
        self._ctx.meter.consume(self._ctx.meter.schedule.call_base, "static call")
        return self._ctx.vm.nested_call(
            self._ctx, caller=self.address, address=address, method=method,
            args=args, value=0, read_only=True,
        )

    def snark_verify(self, verifying_key: Any, public_inputs: List[int], proof: Any) -> bool:
        """The embedded zk-SNARK verification precompile."""
        from repro.chain.precompiles import snark_verify_precompile

        return snark_verify_precompile(
            self._ctx.meter, verifying_key, public_inputs, proof
        )

    def snark_batch_verify(
        self,
        verifying_key: Any,
        statements: List[List[int]],
        proofs: List[Any],
    ) -> bool:
        """The batched zk-SNARK verification precompile (n proofs, one check)."""
        from repro.chain.precompiles import snark_batch_verify_precompile

        return snark_batch_verify_precompile(
            self._ctx.meter, verifying_key, statements, proofs
        )

    def _assert_mutable(self) -> None:
        if self._ctx.read_only:
            raise ContractError("state mutation inside a read-only call")

    # ----- lifecycle hook --------------------------------------------------------

    def init(self, *args: Any) -> None:
        """Constructor; override in subclasses."""


class ContractRegistry:
    """Name → contract class mapping shared by all nodes.

    Plays the role of "known bytecode": creation transactions name the
    class to instantiate, and all nodes resolve it identically.
    """

    _classes: Dict[str, Type[Contract]] = {}

    @classmethod
    def register(cls, contract_cls: Type[Contract]) -> Type[Contract]:
        name = contract_cls.contract_name or contract_cls.__name__
        contract_cls.contract_name = name
        existing = cls._classes.get(name)
        if existing is not None and existing is not contract_cls:
            raise ChainError(f"contract name {name!r} already registered")
        cls._classes[name] = contract_cls
        return contract_cls

    @classmethod
    def resolve(cls, name: str) -> Type[Contract]:
        try:
            return cls._classes[name]
        except KeyError:
            raise ChainError(f"unknown contract class {name!r}") from None

    @classmethod
    def known(cls) -> List[str]:
        return sorted(cls._classes)
