"""Binary Merkle commitments over a block's ordered contents.

Replaces a flat hash so light clients can verify transaction (and
receipt) inclusion against just a header (footnote 12: "requesters and
workers can even run on top of so-called light-weight nodes, which
eventually allows them receive and send messages only related to
crowdsourcing tasks").

The generic helpers (:func:`merkle_root`, :func:`merkle_branch`,
:func:`branch_root`) parameterize the leaf domain-separation prefix so
the transaction trie and the receipts trie (``chain/receipts.py``)
share one tree shape without cross-proof confusion: a tx-trie branch
can never validate against a receipts root because the leaf prefixes
differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import keccak256

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"
_EMPTY_ROOT = keccak256(b"empty-tx-trie")


def _leaf(payload: bytes, prefix: bytes = _LEAF_PREFIX) -> bytes:
    return keccak256(prefix, payload)


def _node(left: bytes, right: bytes) -> bytes:
    return keccak256(_NODE_PREFIX, left, right)


def merkle_root(
    leaves: Sequence[bytes],
    leaf_prefix: bytes = _LEAF_PREFIX,
    empty_root: bytes = _EMPTY_ROOT,
) -> bytes:
    """The Merkle root over ordered leaf payloads.

    Odd levels duplicate the last node (Bitcoin-style padding); an
    empty sequence commits to the domain's fixed sentinel root.
    """
    if not leaves:
        return empty_root
    level = [_leaf(payload, leaf_prefix) for payload in leaves]
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [_node(level[i], level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


def merkle_branch(
    leaves: Sequence[bytes], index: int, leaf_prefix: bytes = _LEAF_PREFIX
) -> Tuple[bytes, ...]:
    """Sibling path proving ``leaves[index]`` under :func:`merkle_root`."""
    if not 0 <= index < len(leaves):
        raise IndexError("leaf index out of range")
    level = [_leaf(payload, leaf_prefix) for payload in leaves]
    siblings: List[bytes] = []
    position = index
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        siblings.append(level[position ^ 1])
        level = [_node(level[i], level[i + 1]) for i in range(0, len(level), 2)]
        position >>= 1
    return tuple(siblings)


def branch_root(
    leaf_payload: bytes,
    index: int,
    siblings: Sequence[bytes],
    leaf_prefix: bytes = _LEAF_PREFIX,
) -> bytes:
    """Fold a sibling path back up to the root it claims."""
    node = _leaf(leaf_payload, leaf_prefix)
    position = index
    for sibling in siblings:
        if position & 1:
            node = _node(sibling, node)
        else:
            node = _node(node, sibling)
        position >>= 1
    return node


def transactions_merkle_root(tx_hashes: Sequence[bytes]) -> bytes:
    """The Merkle root of a block's ordered transaction hashes."""
    return merkle_root(tx_hashes)


@dataclass(frozen=True)
class InclusionProof:
    """A Merkle branch proving one transaction sits in a block."""

    tx_hash: bytes
    index: int
    siblings: Tuple[bytes, ...]

    def compute_root(self) -> bytes:
        return branch_root(self.tx_hash, self.index, self.siblings)


def prove_inclusion(tx_hashes: Sequence[bytes], index: int) -> InclusionProof:
    """Build the branch for ``tx_hashes[index]``."""
    if not 0 <= index < len(tx_hashes):
        raise IndexError("transaction index out of range")
    return InclusionProof(
        tx_hash=tx_hashes[index],
        index=index,
        siblings=merkle_branch(tx_hashes, index),
    )


def verify_inclusion(root: bytes, proof: InclusionProof) -> bool:
    """Check a branch against a header's transaction root."""
    return proof.compute_root() == root
