"""Binary Merkle commitment over a block's transactions.

Replaces a flat hash so light clients can verify transaction inclusion
against just a header (footnote 12: "requesters and workers can even
run on top of so-called light-weight nodes, which eventually allows
them receive and send messages only related to crowdsourcing tasks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import keccak256

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"
_EMPTY_ROOT = keccak256(b"empty-tx-trie")


def _leaf(tx_hash: bytes) -> bytes:
    return keccak256(_LEAF_PREFIX, tx_hash)


def _node(left: bytes, right: bytes) -> bytes:
    return keccak256(_NODE_PREFIX, left, right)


def transactions_merkle_root(tx_hashes: Sequence[bytes]) -> bytes:
    """The Merkle root of a block's ordered transaction hashes.

    Odd levels duplicate the last node (Bitcoin-style padding); the
    empty block commits to a fixed sentinel root.
    """
    if not tx_hashes:
        return _EMPTY_ROOT
    level = [_leaf(h) for h in tx_hashes]
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [_node(level[i], level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


@dataclass(frozen=True)
class InclusionProof:
    """A Merkle branch proving one transaction sits in a block."""

    tx_hash: bytes
    index: int
    siblings: Tuple[bytes, ...]

    def compute_root(self) -> bytes:
        node = _leaf(self.tx_hash)
        position = self.index
        for sibling in self.siblings:
            if position & 1:
                node = _node(sibling, node)
            else:
                node = _node(node, sibling)
            position >>= 1
        return node


def prove_inclusion(tx_hashes: Sequence[bytes], index: int) -> InclusionProof:
    """Build the branch for ``tx_hashes[index]``."""
    if not 0 <= index < len(tx_hashes):
        raise IndexError("transaction index out of range")
    level = [_leaf(h) for h in tx_hashes]
    siblings: List[bytes] = []
    position = index
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        siblings.append(level[position ^ 1])
        level = [_node(level[i], level[i + 1]) for i in range(0, len(level), 2)]
        position >>= 1
    return InclusionProof(
        tx_hash=tx_hashes[index], index=index, siblings=tuple(siblings)
    )


def verify_inclusion(root: bytes, proof: InclusionProof) -> bool:
    """Check a branch against a header's transaction root."""
    return proof.compute_root() == root
