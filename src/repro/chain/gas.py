"""Gas accounting.

Costs are an abstracted EVM schedule: exact magnitudes do not matter
for the reproduction, but the *relative* costs do — storage writes are
expensive, the SNARK-verification precompile is priced like Ethereum's
Byzantium pairing precompile (base + per-pairing / per-input terms),
and every transaction pays an intrinsic cost plus calldata bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfGasError
from repro import observability as obs

#: Gas ``reason`` strings → opcode-class metric suffix.  Keys are the
#: first word of every reason the VM and contract runtime emit; the
#: fallback class is ``other`` so new call sites never crash metering.
_GAS_CLASSES = {
    "intrinsic": "intrinsic",
    "storage": "storage",
    "balance": "storage",
    "method": "call",
    "nested": "call",
    "static": "call",
    "transfer": "transfer",
    "event": "log",
    "log": "log",
    "snark_verify": "snark",
    "snark_batch_verify": "snark",
}


def gas_class(reason: str) -> str:
    """Map a consume() reason to its opcode class (for ``vm.gas.*``)."""
    first = reason.split(" ", 1)[0] if reason else "other"
    return _GAS_CLASSES.get(first, "other")


@dataclass(frozen=True)
class GasSchedule:
    """Abstract gas prices (in gas units)."""

    tx_base: int = 21_000
    tx_create_extra: int = 32_000
    calldata_byte: int = 16
    storage_set: int = 20_000
    storage_update: int = 5_000
    storage_read: int = 200
    log_base: int = 375
    log_byte: int = 8
    transfer_stipend: int = 2_300
    call_base: int = 700
    compute_step: int = 10
    # Byzantium-style pairing precompile pricing.
    snark_verify_base: int = 100_000
    snark_verify_per_input: int = 40_000
    # Batched verification: the base covers the one shared final
    # exponentiation plus the two fixed gamma/delta pairings; each
    # extra proof only adds a Miller loop, so the per-proof term is
    # well below a standalone snark_verify_base.
    snark_batch_verify_base: int = 120_000
    snark_batch_verify_per_proof: int = 35_000
    snark_batch_verify_per_input: int = 8_000

    def intrinsic_gas(self, data: bytes, is_create: bool) -> int:
        cost = self.tx_base + self.calldata_byte * len(data)
        if is_create:
            cost += self.tx_create_extra
        return cost


DEFAULT_SCHEDULE = GasSchedule()


class GasMeter:
    """Tracks gas consumption during one transaction execution."""

    def __init__(self, limit: int, schedule: GasSchedule = DEFAULT_SCHEDULE) -> None:
        self.limit = limit
        self.schedule = schedule
        self.used = 0

    @property
    def remaining(self) -> int:
        return self.limit - self.used

    def consume(self, amount: int, reason: str = "") -> None:
        if amount < 0:
            raise ValueError("gas amounts are non-negative")
        if obs.TRACER.enabled:
            obs.count(f"vm.gas.{gas_class(reason)}", amount)
        if self.used + amount > self.limit:
            self.used = self.limit
            obs.count("vm.out_of_gas")
            raise OutOfGasError(
                f"out of gas{f' while {reason}' if reason else ''}: "
                f"limit {self.limit}"
            )
        self.used += amount
