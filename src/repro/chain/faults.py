"""Deterministic fault injection for the simulated network.

The paper's §III adversary may drop, delay, reorder and inject traffic;
operationally a deployment also faces node crashes and partitions.  A
:class:`FaultPlan` packages all of these behind one seeded RNG so a
chaos run is perfectly reproducible: the same seed yields the same
drops, the same delay queues, the same crash and partition windows.

The :class:`~repro.chain.network.Network` consults the plan once per
(message, link) delivery and once per block tick:

- :meth:`FaultPlan.deliveries` — for one message on one link, the list
  of delivery delays in blocks (``[]`` = dropped, ``[0]`` = delivered
  now, ``[0, 2]`` = duplicated with one copy two blocks late);
- :meth:`FaultPlan.crashed_at` — whether a node is scheduled down at a
  given height (the network crashes/restarts nodes on ticks);
- :meth:`FaultPlan.partition_groups` — the partition topology active at
  a given height, or ``None`` when the network is whole.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Message kinds a plan distinguishes (different loss profiles).
TX = "tx"
BLOCK = "block"


@dataclass(frozen=True)
class LinkFaults:
    """Per-delivery fault rates for one message kind.

    ``drop``/``delay``/``duplicate`` are independent probabilities in
    ``[0, 1]``; a delayed delivery is postponed by a uniform
    ``1..max_delay_blocks`` block ticks.
    """

    drop: float = 0.0
    delay: float = 0.0
    max_delay_blocks: int = 2
    duplicate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be a probability, got {rate}")
        if self.max_delay_blocks < 1:
            raise ValueError("max_delay_blocks must be >= 1")


@dataclass(frozen=True)
class CrashWindow:
    """Node ``node`` is down for heights in ``[start, end)``.

    The network crashes the node on the tick reaching ``start`` and
    restarts it (journal replay + peer sync) on the tick reaching
    ``end``.
    """

    node: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 < self.start < self.end:
            raise ValueError("need 0 < start < end")


@dataclass(frozen=True)
class PartitionWindow:
    """The network splits into ``groups`` for heights in ``[start, end)``.

    ``groups`` name nodes by their ``Node.name``; unnamed nodes stay
    multi-homed (they hear everything), matching
    :meth:`~repro.chain.network.Network.partition` semantics.
    """

    start: int
    end: int
    groups: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not 0 < self.start < self.end:
            raise ValueError("need 0 < start < end")
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of network faults.

    ``immune`` names nodes *receiving* deliveries that are never
    dropped, delayed or duplicated (useful to keep PoA proposers live
    while still stressing the rest of the fabric).
    """

    seed: int = 0
    tx_faults: LinkFaults = field(default_factory=LinkFaults)
    block_faults: LinkFaults = field(default_factory=LinkFaults)
    crashes: Tuple[CrashWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    immune: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.crashes = tuple(self.crashes)
        self.partitions = tuple(self.partitions)
        self.immune = tuple(self.immune)
        self._rng = random.Random(self.seed)
        self._draws = 0

    # ----- link faults -------------------------------------------------------------

    def deliveries(self, kind: str, sender: Optional[str], receiver: str) -> List[int]:
        """Delay list (in block ticks) for one message on one link."""
        faults = self.tx_faults if kind == TX else self.block_faults
        if receiver in self.immune:
            return [0]
        self._draws += 1
        if faults.drop and self._rng.random() < faults.drop:
            return []
        delays = [0]
        if faults.delay and self._rng.random() < faults.delay:
            delays = [self._rng.randint(1, faults.max_delay_blocks)]
        if faults.duplicate and self._rng.random() < faults.duplicate:
            delays.append(self._rng.randint(1, faults.max_delay_blocks))
        return delays

    # ----- scheduled windows ------------------------------------------------------

    def crashed_at(self, node: str, height: int) -> bool:
        return any(
            w.node == node and w.start <= height < w.end for w in self.crashes
        )

    def partition_groups(
        self, height: int
    ) -> Optional[Tuple[Tuple[str, ...], ...]]:
        for window in self.partitions:
            if window.start <= height < window.end:
                return window.groups
        return None

    # ----- introspection ----------------------------------------------------------

    @property
    def horizon(self) -> int:
        """The height after which no scheduled window is active."""
        ends = [w.end for w in self.crashes] + [w.end for w in self.partitions]
        return max(ends, default=0)

    @property
    def draws(self) -> int:
        """How many fault decisions were sampled (for determinism tests)."""
        return self._draws


def chaos_plan(seed: int, horizon: int = 40) -> FaultPlan:
    """A canonical chaos schedule used by tests and benchmarks.

    Moderate tx loss and delay, light block-gossip loss to the full
    nodes, one full-node crash/restart window and one partition window —
    the acceptance scenario of the fault-model design note.  Miners are
    immune so round-robin PoA keeps producing blocks; every other fault
    dimension stays active.
    """

    rng = random.Random(seed ^ 0x5EED)
    crash_start = rng.randint(6, 10)
    partition_start = crash_start + rng.randint(8, 10)
    return FaultPlan(
        seed=seed,
        tx_faults=LinkFaults(drop=0.12, delay=0.20, max_delay_blocks=3,
                             duplicate=0.10),
        block_faults=LinkFaults(drop=0.08, delay=0.15, max_delay_blocks=2),
        crashes=(CrashWindow("full-1", crash_start, crash_start + 5),),
        partitions=(
            PartitionWindow(
                partition_start,
                min(partition_start + 5, horizon),
                (("miner-0", "miner-1", "full-0"), ("full-1",)),
            ),
        ),
        immune=("miner-0", "miner-1"),
    )
