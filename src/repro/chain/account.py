"""Account model: balances, nonces and contract storage."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class Account:
    """One ledger entry.

    ``contract_name`` identifies the registered contract class for
    contract accounts; ``storage`` holds the contract's persistent
    state (plain Python values, deep-copyable for snapshots).
    """

    balance: int = 0
    nonce: int = 0
    contract_name: Optional[str] = None
    storage: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_contract(self) -> bool:
        return self.contract_name is not None

    def clone(self) -> "Account":
        # Most accounts are storage-less EOAs; skip deepcopy for them
        # (snapshots clone the whole state once per executed tx).
        return Account(
            balance=self.balance,
            nonce=self.nonce,
            contract_name=self.contract_name,
            storage=copy.deepcopy(self.storage) if self.storage else {},
        )
