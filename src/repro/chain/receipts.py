"""Execution receipts, event logs, and the per-block receipts trie.

Receipts get their own Merkle commitment in the header
(``receipts_root``) so a light client holding only validated headers
can check that a particular execution *outcome* — a reward payout
landing, a submission reverting — happened, without replaying state.
The trie reuses the binary tree from :mod:`repro.chain.txtrie` under a
distinct leaf domain prefix, so receipt branches and transaction
branches can never be confused for one another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.crypto.hashing import keccak256
from repro.serialization import encode
from repro.chain.txtrie import branch_root, merkle_branch, merkle_root

STATUS_SUCCESS = 1
STATUS_REVERTED = 0

#: Leaf domain separator for the receipts trie (tx trie uses b"\x00").
RECEIPT_LEAF_PREFIX = b"\x02"
EMPTY_RECEIPTS_ROOT = keccak256(b"empty-receipt-trie")


@dataclass(frozen=True)
class Log:
    """One contract-emitted event."""

    address: bytes
    event: str
    fields: Dict[str, Any]

    def approximate_size(self) -> int:
        return len(self.event) + len(repr(self.fields))


@dataclass
class Receipt:
    """Outcome of executing one transaction."""

    tx_hash: bytes
    status: int
    gas_used: int
    logs: List[Log] = field(default_factory=list)
    contract_address: Optional[bytes] = None
    return_value: Any = None
    error: Optional[str] = None
    block_number: Optional[int] = None

    @property
    def success(self) -> bool:
        return self.status == STATUS_SUCCESS


def encode_receipt(receipt: Receipt) -> bytes:
    """Canonical byte encoding — the receipts-trie leaf payload.

    Return values and log fields may be arbitrary picklable objects, so
    (as with storage in ``WorldState.state_root``) they enter the
    commitment through a stable ``repr`` rendering.
    """
    log_items = [
        encode(
            [
                log.address,
                log.event,
                repr(sorted(log.fields.items(), key=lambda kv: kv[0])),
            ]
        )
        for log in receipt.logs
    ]
    return encode(
        [
            receipt.tx_hash,
            receipt.status,
            receipt.gas_used,
            receipt.contract_address,
            receipt.error,
            repr(receipt.return_value),
            receipt.block_number,
            log_items,
        ]
    )


def receipts_root(receipts: Sequence[Receipt]) -> bytes:
    """The Merkle root of a block's ordered receipt encodings."""
    return merkle_root(
        [encode_receipt(receipt) for receipt in receipts],
        leaf_prefix=RECEIPT_LEAF_PREFIX,
        empty_root=EMPTY_RECEIPTS_ROOT,
    )


@dataclass(frozen=True)
class ReceiptProof:
    """A Merkle branch proving one receipt sits in a block.

    The verifier re-derives the leaf from the *claimed* receipt, so a
    forged receipt body changes the leaf and breaks the branch.
    """

    receipt: Receipt
    index: int
    siblings: Tuple[bytes, ...]

    def compute_root(self) -> bytes:
        return branch_root(
            encode_receipt(self.receipt),
            self.index,
            self.siblings,
            leaf_prefix=RECEIPT_LEAF_PREFIX,
        )


def prove_receipt_inclusion(receipts: Sequence[Receipt], index: int) -> ReceiptProof:
    """Build the branch for ``receipts[index]``."""
    if not 0 <= index < len(receipts):
        raise IndexError("receipt index out of range")
    encodings = [encode_receipt(receipt) for receipt in receipts]
    return ReceiptProof(
        receipt=receipts[index],
        index=index,
        siblings=merkle_branch(encodings, index, leaf_prefix=RECEIPT_LEAF_PREFIX),
    )


def verify_receipt_proof(root: bytes, proof: ReceiptProof) -> bool:
    """Check a receipt branch against a header's receipts root."""
    return proof.compute_root() == root
