"""Execution receipts and event logs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

STATUS_SUCCESS = 1
STATUS_REVERTED = 0


@dataclass(frozen=True)
class Log:
    """One contract-emitted event."""

    address: bytes
    event: str
    fields: Dict[str, Any]

    def approximate_size(self) -> int:
        return len(self.event) + len(repr(self.fields))


@dataclass
class Receipt:
    """Outcome of executing one transaction."""

    tx_hash: bytes
    status: int
    gas_used: int
    logs: List[Log] = field(default_factory=list)
    contract_address: Optional[bytes] = None
    return_value: Any = None
    error: Optional[str] = None
    block_number: Optional[int] = None

    @property
    def success(self) -> bool:
        return self.status == STATUS_SUCCESS
