"""Append-only block journal backing node crash recovery.

A :class:`~repro.chain.node.Node` appends every block it accepts (in
import order, so parents always precede children) and rebuilds its
entire in-memory state by re-executing the journal after a crash — the
same write-ahead-log discipline real chain clients use, minus the disk.

Entries are hash-chained so a truncated-or-tampered journal is detected
at replay time rather than silently producing a diverged node.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.crypto.hashing import sha256
from repro.errors import ChainError
from repro.chain.block import Block

_EMPTY_CHAIN = b"\x00" * 32


class JournalCorruptionError(ChainError):
    """The journal's hash chain does not verify at replay."""


class ChainJournal:
    """An append-only, hash-chained log of accepted blocks."""

    def __init__(self) -> None:
        self._entries: List[Tuple[bytes, Block]] = []  # (chain_digest, block)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tip_digest(self) -> bytes:
        return self._entries[-1][0] if self._entries else _EMPTY_CHAIN

    def append(self, block: Block) -> None:
        digest = sha256(self.tip_digest, block.block_hash)
        self._entries.append((digest, block))

    def replay(self) -> Iterator[Block]:
        """Yield every journaled block, verifying the hash chain."""
        previous = _EMPTY_CHAIN
        for digest, block in self._entries:
            if sha256(previous, block.block_hash) != digest:
                raise JournalCorruptionError("journal hash chain broken")
            previous = digest
            yield block

    def truncate(self, keep: int) -> None:
        """Drop entries beyond the first ``keep`` (models a torn write)."""
        del self._entries[keep:]
