"""The transaction pool.

Pending transactions are public knowledge before inclusion — this is
the adversarial surface the paper emphasises: "a network adversary can
reorder transactions that are broadcasted to the network but not yet
written into a block", and a free-rider can read a victim's submitted
answer out of the pool and resubmit it as his own.  The pool therefore
deliberately exposes :meth:`pending` and accepts an ordering override.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro import observability as obs
from repro.errors import InvalidTransactionError
from repro.chain.transaction import SignedTransaction

OrderingPolicy = Callable[[List[SignedTransaction]], List[SignedTransaction]]


def default_ordering(pending: List[SignedTransaction]) -> List[SignedTransaction]:
    """Miner-default: gas price descending, arrival order as tiebreak."""
    return sorted(
        pending,
        key=lambda stx: (-stx.transaction.gas_price,),
    )


class Mempool:
    """A per-node pending-transaction pool.

    ``capacity`` bounds the pool (None = unbounded, the historical
    behaviour).  A full pool admits a new transaction only by evicting
    a cheaper one — fee-aware back-pressure at the admission boundary,
    so a saturated node sheds the lowest-value traffic deterministically
    instead of growing without bound or dropping arbitrarily.
    """

    def __init__(
        self,
        ordering: Optional[OrderingPolicy] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("mempool capacity must be >= 1")
        self._pool: Dict[bytes, SignedTransaction] = {}
        self._arrival: List[bytes] = []
        # (sender, nonce) -> tx_hash: the replace-by-fee slot index.
        self._by_slot: Dict[Tuple[bytes, int], bytes] = {}
        self.ordering: OrderingPolicy = ordering or default_ordering
        self.capacity = capacity
        #: Admission-control counters (read by the backpressure tests).
        self.admission_rejections = 0
        self.fee_evictions = 0

    def __len__(self) -> int:
        return len(self._pool)

    def add(self, stx: SignedTransaction) -> bool:
        """Admit a transaction; returns False on duplicates.

        Same-sender same-nonce is one *slot*: a second transaction for
        an occupied slot replaces the incumbent only with a strictly
        higher gas price (the gas-bumped retry), otherwise it is
        rejected.  Without this eviction every retry wave leaves the
        superseded copy behind, and block building keeps re-selecting
        doomed duplicates — the livelock the concurrent-sender tests
        exercise.
        """
        if not stx.verify_signature():
            raise InvalidTransactionError("refusing unsigned transaction")
        if stx.tx_hash in self._pool:
            if obs.TRACER.enabled:
                obs.count("mempool.duplicates")
            return False
        slot = (stx.sender, stx.transaction.nonce)
        incumbent_hash = self._by_slot.get(slot)
        if incumbent_hash is not None and incumbent_hash in self._pool:
            incumbent = self._pool[incumbent_hash]
            if stx.transaction.gas_price <= incumbent.transaction.gas_price:
                if obs.TRACER.enabled:
                    obs.count("mempool.rbf_rejected")
                return False
            self._pool.pop(incumbent_hash, None)
            if obs.TRACER.enabled:
                obs.count("mempool.rbf_evictions")
        if not self._admit_under_capacity(stx):
            return False
        self._pool[stx.tx_hash] = stx
        self._by_slot[slot] = stx.tx_hash
        self._arrival.append(stx.tx_hash)
        self._maybe_compact()
        if obs.TRACER.enabled:
            obs.count("mempool.admitted")
            obs.observe(
                "mempool.depth", len(self._pool),
                buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000),
            )
        return True

    def _admit_under_capacity(self, stx: SignedTransaction) -> bool:
        """Make room for ``stx`` in a bounded pool, or reject it.

        A full pool evicts its lowest-priced transaction (latest
        arrival as tiebreak, so the older copy of equal-priced traffic
        survives) — but only when the newcomer pays strictly more than
        the victim.  Otherwise the newcomer is the marginal traffic and
        is rejected at the door; the sender sees the False and backs
        off, which is the backpressure signal the engine's admission
        gate listens for.
        """
        if self.capacity is None or len(self._pool) < self.capacity:
            return True
        victim_hash = min(
            self._pool,
            key=lambda h: (
                self._pool[h].transaction.gas_price,
                -self._arrival.index(h) if h in self._arrival else 0,
            ),
        )
        victim = self._pool[victim_hash]
        if stx.transaction.gas_price <= victim.transaction.gas_price:
            self.admission_rejections += 1
            if obs.TRACER.enabled:
                obs.count("mempool.admission_rejected")
            return False
        self._forget(victim_hash)
        self.fee_evictions += 1
        if obs.TRACER.enabled:
            obs.count("mempool.fee_evictions")
        return True

    def remove(self, tx_hash: bytes) -> None:
        self._forget(tx_hash)
        self._maybe_compact()

    def _forget(self, tx_hash: bytes) -> None:
        stx = self._pool.pop(tx_hash, None)
        if stx is not None:
            slot = (stx.sender, stx.transaction.nonce)
            if self._by_slot.get(slot) == tx_hash:
                self._by_slot.pop(slot, None)

    def _maybe_compact(self) -> None:
        """Prune removed hashes so the arrival list stays O(pool size)."""
        if len(self._arrival) > 32 and len(self._arrival) > 2 * len(self._pool):
            self._arrival = [h for h in self._arrival if h in self._pool]

    @property
    def arrival_backlog(self) -> int:
        """Length of the arrival list (bounded-growth invariant hook)."""
        return len(self._arrival)

    def prune_stale(self, state) -> int:
        """Drop transactions whose nonce the given state has passed.

        Retried/gas-bumped duplicates of an included transaction can
        never become valid again; pruning them keeps the pool (and the
        arrival list) from growing without bound under retries.
        """
        stale = [
            tx_hash
            for tx_hash, stx in self._pool.items()
            if stx.transaction.nonce < state.nonce_of(stx.sender)
        ]
        for tx_hash in stale:
            self._forget(tx_hash)
        self._maybe_compact()
        if stale and obs.TRACER.enabled:
            obs.count("mempool.evictions", len(stale))
        return len(stale)

    def contains(self, tx_hash: bytes) -> bool:
        return tx_hash in self._pool

    def pending(self) -> List[SignedTransaction]:
        """Every pending transaction, in arrival order.

        Public on purpose: anyone watching the P2P network sees these.
        """
        return [self._pool[h] for h in self._arrival if h in self._pool]

    def select_for_block(
        self, gas_limit: int, state=None
    ) -> List[SignedTransaction]:
        """Pick transactions for a new block under the gas limit.

        Applies the ordering policy, then keeps per-sender nonce order
        (a later-nonce tx never precedes an earlier-nonce one from the
        same sender).  Same-nonce duplicates collapse to the copy the
        ordering policy prefers — selecting both would burn block
        budget on a transaction that must fail nonce validation.

        When the miner passes its head ``state``, each sender's queue
        is additionally anchored at the state nonce and cut at the
        first gap: a nonce-gapped transaction cannot execute this block
        and would otherwise be re-selected (and re-skipped) forever.
        """
        ordered = self.ordering(self.pending())
        # Stable per-sender nonce repair.
        by_sender: Dict[bytes, List[SignedTransaction]] = {}
        for stx in ordered:
            by_sender.setdefault(stx.sender, []).append(stx)
        for sender, txs in by_sender.items():
            txs.sort(key=lambda stx: stx.transaction.nonce)
            by_sender[sender] = self._executable_prefix(sender, txs, state)
        cursor = {sender: 0 for sender in by_sender}
        selected: List[SignedTransaction] = []
        budget = gas_limit
        for stx in ordered:
            sender = stx.sender
            queue = by_sender[sender]
            if cursor[sender] >= len(queue):
                continue
            candidate = queue[cursor[sender]]
            if candidate.transaction.gas_limit > budget:
                continue
            cursor[sender] += 1
            selected.append(candidate)
            budget -= candidate.transaction.gas_limit
        return selected

    @staticmethod
    def _executable_prefix(
        sender: bytes, txs: List[SignedTransaction], state
    ) -> List[SignedTransaction]:
        """Dedupe same-nonce entries and (given state) stop at a gap."""
        queue: List[SignedTransaction] = []
        for stx in txs:
            if queue and queue[-1].transaction.nonce == stx.transaction.nonce:
                continue  # the ordering-preferred copy came first (stable sort)
            queue.append(stx)
        if state is None:
            return queue
        expected = state.nonce_of(sender)
        executable: List[SignedTransaction] = []
        for stx in queue:
            if stx.transaction.nonce < expected:
                continue  # stale; prune_stale will reap it
            if stx.transaction.nonce != expected:
                break  # nonce gap: nothing later can execute this block
            executable.append(stx)
            expected += 1
        return executable

    def drop_included(self, transactions) -> None:
        """Remove transactions that made it into a block."""
        for stx in transactions:
            self.remove(stx.tx_hash)
