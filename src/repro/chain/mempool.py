"""The transaction pool.

Pending transactions are public knowledge before inclusion — this is
the adversarial surface the paper emphasises: "a network adversary can
reorder transactions that are broadcasted to the network but not yet
written into a block", and a free-rider can read a victim's submitted
answer out of the pool and resubmit it as his own.  The pool therefore
deliberately exposes :meth:`pending` and accepts an ordering override.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import observability as obs
from repro.errors import InvalidTransactionError
from repro.chain.transaction import SignedTransaction

OrderingPolicy = Callable[[List[SignedTransaction]], List[SignedTransaction]]


def default_ordering(pending: List[SignedTransaction]) -> List[SignedTransaction]:
    """Miner-default: gas price descending, arrival order as tiebreak."""
    return sorted(
        pending,
        key=lambda stx: (-stx.transaction.gas_price,),
    )


class Mempool:
    """A per-node pending-transaction pool."""

    def __init__(self, ordering: Optional[OrderingPolicy] = None) -> None:
        self._pool: Dict[bytes, SignedTransaction] = {}
        self._arrival: List[bytes] = []
        self.ordering: OrderingPolicy = ordering or default_ordering

    def __len__(self) -> int:
        return len(self._pool)

    def add(self, stx: SignedTransaction) -> bool:
        """Admit a transaction; returns False on duplicates."""
        if not stx.verify_signature():
            raise InvalidTransactionError("refusing unsigned transaction")
        if stx.tx_hash in self._pool:
            if obs.TRACER.enabled:
                obs.count("mempool.duplicates")
            return False
        self._pool[stx.tx_hash] = stx
        self._arrival.append(stx.tx_hash)
        if obs.TRACER.enabled:
            obs.count("mempool.admitted")
            obs.observe(
                "mempool.depth", len(self._pool),
                buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000),
            )
        return True

    def remove(self, tx_hash: bytes) -> None:
        self._pool.pop(tx_hash, None)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Prune removed hashes so the arrival list stays O(pool size)."""
        if len(self._arrival) > 32 and len(self._arrival) > 2 * len(self._pool):
            self._arrival = [h for h in self._arrival if h in self._pool]

    @property
    def arrival_backlog(self) -> int:
        """Length of the arrival list (bounded-growth invariant hook)."""
        return len(self._arrival)

    def prune_stale(self, state) -> int:
        """Drop transactions whose nonce the given state has passed.

        Retried/gas-bumped duplicates of an included transaction can
        never become valid again; pruning them keeps the pool (and the
        arrival list) from growing without bound under retries.
        """
        stale = [
            tx_hash
            for tx_hash, stx in self._pool.items()
            if stx.transaction.nonce < state.nonce_of(stx.sender)
        ]
        for tx_hash in stale:
            self._pool.pop(tx_hash, None)
        self._maybe_compact()
        if stale and obs.TRACER.enabled:
            obs.count("mempool.evictions", len(stale))
        return len(stale)

    def contains(self, tx_hash: bytes) -> bool:
        return tx_hash in self._pool

    def pending(self) -> List[SignedTransaction]:
        """Every pending transaction, in arrival order.

        Public on purpose: anyone watching the P2P network sees these.
        """
        return [self._pool[h] for h in self._arrival if h in self._pool]

    def select_for_block(self, gas_limit: int) -> List[SignedTransaction]:
        """Pick transactions for a new block under the gas limit.

        Applies the ordering policy, then keeps per-sender nonce order
        (a later-nonce tx never precedes an earlier-nonce one from the
        same sender).
        """
        ordered = self.ordering(self.pending())
        # Stable per-sender nonce repair.
        by_sender: Dict[bytes, List[SignedTransaction]] = {}
        for stx in ordered:
            by_sender.setdefault(stx.sender, []).append(stx)
        for txs in by_sender.values():
            txs.sort(key=lambda stx: stx.transaction.nonce)
        cursor = {sender: 0 for sender in by_sender}
        selected: List[SignedTransaction] = []
        budget = gas_limit
        for stx in ordered:
            sender = stx.sender
            queue = by_sender[sender]
            if cursor[sender] >= len(queue):
                continue
            candidate = queue[cursor[sender]]
            if candidate.transaction.gas_limit > budget:
                continue
            cursor[sender] += 1
            selected.append(candidate)
            budget -= candidate.transaction.gas_limit
        return selected

    def drop_included(self, transactions) -> None:
        """Remove transactions that made it into a block."""
        for stx in transactions:
            self.remove(stx.tx_hash)
