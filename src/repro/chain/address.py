"""Address derivation (Ethereum conventions)."""

from __future__ import annotations

from repro.crypto.hashing import keccak256
from repro.serialization import encode

#: Length of an address in bytes.
ADDRESS_LENGTH = 20

#: The zero address (burn / unset).
ZERO_ADDRESS = b"\x00" * ADDRESS_LENGTH


def contract_address(sender: bytes, nonce: int) -> bytes:
    """The address a contract created by (sender, nonce) receives.

    Mirrors Ethereum's CREATE rule (hash of sender and nonce), which is
    what footnote 10 of the paper relies on: α_C is predictable by the
    requester before the contract is on-chain, so π_R can authenticate
    α_C‖α_R ahead of deployment.
    """
    return keccak256(encode([sender, nonce]))[12:]


def is_address(value: bytes) -> bool:
    return isinstance(value, bytes) and len(value) == ADDRESS_LENGTH


def format_address(value: bytes) -> str:
    """0x-prefixed hex rendering."""
    return "0x" + value.hex()
