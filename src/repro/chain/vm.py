"""The contract virtual machine: transaction validation and execution.

Execution is deterministic and revert-safe: the fee purchase and nonce
bump survive a revert (as on Ethereum), while every other state change
is rolled back via a pre-execution snapshot.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro import observability as obs
from repro.errors import (
    ChainError,
    ContractError,
    InvalidTransactionError,
    OutOfGasError,
)
from repro.chain.address import contract_address
from repro.chain.contract import (
    BlockContext,
    Contract,
    ContractRegistry,
    ExecutionContext,
    MeteredStorage,
)
from repro.chain.gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule
from repro.chain.receipts import Receipt, STATUS_REVERTED, STATUS_SUCCESS
from repro.chain.state import WorldState
from repro.chain.transaction import CALL_KIND, CREATE_KIND, SignedTransaction


class VM:
    """Executes signed transactions against a world state."""

    def __init__(
        self, schedule: GasSchedule = DEFAULT_SCHEDULE, chain_id: int = 1337
    ) -> None:
        self.schedule = schedule
        self.chain_id = chain_id

    # ----- validation ------------------------------------------------------------

    def validate_transaction(self, state: WorldState, stx: SignedTransaction) -> None:
        """Raise :class:`InvalidTransactionError` if ``stx`` cannot be included."""
        tx = stx.transaction
        if tx.chain_id != self.chain_id:
            raise InvalidTransactionError("wrong chain id")
        if not stx.verify_signature():
            raise InvalidTransactionError("bad signature")
        sender = stx.sender
        expected_nonce = state.nonce_of(sender)
        if tx.nonce != expected_nonce:
            raise InvalidTransactionError(
                f"nonce {tx.nonce} != expected {expected_nonce}"
            )
        if state.balance_of(sender) < stx.max_cost():
            raise InvalidTransactionError("insufficient balance for value + gas")
        intrinsic = self.schedule.intrinsic_gas(tx.data, tx.is_create)
        if tx.gas_limit < intrinsic:
            raise InvalidTransactionError(
                f"gas limit {tx.gas_limit} below intrinsic cost {intrinsic}"
            )

    # ----- execution ----------------------------------------------------------------

    def execute_transaction(
        self, state: WorldState, stx: SignedTransaction, block: BlockContext
    ) -> Receipt:
        """Validate and apply one transaction; always returns a receipt."""
        with obs.span(
            "vm.execute_tx",
            kind="create" if stx.transaction.is_create else "call",
            block=block.number,
        ) as vm_span:
            receipt = self._execute_transaction(state, stx, block)
            vm_span.set_attrs(status=receipt.status, gas_used=receipt.gas_used)
        if obs.TRACER.enabled:
            obs.count("vm.transactions")
            if receipt.status != STATUS_SUCCESS:
                obs.count("vm.reverts")
            obs.observe(
                "vm.gas_used_per_tx", receipt.gas_used,
                buckets=(25_000, 50_000, 100_000, 250_000, 500_000,
                         1_000_000, 2_500_000, 5_000_000, 10_000_000),
            )
        return receipt

    def _execute_transaction(
        self, state: WorldState, stx: SignedTransaction, block: BlockContext
    ) -> Receipt:
        self.validate_transaction(state, stx)
        tx = stx.transaction
        sender = stx.sender

        # Buy gas and bump the nonce; these survive any revert.
        state.debit(sender, tx.gas_price * tx.gas_limit)
        state.account(sender).nonce += 1
        frame = state.begin_transaction()

        meter = GasMeter(tx.gas_limit, self.schedule)
        meter.consume(self.schedule.intrinsic_gas(tx.data, tx.is_create), "intrinsic")
        ctx = ExecutionContext(
            state=state, meter=meter, block=block, origin=sender, vm=self
        )
        receipt = Receipt(tx_hash=stx.tx_hash, status=STATUS_SUCCESS, gas_used=0)
        try:
            if tx.is_create:
                receipt.contract_address = self._apply_create(ctx, stx)
            else:
                receipt.return_value = self._apply_message(ctx, stx)
            receipt.logs = list(ctx.logs)
        except (ContractError, OutOfGasError, ChainError) as exc:
            state.rollback_transaction(frame)
            receipt.status = STATUS_REVERTED
            receipt.error = f"{type(exc).__name__}: {exc}"
            receipt.contract_address = None
            receipt.return_value = None
            receipt.logs = []
        except BaseException:
            # Unexpected failure (fault injection, bugs): leave the
            # state consistent before propagating.
            state.rollback_transaction(frame)
            raise
        else:
            state.commit_transaction(frame)

        # Settle gas: refund the unused part, pay the miner for the used part.
        receipt.gas_used = meter.used
        state.credit(sender, tx.gas_price * meter.remaining)
        state.credit(block.coinbase, tx.gas_price * meter.used)
        receipt.block_number = block.number
        return receipt

    def _apply_create(self, ctx: ExecutionContext, stx: SignedTransaction) -> bytes:
        tx = stx.transaction
        kind, name, args = stx.decode_data()
        if kind != CREATE_KIND:
            raise ContractError("creation transaction must carry create calldata")
        address = contract_address(stx.sender, tx.nonce)
        account = ctx.state.account(address)
        if account.is_contract or account.nonce > 0:
            raise ContractError("address collision on contract creation")
        account.contract_name = name
        contract_cls = ContractRegistry.resolve(name)
        if tx.value:
            ctx.state.transfer(stx.sender, address, tx.value)
        instance = self._instantiate(
            ctx, contract_cls, address, account.storage, stx.sender, tx.value
        )
        instance.init(*args)
        return address

    def _apply_message(self, ctx: ExecutionContext, stx: SignedTransaction) -> Any:
        tx = stx.transaction
        assert tx.to is not None
        destination = ctx.state.account(tx.to)
        if tx.value:
            ctx.state.transfer(stx.sender, tx.to, tx.value)
        if not destination.is_contract:
            if tx.data:
                raise ContractError("calldata sent to a non-contract account")
            return None
        kind, method, args = stx.decode_data()
        if kind != CALL_KIND:
            raise ContractError("contract call requires call calldata")
        return self._invoke(
            ctx, tx.to, method, args, caller=stx.sender, value=tx.value,
            allow_view=False,
        )

    # ----- call plumbing ---------------------------------------------------------------

    def nested_call(
        self,
        ctx: ExecutionContext,
        caller: bytes,
        address: bytes,
        method: str,
        args: List[Any],
        value: int = 0,
        read_only: bool = False,
    ) -> Any:
        if value:
            ctx.state.transfer(caller, address, value)
        inner_ctx = ctx
        if read_only and not ctx.read_only:
            inner_ctx = ExecutionContext(
                state=ctx.state, meter=ctx.meter, block=ctx.block,
                origin=ctx.origin, vm=self, read_only=True,
            )
            inner_ctx.logs = ctx.logs
        return self._invoke(
            inner_ctx, address, method, args, caller=caller, value=value,
            allow_view=read_only,
        )

    def _invoke(
        self,
        ctx: ExecutionContext,
        address: bytes,
        method: str,
        args: List[Any],
        caller: bytes,
        value: int,
        allow_view: bool,
    ) -> Any:
        account = ctx.state.account(address)
        if not account.is_contract:
            raise ContractError(f"0x{address.hex()} is not a contract")
        contract_cls = ContractRegistry.resolve(account.contract_name)
        instance = self._instantiate(
            ctx, contract_cls, address, account.storage, caller, value
        )
        handler = getattr(instance, method, None)
        visibility = getattr(handler, "__contract_visibility__", None)
        if handler is None or visibility not in ("external", "view"):
            raise ContractError(f"contract has no external method {method!r}")
        if visibility == "view" and not allow_view and not ctx.read_only:
            # Views are callable in transactions too (they just can't mutate).
            pass
        if visibility == "external" and ctx.read_only:
            raise ContractError("cannot call an external method in read-only mode")
        ctx.meter.consume(
            self.schedule.call_base + self.schedule.compute_step * len(args),
            "method dispatch",
        )
        return handler(*args)

    def run_view(
        self,
        state: WorldState,
        address: bytes,
        method: str,
        args: List[Any],
        block: BlockContext,
        caller: Optional[bytes] = None,
    ) -> Any:
        """Execute a view method for free; any state change is rolled back."""
        meter = GasMeter(limit=1 << 62, schedule=self.schedule)
        ctx = ExecutionContext(
            state=state, meter=meter, block=block,
            origin=caller or b"\x00" * 20, vm=self, read_only=True,
        )
        frame = state.begin_transaction()
        try:
            return self._invoke(
                ctx, address, method, args, caller=caller or b"\x00" * 20,
                value=0, allow_view=True,
            )
        finally:
            state.rollback_transaction(frame)

    def _instantiate(
        self,
        ctx: ExecutionContext,
        contract_cls,
        address: bytes,
        storage: dict,
        sender: bytes,
        value: int,
    ) -> Contract:
        return contract_cls(
            address=address,
            storage=MeteredStorage(storage, ctx.meter),
            ctx=ctx,
            msg_sender=sender,
            msg_value=value,
        )
