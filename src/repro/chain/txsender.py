"""Client-side resilient transaction submission.

A lossy fabric can drop a broadcast before any miner sees it, so
"submit once and pray" loses transactions.  :class:`TxSender` is the
client discipline that survives it: broadcast, wait for a receipt with
a block-count timeout, and on timeout re-check the sender's on-chain
nonce before retrying with a gas-price bump.  Retries are idempotent by
construction — every attempt reuses the original nonce, so the chain
can include at most one of them; a consumed nonce with none of our
hashes on-chain means a different transaction superseded ours, which is
reported rather than retried forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro import observability as obs
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import ChainError
from repro.chain.receipts import Receipt
from repro.chain.transaction import SignedTransaction, Transaction


class TxAbandonedError(ChainError):
    """No attempt of a transaction could be confirmed."""


class NonceManager:
    """Per-sender nonce reservation for concurrent broadcasters.

    ``nonce_of`` against the head state only reflects *included*
    transactions, so two clients that both read it before either's
    transaction lands would sign the same nonce and supersede each
    other — the mempool livelock the concurrent engine must avoid.
    Reserving through one shared manager hands out consecutive nonces
    per sender: the chain nonce when the sender has nothing in flight,
    one past the last reservation otherwise.
    """

    def __init__(self, testnet) -> None:
        self.testnet = testnet
        self._reserved: Dict[bytes, int] = {}

    def reserve(self, sender: bytes) -> int:
        """Claim the next nonce for ``sender`` (marks it in-flight)."""
        chain_nonce = self.testnet.any_node.nonce_of(sender)
        nonce = max(chain_nonce, self._reserved.get(sender, 0))
        self._reserved[sender] = nonce + 1
        return nonce

    def next_nonce(self, sender: bytes) -> int:
        """Peek at the nonce :meth:`reserve` would hand out."""
        return max(
            self.testnet.any_node.nonce_of(sender), self._reserved.get(sender, 0)
        )

    def forget(self, sender: bytes) -> None:
        """Drop local reservations (e.g. after an abandoned send)."""
        self._reserved.pop(sender, None)

    def snapshot(self) -> Dict[bytes, int]:
        """The reservation table, for engine checkpoints."""
        return dict(self._reserved)

    def restore(self, reservations: Dict[bytes, int]) -> None:
        """Adopt a checkpointed reservation table (chain nonce still wins)."""
        self._reserved = dict(reservations)


@dataclass
class PendingTx:
    """One broadcast-but-unconfirmed transaction the sender tracks.

    All retry attempts share the original nonce, so ``tx_hashes``
    accumulates every signed variant (gas bumps change the hash) and a
    receipt for *any* of them confirms the logical transaction.
    """

    transaction: Transaction
    keypair: Optional[ecdsa.ECDSAKeyPair]
    sender: bytes = b""
    tx_hashes: List[bytes] = field(default_factory=list)
    broadcast_height: int = 0
    attempts: int = 1
    receipt: Optional[Receipt] = None

    @property
    def confirmed(self) -> bool:
        return self.receipt is not None


@dataclass
class SendReport:
    """What happened while confirming one logical transaction."""

    receipt: Optional[Receipt] = None
    attempts: int = 0
    blocks_waited: int = 0
    final_gas_price: int = 0
    tx_hashes: List[bytes] = field(default_factory=list)


class TxSender:
    """Reliable at-most-once submission against a :class:`Testnet`.

    ``timeout_blocks`` is how many blocks the *first* attempt waits for
    its receipt; each further attempt doubles the wait (capped at
    ``max_retry_interval``) and adds a deterministic jitter of up to
    ``jitter_blocks`` drawn from a hash of (sender, nonce, attempt) —
    exponential backoff keeps a congested chain from being hammered by
    retries, the seeded jitter de-synchronizes concurrent senders
    without sacrificing replay determinism.  ``gas_bump_percent`` raises
    the fee on each retry (clamped so the sender can still afford
    ``value + gas_price * gas_limit``).
    """

    def __init__(
        self,
        testnet,
        timeout_blocks: int = 8,
        max_attempts: int = 4,
        gas_bump_percent: int = 25,
        max_retry_interval: Optional[int] = None,
        jitter_blocks: int = 1,
    ) -> None:
        if timeout_blocks < 1 or max_attempts < 1:
            raise ValueError("need at least one block and one attempt")
        if jitter_blocks < 0:
            raise ValueError("jitter must be non-negative")
        self.testnet = testnet
        self.timeout_blocks = timeout_blocks
        self.max_attempts = max_attempts
        self.gas_bump_percent = gas_bump_percent
        self.max_retry_interval = (
            max_retry_interval
            if max_retry_interval is not None
            else timeout_blocks * 8
        )
        if self.max_retry_interval < timeout_blocks:
            raise ValueError("max_retry_interval must cover timeout_blocks")
        self.jitter_blocks = jitter_blocks
        self.nonces = NonceManager(testnet)
        #: Cumulative counters (read by the chaos bench).
        self.total_attempts = 0
        self.total_resubmissions = 0

    def retry_interval(self, sender: bytes, nonce: int, attempt: int) -> int:
        """Blocks attempt number ``attempt`` waits before the next retry.

        Attempt 1 waits exactly ``timeout_blocks`` (the historical fixed
        interval, so a clean send is never slower than before); later
        attempts back off exponentially with the seeded jitter.
        """
        attempt = max(1, attempt)
        base = min(self.max_retry_interval, self.timeout_blocks << (attempt - 1))
        if attempt == 1 or self.jitter_blocks == 0:
            return base
        draw = int.from_bytes(
            sha256(
                b"txsender-backoff", sender,
                nonce.to_bytes(8, "big"), attempt.to_bytes(4, "big"),
            ),
            "big",
        )
        return base + draw % (self.jitter_blocks + 1)

    # ----- asynchronous API (concurrent senders) -----------------------------------

    def broadcast(
        self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair
    ) -> PendingTx:
        """Sign and gossip ``tx`` WITHOUT mining — the batched path.

        The caller (typically the engine's scheduler) mines blocks on
        its own cadence and drives :meth:`service` to confirm or retry
        every in-flight transaction of a whole wave at once.
        """
        stx = tx.sign(keypair)
        pending = PendingTx(
            transaction=tx,
            keypair=keypair,
            sender=stx.sender,
            tx_hashes=[stx.tx_hash],
            broadcast_height=self.testnet.height,
        )
        self.total_attempts += 1
        self.testnet.send_transaction(stx)
        if obs.TRACER.enabled:
            obs.count("txsender.broadcasts")
        return pending

    def poll(self, pending: PendingTx) -> Optional[Receipt]:
        """Look for a receipt of any attempt; caches it on the pending."""
        if pending.receipt is None:
            pending.receipt = self._find_receipt(pending.tx_hashes)
        return pending.receipt

    def service(self, pendings: List[PendingTx]) -> List[PendingTx]:
        """One maintenance pass over in-flight transactions.

        Polls receipts, and for anything still unconfirmed after its
        backoff interval (see :meth:`retry_interval`) re-broadcasts with
        a gas bump (same nonce, so at most one attempt can ever land).
        Returns the still-pending subset.  Raises
        :class:`TxAbandonedError` when a transaction exhausted its
        attempts or its nonce was consumed by a stranger.
        """
        unconfirmed: List[PendingTx] = []
        for pending in pendings:
            if self.poll(pending) is not None:
                continue
            waited = self.testnet.height - pending.broadcast_height
            interval = self.retry_interval(
                pending.sender, pending.transaction.nonce, pending.attempts
            )
            if waited >= interval:
                self._retry(pending)
                if pending.receipt is not None:
                    continue
            unconfirmed.append(pending)
        return unconfirmed

    def confirm_all(
        self, pendings: List[PendingTx], max_blocks: int = 256
    ) -> List[Receipt]:
        """Mine until every pending transaction is confirmed."""
        remaining = self.service(list(pendings))
        for _ in range(max_blocks):
            if not remaining:
                break
            self.testnet.mine_block()
            remaining = self.service(remaining)
        if remaining:
            raise TxAbandonedError(
                f"{len(remaining)} transactions unconfirmed after "
                f"{max_blocks} blocks"
            )
        return [pending.receipt for pending in pendings]

    def _retry(self, pending: PendingTx) -> None:
        """Re-broadcast one timed-out pending (gas bump, same nonce)."""
        nonce = pending.transaction.nonce
        if self.testnet.any_node.nonce_of(pending.sender) > nonce:
            # Someone's transaction with our nonce landed; ours or not?
            if self.poll(pending) is not None:
                return
            raise TxAbandonedError(
                "nonce consumed by a transaction that is not ours"
            )
        if pending.attempts >= self.max_attempts:
            raise TxAbandonedError(
                f"no receipt after {pending.attempts} attempts"
            )
        if pending.keypair is None:
            raise TxAbandonedError("cannot retry without the signing key")
        pending.transaction = replace(
            pending.transaction,
            gas_price=self._bumped_price(pending.transaction, pending.sender),
        )
        stx = pending.transaction.sign(pending.keypair)
        if stx.tx_hash not in pending.tx_hashes:
            pending.tx_hashes.append(stx.tx_hash)
        pending.attempts += 1
        pending.broadcast_height = self.testnet.height
        self.total_attempts += 1
        self.total_resubmissions += 1
        self.testnet.send_transaction(stx)
        if obs.TRACER.enabled:
            obs.count("txsender.retries")
            obs.observe(
                "txsender.retry_backoff_blocks",
                self.retry_interval(
                    pending.sender, pending.transaction.nonce, pending.attempts
                ),
                buckets=(1, 2, 4, 8, 16, 32, 64),
            )

    # ----- public API ---------------------------------------------------------------

    def send(self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair) -> Receipt:
        return self.send_with_report(tx, keypair).receipt

    def send_with_report(
        self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair
    ) -> SendReport:
        """Broadcast ``tx``, confirming it through drops and delays."""
        with obs.span("txsender.send", nonce=tx.nonce) as send_span:
            report = self._send_with_report(tx, keypair)
            send_span.set_attrs(
                attempts=report.attempts, blocks_waited=report.blocks_waited
            )
        self._record_report(report)
        return report

    def _send_with_report(
        self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair
    ) -> SendReport:
        report = SendReport(final_gas_price=tx.gas_price)
        sender = keypair.address()
        current = tx
        while report.attempts < self.max_attempts:
            report.attempts += 1
            self.total_attempts += 1
            if report.attempts > 1:
                self.total_resubmissions += 1
            stx = current.sign(keypair)
            if stx.tx_hash not in report.tx_hashes:
                report.tx_hashes.append(stx.tx_hash)
            self.testnet.send_transaction(stx)
            receipt = self._await_receipt(
                report,
                self.retry_interval(sender, current.nonce, report.attempts),
            )
            if receipt is not None:
                report.receipt = receipt
                report.final_gas_price = current.gas_price
                return report
            # Timed out: nonce re-check decides between retry and abandon.
            if self.testnet.any_node.nonce_of(sender) > current.nonce:
                receipt = self._find_receipt(report.tx_hashes)
                if receipt is not None:
                    report.receipt = receipt
                    report.final_gas_price = current.gas_price
                    return report
                raise TxAbandonedError(
                    "nonce consumed by a transaction that is not ours"
                )
            current = replace(
                current, gas_price=self._bumped_price(current, sender)
            )
        raise TxAbandonedError(
            f"no receipt after {report.attempts} attempts "
            f"({report.blocks_waited} blocks)"
        )

    def send_signed(self, stx: SignedTransaction) -> Receipt:
        """Confirm an externally signed transaction (rebroadcast-only).

        Without the key we cannot bump the fee, but we can still retry
        the identical bytes — idempotent because the chain dedupes by
        nonce and the mempool by hash.
        """
        with obs.span(
            "txsender.send", nonce=stx.transaction.nonce, signed=True
        ) as send_span:
            report, receipt = self._send_signed(stx)
            send_span.set_attrs(
                attempts=report.attempts, blocks_waited=report.blocks_waited
            )
        self._record_report(report)
        return receipt

    def _send_signed(self, stx: SignedTransaction):
        report = SendReport(tx_hashes=[stx.tx_hash])
        for _ in range(self.max_attempts):
            report.attempts += 1
            self.total_attempts += 1
            if report.attempts > 1:
                self.total_resubmissions += 1
            self.testnet.send_transaction(stx)
            receipt = self._await_receipt(
                report,
                self.retry_interval(
                    stx.sender, stx.transaction.nonce, report.attempts
                ),
            )
            if receipt is not None:
                return report, receipt
            if self.testnet.any_node.nonce_of(stx.sender) > stx.transaction.nonce:
                receipt = self._find_receipt(report.tx_hashes)
                if receipt is not None:
                    return report, receipt
                raise TxAbandonedError(
                    "nonce consumed by a transaction that is not ours"
                )
        raise TxAbandonedError(
            f"no receipt after {report.attempts} attempts "
            f"({report.blocks_waited} blocks)"
        )

    # ----- internals ----------------------------------------------------------------

    def _record_report(self, report: SendReport) -> None:
        if not obs.TRACER.enabled:
            return
        obs.count("txsender.sends")
        obs.count("txsender.attempts", report.attempts)
        if report.attempts > 1:
            obs.count("txsender.retries", report.attempts - 1)
        obs.observe(
            "txsender.blocks_waited", report.blocks_waited,
            buckets=(0, 1, 2, 4, 8, 16, 32, 64),
        )

    def _await_receipt(
        self, report: SendReport, interval: Optional[int] = None
    ) -> Optional[Receipt]:
        receipt = self._find_receipt(report.tx_hashes)
        if receipt is not None:
            return receipt
        for _ in range(interval if interval is not None else self.timeout_blocks):
            self.testnet.mine_block()
            report.blocks_waited += 1
            receipt = self._find_receipt(report.tx_hashes)
            if receipt is not None:
                return receipt
        return None

    def _find_receipt(self, tx_hashes: List[bytes]) -> Optional[Receipt]:
        for node in self.testnet.network.nodes:
            if node.crashed:
                continue
            for tx_hash in tx_hashes:
                receipt = node.get_receipt(tx_hash)
                if receipt is not None:
                    return receipt
        return None

    def _bumped_price(self, tx: Transaction, sender: bytes) -> int:
        bumped = max(
            tx.gas_price + 1,
            tx.gas_price * (100 + self.gas_bump_percent) // 100,
        )
        # Never price the replacement beyond what the sender can cover,
        # or every node would reject it at admission.
        balance = self.testnet.any_node.balance_of(sender)
        if tx.gas_limit > 0:
            affordable = (balance - tx.value) // tx.gas_limit
            bumped = min(bumped, max(affordable, tx.gas_price))
        return bumped
