"""Client-side resilient transaction submission.

A lossy fabric can drop a broadcast before any miner sees it, so
"submit once and pray" loses transactions.  :class:`TxSender` is the
client discipline that survives it: broadcast, wait for a receipt with
a block-count timeout, and on timeout re-check the sender's on-chain
nonce before retrying with a gas-price bump.  Retries are idempotent by
construction — every attempt reuses the original nonce, so the chain
can include at most one of them; a consumed nonce with none of our
hashes on-chain means a different transaction superseded ours, which is
reported rather than retried forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro import observability as obs
from repro.crypto import ecdsa
from repro.errors import ChainError
from repro.chain.receipts import Receipt
from repro.chain.transaction import SignedTransaction, Transaction


class TxAbandonedError(ChainError):
    """No attempt of a transaction could be confirmed."""


class NonceManager:
    """Per-sender nonce reservation for concurrent broadcasters.

    ``nonce_of`` against the head state only reflects *included*
    transactions, so two clients that both read it before either's
    transaction lands would sign the same nonce and supersede each
    other — the mempool livelock the concurrent engine must avoid.
    Reserving through one shared manager hands out consecutive nonces
    per sender: the chain nonce when the sender has nothing in flight,
    one past the last reservation otherwise.
    """

    def __init__(self, testnet) -> None:
        self.testnet = testnet
        self._reserved: Dict[bytes, int] = {}

    def reserve(self, sender: bytes) -> int:
        """Claim the next nonce for ``sender`` (marks it in-flight)."""
        chain_nonce = self.testnet.any_node.nonce_of(sender)
        nonce = max(chain_nonce, self._reserved.get(sender, 0))
        self._reserved[sender] = nonce + 1
        return nonce

    def next_nonce(self, sender: bytes) -> int:
        """Peek at the nonce :meth:`reserve` would hand out."""
        return max(
            self.testnet.any_node.nonce_of(sender), self._reserved.get(sender, 0)
        )

    def forget(self, sender: bytes) -> None:
        """Drop local reservations (e.g. after an abandoned send)."""
        self._reserved.pop(sender, None)


@dataclass
class PendingTx:
    """One broadcast-but-unconfirmed transaction the sender tracks.

    All retry attempts share the original nonce, so ``tx_hashes``
    accumulates every signed variant (gas bumps change the hash) and a
    receipt for *any* of them confirms the logical transaction.
    """

    transaction: Transaction
    keypair: Optional[ecdsa.ECDSAKeyPair]
    sender: bytes = b""
    tx_hashes: List[bytes] = field(default_factory=list)
    broadcast_height: int = 0
    attempts: int = 1
    receipt: Optional[Receipt] = None

    @property
    def confirmed(self) -> bool:
        return self.receipt is not None


@dataclass
class SendReport:
    """What happened while confirming one logical transaction."""

    receipt: Optional[Receipt] = None
    attempts: int = 0
    blocks_waited: int = 0
    final_gas_price: int = 0
    tx_hashes: List[bytes] = field(default_factory=list)


class TxSender:
    """Reliable at-most-once submission against a :class:`Testnet`.

    ``timeout_blocks`` is how many blocks one attempt waits for its
    receipt; ``gas_bump_percent`` raises the fee on each retry (clamped
    so the sender can still afford ``value + gas_price * gas_limit``).
    """

    def __init__(
        self,
        testnet,
        timeout_blocks: int = 8,
        max_attempts: int = 4,
        gas_bump_percent: int = 25,
    ) -> None:
        if timeout_blocks < 1 or max_attempts < 1:
            raise ValueError("need at least one block and one attempt")
        self.testnet = testnet
        self.timeout_blocks = timeout_blocks
        self.max_attempts = max_attempts
        self.gas_bump_percent = gas_bump_percent
        self.nonces = NonceManager(testnet)
        #: Cumulative counters (read by the chaos bench).
        self.total_attempts = 0
        self.total_resubmissions = 0

    # ----- asynchronous API (concurrent senders) -----------------------------------

    def broadcast(
        self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair
    ) -> PendingTx:
        """Sign and gossip ``tx`` WITHOUT mining — the batched path.

        The caller (typically the engine's scheduler) mines blocks on
        its own cadence and drives :meth:`service` to confirm or retry
        every in-flight transaction of a whole wave at once.
        """
        stx = tx.sign(keypair)
        pending = PendingTx(
            transaction=tx,
            keypair=keypair,
            sender=stx.sender,
            tx_hashes=[stx.tx_hash],
            broadcast_height=self.testnet.height,
        )
        self.total_attempts += 1
        self.testnet.send_transaction(stx)
        if obs.TRACER.enabled:
            obs.count("txsender.broadcasts")
        return pending

    def poll(self, pending: PendingTx) -> Optional[Receipt]:
        """Look for a receipt of any attempt; caches it on the pending."""
        if pending.receipt is None:
            pending.receipt = self._find_receipt(pending.tx_hashes)
        return pending.receipt

    def service(self, pendings: List[PendingTx]) -> List[PendingTx]:
        """One maintenance pass over in-flight transactions.

        Polls receipts, and for anything still unconfirmed after
        ``timeout_blocks`` re-broadcasts with a gas bump (same nonce, so
        at most one attempt can ever land).  Returns the still-pending
        subset.  Raises :class:`TxAbandonedError` when a transaction
        exhausted its attempts or its nonce was consumed by a stranger.
        """
        unconfirmed: List[PendingTx] = []
        for pending in pendings:
            if self.poll(pending) is not None:
                continue
            waited = self.testnet.height - pending.broadcast_height
            if waited >= self.timeout_blocks:
                self._retry(pending)
                if pending.receipt is not None:
                    continue
            unconfirmed.append(pending)
        return unconfirmed

    def confirm_all(
        self, pendings: List[PendingTx], max_blocks: int = 256
    ) -> List[Receipt]:
        """Mine until every pending transaction is confirmed."""
        remaining = self.service(list(pendings))
        for _ in range(max_blocks):
            if not remaining:
                break
            self.testnet.mine_block()
            remaining = self.service(remaining)
        if remaining:
            raise TxAbandonedError(
                f"{len(remaining)} transactions unconfirmed after "
                f"{max_blocks} blocks"
            )
        return [pending.receipt for pending in pendings]

    def _retry(self, pending: PendingTx) -> None:
        """Re-broadcast one timed-out pending (gas bump, same nonce)."""
        nonce = pending.transaction.nonce
        if self.testnet.any_node.nonce_of(pending.sender) > nonce:
            # Someone's transaction with our nonce landed; ours or not?
            if self.poll(pending) is not None:
                return
            raise TxAbandonedError(
                "nonce consumed by a transaction that is not ours"
            )
        if pending.attempts >= self.max_attempts:
            raise TxAbandonedError(
                f"no receipt after {pending.attempts} attempts"
            )
        if pending.keypair is None:
            raise TxAbandonedError("cannot retry without the signing key")
        pending.transaction = replace(
            pending.transaction,
            gas_price=self._bumped_price(pending.transaction, pending.sender),
        )
        stx = pending.transaction.sign(pending.keypair)
        if stx.tx_hash not in pending.tx_hashes:
            pending.tx_hashes.append(stx.tx_hash)
        pending.attempts += 1
        pending.broadcast_height = self.testnet.height
        self.total_attempts += 1
        self.total_resubmissions += 1
        self.testnet.send_transaction(stx)
        if obs.TRACER.enabled:
            obs.count("txsender.retries")

    # ----- public API ---------------------------------------------------------------

    def send(self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair) -> Receipt:
        return self.send_with_report(tx, keypair).receipt

    def send_with_report(
        self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair
    ) -> SendReport:
        """Broadcast ``tx``, confirming it through drops and delays."""
        with obs.span("txsender.send", nonce=tx.nonce) as send_span:
            report = self._send_with_report(tx, keypair)
            send_span.set_attrs(
                attempts=report.attempts, blocks_waited=report.blocks_waited
            )
        self._record_report(report)
        return report

    def _send_with_report(
        self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair
    ) -> SendReport:
        report = SendReport(final_gas_price=tx.gas_price)
        sender = keypair.address()
        current = tx
        while report.attempts < self.max_attempts:
            report.attempts += 1
            self.total_attempts += 1
            if report.attempts > 1:
                self.total_resubmissions += 1
            stx = current.sign(keypair)
            if stx.tx_hash not in report.tx_hashes:
                report.tx_hashes.append(stx.tx_hash)
            self.testnet.send_transaction(stx)
            receipt = self._await_receipt(report)
            if receipt is not None:
                report.receipt = receipt
                report.final_gas_price = current.gas_price
                return report
            # Timed out: nonce re-check decides between retry and abandon.
            if self.testnet.any_node.nonce_of(sender) > current.nonce:
                receipt = self._find_receipt(report.tx_hashes)
                if receipt is not None:
                    report.receipt = receipt
                    report.final_gas_price = current.gas_price
                    return report
                raise TxAbandonedError(
                    "nonce consumed by a transaction that is not ours"
                )
            current = replace(
                current, gas_price=self._bumped_price(current, sender)
            )
        raise TxAbandonedError(
            f"no receipt after {report.attempts} attempts "
            f"({report.blocks_waited} blocks)"
        )

    def send_signed(self, stx: SignedTransaction) -> Receipt:
        """Confirm an externally signed transaction (rebroadcast-only).

        Without the key we cannot bump the fee, but we can still retry
        the identical bytes — idempotent because the chain dedupes by
        nonce and the mempool by hash.
        """
        with obs.span(
            "txsender.send", nonce=stx.transaction.nonce, signed=True
        ) as send_span:
            report, receipt = self._send_signed(stx)
            send_span.set_attrs(
                attempts=report.attempts, blocks_waited=report.blocks_waited
            )
        self._record_report(report)
        return receipt

    def _send_signed(self, stx: SignedTransaction):
        report = SendReport(tx_hashes=[stx.tx_hash])
        for _ in range(self.max_attempts):
            report.attempts += 1
            self.total_attempts += 1
            if report.attempts > 1:
                self.total_resubmissions += 1
            self.testnet.send_transaction(stx)
            receipt = self._await_receipt(report)
            if receipt is not None:
                return report, receipt
            if self.testnet.any_node.nonce_of(stx.sender) > stx.transaction.nonce:
                receipt = self._find_receipt(report.tx_hashes)
                if receipt is not None:
                    return report, receipt
                raise TxAbandonedError(
                    "nonce consumed by a transaction that is not ours"
                )
        raise TxAbandonedError(
            f"no receipt after {report.attempts} attempts "
            f"({report.blocks_waited} blocks)"
        )

    # ----- internals ----------------------------------------------------------------

    def _record_report(self, report: SendReport) -> None:
        if not obs.TRACER.enabled:
            return
        obs.count("txsender.sends")
        obs.count("txsender.attempts", report.attempts)
        if report.attempts > 1:
            obs.count("txsender.retries", report.attempts - 1)
        obs.observe(
            "txsender.blocks_waited", report.blocks_waited,
            buckets=(0, 1, 2, 4, 8, 16, 32, 64),
        )

    def _await_receipt(self, report: SendReport) -> Optional[Receipt]:
        receipt = self._find_receipt(report.tx_hashes)
        if receipt is not None:
            return receipt
        for _ in range(self.timeout_blocks):
            self.testnet.mine_block()
            report.blocks_waited += 1
            receipt = self._find_receipt(report.tx_hashes)
            if receipt is not None:
                return receipt
        return None

    def _find_receipt(self, tx_hashes: List[bytes]) -> Optional[Receipt]:
        for node in self.testnet.network.nodes:
            if node.crashed:
                continue
            for tx_hash in tx_hashes:
                receipt = node.get_receipt(tx_hash)
                if receipt is not None:
                    return receipt
        return None

    def _bumped_price(self, tx: Transaction, sender: bytes) -> int:
        bumped = max(
            tx.gas_price + 1,
            tx.gas_price * (100 + self.gas_bump_percent) // 100,
        )
        # Never price the replacement beyond what the sender can cover,
        # or every node would reject it at admission.
        balance = self.testnet.any_node.balance_of(sender)
        if tx.gas_limit > 0:
            affordable = (balance - tx.value) // tx.gas_limit
            bumped = min(bumped, max(affordable, tx.gas_price))
        return bumped
