"""Client-side resilient transaction submission.

A lossy fabric can drop a broadcast before any miner sees it, so
"submit once and pray" loses transactions.  :class:`TxSender` is the
client discipline that survives it: broadcast, wait for a receipt with
a block-count timeout, and on timeout re-check the sender's on-chain
nonce before retrying with a gas-price bump.  Retries are idempotent by
construction — every attempt reuses the original nonce, so the chain
can include at most one of them; a consumed nonce with none of our
hashes on-chain means a different transaction superseded ours, which is
reported rather than retried forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro import observability as obs
from repro.crypto import ecdsa
from repro.errors import ChainError
from repro.chain.receipts import Receipt
from repro.chain.transaction import SignedTransaction, Transaction


class TxAbandonedError(ChainError):
    """No attempt of a transaction could be confirmed."""


@dataclass
class SendReport:
    """What happened while confirming one logical transaction."""

    receipt: Optional[Receipt] = None
    attempts: int = 0
    blocks_waited: int = 0
    final_gas_price: int = 0
    tx_hashes: List[bytes] = field(default_factory=list)


class TxSender:
    """Reliable at-most-once submission against a :class:`Testnet`.

    ``timeout_blocks`` is how many blocks one attempt waits for its
    receipt; ``gas_bump_percent`` raises the fee on each retry (clamped
    so the sender can still afford ``value + gas_price * gas_limit``).
    """

    def __init__(
        self,
        testnet,
        timeout_blocks: int = 8,
        max_attempts: int = 4,
        gas_bump_percent: int = 25,
    ) -> None:
        if timeout_blocks < 1 or max_attempts < 1:
            raise ValueError("need at least one block and one attempt")
        self.testnet = testnet
        self.timeout_blocks = timeout_blocks
        self.max_attempts = max_attempts
        self.gas_bump_percent = gas_bump_percent
        #: Cumulative counters (read by the chaos bench).
        self.total_attempts = 0
        self.total_resubmissions = 0

    # ----- public API ---------------------------------------------------------------

    def send(self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair) -> Receipt:
        return self.send_with_report(tx, keypair).receipt

    def send_with_report(
        self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair
    ) -> SendReport:
        """Broadcast ``tx``, confirming it through drops and delays."""
        with obs.span("txsender.send", nonce=tx.nonce) as send_span:
            report = self._send_with_report(tx, keypair)
            send_span.set_attrs(
                attempts=report.attempts, blocks_waited=report.blocks_waited
            )
        self._record_report(report)
        return report

    def _send_with_report(
        self, tx: Transaction, keypair: ecdsa.ECDSAKeyPair
    ) -> SendReport:
        report = SendReport(final_gas_price=tx.gas_price)
        sender = keypair.address()
        current = tx
        while report.attempts < self.max_attempts:
            report.attempts += 1
            self.total_attempts += 1
            if report.attempts > 1:
                self.total_resubmissions += 1
            stx = current.sign(keypair)
            if stx.tx_hash not in report.tx_hashes:
                report.tx_hashes.append(stx.tx_hash)
            self.testnet.send_transaction(stx)
            receipt = self._await_receipt(report)
            if receipt is not None:
                report.receipt = receipt
                report.final_gas_price = current.gas_price
                return report
            # Timed out: nonce re-check decides between retry and abandon.
            if self.testnet.any_node.nonce_of(sender) > current.nonce:
                receipt = self._find_receipt(report.tx_hashes)
                if receipt is not None:
                    report.receipt = receipt
                    report.final_gas_price = current.gas_price
                    return report
                raise TxAbandonedError(
                    "nonce consumed by a transaction that is not ours"
                )
            current = replace(
                current, gas_price=self._bumped_price(current, sender)
            )
        raise TxAbandonedError(
            f"no receipt after {report.attempts} attempts "
            f"({report.blocks_waited} blocks)"
        )

    def send_signed(self, stx: SignedTransaction) -> Receipt:
        """Confirm an externally signed transaction (rebroadcast-only).

        Without the key we cannot bump the fee, but we can still retry
        the identical bytes — idempotent because the chain dedupes by
        nonce and the mempool by hash.
        """
        with obs.span(
            "txsender.send", nonce=stx.transaction.nonce, signed=True
        ) as send_span:
            report, receipt = self._send_signed(stx)
            send_span.set_attrs(
                attempts=report.attempts, blocks_waited=report.blocks_waited
            )
        self._record_report(report)
        return receipt

    def _send_signed(self, stx: SignedTransaction):
        report = SendReport(tx_hashes=[stx.tx_hash])
        for _ in range(self.max_attempts):
            report.attempts += 1
            self.total_attempts += 1
            if report.attempts > 1:
                self.total_resubmissions += 1
            self.testnet.send_transaction(stx)
            receipt = self._await_receipt(report)
            if receipt is not None:
                return report, receipt
            if self.testnet.any_node.nonce_of(stx.sender) > stx.transaction.nonce:
                receipt = self._find_receipt(report.tx_hashes)
                if receipt is not None:
                    return report, receipt
                raise TxAbandonedError(
                    "nonce consumed by a transaction that is not ours"
                )
        raise TxAbandonedError(
            f"no receipt after {report.attempts} attempts "
            f"({report.blocks_waited} blocks)"
        )

    # ----- internals ----------------------------------------------------------------

    def _record_report(self, report: SendReport) -> None:
        if not obs.TRACER.enabled:
            return
        obs.count("txsender.sends")
        obs.count("txsender.attempts", report.attempts)
        if report.attempts > 1:
            obs.count("txsender.retries", report.attempts - 1)
        obs.observe(
            "txsender.blocks_waited", report.blocks_waited,
            buckets=(0, 1, 2, 4, 8, 16, 32, 64),
        )

    def _await_receipt(self, report: SendReport) -> Optional[Receipt]:
        receipt = self._find_receipt(report.tx_hashes)
        if receipt is not None:
            return receipt
        for _ in range(self.timeout_blocks):
            self.testnet.mine_block()
            report.blocks_waited += 1
            receipt = self._find_receipt(report.tx_hashes)
            if receipt is not None:
                return receipt
        return None

    def _find_receipt(self, tx_hashes: List[bytes]) -> Optional[Receipt]:
        for node in self.testnet.network.nodes:
            if node.crashed:
                continue
            for tx_hash in tx_hashes:
                receipt = node.get_receipt(tx_hash)
                if receipt is not None:
                    return receipt
        return None

    def _bumped_price(self, tx: Transaction, sender: bytes) -> int:
        bumped = max(
            tx.gas_price + 1,
            tx.gas_price * (100 + self.gas_bump_percent) // 100,
        )
        # Never price the replacement beyond what the sender can cover,
        # or every node would reject it at admission.
        balance = self.testnet.any_node.balance_of(sender)
        if tx.gas_limit > 0:
            affordable = (balance - tx.value) // tx.gas_limit
            bumped = min(bumped, max(affordable, tx.gas_price))
        return bumped
