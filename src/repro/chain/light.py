"""A header-only light client.

Footnote 12 of the paper: participants need not run full nodes — a
light client that validates headers (parent links + consensus seals)
can confirm that its crowdsourcing transactions were included, using
Merkle inclusion proofs served by any full node, without trusting it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import InvalidBlockError
from repro.chain.block import Block, BlockHeader, GENESIS_PARENT
from repro.chain.consensus import ConsensusEngine
from repro.chain.node import Node
from repro.chain.receipts import (
    ReceiptProof,
    prove_receipt_inclusion,
    verify_receipt_proof,
)
from repro.chain.txtrie import InclusionProof, prove_inclusion, verify_inclusion


class LightClient:
    """Tracks validated headers; verifies tx inclusion against them."""

    def __init__(self, engine: ConsensusEngine, genesis_header: BlockHeader) -> None:
        self.engine = engine
        self._headers: Dict[bytes, BlockHeader] = {
            genesis_header.block_hash(): genesis_header
        }
        self._head = genesis_header.block_hash()

    @property
    def head_header(self) -> BlockHeader:
        return self._headers[self._head]

    @property
    def height(self) -> int:
        return self.head_header.number

    def import_header(self, header: BlockHeader) -> bool:
        """Validate and adopt a header; returns False if already known."""
        block_hash = header.block_hash()
        if block_hash in self._headers:
            return False
        parent = self._headers.get(header.parent_hash)
        if parent is None:
            raise InvalidBlockError("unknown parent header")
        if header.number != parent.number + 1:
            raise InvalidBlockError("non-consecutive header number")
        if header.timestamp < parent.timestamp:
            raise InvalidBlockError("timestamp moves backwards")
        self.engine.validate_seal(header)
        self._headers[block_hash] = header
        head = self.head_header
        if header.number > head.number or (
            header.number == head.number and block_hash < head.block_hash()
        ):
            self._head = block_hash
        return True

    def sync_from(self, node: Node) -> int:
        """Pull every header on the node's canonical chain; returns count."""
        imported = 0
        for block in node.chain_to_genesis():
            if block.header.parent_hash == GENESIS_PARENT and block.number == 0:
                continue  # genesis was pinned at construction
            try:
                if self.import_header(block.header):
                    imported += 1
            except InvalidBlockError:
                raise
        return imported

    def header_by_number(self, number: int) -> Optional[BlockHeader]:
        cursor = self.head_header
        while cursor.number > number:
            parent = self._headers.get(cursor.parent_hash)
            if parent is None:
                return None
            cursor = parent
        return cursor if cursor.number == number else None

    def verify_transaction_inclusion(
        self, proof: InclusionProof, block_number: int
    ) -> bool:
        """Check a full node's inclusion proof against a tracked header."""
        header = self.header_by_number(block_number)
        if header is None:
            return False
        return verify_inclusion(header.tx_root, proof)

    def verify_receipt_inclusion(
        self, proof: ReceiptProof, block_number: int
    ) -> bool:
        """Check a receipt proof against a tracked header's receipts root.

        This is how a worker confirms a payout *outcome* (status, gas,
        reward logs) landed on the canonical chain without replaying
        state: a proof anchored in a reorged-away header fails because
        :meth:`header_by_number` only walks the current head's ancestry.
        """
        header = self.header_by_number(block_number)
        if header is None:
            return False
        return verify_receipt_proof(header.receipts_root, proof)


def serve_inclusion_proof(node: Node, tx_hash: bytes) -> Optional[tuple]:
    """Full-node side: produce (proof, block_number) for a mined tx."""
    receipt = node.get_receipt(tx_hash)
    if receipt is None or receipt.block_number is None:
        return None
    block: Optional[Block] = node.block_by_number(receipt.block_number)
    if block is None:
        return None
    hashes = [stx.tx_hash for stx in block.transactions]
    try:
        index = hashes.index(tx_hash)
    except ValueError:
        return None
    return prove_inclusion(hashes, index), block.number


def serve_receipt_proof(node: Node, tx_hash: bytes) -> Optional[tuple]:
    """Full-node side: produce (receipt proof, block_number) for a tx.

    Returns ``None`` if the transaction's receipt is unknown or no
    longer on the node's canonical chain (e.g. after a reorg).
    """
    receipt = node.get_receipt(tx_hash)
    if receipt is None or receipt.block_number is None:
        return None
    block = node.block_by_number(receipt.block_number)
    if block is None:
        return None
    receipts = node.receipts_for_block(block.block_hash)
    if receipts is None:
        return None
    for index, candidate in enumerate(receipts):
        if candidate.tx_hash == tx_hash:
            return prove_receipt_inclusion(list(receipts), index), block.number
    return None
