"""Consensus engines: proof-of-authority and simulated proof-of-work.

The paper's test net runs two mining PCs and two validating full nodes;
the default engine here is round-robin PoA over the miner set (block
producer authenticity via an ECDSA seal), with a bounded-difficulty
simulated PoW available for tests that need probabilistic sealing.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro import observability as obs
from repro.crypto import ecdsa
from repro.crypto.hashing import keccak256
from repro.errors import InvalidBlockError
from repro.chain.block import BlockHeader


class ConsensusEngine(abc.ABC):
    """Seals and validates block headers."""

    @abc.abstractmethod
    def expected_proposer(self, height: int) -> Optional[bytes]:
        """The only address allowed to seal ``height`` (None = anyone)."""

    @abc.abstractmethod
    def seal(self, header: BlockHeader, miner_key: ecdsa.ECDSAKeyPair) -> bytes:
        """Produce the seal bytes for an unsealed header."""

    @abc.abstractmethod
    def validate_seal(self, header: BlockHeader) -> None:
        """Raise :class:`InvalidBlockError` if a sealed header is invalid."""


class PoAEngine(ConsensusEngine):
    """Round-robin proof-of-authority among a fixed validator set."""

    def __init__(self, validators: Sequence[bytes]) -> None:
        if not validators:
            raise ValueError("PoA requires at least one validator")
        self.validators: List[bytes] = list(validators)

    def expected_proposer(self, height: int) -> bytes:
        return self.validators[height % len(self.validators)]

    def seal(self, header: BlockHeader, miner_key: ecdsa.ECDSAKeyPair) -> bytes:
        if miner_key.address() != self.expected_proposer(header.number):
            raise InvalidBlockError("not this validator's turn")
        return miner_key.sign(header.hash_without_seal()).to_bytes()

    def validate_seal(self, header: BlockHeader) -> None:
        expected = self.expected_proposer(header.number)
        if header.miner != expected:
            obs.count("consensus.seal_rejections")
            raise InvalidBlockError(
                f"block {header.number} sealed by the wrong validator"
            )
        try:
            signature = ecdsa.ECDSASignature.from_bytes(header.seal)
            signer = ecdsa.recover_address(header.hash_without_seal(), signature)
        except Exception as exc:  # noqa: BLE001 - any failure is invalid
            obs.count("consensus.seal_rejections")
            raise InvalidBlockError(f"unreadable PoA seal: {exc}") from exc
        if signer != expected:
            obs.count("consensus.seal_rejections")
            raise InvalidBlockError("PoA seal signed by the wrong key")
        obs.count("consensus.seals_validated")


class SimulatedPoWEngine(ConsensusEngine):
    """Hash-below-target proof-of-work with test-scale difficulty."""

    def __init__(self, difficulty: int = 1 << 8) -> None:
        if difficulty < 1:
            raise ValueError("difficulty must be positive")
        self.difficulty = difficulty
        self._target = (1 << 256) // difficulty

    def expected_proposer(self, height: int) -> Optional[bytes]:
        return None  # anyone with enough hash power

    def seal(self, header: BlockHeader, miner_key: ecdsa.ECDSAKeyPair) -> bytes:
        base = header.hash_without_seal()
        nonce = 0
        while True:
            seal = nonce.to_bytes(8, "big")
            if int.from_bytes(keccak256(base + seal), "big") < self._target:
                return seal
            nonce += 1

    def validate_seal(self, header: BlockHeader) -> None:
        digest = keccak256(header.hash_without_seal() + header.seal)
        if int.from_bytes(digest, "big") >= self._target:
            obs.count("consensus.seal_rejections")
            raise InvalidBlockError("PoW seal does not meet the target")
        obs.count("consensus.seals_validated")
