"""RSA-OAEP padding (RFC 8017 section 7.1) with SHA-256/MGF1."""

from __future__ import annotations

import random
from typing import Optional

from repro.crypto.hashing import sha256
from repro.crypto.mgf import mgf1, xor_bytes
from repro.errors import DecryptionError

_HASH_LEN = 32


def max_message_length(modulus_bytes: int) -> int:
    """Largest plaintext OAEP can carry in one ``modulus_bytes`` block."""
    return modulus_bytes - 2 * _HASH_LEN - 2


def oaep_encode(message: bytes, modulus_bytes: int, label: bytes = b"",
                rng: Optional[random.Random] = None) -> bytes:
    """EME-OAEP encode ``message`` into a ``modulus_bytes``-long block."""
    if len(message) > max_message_length(modulus_bytes):
        raise ValueError(
            f"message too long for OAEP: {len(message)} > "
            f"{max_message_length(modulus_bytes)}"
        )
    rng = rng or random.SystemRandom()
    l_hash = sha256(label)
    ps = b"\x00" * (modulus_bytes - len(message) - 2 * _HASH_LEN - 2)
    db = l_hash + ps + b"\x01" + message
    seed = rng.getrandbits(8 * _HASH_LEN).to_bytes(_HASH_LEN, "big")
    masked_db = xor_bytes(db, mgf1(seed, len(db)))
    masked_seed = xor_bytes(seed, mgf1(masked_db, _HASH_LEN))
    return b"\x00" + masked_seed + masked_db


def oaep_decode(em: bytes, modulus_bytes: int, label: bytes = b"") -> bytes:
    """EME-OAEP decode; raises :class:`DecryptionError` on any padding fault.

    All padding checks are accumulated into a single flag before raising
    so the error does not reveal *which* check failed (mitigating
    Manger-style padding oracles to the extent a Python sim can).
    """
    if len(em) != modulus_bytes or modulus_bytes < 2 * _HASH_LEN + 2:
        raise DecryptionError("OAEP block has the wrong size")
    l_hash = sha256(label)
    y, masked_seed, masked_db = em[0], em[1 : 1 + _HASH_LEN], em[1 + _HASH_LEN :]
    seed = xor_bytes(masked_seed, mgf1(masked_db, _HASH_LEN))
    db = xor_bytes(masked_db, mgf1(seed, len(masked_db)))
    bad = y != 0
    bad |= db[:_HASH_LEN] != l_hash
    separator = -1
    for index in range(_HASH_LEN, len(db)):
        byte = db[index]
        if byte == 0x01 and separator < 0:
            separator = index
        elif byte != 0x00 and separator < 0:
            bad = True
            break
    bad |= separator < 0
    if bad:
        raise DecryptionError("OAEP decoding failed")
    return db[separator + 1 :]
