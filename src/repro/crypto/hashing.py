"""Hash-function front ends used across the library.

SHA-256 is the paper's DApp-layer hash; Keccak-256 backs Ethereum-style
addresses in the chain substrate.  ``hash_to_field`` maps arbitrary
bytes into the BN128 scalar field for circuit public inputs.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.crypto.keccak import keccak_256


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts``."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.digest()


def keccak256(*parts: bytes) -> bytes:
    """Keccak-256 (Ethereum variant) over the concatenation of ``parts``."""
    return keccak_256(b"".join(parts))


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA-256, used by RFC-6979 deterministic ECDSA nonces."""
    return _hmac.new(key, message, hashlib.sha256).digest()


def hash_to_int(data: bytes, modulus: int, domain: bytes = b"") -> int:
    """Hash ``data`` to an integer in ``[0, modulus)`` with negligible bias.

    Expands to 2x the modulus width via counter-mode SHA-256 before
    reducing, so the output distribution is statistically close to
    uniform (bias < 2^-256 for a 254-bit modulus).
    """
    if modulus <= 1:
        raise ValueError("modulus must exceed 1")
    width_bytes = 2 * ((modulus.bit_length() + 7) // 8)
    stream = b""
    counter = 0
    while len(stream) < width_bytes:
        stream += sha256(domain, counter.to_bytes(4, "big"), data)
        counter += 1
    return int.from_bytes(stream[:width_bytes], "big") % modulus
