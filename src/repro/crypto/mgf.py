"""MGF1 mask generation (RFC 8017 B.2.1), shared by OAEP and PSS."""

from __future__ import annotations

from repro.crypto.hashing import sha256


def mgf1(seed: bytes, length: int) -> bytes:
    """Generate a ``length``-byte mask from ``seed`` using SHA-256."""
    if length < 0:
        raise ValueError("mask length must be non-negative")
    if length > (1 << 32) * 32:
        raise ValueError("mask too long for MGF1")
    output = bytearray()
    counter = 0
    while len(output) < length:
        output.extend(sha256(seed, counter.to_bytes(4, "big")))
        counter += 1
    return bytes(output[:length])


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("xor operands must have equal length")
    return bytes(x ^ y for x, y in zip(a, b))
