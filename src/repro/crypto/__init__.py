"""Cryptographic substrate, implemented from scratch where the paper
names a primitive (Keccak-256, RSA-OAEP-2048, RSA signatures, secp256k1
ECDSA).  SHA-256 comes from the standard library.

Public surface:

- :func:`repro.crypto.hashing.sha256` / :func:`keccak256` — hash functions.
- :class:`repro.crypto.rsa.RSAKeyPair` with OAEP encryption and PSS
  signatures (the DApp-layer primitives named in Section VI).
- :class:`repro.crypto.ecdsa.ECDSAKeyPair` — secp256k1 signatures used by
  the blockchain substrate for transaction authentication.
"""

from repro.crypto.hashing import keccak256, sha256
from repro.crypto.ecdsa import ECDSAKeyPair, ECDSASignature
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey

__all__ = [
    "keccak256",
    "sha256",
    "ECDSAKeyPair",
    "ECDSASignature",
    "RSAKeyPair",
    "RSAPublicKey",
]
