"""Keccak-256, implemented from the Keccak-f[1600] permutation.

Ethereum addresses are the low 20 bytes of Keccak-256 of the public key,
so the chain substrate needs the *original* Keccak padding (0x01), not
the FIPS-202 SHA-3 padding (0x06).  This module implements the sponge
from first principles; it is validated against known Ethereum test
vectors in the test suite.
"""

from __future__ import annotations

_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets r[x][y] for the rho step.
_ROTATIONS = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)

_MASK = (1 << 64) - 1


def _rotl(value: int, shift: int) -> int:
    shift %= 64
    return ((value << shift) | (value >> (64 - shift))) & _MASK


def keccak_f1600(state: list[int]) -> list[int]:
    """Apply the 24-round Keccak-f[1600] permutation to a 5x5 lane state.

    ``state`` is a flat list of 25 64-bit lanes indexed as ``x + 5*y``.

    The theta/rho/pi/chi steps are fully unrolled with the state held
    in locals: this permutation is the chain's hashing workhorse
    (every tx hash, address, block hash, and trie node), and the
    rolled-loop version spends most of its time on list indexing and
    call overhead.  Unrolling is a ~3x speedup in pure Python.
    """
    M = _MASK
    (L0, L1, L2, L3, L4, L5, L6, L7, L8, L9, L10, L11, L12,
     L13, L14, L15, L16, L17, L18, L19, L20, L21, L22, L23, L24) = state
    for rc in _ROUND_CONSTANTS:
        # theta
        c0 = L0 ^ L5 ^ L10 ^ L15 ^ L20
        c1 = L1 ^ L6 ^ L11 ^ L16 ^ L21
        c2 = L2 ^ L7 ^ L12 ^ L17 ^ L22
        c3 = L3 ^ L8 ^ L13 ^ L18 ^ L23
        c4 = L4 ^ L9 ^ L14 ^ L19 ^ L24
        d0 = c4 ^ (((c1 << 1) | (c1 >> 63)) & M)
        d1 = c0 ^ (((c2 << 1) | (c2 >> 63)) & M)
        d2 = c1 ^ (((c3 << 1) | (c3 >> 63)) & M)
        d3 = c2 ^ (((c4 << 1) | (c4 >> 63)) & M)
        d4 = c3 ^ (((c0 << 1) | (c0 >> 63)) & M)
        # rho + pi (b[y + 5*((2x+3y)%5)] = rotl(lane[x+5y], r[x][y]))
        t = L0 ^ d0
        b0 = t
        t = L5 ^ d0
        b16 = ((t << 36) | (t >> 28)) & M
        t = L10 ^ d0
        b7 = ((t << 3) | (t >> 61)) & M
        t = L15 ^ d0
        b23 = ((t << 41) | (t >> 23)) & M
        t = L20 ^ d0
        b14 = ((t << 18) | (t >> 46)) & M
        t = L1 ^ d1
        b10 = ((t << 1) | (t >> 63)) & M
        t = L6 ^ d1
        b1 = ((t << 44) | (t >> 20)) & M
        t = L11 ^ d1
        b17 = ((t << 10) | (t >> 54)) & M
        t = L16 ^ d1
        b8 = ((t << 45) | (t >> 19)) & M
        t = L21 ^ d1
        b24 = ((t << 2) | (t >> 62)) & M
        t = L2 ^ d2
        b20 = ((t << 62) | (t >> 2)) & M
        t = L7 ^ d2
        b11 = ((t << 6) | (t >> 58)) & M
        t = L12 ^ d2
        b2 = ((t << 43) | (t >> 21)) & M
        t = L17 ^ d2
        b18 = ((t << 15) | (t >> 49)) & M
        t = L22 ^ d2
        b9 = ((t << 61) | (t >> 3)) & M
        t = L3 ^ d3
        b5 = ((t << 28) | (t >> 36)) & M
        t = L8 ^ d3
        b21 = ((t << 55) | (t >> 9)) & M
        t = L13 ^ d3
        b12 = ((t << 25) | (t >> 39)) & M
        t = L18 ^ d3
        b3 = ((t << 21) | (t >> 43)) & M
        t = L23 ^ d3
        b19 = ((t << 56) | (t >> 8)) & M
        t = L4 ^ d4
        b15 = ((t << 27) | (t >> 37)) & M
        t = L9 ^ d4
        b6 = ((t << 20) | (t >> 44)) & M
        t = L14 ^ d4
        b22 = ((t << 39) | (t >> 25)) & M
        t = L19 ^ d4
        b13 = ((t << 8) | (t >> 56)) & M
        t = L24 ^ d4
        b4 = ((t << 14) | (t >> 50)) & M
        # chi ((~b) & M == b ^ M for 64-bit lanes) + iota on L0
        L0 = b0 ^ ((b1 ^ M) & b2) ^ rc
        L1 = b1 ^ ((b2 ^ M) & b3)
        L2 = b2 ^ ((b3 ^ M) & b4)
        L3 = b3 ^ ((b4 ^ M) & b0)
        L4 = b4 ^ ((b0 ^ M) & b1)
        L5 = b5 ^ ((b6 ^ M) & b7)
        L6 = b6 ^ ((b7 ^ M) & b8)
        L7 = b7 ^ ((b8 ^ M) & b9)
        L8 = b8 ^ ((b9 ^ M) & b5)
        L9 = b9 ^ ((b5 ^ M) & b6)
        L10 = b10 ^ ((b11 ^ M) & b12)
        L11 = b11 ^ ((b12 ^ M) & b13)
        L12 = b12 ^ ((b13 ^ M) & b14)
        L13 = b13 ^ ((b14 ^ M) & b10)
        L14 = b14 ^ ((b10 ^ M) & b11)
        L15 = b15 ^ ((b16 ^ M) & b17)
        L16 = b16 ^ ((b17 ^ M) & b18)
        L17 = b17 ^ ((b18 ^ M) & b19)
        L18 = b18 ^ ((b19 ^ M) & b15)
        L19 = b19 ^ ((b15 ^ M) & b16)
        L20 = b20 ^ ((b21 ^ M) & b22)
        L21 = b21 ^ ((b22 ^ M) & b23)
        L22 = b22 ^ ((b23 ^ M) & b24)
        L23 = b23 ^ ((b24 ^ M) & b20)
        L24 = b24 ^ ((b20 ^ M) & b21)
    return [L0, L1, L2, L3, L4, L5, L6, L7, L8, L9, L10, L11, L12,
            L13, L14, L15, L16, L17, L18, L19, L20, L21, L22, L23, L24]


class KeccakSponge:
    """Incremental Keccak sponge with the original 0x01 domain padding."""

    def __init__(self, rate_bytes: int, digest_bytes: int) -> None:
        if rate_bytes <= 0 or rate_bytes >= 200 or rate_bytes % 8 != 0:
            raise ValueError("rate must be a positive multiple of 8 below 200")
        self._rate = rate_bytes
        self._digest_size = digest_bytes
        self._state = [0] * 25
        self._buffer = bytearray()
        self._finalized = False

    def update(self, data: bytes) -> "KeccakSponge":
        if self._finalized:
            raise ValueError("cannot update a finalized sponge")
        self._buffer.extend(data)
        while len(self._buffer) >= self._rate:
            block = bytes(self._buffer[: self._rate])
            del self._buffer[: self._rate]
            self._absorb(block)
        return self

    def _absorb(self, block: bytes) -> None:
        for i in range(0, len(block), 8):
            lane_index = i // 8
            self._state[lane_index] ^= int.from_bytes(block[i : i + 8], "little")
        self._state = keccak_f1600(self._state)

    def digest(self) -> bytes:
        # Pad: Keccak pad10*1 with domain bit 0x01.
        padded = bytearray(self._buffer)
        pad_len = self._rate - (len(padded) % self._rate)
        padding = bytearray(pad_len)
        padding[0] = 0x01
        padding[-1] |= 0x80
        padded.extend(padding)
        state = list(self._state)
        for offset in range(0, len(padded), self._rate):
            block = padded[offset : offset + self._rate]
            for i in range(0, self._rate, 8):
                state[i // 8] ^= int.from_bytes(block[i : i + 8], "little")
            state = keccak_f1600(state)
        # Squeeze
        output = bytearray()
        while len(output) < self._digest_size:
            for lane in state[: self._rate // 8]:
                output.extend(lane.to_bytes(8, "little"))
                if len(output) >= self._digest_size:
                    break
            if len(output) < self._digest_size:
                state = keccak_f1600(state)
        return bytes(output[: self._digest_size])


def keccak_256(data: bytes) -> bytes:
    """One-shot Keccak-256 (rate 136, original padding) of ``data``."""
    return KeccakSponge(rate_bytes=136, digest_bytes=32).update(data).digest()
