"""Keccak-256, implemented from the Keccak-f[1600] permutation.

Ethereum addresses are the low 20 bytes of Keccak-256 of the public key,
so the chain substrate needs the *original* Keccak padding (0x01), not
the FIPS-202 SHA-3 padding (0x06).  This module implements the sponge
from first principles; it is validated against known Ethereum test
vectors in the test suite.
"""

from __future__ import annotations

_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets r[x][y] for the rho step.
_ROTATIONS = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)

_MASK = (1 << 64) - 1


def _rotl(value: int, shift: int) -> int:
    shift %= 64
    return ((value << shift) | (value >> (64 - shift))) & _MASK


def keccak_f1600(state: list[int]) -> list[int]:
    """Apply the 24-round Keccak-f[1600] permutation to a 5x5 lane state.

    ``state`` is a flat list of 25 64-bit lanes indexed as ``x + 5*y``.
    """
    lanes = list(state)
    for round_constant in _ROUND_CONSTANTS:
        # theta
        c = [lanes[x] ^ lanes[x + 5] ^ lanes[x + 10] ^ lanes[x + 15] ^ lanes[x + 20]
             for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                lanes[x + 5 * y] ^= d[x]
        # rho + pi
        b = [0] * 25
        for x in range(5):
            for y in range(5):
                b[y + 5 * ((2 * x + 3 * y) % 5)] = _rotl(
                    lanes[x + 5 * y], _ROTATIONS[x][y]
                )
        # chi
        for x in range(5):
            for y in range(5):
                lanes[x + 5 * y] = b[x + 5 * y] ^ (
                    (~b[(x + 1) % 5 + 5 * y] & _MASK) & b[(x + 2) % 5 + 5 * y]
                )
        # iota
        lanes[0] ^= round_constant
    return lanes


class KeccakSponge:
    """Incremental Keccak sponge with the original 0x01 domain padding."""

    def __init__(self, rate_bytes: int, digest_bytes: int) -> None:
        if rate_bytes <= 0 or rate_bytes >= 200 or rate_bytes % 8 != 0:
            raise ValueError("rate must be a positive multiple of 8 below 200")
        self._rate = rate_bytes
        self._digest_size = digest_bytes
        self._state = [0] * 25
        self._buffer = bytearray()
        self._finalized = False

    def update(self, data: bytes) -> "KeccakSponge":
        if self._finalized:
            raise ValueError("cannot update a finalized sponge")
        self._buffer.extend(data)
        while len(self._buffer) >= self._rate:
            block = bytes(self._buffer[: self._rate])
            del self._buffer[: self._rate]
            self._absorb(block)
        return self

    def _absorb(self, block: bytes) -> None:
        for i in range(0, len(block), 8):
            lane_index = i // 8
            self._state[lane_index] ^= int.from_bytes(block[i : i + 8], "little")
        self._state = keccak_f1600(self._state)

    def digest(self) -> bytes:
        # Pad: Keccak pad10*1 with domain bit 0x01.
        padded = bytearray(self._buffer)
        pad_len = self._rate - (len(padded) % self._rate)
        padding = bytearray(pad_len)
        padding[0] = 0x01
        padding[-1] |= 0x80
        padded.extend(padding)
        state = list(self._state)
        for offset in range(0, len(padded), self._rate):
            block = padded[offset : offset + self._rate]
            for i in range(0, self._rate, 8):
                state[i // 8] ^= int.from_bytes(block[i : i + 8], "little")
            state = keccak_f1600(state)
        # Squeeze
        output = bytearray()
        while len(output) < self._digest_size:
            for lane in state[: self._rate // 8]:
                output.extend(lane.to_bytes(8, "little"))
                if len(output) >= self._digest_size:
                    break
            if len(output) < self._digest_size:
                state = keccak_f1600(state)
        return bytes(output[: self._digest_size])


def keccak_256(data: bytes) -> bytes:
    """One-shot Keccak-256 (rate 136, original padding) of ``data``."""
    return KeccakSponge(rate_bytes=136, digest_bytes=32).update(data).digest()
