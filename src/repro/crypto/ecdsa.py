"""secp256k1 ECDSA from scratch.

This is the Ethereum transaction-signature algorithm: Jacobian-coordinate
point arithmetic, RFC-6979 deterministic nonces, low-s normalization and
public-key recovery (so the chain substrate can derive sender addresses
from signatures exactly the way Ethereum does).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.hashing import hmac_sha256, keccak256, sha256
from repro.errors import SignatureError
from repro.zksnark.bn128.glv import GLVParams, cube_root_of_unity

# secp256k1 domain parameters.
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

Point = Optional[Tuple[int, int]]  # None is the point at infinity.


def is_on_curve(point: Point) -> bool:
    """Check whether an affine point satisfies y^2 = x^3 + 7 (mod p)."""
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - B) % P == 0


def _to_jacobian(point: Point) -> Tuple[int, int, int]:
    if point is None:
        return (0, 1, 0)
    return (point[0], point[1], 1)


def _from_jacobian(point: Tuple[int, int, int]) -> Point:
    x, y, z = point
    if z == 0:
        return None
    z_inv = pow(z, -1, P)
    z_inv2 = (z_inv * z_inv) % P
    return ((x * z_inv2) % P, (y * z_inv2 * z_inv) % P)


def _jacobian_double(pt: Tuple[int, int, int]) -> Tuple[int, int, int]:
    x, y, z = pt
    if y == 0 or z == 0:
        return (0, 1, 0)
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    m = (3 * x * x) % P  # a == 0 for secp256k1
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return (nx, ny, nz)


def _jacobian_add(p1: Tuple[int, int, int], p2: Tuple[int, int, int]) -> Tuple[int, int, int]:
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1sq = (z1 * z1) % P
    z2sq = (z2 * z2) % P
    u1 = (x1 * z2sq) % P
    u2 = (x2 * z1sq) % P
    s1 = (y1 * z2sq * z2) % P
    s2 = (y2 * z1sq * z1) % P
    if u1 == u2:
        if s1 != s2:
            return (0, 1, 0)
        return _jacobian_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    h2 = (h * h) % P
    h3 = (h * h2) % P
    u1h2 = (u1 * h2) % P
    nx = (r * r - h3 - 2 * u1h2) % P
    ny = (r * (u1h2 - nx) - s1 * h3) % P
    nz = (h * z1 * z2) % P
    return (nx, ny, nz)


def point_add(p1: Point, p2: Point) -> Point:
    """Affine point addition (via Jacobian coordinates)."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p1), _to_jacobian(p2)))


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


#: GLV toggle for arbitrary-point multiplication (recovery/verification).
_GLV_ENABLED = _env_flag("REPRO_ECDSA_GLV", True)

_GLV: Optional[Tuple[GLVParams, int]] = None


def set_glv(enabled: bool) -> bool:
    """Flip the secp256k1 GLV fast path; returns the prior state."""
    global _GLV_ENABLED
    prior = _GLV_ENABLED
    _GLV_ENABLED = enabled
    return prior


def _glv_params() -> Tuple[GLVParams, int]:
    """Lazily paired (GLV parameters, β) with φ(G) = λ·G verified.

    secp256k1 has p ≡ 1 (mod 3) and n ≡ 1 (mod 3), so both cube roots
    exist; λ pairs with exactly one of the two β candidates, fixed by
    checking the endomorphism against the windowed ladder once.
    """
    global _GLV
    if _GLV is None:
        params = GLVParams.for_order(N)
        target = _windowed_mul(params.lam, GENERATOR)
        beta = cube_root_of_unity(P)
        if (beta * GX % P, GY) != target:
            beta = beta * beta % P
        if (beta * GX % P, GY) != target:
            raise ArithmeticError("no cube root of unity realizes phi(G) = lam*G")
        _GLV = (params, beta)
    return _GLV


def _windowed_mul(scalar: int, point: Point) -> Point:
    """4-bit fixed-window ladder (the pre-GLV path; also the oracle)."""
    base = _to_jacobian(point)
    table: list = [None] * 16
    table[1] = base
    table[2] = _jacobian_double(base)
    for digit in range(3, 16):
        table[digit] = _jacobian_add(table[digit - 1], base)
    result = (0, 1, 0)
    for shift in range(((scalar.bit_length() + 3) & ~3) - 4, -1, -4):
        if result[2]:
            result = _jacobian_double(
                _jacobian_double(_jacobian_double(_jacobian_double(result)))
            )
        digit = (scalar >> shift) & 15
        if digit:
            result = _jacobian_add(result, table[digit])
    return _from_jacobian(result)


def _glv_mul(scalar: int, point: Point) -> Point:
    """GLV split + interleaved Shamir ladder: half the doubling count."""
    params, beta = _glv_params()
    k1, k2 = params.decompose(scalar)
    x, y = point
    p1 = (x, y if k1 > 0 else -y % P, 1)
    p2 = (x * beta % P, y if k2 > 0 else -y % P, 1)
    k1, k2 = abs(k1), abs(k2)
    p12 = _jacobian_add(p1, p2)
    acc = (0, 1, 0)
    for i in range(max(k1.bit_length(), k2.bit_length()) - 1, -1, -1):
        acc = _jacobian_double(acc)
        b1 = (k1 >> i) & 1
        b2 = (k2 >> i) & 1
        if b1:
            acc = _jacobian_add(acc, p12 if b2 else p1)
        elif b2:
            acc = _jacobian_add(acc, p2)
    return _from_jacobian(acc)


def point_mul(scalar: int, point: Point) -> Point:
    """Scalar multiplication on secp256k1.

    Generator multiples (every signature, public key, and half of each
    recovery) take a fixed-base window table: 64 pre-doubled windows
    turn ~256 doubles + ~128 adds into at most 64 adds.  Arbitrary
    points (signature recovery, verification) use GLV endomorphism
    decomposition when enabled — two ~128-bit halves in one interleaved
    ladder — and otherwise a 4-bit window ladder, which stays around as
    the differential oracle for the GLV path.
    """
    scalar %= N
    if scalar == 0 or point is None:
        return None
    if point == GENERATOR:
        return _generator_mul(scalar)
    if _GLV_ENABLED and scalar.bit_length() > 130:
        return _glv_mul(scalar, point)
    return _windowed_mul(scalar, point)


GENERATOR: Point = (GX, GY)

_GENERATOR_TABLE: list | None = None


def _generator_table() -> list:
    """table[w][d] = (d << 4w) * G in Jacobian coordinates (lazy, cached)."""
    global _GENERATOR_TABLE
    if _GENERATOR_TABLE is None:
        table = []
        base = _to_jacobian(GENERATOR)
        for _ in range(64):
            row: list = [None] * 16
            acc = (0, 1, 0)
            for digit in range(1, 16):
                acc = _jacobian_add(acc, base)
                row[digit] = acc
            table.append(row)
            base = _jacobian_double(_jacobian_double(_jacobian_double(_jacobian_double(base))))
        _GENERATOR_TABLE = table
    return _GENERATOR_TABLE


def _generator_mul(scalar: int) -> Point:
    """Fixed-base multiplication of the generator (scalar in [1, N))."""
    table = _generator_table()
    result = (0, 1, 0)
    window = 0
    while scalar:
        digit = scalar & 15
        if digit:
            result = _jacobian_add(result, table[window][digit])
        scalar >>= 4
        window += 1
    return _from_jacobian(result)


@dataclass(frozen=True)
class ECDSASignature:
    """An ECDSA signature with the recovery id ``v`` (Ethereum style)."""

    r: int
    s: int
    v: int

    def to_bytes(self) -> bytes:
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big") + bytes([self.v])

    @classmethod
    def from_bytes(cls, data: bytes) -> "ECDSASignature":
        if len(data) != 65:
            raise SignatureError("serialized signature must be 65 bytes")
        return cls(
            r=int.from_bytes(data[:32], "big"),
            s=int.from_bytes(data[32:64], "big"),
            v=data[64],
        )


def _rfc6979_nonce(private_key: int, message_hash: bytes) -> int:
    """Deterministic nonce per RFC 6979 (HMAC-SHA-256 construction)."""
    holder = private_key.to_bytes(32, "big")
    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac_sha256(k, v + b"\x00" + holder + message_hash)
    v = hmac_sha256(k, v)
    k = hmac_sha256(k, v + b"\x01" + holder + message_hash)
    v = hmac_sha256(k, v)
    while True:
        v = hmac_sha256(k, v)
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < N:
            return candidate
        k = hmac_sha256(k, v + b"\x00")
        v = hmac_sha256(k, v)


class ECDSAKeyPair:
    """A secp256k1 keypair for blockchain transaction signing."""

    def __init__(self, private_key: int) -> None:
        if not 1 <= private_key < N:
            raise SignatureError("private key out of range")
        self.private_key = private_key
        self.public_key: Tuple[int, int] = point_mul(private_key, GENERATOR)  # type: ignore[assignment]

    @classmethod
    def from_seed(cls, seed: bytes) -> "ECDSAKeyPair":
        """Derive a keypair deterministically from arbitrary seed bytes."""
        candidate = int.from_bytes(sha256(b"ecdsa-seed", seed), "big") % N
        if candidate == 0:
            candidate = 1
        return cls(candidate)

    def public_key_bytes(self) -> bytes:
        """Uncompressed public key (64 bytes, no 0x04 prefix — Ethereum style)."""
        x, y = self.public_key
        return x.to_bytes(32, "big") + y.to_bytes(32, "big")

    def address(self) -> bytes:
        """Ethereum-style 20-byte address: keccak256(pubkey)[12:]."""
        return keccak256(self.public_key_bytes())[12:]

    def sign(self, message_hash: bytes) -> ECDSASignature:
        """Sign a 32-byte message hash; low-s normalized, recoverable."""
        if len(message_hash) != 32:
            raise SignatureError("ECDSA signs 32-byte hashes")
        z = int.from_bytes(message_hash, "big")
        k = _rfc6979_nonce(self.private_key, message_hash)
        while True:
            point = point_mul(k, GENERATOR)
            assert point is not None
            r = point[0] % N
            s = (pow(k, -1, N) * (z + r * self.private_key)) % N
            if r == 0 or s == 0:
                k = (k + 1) % N or 1
                continue
            v = point[1] & 1
            if point[0] >= N:  # astronomically rare; affects recovery id
                v += 2
            if s > N // 2:
                s = N - s
                v ^= 1
            return ECDSASignature(r=r, s=s, v=v)


def verify(public_key: Tuple[int, int], message_hash: bytes, sig: ECDSASignature) -> bool:
    """Verify a signature against an explicit public key."""
    if not (1 <= sig.r < N and 1 <= sig.s < N):
        return False
    if not is_on_curve(public_key):
        return False
    z = int.from_bytes(message_hash, "big")
    w = pow(sig.s, -1, N)
    u1 = (z * w) % N
    u2 = (sig.r * w) % N
    point = point_add(point_mul(u1, GENERATOR), point_mul(u2, public_key))
    if point is None:
        return False
    return point[0] % N == sig.r


def recover_public_key(message_hash: bytes, sig: ECDSASignature) -> Tuple[int, int]:
    """Recover the signer's public key from a recoverable signature."""
    if not (1 <= sig.r < N and 1 <= sig.s < N):
        raise SignatureError("signature components out of range")
    x = sig.r + (N if sig.v >= 2 else 0)
    if x >= P:
        raise SignatureError("invalid recovery x-coordinate")
    y_sq = (pow(x, 3, P) + B) % P
    y = pow(y_sq, (P + 1) // 4, P)
    if (y * y) % P != y_sq:
        raise SignatureError("point decompression failed")
    if y & 1 != sig.v & 1:
        y = P - y
    r_point: Point = (x, y)
    z = int.from_bytes(message_hash, "big")
    r_inv = pow(sig.r, -1, N)
    # Q = r^-1 (s*R - z*G)
    candidate = point_mul(
        r_inv,
        point_add(point_mul(sig.s, r_point), point_mul(N - (z % N), GENERATOR)),
    )
    if candidate is None or not verify(candidate, message_hash, sig):
        raise SignatureError("public-key recovery produced an invalid key")
    return candidate


def recover_address(message_hash: bytes, sig: ECDSASignature) -> bytes:
    """Recover the 20-byte Ethereum-style sender address."""
    x, y = recover_public_key(message_hash, sig)
    return keccak256(x.to_bytes(32, "big") + y.to_bytes(32, "big"))[12:]
