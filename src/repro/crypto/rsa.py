"""RSA from scratch: keygen, OAEP encryption, PSS signatures.

The paper instantiates answer encryption as RSA-OAEP-2048 and the
DApp-layer signature as an RSA signature (Section VI).  This module
provides both on top of textbook RSA with CRT-accelerated private
operations.  Padding lives in :mod:`repro.crypto.oaep`; this module
exposes the user-facing key objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto import oaep
from repro.crypto.hashing import sha256
from repro.crypto.mgf import mgf1, xor_bytes
from repro.crypto.primes import generate_safe_rsa_primes, inverse_mod
from repro.errors import CryptoError, SignatureError

_DEFAULT_EXPONENT = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_size(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def encrypt(self, plaintext: bytes, rng: Optional[random.Random] = None,
                label: bytes = b"") -> bytes:
        """RSA-OAEP encrypt ``plaintext``; output is one modulus-width block."""
        em = oaep.oaep_encode(plaintext, self.byte_size, label=label, rng=rng)
        m = int.from_bytes(em, "big")
        c = pow(m, self.e, self.n)
        return c.to_bytes(self.byte_size, "big")

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify an RSASSA-PSS signature over ``message``."""
        if len(signature) != self.byte_size:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        em = pow(s, self.e, self.n).to_bytes(self.byte_size, "big")
        return _pss_verify(message, em, self.n.bit_length() - 1)

    def fingerprint(self) -> bytes:
        """A stable 32-byte identifier for the key."""
        return sha256(b"rsa-pub", self.n.to_bytes(self.byte_size, "big"),
                      self.e.to_bytes(4, "big"))


class RSAKeyPair:
    """An RSA keypair with CRT-accelerated decryption and signing."""

    def __init__(self, p: int, q: int, e: int = _DEFAULT_EXPONENT) -> None:
        if p == q:
            raise CryptoError("RSA primes must be distinct")
        self._p = p
        self._q = q
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = inverse_mod(e, phi)
        except ValueError as exc:
            raise CryptoError("public exponent not invertible mod phi(n)") from exc
        self._d = d
        self._dp = d % (p - 1)
        self._dq = d % (q - 1)
        self._qinv = inverse_mod(q, p)
        self.public_key = RSAPublicKey(n=n, e=e)

    @classmethod
    def generate(cls, bits: int = 2048, rng: Optional[random.Random] = None,
                 e: int = _DEFAULT_EXPONENT) -> "RSAKeyPair":
        """Generate a fresh keypair with an ``bits``-bit modulus."""
        if bits % 2 != 0:
            raise ValueError("modulus width must be even")
        p, q = generate_safe_rsa_primes(bits // 2, rng)
        return cls(p, q, e)

    def _private_op(self, c: int) -> int:
        # CRT: ~4x faster than a single pow mod n.
        m1 = pow(c % self._p, self._dp, self._p)
        m2 = pow(c % self._q, self._dq, self._q)
        h = (self._qinv * (m1 - m2)) % self._p
        return m2 + h * self._q

    def decrypt(self, ciphertext: bytes, label: bytes = b"") -> bytes:
        """RSA-OAEP decrypt one ciphertext block."""
        k = self.public_key.byte_size
        if len(ciphertext) != k:
            raise CryptoError("ciphertext length does not match modulus")
        c = int.from_bytes(ciphertext, "big")
        if c >= self.public_key.n:
            raise CryptoError("ciphertext representative out of range")
        em = self._private_op(c).to_bytes(k, "big")
        return oaep.oaep_decode(em, k, label=label)

    def sign(self, message: bytes, rng: Optional[random.Random] = None) -> bytes:
        """Produce an RSASSA-PSS signature over ``message``."""
        em_bits = self.public_key.n.bit_length() - 1
        em = _pss_encode(message, em_bits, rng or random.SystemRandom())
        m = int.from_bytes(em, "big")
        s = self._private_op(m)
        return s.to_bytes(self.public_key.byte_size, "big")


_PSS_SALT_LEN = 32


def _pss_encode(message: bytes, em_bits: int, rng: random.Random) -> bytes:
    em_len = (em_bits + 7) // 8
    m_hash = sha256(message)
    if em_len < len(m_hash) + _PSS_SALT_LEN + 2:
        raise SignatureError("modulus too small for PSS with this salt length")
    salt = rng.getrandbits(8 * _PSS_SALT_LEN).to_bytes(_PSS_SALT_LEN, "big")
    m_prime = b"\x00" * 8 + m_hash + salt
    h = sha256(m_prime)
    ps = b"\x00" * (em_len - _PSS_SALT_LEN - len(h) - 2)
    db = ps + b"\x01" + salt
    masked_db = xor_bytes(db, mgf1(h, len(db)))
    # Clear the leftmost 8*em_len - em_bits bits.
    leading_zero_bits = 8 * em_len - em_bits
    first = masked_db[0] & (0xFF >> leading_zero_bits)
    return bytes([first]) + masked_db[1:] + h + b"\xbc"


def _pss_verify(message: bytes, em: bytes, em_bits: int) -> bool:
    em_len = (em_bits + 7) // 8
    if len(em) > em_len:
        em = em[-em_len:]
    m_hash = sha256(message)
    if em_len < len(m_hash) + _PSS_SALT_LEN + 2:
        return False
    if em[-1] != 0xBC:
        return False
    h = em[-1 - len(m_hash) : -1]
    masked_db = em[: em_len - len(m_hash) - 1]
    leading_zero_bits = 8 * em_len - em_bits
    if masked_db[0] & ~(0xFF >> leading_zero_bits) & 0xFF:
        return False
    db = bytearray(xor_bytes(masked_db, mgf1(h, len(masked_db))))
    db[0] &= 0xFF >> leading_zero_bits
    pad_len = em_len - len(m_hash) - _PSS_SALT_LEN - 2
    if any(db[:pad_len]) or db[pad_len] != 0x01:
        return False
    salt = bytes(db[pad_len + 1 :])
    m_prime = b"\x00" * 8 + m_hash + salt
    return sha256(m_prime) == h
