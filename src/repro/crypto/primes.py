"""Prime generation for RSA: Miller–Rabin with a deterministic RNG hook.

Key generation accepts a ``random.Random`` instance so tests and the
benchmark harness can be fully reproducible; callers wanting real
entropy pass ``random.SystemRandom()``.
"""

from __future__ import annotations

import random
from typing import Optional

def _sieve_primes(limit: int) -> tuple:
    flags = bytearray([1]) * limit
    flags[0:2] = b"\x00\x00"
    for n in range(2, int(limit**0.5) + 1):
        if flags[n]:
            flags[n * n :: n] = bytes(len(flags[n * n :: n]))
    return tuple(n for n in range(limit) if flags[n])


# Trial division by every small prime below this bound rejects the vast
# majority of odd candidates for the cost of cheap modular reductions,
# so only a few survivors ever pay for a Miller–Rabin modexp.  The
# windowed sieve in generate_prime amortizes one bigint reduction per
# small prime over a whole window of candidates, which is what makes a
# bound this high worthwhile.
_SIEVE_LIMIT = 50_000
_SMALL_PRIMES = _sieve_primes(_SIEVE_LIMIT)
# Inverse of 2 modulo each odd small prime, for solving 2k ≡ -base (mod p).
_HALF_MOD = tuple((p + 1) // 2 for p in _SMALL_PRIMES)


def _miller_rabin(n: int, rounds: int, rng: random.Random) -> bool:
    """Miller–Rabin with random bases, no trial division (callers sieve)."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test with ``rounds`` random bases.

    40 rounds gives a false-positive probability below 4^-40, far
    beyond what RSA key generation needs.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    return _miller_rabin(n, rounds, rng or random)


def generate_prime(
    bits: int, rng: Optional[random.Random] = None, rounds: int = 7
) -> int:
    """Generate a random probable prime of exactly ``bits`` bits.

    ``rounds`` defaults below :func:`is_probable_prime`'s 40 because the
    worst-case 4^-k bound only matters for *adversarial* inputs; for
    uniformly random candidates of cryptographic size the
    Damgård–Landrock–Pomerance average-case bound applies (for k ≥ 500
    bits, t = 7 rounds already gives error below 2^-80), and the
    confirmation modexps dominate key-generation time.
    """
    if bits < 8:
        raise ValueError("prime width must be at least 8 bits")
    rng = rng or random.SystemRandom()
    if bits <= 32:
        # Small widths can collide with the sieve primes themselves, so
        # take the simple per-candidate path.
        while True:
            candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
            if is_probable_prime(candidate, rounds=rounds, rng=rng):
                return candidate
    # Windowed incremental sieve: one bigint reduction per small prime
    # covers a whole window of odd candidates base, base+2, ..., after
    # which survivors go straight to Miller–Rabin.
    window = 512
    limit = 1 << bits
    while True:
        base = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        flags = bytearray(b"\x01") * window
        for p, half in zip(_SMALL_PRIMES[1:], _HALF_MOD[1:]):
            # Smallest k >= 0 with base + 2k ≡ 0 (mod p).
            k = ((p - base % p) * half) % p
            if k < window:
                flags[k::p] = bytes((window - k + p - 1) // p)
        for idx in range(window):
            if not flags[idx]:
                continue
            candidate = base + 2 * idx
            if candidate >= limit:
                break  # ran off the top of the width; resample
            if _miller_rabin(candidate, rounds, rng):
                return candidate


def generate_safe_rsa_primes(bits: int, rng: Optional[random.Random] = None) -> tuple[int, int]:
    """Generate two distinct primes of ``bits`` bits each for RSA.

    Rejects pairs whose product loses a bit of width and pairs that are
    too close together (a classic Fermat-factoring weakness).
    """
    rng = rng or random.SystemRandom()
    while True:
        p = generate_prime(bits, rng)
        q = generate_prime(bits, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != 2 * bits:
            continue
        if abs(p - q).bit_length() < bits - 20:
            continue
        return p, q


def inverse_mod(a: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended-gcd pow."""
    return pow(a, -1, modulus)
