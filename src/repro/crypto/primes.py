"""Prime generation for RSA: Miller–Rabin with a deterministic RNG hook.

Key generation accepts a ``random.Random`` instance so tests and the
benchmark harness can be fully reproducible; callers wanting real
entropy pass ``random.SystemRandom()``.
"""

from __future__ import annotations

import random
from typing import Optional

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test with ``rounds`` random bases.

    40 rounds gives a false-positive probability below 4^-40, far
    beyond what RSA key generation needs.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime width must be at least 8 bits")
    rng = rng or random.SystemRandom()
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # full width, odd
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_rsa_primes(bits: int, rng: Optional[random.Random] = None) -> tuple[int, int]:
    """Generate two distinct primes of ``bits`` bits each for RSA.

    Rejects pairs whose product loses a bit of width and pairs that are
    too close together (a classic Fermat-factoring weakness).
    """
    rng = rng or random.SystemRandom()
    while True:
        p = generate_prime(bits, rng)
        q = generate_prime(bits, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != 2 * bits:
            continue
        if abs(p - q).bit_length() < bits - 20:
            continue
        return p, q


def inverse_mod(a: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended-gcd pow."""
    return pow(a, -1, modulus)
