"""Security profiles.

The paper's implementation runs 128-bit-security parameters (91-round
MiMC at a 254-bit field, deep registration trees, full-width scalars).
Those are faithful but slow under a pure-Python Groth16 prover, so the
whole stack is parameterised by a :class:`SecurityProfile`.  Profiles
change only *sizes* (rounds, tree depth, scalar width) — every line of
protocol logic is identical across profiles, so the fast ``TEST``
profile still exercises the real pipeline end to end.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SecurityProfile:
    """Parameter bundle controlling circuit sizes.

    Attributes:
        name: human-readable identifier.
        mimc_rounds: number of MiMC rounds (91 gives ~128-bit security
            for exponent-7 MiMC over a 254-bit field).
        merkle_depth: depth of the RA registration Merkle tree, i.e.
            log2 of the maximum anonymity-set size.
        scalar_bits: bit width of in-circuit Schnorr scalars.
    """

    name: str
    mimc_rounds: int
    merkle_depth: int
    scalar_bits: int

    def __post_init__(self) -> None:
        if self.mimc_rounds < 2:
            raise ValueError("MiMC needs at least 2 rounds")
        if self.merkle_depth < 1:
            raise ValueError("Merkle depth must be >= 1")
        if self.scalar_bits < 4:
            raise ValueError("scalar width must be >= 4 bits")


#: Paper-faithful parameters (what a deployment would run).
PRODUCTION = SecurityProfile(
    name="production", mimc_rounds=91, merkle_depth=16, scalar_bits=251
)

#: Mid-size parameters used by the benchmark harness so Table I /
#: Fig. 4 runs finish in minutes rather than hours under pure Python.
BENCH = SecurityProfile(name="bench", mimc_rounds=46, merkle_depth=8, scalar_bits=64)

#: Small parameters for the test suite; same code paths, tiny circuits.
TEST = SecurityProfile(name="test", mimc_rounds=7, merkle_depth=5, scalar_bits=16)

_PROFILES = {p.name: p for p in (PRODUCTION, BENCH, TEST)}


def get_profile(name: str) -> SecurityProfile:
    """Look a profile up by name (``production``, ``bench``, ``test``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown security profile {name!r}; expected one of {sorted(_PROFILES)}"
        ) from None
