"""Command-line entry point regenerating the paper's evaluation.

Usage::

    python -m repro.analysis.report [--profile test|bench|production]
                                    [--backend groth16|mock]
                                    [--skip-fig4] [--runs N]

Writes the rendered Table I and Fig. 4 to stdout (tee it into
EXPERIMENTS.md when refreshing the recorded numbers).
"""

from __future__ import annotations

import argparse

from repro.analysis.fig4 import run_fig4
from repro.analysis.table1 import render_table, run_table1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="bench",
                        choices=["test", "bench", "production"])
    parser.add_argument("--backend", default="groth16",
                        choices=["groth16", "mock"])
    parser.add_argument("--runs", type=int, default=12,
                        help="Fig. 4 repetition count (paper: 12)")
    parser.add_argument("--skip-fig4", action="store_true")
    parser.add_argument("--skip-table1", action="store_true")
    args = parser.parse_args(argv)

    if not args.skip_table1:
        rows = run_table1(
            profile=args.profile, backend_name=args.backend, verbose=True
        )
        print(render_table(rows))
    if not args.skip_fig4:
        result = run_fig4(
            profile=args.profile,
            backend_name=args.backend,
            runs=args.runs,
            verbose=True,
        )
        print(result.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
