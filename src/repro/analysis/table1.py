"""Table I: execution time of in-contract zk-SNARK verifications.

Paper columns: per verification circuit (anonymous authentication and
majority-vote reward instructions for n ∈ {3,5,7,9,11} workers), the
proof size, verification-key size, public-input size, and the
verification time on two machines.  This harness measures the same
quantities on the from-scratch Groth16 stack: proof size is constant,
key and input sizes grow linearly in n, and verification time grows
mildly with n — the paper's shape.

The ``snark_verify`` execution is timed via the precompile's metrics
hook so the number reported is exactly the in-contract cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.profiles import SecurityProfile, get_profile
from repro.anonauth import AnonymousAuthScheme, UserKeyPair, setup as auth_setup
from repro.anonauth.scheme import attestation_statement
from repro.core.metrics import humanize_bytes
from repro.core.policy import MajorityVotePolicy
from repro.core.reward_circuit import (
    build_reward_instance,
    make_reward_circuit,
    reward_statement,
)
from repro.zksnark.backend import get_backend

#: The worker counts evaluated in the paper.
PAPER_WORKER_COUNTS = (3, 5, 7, 9, 11)

#: Paper-reported values, for side-by-side comparison in EXPERIMENTS.md.
PAPER_ROWS = {
    "auth": {"proof": 729, "key": 1.2 * 1024, "inputs": 1.5 * 1024,
             "pc_a_ms": 10.9, "pc_b_ms": 6.2},
    3: {"proof": 729, "key": 16.0 * 1024, "inputs": 3.4 * 1024,
        "pc_a_ms": 15.5, "pc_b_ms": 9.1},
    5: {"proof": 730, "key": 21.6 * 1024, "inputs": 4.7 * 1024,
        "pc_a_ms": 16.3, "pc_b_ms": 9.8},
    7: {"proof": 731, "key": 27.3 * 1024, "inputs": 6.0 * 1024,
        "pc_a_ms": 17.0, "pc_b_ms": 10.3},
    9: {"proof": 729, "key": 32.9 * 1024, "inputs": 7.3 * 1024,
        "pc_a_ms": 17.5, "pc_b_ms": 12.1},
    11: {"proof": 730, "key": 38.6 * 1024, "inputs": 8.6 * 1024,
         "pc_a_ms": 17.9, "pc_b_ms": 13.1},
}


@dataclass
class Table1Row:
    """One measured row of Table I."""

    label: str
    proof_bytes: int
    key_bytes: int
    input_bytes: int
    verify_seconds: float
    prove_seconds: float
    constraints: int

    def render(self) -> str:
        return (
            f"{self.label:<28} proof {humanize_bytes(self.proof_bytes):>7}  "
            f"key {humanize_bytes(self.key_bytes):>9}  "
            f"inputs {humanize_bytes(self.input_bytes):>8}  "
            f"verify {self.verify_seconds * 1000:9.1f}ms  "
            f"(prove {self.prove_seconds:6.1f}s, {self.constraints} constraints)"
        )


def _statement_bytes(statement: List[int]) -> int:
    """Field elements are 32-byte words on the wire."""
    return 32 * len(statement)


def run_table1(
    profile: SecurityProfile | str = "bench",
    backend_name: str = "groth16",
    worker_counts=PAPER_WORKER_COUNTS,
    num_choices: int = 4,
    seed: bytes = b"table1",
    verbose: bool = False,
) -> List[Table1Row]:
    """Measure every row of Table I; returns rows in paper order."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    backend = get_backend(backend_name)
    rows: List[Table1Row] = []

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    # Row 1: anonymous-authentication verification.
    log(f"[table1] auth setup ({profile.name} profile)...")
    params, authority = auth_setup(
        profile=profile, cert_mode="merkle", backend_name=backend_name, seed=seed
    )
    scheme = AnonymousAuthScheme(params)
    user = UserKeyPair.generate(params.mimc, seed=seed + b"user")
    certificate = authority.register("table1-user", user.public_key)
    commitment = authority.registry_commitment()
    message = b"\xc0" * 32 + b"table1-auth-message"
    log("[table1] generating attestation...")
    started = time.perf_counter()
    attestation = scheme.auth(message, user, certificate, commitment)
    prove_seconds = time.perf_counter() - started
    statement = attestation_statement(message, attestation)
    started = time.perf_counter()
    ok = backend.verify(params.keys.verifying_key, statement, attestation.proof)
    verify_seconds = time.perf_counter() - started
    assert ok, "auth verification must pass"
    auth_cs = params.circuit().build(
        scheme_instance_for_digest(scheme, message, user, certificate, commitment)
    )
    rows.append(
        Table1Row(
            label="Anonymous authentication",
            proof_bytes=attestation.proof.size_bytes(),
            key_bytes=_vk_size(params.keys.verifying_key),
            input_bytes=_statement_bytes(statement),
            verify_seconds=verify_seconds,
            prove_seconds=prove_seconds,
            constraints=auth_cs.num_constraints,
        )
    )
    log(f"[table1] {rows[-1].render()}")

    # Rows 2-6: majority-vote reward verification for each n.
    policy = MajorityVotePolicy(num_choices=num_choices)
    for n in worker_counts:
        log(f"[table1] majority n={n} setup...")
        circuit = make_reward_circuit(policy, n, params.mimc)
        keys = backend.setup(circuit, seed=seed + b"majority%d" % n)
        answers = [[j % num_choices] for j in range(n)]
        instance = build_reward_instance(
            policy, budget=100 * n, keys=[j + 1 for j in range(n)],
            answers=answers, mimc=params.mimc,
        )
        log(f"[table1] majority n={n} proving...")
        started = time.perf_counter()
        proof = backend.prove(keys.proving_key, circuit, instance)
        prove_seconds = time.perf_counter() - started
        statement = reward_statement(
            instance.budget, instance.reward_unit, instance.entries, instance.rewards
        )
        started = time.perf_counter()
        ok = backend.verify(keys.verifying_key, statement, proof)
        verify_seconds = time.perf_counter() - started
        assert ok, f"majority({n}) verification must pass"
        rows.append(
            Table1Row(
                label=f"Majority ({n}-Worker)",
                proof_bytes=proof.size_bytes(),
                key_bytes=_vk_size(keys.verifying_key),
                input_bytes=_statement_bytes(statement),
                verify_seconds=verify_seconds,
                prove_seconds=prove_seconds,
                constraints=circuit.build(instance).num_constraints,
            )
        )
        log(f"[table1] {rows[-1].render()}")
    return rows


def scheme_instance_for_digest(scheme, message, user, certificate, commitment):
    """Rebuild the Auth instance (for constraint counting only)."""
    from repro.anonauth.circuit import AuthInstance
    from repro.anonauth.scheme import message_digest, prefix_digest, PREFIX_LENGTH
    from repro.zksnark.gadgets.mimc import mimc_hash_native

    mimc = scheme.params.mimc
    p_digest = prefix_digest(message[:PREFIX_LENGTH])
    m_digest = message_digest(message)
    return AuthInstance(
        prefix_digest=p_digest,
        message_digest=m_digest,
        registry_commitment=commitment,
        t1=mimc_hash_native([p_digest, user.secret_key], mimc),
        t2=mimc_hash_native([m_digest, user.secret_key], mimc),
        secret_key=user.secret_key,
        certificate=certificate,
    )


def _vk_size(verifying_key) -> int:
    return verifying_key.size_bytes()


def render_table(rows: List[Table1Row]) -> str:
    """Human-readable table next to the paper's reference values."""
    lines = ["=" * 110]
    lines.append(
        "TABLE I — execution of in-contract zk-SNARK verifications "
        "(measured vs paper @3.1GHz Xeon / libsnark)"
    )
    lines.append("=" * 110)
    paper_keys = ["auth", *PAPER_WORKER_COUNTS]
    for row, key in zip(rows, paper_keys):
        lines.append(row.render())
        paper = PAPER_ROWS[key]
        lines.append(
            f"{'  paper:':<28} proof {humanize_bytes(int(paper['proof'])):>7}  "
            f"key {humanize_bytes(int(paper['key'])):>9}  "
            f"inputs {humanize_bytes(int(paper['inputs'])):>8}  "
            f"verify {paper['pc_a_ms']:9.1f}ms (PC-A) / {paper['pc_b_ms']:.1f}ms (PC-B)"
        )
    lines.append("=" * 110)
    return "\n".join(lines)
