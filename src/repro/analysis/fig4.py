"""Fig. 4: the cost of anonymity — attestation-generation time.

The paper generates common-prefix-linkable anonymous attestations 12
times on each of two machines (≈78 s on the 3.1 GHz PC-A, ≈62 s on the
3.6 GHz PC-B — a clock-speed ratio) and shows the distribution as a box
plot.  This harness repeats the 12-run methodology on the current
machine and renders the same five-number summary; the paper's two-box
comparison reduces to a constant CPU-frequency ratio recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.profiles import SecurityProfile, get_profile
from repro.anonauth import AnonymousAuthScheme, UserKeyPair, setup as auth_setup
from repro.core.metrics import BoxStats

#: Paper-reported medians (seconds).
PAPER_PC_A_SECONDS = 78.0
PAPER_PC_B_SECONDS = 62.0

#: Number of experiments behind the paper's box plot.
PAPER_RUN_COUNT = 12


@dataclass
class Fig4Result:
    """The measured distribution behind the box plot."""

    profile: str
    backend: str
    samples_seconds: List[float]
    stats: BoxStats

    def render(self) -> str:
        lines = [
            "=" * 96,
            "FIG. 4 — time to generate common-prefix-linkable anonymous "
            f"attestations ({self.stats.count} runs, {self.profile} profile, "
            f"{self.backend} backend)",
            "=" * 96,
            f"measured: {self.stats.render()}",
            f"paper:    median ≈ {PAPER_PC_A_SECONDS:.0f}s @ 3.1GHz PC-A, "
            f"≈ {PAPER_PC_B_SECONDS:.0f}s @ 3.6GHz PC-B "
            f"(ratio {PAPER_PC_A_SECONDS / PAPER_PC_B_SECONDS:.2f}x, 12 runs each)",
            _ascii_box(self.stats),
            "=" * 96,
        ]
        return "\n".join(lines)


def _ascii_box(stats: BoxStats, width: int = 72) -> str:
    """A tiny ASCII rendition of the box plot."""
    span = max(stats.maximum - stats.minimum, 1e-9)

    def pos(value: float) -> int:
        return int((value - stats.minimum) / span * (width - 1))

    line = [" "] * width
    for index in range(pos(stats.q1), pos(stats.q3) + 1):
        line[index] = "="
    line[pos(stats.minimum)] = "|"
    line[pos(stats.maximum)] = "|"
    line[pos(stats.median)] = "#"
    return (
        f"[{stats.minimum:.2f}s] " + "".join(line) + f" [{stats.maximum:.2f}s]"
        "   (| min/max, = IQR, # median)"
    )


def run_fig4(
    profile: SecurityProfile | str = "bench",
    backend_name: str = "groth16",
    cert_mode: str = "merkle",
    runs: int = PAPER_RUN_COUNT,
    seed: bytes = b"fig4",
    verbose: bool = False,
) -> Fig4Result:
    """Generate ``runs`` attestations and summarize the timing distribution."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    params, authority = auth_setup(
        profile=profile, cert_mode=cert_mode, backend_name=backend_name, seed=seed
    )
    scheme = AnonymousAuthScheme(params)
    user = UserKeyPair.generate(params.mimc, seed=seed + b"user")
    certificate = authority.register("fig4-user", user.public_key)
    commitment = authority.registry_commitment()
    samples: List[float] = []
    for run in range(runs):
        # A different message each run (as in repeated real submissions).
        message = b"\xf4" * 32 + b"fig4-run-%d" % run
        started = time.perf_counter()
        attestation = scheme.auth(message, user, certificate, commitment)
        elapsed = time.perf_counter() - started
        samples.append(elapsed)
        if verbose:
            print(f"[fig4] run {run + 1}/{runs}: {elapsed:.2f}s", flush=True)
        assert scheme.verify(message, attestation, commitment)
    return Fig4Result(
        profile=profile.name,
        backend=backend_name,
        samples_seconds=samples,
        stats=BoxStats.from_samples(samples),
    )
