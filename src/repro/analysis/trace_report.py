"""Per-phase timeline report of a protocol run, built from span traces.

``python -m repro.analysis.trace_report`` runs one full protocol round
(register → authenticate → submit → audit → reward) over the mock
backend with tracing enabled and prints a timeline with one row per
Algorithm-1 phase.  Pass ``--jsonl trace.jsonl`` to report on a
previously exported trace instead, and ``--export PATH`` to write the
demo run's spans out as JSON-lines.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

#: Algorithm 1's phases, in protocol order.  ``protocol.<phase>`` is the
#: span name each phase is recorded under.
ALGORITHM1_PHASES = ("register", "authenticate", "submit", "audit", "reward")


def phase_rows(spans: Sequence[dict]) -> List[dict]:
    """Aggregate raw span dicts into one row per Algorithm-1 phase.

    A phase's window runs from the first start to the last end of its
    ``protocol.<phase>`` spans; phases with no spans are reported with
    ``count == 0`` so a broken run is visible rather than silently
    shortened.
    """
    by_phase: Dict[str, List[dict]] = {phase: [] for phase in ALGORITHM1_PHASES}
    for span in spans:
        name = span.get("name", "")
        if name.startswith("protocol."):
            phase = name.split(".", 1)[1]
            if phase in by_phase:
                by_phase[phase].append(span)
    origin = min(
        (s["start"] for group in by_phase.values() for s in group),
        default=0.0,
    )
    rows = []
    for phase in ALGORITHM1_PHASES:
        group = by_phase[phase]
        if not group:
            rows.append(
                {"phase": phase, "count": 0, "start": None, "end": None,
                 "duration": 0.0}
            )
            continue
        start = min(s["start"] for s in group)
        end = max(s["end"] for s in group if s["end"] is not None)
        rows.append(
            {
                "phase": phase,
                "count": len(group),
                "start": start - origin,
                "end": end - origin,
                "duration": sum(
                    (s["end"] - s["start"]) for s in group if s["end"] is not None
                ),
            }
        )
    return rows


def render_timeline(spans: Sequence[dict], width: int = 32) -> str:
    """The human-readable per-phase timeline."""
    rows = phase_rows(spans)
    horizon = max((row["end"] or 0.0) for row in rows) or 1.0
    lines = [
        "Algorithm 1 phase timeline "
        f"({sum(row['count'] for row in rows)} protocol spans, "
        f"{len(spans)} spans total)",
        "",
        f"{'phase':<14}{'spans':>6}{'start':>10}{'total':>10}  timeline",
    ]
    for row in rows:
        if row["count"] == 0:
            lines.append(f"{row['phase']:<14}{0:>6}{'-':>10}{'-':>10}  (missing)")
            continue
        left = int(row["start"] / horizon * width)
        right = max(left + 1, int(row["end"] / horizon * width))
        bar = " " * left + "█" * (right - left)
        lines.append(
            f"{row['phase']:<14}{row['count']:>6}"
            f"{row['start']:>10.3f}{row['duration']:>10.3f}  {bar}"
        )
    return "\n".join(lines)


def render_hot_spans(spans: Sequence[dict], top: int = 8) -> str:
    """The most expensive span names by total duration."""
    totals: Dict[str, List[float]] = {}
    for span in spans:
        if span.get("end") is None:
            continue
        totals.setdefault(span["name"], []).append(span["end"] - span["start"])
    ranked = sorted(
        totals.items(), key=lambda item: -sum(item[1])
    )[:top]
    lines = ["", f"{'span':<30}{'calls':>7}{'total s':>10}{'mean s':>10}"]
    for name, durations in ranked:
        total = sum(durations)
        lines.append(
            f"{name:<30}{len(durations):>7}{total:>10.3f}"
            f"{total / len(durations):>10.4f}"
        )
    return "\n".join(lines)


def run_demo_round() -> List[dict]:
    """One full mock-backend protocol round with tracing enabled.

    Returns the recorded span dicts; the tracer is restored to its
    previous state afterwards.
    """
    import repro.contracts  # noqa: F401  (side effect: registers contract classes)
    from repro import observability as obs
    from repro.core import MajorityVotePolicy, Requester, Worker, ZebraLancerSystem

    from repro.chain.network import Testnet

    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        testnet = Testnet(miners=2, full_nodes=2)
        obs.TRACER.set_clock(testnet.clock)
        system = ZebraLancerSystem(
            profile="test", cert_mode="merkle", backend_name="mock",
            testnet=testnet,
        )
        requester = Requester(system, "req")
        workers = [Worker(system, f"w{i}") for i in range(2)]
        task = requester.publish_task(
            MajorityVotePolicy(3), "demo", num_answers=2, budget=600
        )
        for worker, answer in zip(workers, ([1], [1])):
            record = worker.submit_answer(task, answer)
            assert record.receipt.success, record.receipt.error
        assert task.audit_submissions()
        receipt = requester.evaluate_and_reward(task)
        assert receipt.success, receipt.error
        return [span.to_dict() for span in obs.TRACER.finished_spans()]
    finally:
        obs.TRACER.set_clock(None)
        if not was_enabled:
            obs.disable()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.trace_report",
        description="Print a per-phase timeline of one protocol run.",
    )
    parser.add_argument(
        "--jsonl", metavar="PATH",
        help="report on an exported span log instead of running a demo round",
    )
    parser.add_argument(
        "--export", metavar="PATH",
        help="also write the demo round's spans to PATH as JSON-lines",
    )
    args = parser.parse_args(argv)

    if args.jsonl:
        from repro.observability import read_spans_jsonl

        spans = read_spans_jsonl(args.jsonl)
    else:
        spans = run_demo_round()
        if args.export:
            from repro.observability import write_spans_jsonl

            count = write_spans_jsonl(spans, args.export)
            print(f"wrote {count} spans to {args.export}", file=sys.stderr)

    print(render_timeline(spans))
    print(render_hot_spans(spans))

    missing = [row["phase"] for row in phase_rows(spans) if row["count"] == 0]
    if missing:
        print(f"\nmissing phases: {', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
