"""Evaluation harness regenerating the paper's Table I and Fig. 4."""

from repro.analysis.table1 import Table1Row, run_table1
from repro.analysis.fig4 import Fig4Result, run_fig4

__all__ = ["Table1Row", "run_table1", "Fig4Result", "run_fig4"]
