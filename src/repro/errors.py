"""Exception hierarchy for the ZebraLancer reproduction.

Every package raises subclasses of :class:`ReproError` so callers can
catch library failures without accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, bad padding, ...)."""


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted (wrong key or corrupted data)."""


class SignatureError(CryptoError):
    """A signature failed to verify or could not be produced."""


class CircuitError(ReproError):
    """A constraint system was built or used incorrectly."""


class UnsatisfiedConstraintError(CircuitError):
    """A witness assignment does not satisfy the constraint system."""


class ProofError(ReproError):
    """A zero-knowledge proof could not be generated or is malformed."""


class VerificationError(ReproError):
    """A proof or attestation failed verification."""


class AuthenticationError(ReproError):
    """An anonymous-authentication operation failed."""


class RegistrationError(AuthenticationError):
    """Registration at the registration authority failed."""


class ChainError(ReproError):
    """Blockchain substrate failure (invalid tx, bad block, ...)."""


class InvalidTransactionError(ChainError):
    """A transaction failed validation (signature, nonce, balance, gas)."""


class InvalidBlockError(ChainError):
    """A proposed block failed validation."""


class ContractError(ChainError):
    """A smart-contract execution reverted."""


class OutOfGasError(ContractError):
    """Contract execution exceeded its gas allowance."""


class ProtocolError(ReproError):
    """The crowdsourcing protocol was driven into an invalid state."""


class CheckpointError(ProtocolError):
    """An engine checkpoint could not be encoded, decoded, or applied."""


class PolicyError(ProtocolError):
    """A reward policy was configured or evaluated incorrectly."""
