"""The requester client (the off-chain half of Fig. 3, requester side).

Drives TaskPublish and Reward: derives the one-task address α_R,
predicts α_C, anonymously authenticates α_C‖α_R, deploys the task
contract with the budget, and later decrypts the collected answers
off-chain, evaluates the policy, and sends the proved instruction —
the outsource-then-prove methodology end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import observability as obs
from repro.crypto.hashing import sha256
from repro.errors import DecryptionError, ProtocolError
from repro.anonauth.keys import UserKeyPair
from repro.chain.address import contract_address
from repro.chain.receipts import Receipt
from repro.chain.transaction import Transaction, encode_call, encode_create
from repro.core.anonymity import OneTaskAccount, derive_one_task_account
from repro.core.encryption import (
    AnswerCiphertext,
    TaskKeyPair,
    decrypt_with_key,
    recover_answer_key,
)
from repro.core.params import TaskParameters
from repro.core.policy import Answer, RewardPolicy
from repro.core.protocol import (
    DEFAULT_GAS_LIMIT,
    DEFAULT_GAS_PRICE,
    TaskHandle,
    ZebraLancerSystem,
)
from repro.core.reward_circuit import (
    CiphertextEntry,
    build_reward_instance,
    padding_entry,
)
from repro.serialization import encode
from repro.anonauth.scheme import task_prefix


@dataclass
class _TaskRecord:
    """Requester-private per-task material."""

    account: OneTaskAccount
    encryption_keys: TaskKeyPair
    nonce: int  # next chain nonce for the one-task account


@dataclass
class PreparedPublish:
    """A fully built (but unsent) task announcement.

    Produced by :meth:`Requester.prepare_publish` so a scheduler can
    fund the one-task account, broadcast the deploy transaction in a
    batch with other tasks', and only then hand the receipt back to
    :meth:`Requester.complete_publish`.
    """

    account: OneTaskAccount
    encryption_keys: TaskKeyPair
    params: TaskParameters
    policy: RewardPolicy
    predicted_address: bytes
    transaction: Transaction
    budget: int


@dataclass
class RewardJob:
    """A reward instruction awaiting its SNARK proof.

    ``proving_key``/``circuit``/``instance`` are what a proving pool
    needs; :meth:`Requester.reward_transaction` turns the resulting
    proof into the on-chain instruction.
    """

    handle: TaskHandle
    instance: Any
    circuit: Any
    proving_key: Any
    flags: List[int]


class Requester:
    """A registered requester."""

    def __init__(
        self,
        system: ZebraLancerSystem,
        identity: str,
        seed: Optional[bytes] = None,
        register: bool = True,
    ) -> None:
        self.system = system
        self.identity = identity
        self._seed = seed if seed is not None else sha256(b"requester", identity.encode())
        self.keys = UserKeyPair.generate(system.mimc, seed=self._seed + b"|id")
        #: ``register=False`` defers RA onboarding to a batch
        #: (``system.register_participants``); the engine sets
        #: ``certificate`` afterwards.
        self.certificate = (
            system.register_participant(identity, self.keys.public_key)
            if register
            else None
        )
        self._tasks: Dict[bytes, _TaskRecord] = {}
        self._task_counter = 0

    @property
    def task_counter(self) -> int:
        """Index the next :meth:`prepare_publish` call will use."""
        return self._task_counter

    # ----- TaskPublish ---------------------------------------------------------------

    def publish_task(
        self,
        policy: RewardPolicy,
        description: str,
        num_answers: int,
        budget: int,
        answer_window: int = 10,
        instruction_window: int = 10,
        rsa_bits: int = 1024,
        submissions_per_worker: int = 1,
    ) -> TaskHandle:
        """Announce a task (deploying its contract with the budget)."""
        with obs.span(
            "requester.publish_task", requester=self.identity, answers=num_answers
        ):
            handle = self._publish_task(
                policy, description, num_answers, budget, answer_window,
                instruction_window, rsa_bits, submissions_per_worker,
            )
        return handle

    def _publish_task(
        self,
        policy: RewardPolicy,
        description: str,
        num_answers: int,
        budget: int,
        answer_window: int,
        instruction_window: int,
        rsa_bits: int,
        submissions_per_worker: int,
    ) -> TaskHandle:
        system = self.system
        prepared = self.prepare_publish(
            policy, description, num_answers, budget, answer_window,
            instruction_window, rsa_bits, submissions_per_worker,
        )
        system.fund_anonymous(
            prepared.account.address, near=prepared.predicted_address
        )
        system.fund_anonymous(
            prepared.account.address, budget, near=prepared.predicted_address
        )
        receipt = system.send_reliable(
            prepared.transaction, prepared.account.keypair
        )
        return self.complete_publish(prepared, receipt)

    def encryption_rng_seed(self, task_index: Optional[int] = None) -> int:
        """The deterministic RNG seed for task ``task_index``'s RSA keypair.

        Defaults to the next task this requester will publish.  Exposed
        so a scheduler can pregenerate keypairs (e.g. across a fork
        pool) and hand them to :meth:`prepare_publish` — the derivation
        is identical, so the resulting transcript is too.
        """
        if task_index is None:
            task_index = self._task_counter
        label = f"{self.identity}/task-{task_index}"
        return int.from_bytes(sha256(self._seed, label.encode(), b"rsa"), "big")

    def prepare_publish(
        self,
        policy: RewardPolicy,
        description: str,
        num_answers: int,
        budget: int,
        answer_window: int = 10,
        instruction_window: int = 10,
        rsa_bits: int = 1024,
        submissions_per_worker: int = 1,
        encryption_keys: Optional[TaskKeyPair] = None,
        task_index: Optional[int] = None,
    ) -> PreparedPublish:
        """Build the deploy transaction without funding or sending it.

        Only reads the chain (registry commitment); the caller must
        fund ``prepared.account.address`` with gas plus the budget
        before broadcasting ``prepared.transaction``.

        ``encryption_keys`` overrides the task's RSA keypair; it must
        come from :meth:`encryption_rng_seed`-seeded generation (the
        engine pregenerates keypairs in parallel this way).

        ``task_index`` pins the derivation index instead of consuming
        the next counter value — a restarted engine re-prepares task k
        and lands on the same one-task account, RSA keypair and
        predicted contract address the crashed run used.
        """
        system = self.system
        if task_index is None:
            task_index = self._task_counter
        label = f"{self.identity}/task-{task_index}"
        if encryption_keys is None:
            rng = random.Random(self.encryption_rng_seed(task_index))
            encryption_keys = TaskKeyPair.generate(bits=rsa_bits, rng=rng)
        self._task_counter = max(self._task_counter, task_index + 1)
        account = derive_one_task_account(self._seed, label)

        # α_C is predictable before deployment (footnote 10), so the
        # requester authenticates α_C ‖ α_R ahead of time.
        predicted_address = contract_address(account.address, nonce=0)
        certificate = system.current_certificate(self.keys.public_key)
        commitment = system.registry_commitment()
        attestation = system.scheme.auth(
            task_prefix(predicted_address) + account.address,
            self.keys,
            certificate,
            commitment,
        )

        circuit, reward_keys = system.reward_material(policy, num_answers)
        params = TaskParameters(
            description=description,
            num_answers=num_answers,
            budget=budget,
            answer_window=answer_window,
            instruction_window=instruction_window,
            policy_descriptor=dict(policy.describe()),
            answer_arity=policy.answer_arity,
            encryption_key_fingerprint=encryption_keys.public_key.fingerprint(),
            submissions_per_worker=submissions_per_worker,
        )
        epk_wire = encode(
            [encryption_keys.public_key.n, encryption_keys.public_key.e]
        )
        data = encode_create(
            "ZebraLancerTask",
            [
                system.registry_address,
                account.address,
                attestation.to_wire(),
                params.to_storage(),
                epk_wire,
                reward_keys.verifying_key,
            ],
        )
        tx = Transaction(
            nonce=0,
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=None,
            value=budget,
            data=data,
        )
        return PreparedPublish(
            account=account,
            encryption_keys=encryption_keys,
            params=params,
            policy=policy,
            predicted_address=predicted_address,
            transaction=tx,
            budget=budget,
        )

    def complete_publish(
        self, prepared: PreparedPublish, receipt: Receipt
    ) -> TaskHandle:
        """Adopt a confirmed deployment receipt into this requester."""
        if not receipt.success or receipt.contract_address != prepared.predicted_address:
            raise ProtocolError(f"task deployment failed: {receipt.error}")
        self._tasks[prepared.predicted_address] = _TaskRecord(
            account=prepared.account,
            encryption_keys=prepared.encryption_keys,
            nonce=1,
        )
        return TaskHandle(
            address=prepared.predicted_address,
            params=prepared.params,
            policy=prepared.policy,
            system=self.system,
        )

    def adopt_task(self, prepared: PreparedPublish, nonce: int) -> TaskHandle:
        """Re-adopt an already-deployed task without a receipt.

        The checkpoint-restore path: the contract exists on-chain (the
        crashed run deployed it), so there is no deployment receipt to
        hand to :meth:`complete_publish` — the restarted requester
        rebuilds its private record from the re-prepared material and
        the checkpointed account nonce.
        """
        self._tasks[prepared.predicted_address] = _TaskRecord(
            account=prepared.account,
            encryption_keys=prepared.encryption_keys,
            nonce=nonce,
        )
        return TaskHandle(
            address=prepared.predicted_address,
            params=prepared.params,
            policy=prepared.policy,
            system=self.system,
        )

    def resync_nonce(self, handle: TaskHandle) -> int:
        """Reset the task account's local nonce from the chain.

        After a crash the checkpointed nonce may run ahead of (a
        broadcast that never landed) or behind (a broadcast that landed
        after the snapshot) the chain; the chain's account nonce is the
        ground truth for the *next* transaction.
        """
        record = self._record(handle)
        record.nonce = self.system.node.nonce_of(record.account.address)
        return record.nonce

    # ----- Reward -----------------------------------------------------------------------

    def decrypt_answers(
        self, handle: TaskHandle
    ) -> Tuple[List[Answer], List[int], List[int]]:
        """Fetch and decrypt the collected answers off-chain.

        Returns (answers with ⊥ as None, symmetric keys, ok flags).
        """
        record = self._record(handle)
        wires = self.system.node.call(handle.address, "get_ciphertexts")
        answers: List[Answer] = []
        keys: List[int] = []
        flags: List[int] = []
        mimc = self.system.mimc
        for wire in wires:
            ciphertext = AnswerCiphertext.from_wire(wire)
            try:
                key = recover_answer_key(record.encryption_keys, ciphertext, mimc)
            except DecryptionError:
                answers.append(None)
                keys.append(0)
                flags.append(0)
                continue
            answers.append(decrypt_with_key(key, ciphertext, mimc))
            keys.append(key)
            flags.append(1)
        return answers, keys, flags

    def evaluate_and_reward(self, handle: TaskHandle) -> Receipt:
        """Compute rewards per the policy, prove, and instruct the contract."""
        with obs.span(
            "protocol.reward", requester=self.identity, task=handle.address.hex()
        ) as reward_span:
            receipt = self._evaluate_and_reward(handle)
            reward_span.set_attrs(status=receipt.status)
        if obs.TRACER.enabled:
            obs.count("protocol.rewards")
        return receipt

    def _evaluate_and_reward(self, handle: TaskHandle) -> Receipt:
        system = self.system
        job = self.prepare_reward(handle)
        proof = system.backend.prove(job.proving_key, job.circuit, job.instance)
        tx = self.reward_transaction(job, proof)
        record = self._record(handle)
        return system.send_reliable(tx, record.account.keypair)

    def prepare_reward(self, handle: TaskHandle) -> RewardJob:
        """Decrypt, evaluate the policy, and stage the proving job.

        Everything up to (but excluding) the SNARK proof — the
        expensive step a shared proving pool batches across tasks.
        """
        system = self.system
        self._record(handle)  # ownership check
        answers, keys, flags = self.decrypt_answers(handle)
        if not answers:
            raise ProtocolError("no answers were collected; use finalize_timeout")
        wires = system.node.call(handle.address, "get_ciphertexts")
        entries = [
            CiphertextEntry.from_ciphertext(
                AnswerCiphertext.from_wire(wire), ok=bool(flag)
            )
            for wire, flag in zip(wires, flags)
        ]
        # Pad to the task's n: missing submissions become the paper's ⊥.
        n = handle.params.num_answers
        arity = handle.params.answer_arity
        while len(entries) < n:
            entries.append(padding_entry(arity))
            answers.append(None)
            keys.append(0)
            flags.append(0)
        instance = build_reward_instance(
            policy=handle.policy,
            budget=handle.params.budget,
            keys=keys,
            answers=answers,
            mimc=system.mimc,
            entries=entries,
        )
        circuit, reward_keys = system.reward_material(handle.policy, n)
        return RewardJob(
            handle=handle,
            instance=instance,
            circuit=circuit,
            proving_key=reward_keys.proving_key,
            flags=flags,
        )

    def reward_transaction(self, job: RewardJob, proof) -> Transaction:
        """The proved instruction transaction for a staged reward job."""
        record = self._record(job.handle)
        data = encode_call(
            "submit_reward_instruction",
            [list(job.instance.rewards), job.flags, proof.backend, proof.payload],
        )
        tx = Transaction(
            nonce=record.nonce,
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=job.handle.address,
            value=0,
            data=data,
        )
        record.nonce += 1
        return tx

    def finalize_timeout_transaction(self, handle: TaskHandle) -> Transaction:
        """A ``finalize_timeout`` call from the task's own account.

        The honest zero-answer exit (Algorithm 1's abort): when the
        collection window closed with nothing submitted there is no
        instruction to prove, and the contract refunds the full budget
        to the requester's one-task address.
        """
        record = self._record(handle)
        tx = Transaction(
            nonce=record.nonce,
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=handle.address,
            value=0,
            data=encode_call("finalize_timeout", []),
        )
        record.nonce += 1
        return tx

    def finalize_timeout(self, handle: TaskHandle) -> Receipt:
        """Send :meth:`finalize_timeout_transaction` reliably (serial path)."""
        record = self._record(handle)
        tx = self.finalize_timeout_transaction(handle)
        return self.system.send_reliable(tx, record.account.keypair)

    def task_account(self, handle: TaskHandle) -> OneTaskAccount:
        """The one-task account behind a published task (engine use)."""
        return self._record(handle).account

    def task_nonce(self, handle: TaskHandle) -> int:
        """The next unreserved nonce of a task's account (checkpoints)."""
        return self._record(handle).nonce

    def _record(self, handle: TaskHandle) -> _TaskRecord:
        record = self._tasks.get(handle.address)
        if record is None:
            raise ProtocolError("this requester did not publish that task")
        return record

    # ----- open marketplace -------------------------------------------------------------

    def board_account(self, board_address: bytes) -> OneTaskAccount:
        """This requester's one-board account (listings originate here)."""
        return derive_one_task_account(self._seed, f"board:{board_address.hex()}")

    def _board_transaction(
        self,
        board_address: bytes,
        method: str,
        args: List[Any],
        value: int = 0,
    ) -> Receipt:
        system = self.system
        account = self.board_account(board_address)
        system.fund_anonymous(account.address, near=board_address)
        if value:
            system.fund_anonymous(account.address, value, near=board_address)
        tx = Transaction(
            nonce=system.node.nonce_of(account.address),
            gas_price=DEFAULT_GAS_PRICE,
            gas_limit=DEFAULT_GAS_LIMIT,
            to=board_address,
            value=value,
            data=encode_call(method, args),
        )
        return system.send_reliable(tx, account.keypair)

    def post_listing(
        self,
        board_address: bytes,
        description: str,
        num_workers: int,
        budget: int,
        quality_bonus: int,
        validator_reward: int,
    ) -> int:
        """Open a listing on the board, escrowing bonus + validator fee."""
        receipt = self._board_transaction(
            board_address,
            "post_task",
            [description, num_workers, budget, quality_bonus, validator_reward],
            value=quality_bonus + validator_reward,
        )
        if not receipt.success:
            raise ProtocolError(f"listing rejected: {receipt.error}")
        for log in receipt.logs:
            if log.event == "TaskListed":
                obs.count("market.client.listings")
                return log.fields["listing_id"]
        raise ProtocolError("board did not announce the listing")

    def match_listing(self, board_address: bytes, listing_id: int) -> List[int]:
        """Trigger matching once bidding closed (anyone may; we do)."""
        receipt = self._board_transaction(
            board_address, "match_workers", [listing_id]
        )
        if not receipt.success:
            raise ProtocolError(f"matching failed: {receipt.error}")
        listing = self.system.node.call(board_address, "get_listing", [listing_id])
        return list(listing["matched"])

    def attach_listing_task(
        self, board_address: bytes, listing_id: int, task_address: bytes
    ) -> Receipt:
        """Bind the listing to this requester's deployed task contract."""
        receipt = self._board_transaction(
            board_address, "attach_task", [listing_id, task_address]
        )
        if not receipt.success:
            raise ProtocolError(f"attach failed: {receipt.error}")
        return receipt

    def open_dispute(self, board_address: bytes, listing_id: int) -> Receipt:
        """Contest the delivered quality, posting the board's dispute bond."""
        bond = self.system.node.call(board_address, "get_config")["dispute_bond"]
        receipt = self._board_transaction(
            board_address, "open_dispute", [listing_id], value=bond
        )
        if receipt.success:
            obs.count("market.client.disputes")
        return receipt

    def settle_listing(self, board_address: bytes, listing_id: int) -> Receipt:
        """Settle an undisputed listing after the claim window closes."""
        return self._board_transaction(board_address, "settle", [listing_id])
